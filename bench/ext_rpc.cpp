// Extension — rpc wire front-end overhead (no paper counterpart; the
// paper's controller is a library call, this bench measures what the
// socket front-end of src/rpc adds on top of it).
//
// One fixed workload is pushed through the update service four ways: as
// an in-process vector, and over loopback sockets with 1 and many binary
// connections and a JSON connection pool. Every configuration is sized
// for a single planning round, so the ServiceReport digest — and with it
// the completed/rejected columns — must be bit-identical across all
// rows; the bench exits non-zero if any transport drifts. Wall-clock
// columns carry the `_wall_us` suffix and are the only machine-dependent
// fields (CI strips them before comparing BENCH_rpc.json).
//
//   ./bench/ext_rpc [--requests=N] [--workers=N] [--seed=N]
//                   [--json=PATH] [--metrics=PATH]
#include "bench_common.hpp"

#include "rpc/load_driver.hpp"
#include "rpc/server.hpp"
#include "service/service.hpp"
#include "service/workload.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace chronus;

namespace {

/// Stable 64-bit FNV-1a fingerprint of the (multi-line) report digest, so
/// a row can carry the determinism gate as one short hex field.
std::string fingerprint(const std::string& digest) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : digest) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

struct RowResult {
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::string digest;
  double wall_us = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto requests = static_cast<int>(cli.get_int("requests", 120));
  const auto workers = static_cast<int>(cli.get_int("workers", 4));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  auto json = bench::json_from_cli(cli, "ext_rpc");
  auto metrics = bench::metrics_from_cli(cli, "ext_rpc");
  bench::reject_unknown_flags(cli);
  if (json) {
    // Trajectory declaration (tests/bench_schema_test.cpp): every row is
    // deterministic except the *_wall_us columns, which the CI comparison
    // strips by that naming convention; the rest carries a zero band.
    json->meta("schema", std::string("bench-trajectory-v1"));
    json->meta("noise_band_pct", std::int64_t{0});
    json->meta("requests", static_cast<std::int64_t>(requests));
    json->meta("workers", static_cast<std::int64_t>(workers));
    json->meta("seed", static_cast<std::int64_t>(seed));
  }

  bench::print_header("Extension", "rpc front-end vs in-process service");
  std::printf("%d requests, %d workers, seed=%llu; single planning round "
              "per mode\n\n",
              requests, workers, static_cast<unsigned long long>(seed));

  service::WorkloadOptions wopt;
  wopt.requests = requests;
  wopt.seed = seed;
  const service::ServiceTrace trace = service::make_workload(wopt);

  service::ServiceOptions sopt;
  sopt.workers = workers;
  sopt.seed = seed;

  struct Mode {
    const char* mode;
    const char* codec;  // "-" for inproc
    std::size_t connections;
  };
  const Mode kModes[] = {
      {"inproc", "-", 0},
      {"rpc", "binary", 1},
      {"rpc", "binary", 8},
      {"rpc", "binary", 32},
      {"rpc", "json", 8},
  };

  util::Table table({"mode", "codec", "conns", "done", "rej", "wall ms",
                     "digest"});
  std::string want_digest;
  bool consistent = true;
  for (const Mode& m : kModes) {
    RowResult row;
    util::Stopwatch watch;
    if (m.connections == 0) {
      const service::ServiceReport rep =
          service::UpdateService(trace.graph, sopt).run(trace.requests);
      row.wall_us = watch.seconds() * 1e6;
      row.completed = rep.completed;
      row.rejected = rep.rejected();
      row.digest = rep.digest();
    } else {
      rpc::ServerOptions opts;
      // Capacity above the workload: no deferrals, one round — the
      // precondition for cross-transport digest equality.
      opts.intake_capacity =
          static_cast<std::size_t>(requests) * 2 + 16;
      opts.service = sopt;
      rpc::Server server(trace.graph, opts);
      server.start();
      rpc::LoadOptions lopt;
      lopt.port = server.port();
      lopt.codec = (std::string(m.codec) == "json") ? rpc::Codec::kJson
                                                    : rpc::Codec::kBinary;
      lopt.connections = m.connections;
      const rpc::LoadResult load = rpc::run_load(trace.graph, trace.requests,
                                                 lopt);
      server.join();
      row.wall_us = watch.seconds() * 1e6;
      if (!load.ok) {
        std::fprintf(stderr, "rpc load failed (%s x%zu): %s\n", m.codec,
                     m.connections, load.error.c_str());
        return 1;
      }
      const auto rounds = server.round_reports();
      if (rounds.size() != 1) {
        std::fprintf(stderr, "expected one planning round, got %zu\n",
                     rounds.size());
        return 1;
      }
      row.completed = rounds[0].completed;
      row.rejected = rounds[0].rejected() + load.rejected;
      row.digest = rounds[0].digest();
    }

    if (want_digest.empty()) want_digest = row.digest;
    if (row.digest != want_digest) consistent = false;

    table.add_row({m.mode, m.codec, std::to_string(m.connections),
                   std::to_string(row.completed), std::to_string(row.rejected),
                   util::fmt(row.wall_us / 1000.0, 1),
                   fingerprint(row.digest)});
    if (json) {
      json->begin_row();
      json->field("mode", std::string(m.mode));
      json->field("codec", std::string(m.codec));
      json->field("connections", static_cast<std::int64_t>(m.connections));
      json->field("requests", static_cast<std::int64_t>(requests));
      json->field("completed", static_cast<std::int64_t>(row.completed));
      json->field("rejected", static_cast<std::int64_t>(row.rejected));
      json->field("digest", fingerprint(row.digest));
      json->field("run_wall_us", row.wall_us);  // machine-dependent, CI-strips
      json->end_row();
    }
  }
  std::printf("%s", table.to_string().c_str());
  if (!consistent) {
    std::fprintf(stderr, "\nDIGEST MISMATCH: a transport changed the "
                         "service outcome\n");
    return 1;
  }
  std::printf("\n(identical digest column = the wire layer added transports, "
              "not behaviour; the wall column is the only thing the codecs "
              "and connection counts may change)\n");
  return 0;
}
