// Extension — online service throughput under load (no paper counterpart;
// the paper schedules one update offline, this bench drives the
// long-running service of src/service).
//
// Sweeps arrival rate x flow-pair count x conflict density over generated
// workloads (service/workload.hpp) and reports, per point: completion
// throughput, rejection rate, mean and p95 request latency, joint batches
// formed, and admission rounds — all with every accepted plan re-verified
// congestion- and loop-free under the reservation capacities (the
// `violations` column must stay 0).
//
//   ./bench/ext_service [--requests=N] [--workers=N] [--rescue=N]
//                       [--seed=N] [--json=PATH] [--metrics=PATH]
#include "bench_common.hpp"

#include "service/service.hpp"
#include "service/workload.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace chronus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto requests = static_cast<int>(cli.get_int("requests", 120));
  const auto workers = static_cast<int>(cli.get_int("workers", 4));
  const auto rescue = static_cast<int>(cli.get_int("rescue", 2));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  auto json = bench::json_from_cli(cli, "ext_service");
  auto metrics = bench::metrics_from_cli(cli, "ext_service");
  bench::reject_unknown_flags(cli);
  if (json) {
    // Trajectory declaration (tests/bench_schema_test.cpp): the rows are
    // virtual-time quantities from fixed seeds, so the CI gate compares
    // them exactly — a zero noise band.
    json->meta("schema", std::string("bench-trajectory-v1"));
    json->meta("noise_band_pct", std::int64_t{0});
    json->meta("requests", static_cast<std::int64_t>(requests));
    json->meta("workers", static_cast<std::int64_t>(workers));
    json->meta("rescue_sites", static_cast<std::int64_t>(rescue));
    json->meta("seed", static_cast<std::int64_t>(seed));
  }

  bench::print_header("Extension", "online update service under load");
  std::printf("%d requests per point, %d workers, %d rescue sites, "
              "seed=%llu\n\n",
              requests, workers, rescue,
              static_cast<unsigned long long>(seed));

  util::Table table({"rate Hz", "pairs", "conflict", "done %", "rej %",
                     "thr req/s", "lat ms", "p95 ms", "joint", "rounds",
                     "violations"});
  for (const double rate : {10.0, 25.0, 50.0}) {
    for (const int pairs : {4, 8}) {
      for (const double conflict : {0.2, 0.6}) {
        service::WorkloadOptions wopt;
        wopt.requests = requests;
        wopt.arrival_rate_hz = rate;
        wopt.pairs = pairs;
        wopt.conflict_density = conflict;
        wopt.rescue_sites = rescue;
        wopt.seed = seed;
        const service::ServiceTrace trace = service::make_workload(wopt);

        service::ServiceOptions sopt;
        sopt.workers = workers;
        sopt.seed = seed;
        service::UpdateService svc(trace.graph, sopt);
        const service::ServiceReport rep = svc.run(trace);

        const double total = static_cast<double>(rep.total());
        table.add_row(
            {util::fmt(rate, 0), std::to_string(pairs),
             util::fmt(conflict, 1),
             util::fmt(total > 0 ? 100.0 * rep.completed / total : 0.0, 1),
             util::fmt(100.0 * rep.rejection_rate(), 1),
             util::fmt(rep.throughput_hz(), 1),
             util::fmt(rep.mean_latency() / 1000.0, 0),
             util::fmt(rep.latency_percentile(95) / 1000.0, 0),
             std::to_string(rep.joint_batches),
             std::to_string(rep.admission_rounds),
             std::to_string(rep.violations)});
        if (json) {
          json->begin_row();
          json->field("rate_hz", rate);
          json->field("pairs", static_cast<std::int64_t>(pairs));
          json->field("conflict", conflict);
          json->field("completed", static_cast<std::int64_t>(rep.completed));
          json->field("rejected", static_cast<std::int64_t>(rep.rejected()));
          json->field("failed", static_cast<std::int64_t>(rep.failed));
          json->field("throughput_hz", rep.throughput_hz());
          json->field("latency_mean_us", rep.mean_latency());
          json->field("latency_p95_us", rep.latency_percentile(95));
          json->field("joint_batches",
                      static_cast<std::int64_t>(rep.joint_batches));
          json->field("admission_rounds",
                      static_cast<std::int64_t>(rep.admission_rounds));
          json->field("violations", static_cast<std::int64_t>(rep.violations));
          json->end_row();
        }
      }
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(throughput saturates once the contested core rails are "
              "ledger-full; past that point admission defers and finally "
              "rejects the overflow instead of congesting the data plane — "
              "the violations column staying 0 is the service's invariant)\n");
  return 0;
}
