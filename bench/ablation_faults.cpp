// Ablation — what control-plane faults do to the timed update, and what the
// self-healing executor buys back. The Fig. 1 scenario is replayed under a
// sweep of FlowMod drop rates and Dionysus-style straggler rates; the naive
// Algorithm-5 executor (fire-and-forget) is compared against the
// ResilientExecutor (bundle-receipt confirmation, per-step retries, suffix
// re-plan / two-phase / rollback ladder). Each run is replayed post-hoc
// through the exact time-extended verifier.
//
//   ./bench/ablation_faults [--seeds=N] [--t0-ms=N]
#include "bench_common.hpp"

#include <map>
#include <string>

#include "net/generators.hpp"
#include "sim/resilient_executor.hpp"
#include "timenet/verifier.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace chronus;

namespace {

constexpr sim::SimTime kUnit = 200 * sim::kMillisecond;

struct Scenario {
  const char* name;
  double drop;
  double straggler;  // rate; multiplier stays at 10x
};

struct Tally {
  int incomplete = 0;   ///< runs missing at least one planned rule
  int violations = 0;   ///< post-hoc verifier events, summed over runs
  int retries = 0;
  int recalls = 0;
  int replans = 0;
  int fallbacks = 0;    ///< runs that left the timed rung (or rolled back)
  double finish_s = 0;  ///< mean wall-clock finish
};

sim::FlowEntry new_rule(const net::UpdateInstance& inst,
                        const sim::SimFlowSpec& spec, sim::Network& net,
                        net::NodeId v) {
  return sim::make_forwarding_entry(spec,
                                    net.port_towards(v, *inst.new_next(v)));
}

int event_count(const timenet::TransitionReport& rep) {
  return static_cast<int>(rep.congestion.size() + rep.loops.size() +
                          rep.blackholes.size());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto seeds = static_cast<int>(cli.get_int("seeds", 20));
  const sim::SimTime t0 = cli.get_int("t0-ms", 4010) * sim::kMillisecond;
  bench::reject_unknown_flags(cli);

  bench::print_header("Ablation", "control-plane faults vs the update ladder");
  std::printf("Fig. 1 scenario, %d seeds per cell, t0 = %lld ms, "
              "straggler multiplier 10x\n\n",
              seeds, static_cast<long long>(t0 / sim::kMillisecond));

  const auto inst = net::fig1_instance();
  const Scenario scenarios[] = {
      {"no faults", 0.0, 0.0},       {"drop 2%", 0.02, 0.0},
      {"drop 5%", 0.05, 0.0},        {"drop 10%", 0.10, 0.0},
      {"stragglers 20%", 0.0, 0.2},  {"drop 5% + strag 20%", 0.05, 0.2},
  };

  util::Table table({"scenario", "executor", "incomplete", "violations",
                     "retries", "recalls", "replans", "fallbacks",
                     "finish s"});
  for (const Scenario& sc : scenarios) {
    sim::FaultModel fm;
    fm.drop_rate = sc.drop;
    fm.straggler_rate = sc.straggler;

    Tally naive;
    Tally healed;
    for (int s = 0; s < seeds; ++s) {
      const auto seed = 4000 + static_cast<std::uint64_t>(s);

      // Naive Algorithm 5: dispatch, barrier, hope.
      {
        sim::Network network(inst.graph(), kUnit, 500e6);
        sim::EventQueue eq;
        util::Rng rng(seed);
        sim::Controller ctrl(eq, network, rng);
        sim::FaultInjector inj(fm, seed * 17);
        ctrl.attach_fault_injector(&inj);
        sim::SimFlowSpec spec;
        spec.rate_bps = 500e6;
        sim::install_initial_rules(ctrl, inst, spec);
        const auto run = sim::run_chronus_update(ctrl, inst, spec, t0, kUnit);
        ctrl.flush();

        // The same post-hoc monitor the resilient executor carries: replay
        // the achieved activation instants through the exact verifier.
        std::map<net::NodeId, std::int64_t> acts;
        bool missing = false;
        for (const net::NodeId v : inst.switches_to_update()) {
          const sim::SimTime act =
              ctrl.activation_time(v, new_rule(inst, spec, network, v));
          if (act == sim::kNever) {
            missing = true;
          } else {
            acts[v] = act;
          }
        }
        naive.incomplete += missing;
        naive.violations += event_count(timenet::verify_transition(
            inst, timenet::schedule_from_activations(acts, kUnit)));
        naive.finish_s += static_cast<double>(run.finish) / sim::kSecond;
      }

      // Self-healing executor over the identical fault stream.
      {
        sim::Network network(inst.graph(), kUnit, 500e6);
        sim::EventQueue eq;
        util::Rng rng(seed);
        sim::Controller ctrl(eq, network, rng);
        sim::FaultInjector inj(fm, seed * 17);
        ctrl.attach_fault_injector(&inj);
        sim::SimFlowSpec spec;
        spec.rate_bps = 500e6;
        sim::install_initial_rules(ctrl, inst, spec);
        sim::RetryPolicy pol;
        pol.max_attempts = 5;
        sim::ResilientExecutor exec(ctrl, pol);
        const auto rep = exec.run_chronus(inst, spec, t0, kUnit);
        ctrl.flush();

        healed.incomplete += !rep.completed;
        healed.violations += event_count(rep.verification);
        healed.retries += rep.retries;
        healed.recalls += rep.recalls;
        healed.replans += rep.replans;
        healed.fallbacks +=
            rep.fallback != sim::UpdateRunReport::Fallback::kNone;
        healed.finish_s += static_cast<double>(rep.result.finish) /
                           sim::kSecond;
      }
    }

    const auto row = [&](const char* who, const Tally& t) {
      table.add_row({sc.name, who,
                     std::to_string(t.incomplete) + "/" +
                         std::to_string(seeds),
                     std::to_string(t.violations), std::to_string(t.retries),
                     std::to_string(t.recalls), std::to_string(t.replans),
                     std::to_string(t.fallbacks),
                     util::fmt(t.finish_s / seeds, 2)});
    };
    row("naive", naive);
    row("resilient", healed);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(the naive executor silently loses rules as the drop rate "
              "grows — runs stay incomplete and the verifier flags the "
              "half-updated plane; the resilient executor re-sends before "
              "t0, so within the 10%%-drop / 10x-straggler envelope it "
              "completes every run with zero violations at a modest retry "
              "cost)\n");
  return 0;
}
