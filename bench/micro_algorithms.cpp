// Microbenchmarks (google-benchmark) for the algorithmic building blocks:
// dependency-set computation, loop checks, the verifier, the greedy
// scheduler (both modes) and the planners.
//
//   ./bench/micro_algorithms [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include "core/dependency.hpp"
#include "core/greedy_scheduler.hpp"
#include "core/loop_check.hpp"
#include "net/generators.hpp"
#include "opt/mutp_bnb.hpp"
#include "opt/order_bnb.hpp"
#include "timenet/path_enum.hpp"
#include "timenet/time_extended.hpp"
#include "timenet/verifier.hpp"
#include "util/arena.hpp"

using namespace chronus;

namespace {

net::UpdateInstance make_instance(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  net::RandomInstanceOptions opt;
  opt.n = n;
  return net::random_instance(opt, rng);
}

void BM_RandomInstance(benchmark::State& state) {
  util::Rng rng(1);
  net::RandomInstanceOptions opt;
  opt.n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::random_instance(opt, rng));
  }
}
BENCHMARK(BM_RandomInstance)->Arg(10)->Arg(100)->Arg(1000);

void BM_DependencySet(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 2);
  std::set<net::NodeId> pending;
  for (const auto v : inst.switches_to_update()) pending.insert(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::find_dependencies(inst, {}, pending));
  }
}
BENCHMARK(BM_DependencySet)->Arg(10)->Arg(100)->Arg(1000);

void BM_ExactLoopCheck(benchmark::State& state) {
  const auto inst = net::fig1_instance();
  timenet::UpdateSchedule sched;
  sched.set(1, timenet::TimePoint{0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::exact_loop_check(inst, sched, 2, timenet::TimePoint{1}));
  }
}
BENCHMARK(BM_ExactLoopCheck);

void BM_Algorithm4Batched(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 3);
  core::Algorithm4Context ctx(inst);
  timenet::UpdateSchedule sched;
  ctx.begin_step({}, sched);
  const auto to_update = inst.switches_to_update();
  for (auto _ : state) {
    for (const auto v : to_update) benchmark::DoNotOptimize(ctx.loops(v, timenet::TimePoint{0}));
  }
}
BENCHMARK(BM_Algorithm4Batched)->Arg(100)->Arg(1000);

void BM_VerifyTransition(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 4);
  core::GreedyOptions opts;
  opts.guard_with_verifier = false;
  opts.record_steps = false;
  opts.force_complete = true;
  const auto plan = core::greedy_schedule(inst, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(timenet::verify_transition(inst, plan.schedule));
  }
}
BENCHMARK(BM_VerifyTransition)->Arg(10)->Arg(40);

void BM_GreedyGuarded(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 5);
  core::GreedyOptions opts;
  opts.record_steps = false;
  opts.force_complete = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::greedy_schedule(inst, opts));
  }
}
BENCHMARK(BM_GreedyGuarded)->Arg(10)->Arg(40);

void BM_GreedyPure(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 6);
  core::GreedyOptions opts;
  opts.guard_with_verifier = false;
  opts.record_steps = false;
  opts.force_complete = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::greedy_schedule(inst, opts));
  }
}
BENCHMARK(BM_GreedyPure)->Arg(100)->Arg(1000)->Arg(6000);

void BM_OrderPlanGreedy(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 7);
  opt::OrderOptions opts;
  opts.exact_limit = 0;  // greedy-maximal only
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::solve_order_replacement(inst, opts));
  }
}
BENCHMARK(BM_OrderPlanGreedy)->Arg(10)->Arg(100);

// ---- allocator trajectory families ----------------------------------------
// Each family below runs the identical workload under both backings
// (arena:0 = legacy heap, arena:1 = bump arena). The CI bench-smoke job
// pairs the two variants from the same run — machine speed cancels — and
// enforces the speedup floor declared in the custom context below.

util::ScopedArenaBacking backing_for(const benchmark::State& state,
                                     int arg_index) {
  return util::ScopedArenaBacking(state.range(arg_index) != 0
                                      ? util::ArenaBacking::kArena
                                      : util::ArenaBacking::kHeap);
}

void BM_TimeExtendedBuild(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 8);
  const auto backing = backing_for(state, 1);
  for (auto _ : state) {
    timenet::TimeExtendedNetwork gt(inst.graph(), timenet::TimePoint{0},
                                    timenet::TimePoint{7});
    benchmark::DoNotOptimize(gt.link_count());
  }
}
BENCHMARK(BM_TimeExtendedBuild)
    ->ArgNames({"n", "arena"})
    ->Args({40, 0})->Args({40, 1})
    ->Args({200, 0})->Args({200, 1});

void BM_PathEnum(benchmark::State& state) {
  const auto inst = make_instance(30, 9);
  const auto backing = backing_for(state, 0);
  timenet::EnumerateOptions opts;
  opts.t_end = timenet::TimePoint{8};
  opts.max_paths = 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(timenet::enumerate_timed_paths(
        inst.graph(), inst.p_init().front(), timenet::TimePoint{0},
        inst.p_init().back(), opts));
  }
}
BENCHMARK(BM_PathEnum)->ArgNames({"arena"})->Arg(0)->Arg(1);

void BM_MutpPlan(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 10);
  const auto backing = backing_for(state, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::solve_mutp(inst));
  }
}
// Paired for trajectory visibility but NOT in the gated family list: the
// MUTP search is dominated by TransitionState::try_update (the
// incremental verifier, still heap-backed), so its arena speedup is
// Amdahl-bound near 1.0x until that layer is converted (EXPERIMENTS.md).
BENCHMARK(BM_MutpPlan)->ArgNames({"n", "arena"})->Args({12, 0})->Args({12, 1});

void BM_OrderPlanExact(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 11);
  const auto backing = backing_for(state, 1);
  opt::OrderOptions opts;
  opts.exact_limit = 18;
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::solve_order_replacement(inst, opts));
  }
}
BENCHMARK(BM_OrderPlanExact)
    ->ArgNames({"n", "arena"})
    ->Args({14, 0})->Args({14, 1});

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Trajectory declaration (tests/bench_schema_test.cpp validates it, CI
  // bench-smoke enforces it): wall timings on shared runners are noisy, so
  // the gate requires paired arena speedups of at least
  // min_speedup * (1 - noise_band), not the raw floor.
  benchmark::AddCustomContext("chronus_schema", "bench-trajectory-v1");
  benchmark::AddCustomContext("chronus_noise_band_pct", "25");
  benchmark::AddCustomContext("chronus_arena_min_speedup", "1.3");
  benchmark::AddCustomContext(
      "chronus_arena_families",
      "BM_TimeExtendedBuild,BM_PathEnum,BM_OrderPlanExact");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
