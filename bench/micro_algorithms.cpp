// Microbenchmarks (google-benchmark) for the algorithmic building blocks:
// dependency-set computation, loop checks, the verifier, the greedy
// scheduler (both modes) and the planners.
//
//   ./bench/micro_algorithms [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include "core/dependency.hpp"
#include "core/greedy_scheduler.hpp"
#include "core/loop_check.hpp"
#include "net/generators.hpp"
#include "opt/order_bnb.hpp"
#include "timenet/verifier.hpp"

using namespace chronus;

namespace {

net::UpdateInstance make_instance(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  net::RandomInstanceOptions opt;
  opt.n = n;
  return net::random_instance(opt, rng);
}

void BM_RandomInstance(benchmark::State& state) {
  util::Rng rng(1);
  net::RandomInstanceOptions opt;
  opt.n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::random_instance(opt, rng));
  }
}
BENCHMARK(BM_RandomInstance)->Arg(10)->Arg(100)->Arg(1000);

void BM_DependencySet(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 2);
  std::set<net::NodeId> pending;
  for (const auto v : inst.switches_to_update()) pending.insert(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::find_dependencies(inst, {}, pending));
  }
}
BENCHMARK(BM_DependencySet)->Arg(10)->Arg(100)->Arg(1000);

void BM_ExactLoopCheck(benchmark::State& state) {
  const auto inst = net::fig1_instance();
  timenet::UpdateSchedule sched;
  sched.set(1, timenet::TimePoint{0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::exact_loop_check(inst, sched, 2, timenet::TimePoint{1}));
  }
}
BENCHMARK(BM_ExactLoopCheck);

void BM_Algorithm4Batched(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 3);
  core::Algorithm4Context ctx(inst);
  timenet::UpdateSchedule sched;
  ctx.begin_step({}, sched);
  const auto to_update = inst.switches_to_update();
  for (auto _ : state) {
    for (const auto v : to_update) benchmark::DoNotOptimize(ctx.loops(v, timenet::TimePoint{0}));
  }
}
BENCHMARK(BM_Algorithm4Batched)->Arg(100)->Arg(1000);

void BM_VerifyTransition(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 4);
  core::GreedyOptions opts;
  opts.guard_with_verifier = false;
  opts.record_steps = false;
  opts.force_complete = true;
  const auto plan = core::greedy_schedule(inst, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(timenet::verify_transition(inst, plan.schedule));
  }
}
BENCHMARK(BM_VerifyTransition)->Arg(10)->Arg(40);

void BM_GreedyGuarded(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 5);
  core::GreedyOptions opts;
  opts.record_steps = false;
  opts.force_complete = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::greedy_schedule(inst, opts));
  }
}
BENCHMARK(BM_GreedyGuarded)->Arg(10)->Arg(40);

void BM_GreedyPure(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 6);
  core::GreedyOptions opts;
  opts.guard_with_verifier = false;
  opts.record_steps = false;
  opts.force_complete = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::greedy_schedule(inst, opts));
  }
}
BENCHMARK(BM_GreedyPure)->Arg(100)->Arg(1000)->Arg(6000);

void BM_OrderPlanGreedy(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 7);
  opt::OrderOptions opts;
  opts.exact_limit = 0;  // greedy-maximal only
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::solve_order_replacement(inst, opts));
  }
}
BENCHMARK(BM_OrderPlanGreedy)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
