// Ablation — what each ingredient of the scheduler buys, as a function of
// how tight the network is (P[link capacity >= 2d], the generator's slack).
//
// Variants:
//   * pure    — Algorithm 2 exactly as printed: dependency relations
//               (Alg. 3) + the time-extended loop check (Alg. 4). Its
//               dependency rule orders *pending* switches but cannot
//               express "wait k steps for a drain through a never-updated
//               switch", so its schedules congest once tight links and
//               multi-step drains appear — consistent with the congestion
//               cases the paper itself reports for Chronus in Fig. 7.
//   * guarded — the same, with every accepted update checked against the
//               exact time-extended verifier (our default): schedules are
//               clean by construction, congestion remains only where no
//               clean schedule exists at all.
//   * sweep   — the Algorithm 1 crossing sweep used as a scheduler.
//
//   ./bench/ablation_greedy_variants [--instances=N] [--n=N] [--seed=N]
#include "bench_common.hpp"

#include "core/feasibility_tree.hpp"
#include "core/greedy_scheduler.hpp"
#include "timenet/verifier.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace chronus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto instances = static_cast<int>(cli.get_int("instances", 60));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 20));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  bench::reject_unknown_flags(cli);

  bench::print_header("Ablation", "greedy variants vs link slack");
  std::printf("n=%zu switches, %d random instances per row, seed=%llu\n\n", n,
              instances, static_cast<unsigned long long>(seed));

  util::Table table({"slack prob", "pure clean %", "guarded feasible %",
                     "sweep feasible %", "guarded makespan", "sweep makespan"});

  util::Rng master(seed);
  for (const double slack : {0.9, 0.7, 0.5, 0.3}) {
    util::Rng rng = master.fork(static_cast<std::uint64_t>(slack * 100));
    int pure_clean = 0;
    int guarded_ok = 0;
    int sweep_ok = 0;
    util::Summary guarded_span, sweep_span;
    for (int i = 0; i < instances; ++i) {
      net::RandomInstanceOptions opt;
      opt.n = n;
      opt.slack_prob = slack;
      const auto inst = net::random_instance(opt, rng);

      core::GreedyOptions pure_opts;
      pure_opts.guard_with_verifier = false;
      pure_opts.record_steps = false;
      const auto pure = core::greedy_schedule(inst, pure_opts);
      pure_clean += pure.feasible() &&
                    timenet::verify_transition(inst, pure.schedule).ok();

      core::GreedyOptions gopts;
      gopts.record_steps = false;
      const auto guarded = core::greedy_schedule(inst, gopts);
      if (guarded.feasible()) {
        ++guarded_ok;
        guarded_span.add(static_cast<double>(guarded.schedule.step_span()));
      }

      const auto sweep = core::tree_feasibility_check(inst);
      if (sweep.feasible) {
        ++sweep_ok;
        sweep_span.add(static_cast<double>(
            sweep.witness.empty() ? 0 : sweep.witness.step_span()));
      }
    }
    table.add_row({util::fmt(slack, 1),
                   util::fmt(100.0 * pure_clean / instances, 1),
                   util::fmt(100.0 * guarded_ok / instances, 1),
                   util::fmt(100.0 * sweep_ok / instances, 1),
                   guarded_span.empty() ? "-" : util::fmt(guarded_span.mean(), 1),
                   sweep_span.empty() ? "-" : util::fmt(sweep_span.mean(), 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(with ample slack the printed Algorithm 2 suffices; as links "
              "tighten, only the verifier-guarded variant keeps its schedules "
              "clean — it degrades by *refusing* instances instead of "
              "congesting them)\n");
  return 0;
}
