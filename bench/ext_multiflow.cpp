// Extension — scheduling several concurrent flows (the paper formulates
// program (3) over a flow set F but evaluates a single dynamic flow; this
// bench compares our sequential and joint multi-flow schedulers side by
// side).
//
// k flows share a WAN; each is rerouted at once. Reported per k, for both
// compositions: how often a jointly congestion- and loop-free plan exists
// under tight vs slack contested links, and the total span of the combined
// plan.
//
//   ./bench/ext_multiflow [--instances=N] [--seed=N] [--max-flows=N]
//                         [--json=PATH] [--metrics=PATH]
#include "bench_common.hpp"

#include "core/multi_flow.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace chronus;

namespace {

/// k flows over a shared backbone: flow i runs src_i -> A -> B -> dst_i and
/// reroutes onto src_i -> C -> D -> dst_i. The contested links are A->B
/// (old) and C->D (new), shared by every flow.
std::vector<net::UpdateInstance> backbone_flows(int k, double old_cap,
                                                double new_cap,
                                                util::Rng& rng) {
  net::Graph g;
  const net::NodeId a = g.add_node("A");
  const net::NodeId b = g.add_node("B");
  const net::NodeId c = g.add_node("C");
  const net::NodeId d = g.add_node("D");
  g.add_link(a, b, net::Capacity{old_cap}, 1 + rng.uniform_int(0, 2));
  g.add_link(c, d, net::Capacity{new_cap}, 1 + rng.uniform_int(0, 2));
  std::vector<std::pair<net::NodeId, net::NodeId>> endpoints;
  for (int i = 0; i < k; ++i) {
    const net::NodeId s = g.add_node("s" + std::to_string(i));
    const net::NodeId t = g.add_node("t" + std::to_string(i));
    g.add_link(s, a, net::Capacity{2.0}, 1);
    g.add_link(b, t, net::Capacity{2.0}, 1);
    g.add_link(s, c, net::Capacity{2.0}, 1 + rng.uniform_int(0, 2));
    g.add_link(d, t, net::Capacity{2.0}, 1);
    endpoints.emplace_back(s, t);
  }
  std::vector<net::UpdateInstance> flows;
  for (const auto& [s, t] : endpoints) {
    flows.push_back(net::UpdateInstance::from_paths(
        g, net::Path{s, a, b, t}, net::Path{s, c, d, t}, net::Demand{1.0}));
  }
  return flows;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto instances = static_cast<int>(cli.get_int("instances", 20));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto max_flows = static_cast<int>(cli.get_int("max-flows", 5));
  auto json = bench::json_from_cli(cli, "ext_multiflow");
  auto metrics = bench::metrics_from_cli(cli, "ext_multiflow");
  bench::reject_unknown_flags(cli);
  if (json) {
    json->meta("instances", static_cast<std::int64_t>(instances));
    json->meta("seed", static_cast<std::int64_t>(seed));
    json->meta("max_flows", static_cast<std::int64_t>(max_flows));
  }

  bench::print_header("Extension", "multi-flow sequential vs joint");
  std::printf("%d instances per point, seed=%llu; the new contested link "
              "holds k flows (slack) or only k-1 (tight)\n\n",
              instances, static_cast<unsigned long long>(seed));

  util::Table table({"flows", "seq feasible %", "seq span", "joint feasible %",
                     "joint span", "tight seq %", "tight joint %"});
  util::Rng master(seed);
  for (int k = 2; k <= max_flows; ++k) {
    int seq_ok = 0;
    int joint_ok = 0;
    int tight_seq = 0;
    int tight_joint = 0;
    util::Summary seq_spans, joint_spans;
    for (int i = 0; i < instances; ++i) {
      util::Rng rng = master.fork(static_cast<std::uint64_t>(k * 1000 + i));
      {
        // Slack: the contested links hold all k flows at once.
        auto flows = backbone_flows(k, static_cast<double>(k),
                                    static_cast<double>(k), rng);
        const auto seq = core::schedule_flows_sequentially(flows);
        if (seq.feasible()) {
          ++seq_ok;
          seq_spans.add(static_cast<double>(seq.total_span));
        }
        const auto joint = core::schedule_flows_jointly(flows);
        if (joint.feasible()) {
          ++joint_ok;
          joint_spans.add(static_cast<double>(joint.total_span));
        }
      }
      {
        // Tight: the new shared link is one flow short; the last
        // transition has nowhere to go.
        auto flows = backbone_flows(k, static_cast<double>(k),
                                    static_cast<double>(k - 1), rng);
        tight_seq += core::schedule_flows_sequentially(flows).feasible();
        tight_joint += core::schedule_flows_jointly(flows).feasible();
      }
    }
    table.add_row({std::to_string(k),
                   util::fmt(100.0 * seq_ok / instances, 1),
                   seq_spans.empty() ? "-" : util::fmt(seq_spans.mean(), 1),
                   util::fmt(100.0 * joint_ok / instances, 1),
                   joint_spans.empty() ? "-" : util::fmt(joint_spans.mean(), 1),
                   util::fmt(100.0 * tight_seq / instances, 1),
                   util::fmt(100.0 * tight_joint / instances, 1)});
    if (json) {
      json->begin_row();
      json->field("flows", static_cast<std::int64_t>(k));
      json->field("seq_feasible", 1.0 * seq_ok / instances);
      json->field("seq_span_mean", seq_spans.empty() ? 0.0 : seq_spans.mean());
      json->field("joint_feasible", 1.0 * joint_ok / instances);
      json->field("joint_span_mean",
                  joint_spans.empty() ? 0.0 : joint_spans.mean());
      json->field("tight_seq_feasible", 1.0 * tight_seq / instances);
      json->field("tight_joint_feasible", 1.0 * tight_joint / instances);
      json->end_row();
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(with headroom for every flow both compositions succeed, "
              "but the joint scheduler overlaps the transitions instead of "
              "separating them by drain gaps; with k-1 units on the shared "
              "target link the last flow has nowhere to go either way)\n");
  return 0;
}
