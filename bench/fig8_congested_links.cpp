// Fig. 8 — number of congested links vs. number of switches.
//
// Same workload as Fig. 7; the metric is the number of congested links in
// the time-extended network (distinct <link, entry-step> pairs whose load
// exceeds capacity), summed over the run's instances — exactly how the
// paper counts them.
//
// Paper shape to reproduce: Chronus cuts the number of congested links by
// roughly 70% relative to OR, with the gap widening as n grows.
//
//   ./bench/fig8_congested_links [--instances=N] [--runs=N] [--seed=N]
//                                [--max-n=N]
#include "bench_common.hpp"

#include "baselines/order_replacement.hpp"
#include "core/greedy_scheduler.hpp"
#include "timenet/verifier.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace chronus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto instances = static_cast<int>(cli.get_int("instances", 20));
  const auto runs = static_cast<int>(cli.get_int("runs", 2));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto max_n = static_cast<std::size_t>(cli.get_int("max-n", 60));
  bench::reject_unknown_flags(cli);

  bench::print_header("Fig. 8", "congested time-extended links");
  std::printf("runs=%d, instances/run=%d, seed=%llu "
              "(counts are totals per run, averaged over runs)\n\n",
              runs, instances, static_cast<unsigned long long>(seed));

  util::Table table(
      {"switches", "CHRONUS", "OR", "reduction %"});
  util::Rng master(seed);

  for (std::size_t n = 10; n <= max_n; n += 10) {
    util::Summary chronus_links;
    util::Summary or_links;
    for (int run = 0; run < runs; ++run) {
      util::Rng rng = master.fork(n * 977 + static_cast<std::uint64_t>(run));
      double c_total = 0;
      double o_total = 0;
      for (int i = 0; i < instances; ++i) {
        const auto inst = bench::random_instance_for(n, rng);

        core::GreedyOptions gopts;
        gopts.force_complete = true;
        gopts.record_steps = false;
        const auto greedy = core::greedy_schedule(inst, gopts);
        c_total += static_cast<double>(
            timenet::verify_transition(inst, greedy.schedule)
                .congested_link_count());

        const auto exec =
            baselines::plan_and_execute_order_replacement(inst, rng);
        o_total += static_cast<double>(
            timenet::verify_transition(inst, exec.realized)
                .congested_link_count());
      }
      chronus_links.add(c_total);
      or_links.add(o_total);
    }
    const double c = chronus_links.mean();
    const double o = or_links.mean();
    table.add_row({std::to_string(n), util::fmt(c, 1), util::fmt(o, 1),
                   util::fmt(o > 0 ? 100.0 * (o - c) / o : 0.0, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(paper: CHRONUS has ~70%% fewer congested links than OR)\n");
  return 0;
}
