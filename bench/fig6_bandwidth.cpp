// Fig. 6 — link bandwidth consumption over time during an update.
//
// The Mininet experiment of §V.A, reproduced on the simulated testbed: a
// 10-switch topology (the Fig. 1 pattern extended with a drain tail), every
// link 500 Mbps, one 500 Mbps traffic aggregate, link delays of 300 ms (the
// paper uses 5 ms..1 s), byte counters polled every second exactly like the
// Floodlight statistics module. The update starts at t = 5 s.
//
// The monitored link is the old-path segment v4->v5, where order
// replacement's asynchronous round 1 lets the rerouted flow from v1 meet
// the in-flight traffic still passing v2/v3 — the counter then reads above
// the 500 Mbps capacity (the paper sees ~600 Mbps), while Chronus' timed
// schedule and TP's per-packet versioning never exceed it anywhere.
//
//   ./bench/fig6_bandwidth [--seed=N] [--delay-ms=N]
#include "bench_common.hpp"

#include <algorithm>

#include "sim/queue.hpp"
#include "sim/traffic.hpp"
#include "sim/updaters.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace chronus;

namespace {

net::UpdateInstance fig6_instance() {
  net::Graph g;
  for (int i = 1; i <= 10; ++i) g.add_node("v" + std::to_string(i));
  for (net::NodeId v = 0; v + 1 < 10; ++v) g.add_link(v, v + 1, net::Capacity{1.0}, 1);
  g.add_link(0, 3, net::Capacity{1.0}, 1);  // v1 -> v4
  g.add_link(3, 2, net::Capacity{1.0}, 1);  // v4 -> v3
  g.add_link(2, 1, net::Capacity{1.0}, 1);  // v3 -> v2
  g.add_link(1, 9, net::Capacity{1.0}, 1);  // v2 -> v10
  return net::UpdateInstance::from_paths(
      std::move(g), net::Path{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
      net::Path{0, 3, 2, 1, 9}, net::Demand{1.0});
}

struct SchemeRun {
  std::vector<double> series;  // Mbps on the monitored link, per second
  double peak_any_link = 0.0;  // Mbps, peak 1s window over every link
  double dropped_kb = 0.0;     // bytes lost across all 1 MB link buffers
};

SchemeRun run_scheme(const char* scheme, const net::UpdateInstance& inst,
                     sim::SimTime delay_unit, sim::SimTime latency_median,
                     std::uint64_t seed) {
  sim::Network network(inst.graph(), delay_unit, 500e6);
  sim::EventQueue eq;
  util::Rng rng(seed);
  // Rule-install latencies follow the Dionysus measurements the paper
  // samples from: median on the order of a second, heavy log-normal tail.
  sim::ControlChannelModel model;
  model.latency_median = latency_median;
  sim::Controller ctrl(eq, network, rng, model);
  sim::SimFlowSpec spec;
  spec.rate_bps = 500e6;

  const std::string name = scheme;
  const sim::SimTime t0 = 5 * sim::kSecond + 7 * sim::kMillisecond;
  sim::install_initial_rules(ctrl, inst, spec, /*versioned=*/name == "TP");
  if (name == "CHRONUS") {
    sim::run_chronus_update(ctrl, inst, spec, t0, delay_unit);
  } else if (name == "TP") {
    sim::run_two_phase_update(ctrl, inst, spec, t0, 4 * sim::kSecond);
  } else {
    sim::run_or_update(ctrl, inst, spec, t0);
  }
  ctrl.flush();

  sim::TrafficFlow flow;
  flow.name = spec.name;
  flow.header.dst = spec.dst_prefix + "1";
  flow.header.in_port = sim::kHostPort;
  flow.ingress = inst.source();
  flow.rate_bps = spec.rate_bps;
  sim::TraceOptions topts;
  topts.t_begin = 0;
  topts.t_end = 25 * sim::kSecond;
  topts.quantum = 25 * sim::kMillisecond;
  trace_traffic(network, {flow}, topts);

  SchemeRun out;
  const auto monitored = *network.link_between(3, 4);  // v4 -> v5
  for (const double v : sim::bandwidth_series(network, monitored, 0,
                                              25 * sim::kSecond, sim::kSecond)) {
    out.series.push_back(v / 1e6);
  }
  for (net::LinkId id = 0; id < network.link_count(); ++id) {
    for (const double v : sim::bandwidth_series(network, id, 0,
                                                25 * sim::kSecond,
                                                sim::kSecond)) {
      out.peak_any_link = std::max(out.peak_any_link, v / 1e6);
    }
    // A typical 1 MB per-port buffer: what the over-capacity interval
    // costs in actual traffic loss (the paper's "beyond the buffer size").
    out.dropped_kb += sim::analyze_queue(network.link(id), 1e6, 0,
                                         25 * sim::kSecond)
                          .dropped_bytes /
                      1e3;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  const sim::SimTime delay_unit =
      cli.get_int("delay-ms", 300) * sim::kMillisecond;
  const sim::SimTime latency_median =
      cli.get_int("latency-ms", 1500) * sim::kMillisecond;
  bench::reject_unknown_flags(cli);

  bench::print_header("Fig. 6", "bandwidth consumption on v4->v5 (Mbps)");
  std::printf("10 switches, 500 Mbps links, 500 Mbps aggregate, link delay "
              "%lld ms, rule latency median %lld ms (Dionysus-like), update "
              "at t=5s, 1s counter polling, seed=%llu\n\n",
              static_cast<long long>(delay_unit / sim::kMillisecond),
              static_cast<long long>(latency_median / sim::kMillisecond),
              static_cast<unsigned long long>(seed));

  const auto inst = fig6_instance();
  const SchemeRun chronus =
      run_scheme("CHRONUS", inst, delay_unit, latency_median, seed);
  const SchemeRun tp = run_scheme("TP", inst, delay_unit, latency_median, seed);
  const SchemeRun orr = run_scheme("OR", inst, delay_unit, latency_median, seed);

  util::Table table({"time (s)", "CHRONUS", "TP", "OR"});
  for (std::size_t i = 0; i < chronus.series.size(); ++i) {
    table.add_row({std::to_string(i), util::fmt(chronus.series[i], 1),
                   util::fmt(tp.series[i], 1), util::fmt(orr.series[i], 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\npeak 1s-window load over all links (capacity 500 Mbps):\n");
  std::printf("  CHRONUS %.1f Mbps, TP %.1f Mbps, OR %.1f Mbps\n",
              chronus.peak_any_link, tp.peak_any_link, orr.peak_any_link);
  std::printf("traffic lost to 1 MB port buffers during the update:\n");
  std::printf("  CHRONUS %.0f KB, TP %.0f KB, OR %.0f KB\n",
              chronus.dropped_kb, tp.dropped_kb, orr.dropped_kb);
  std::printf("(paper: OR peaks around 600 Mbps — beyond buffer headroom — "
              "while CHRONUS and TP stay in the normal range)\n");
  return 0;
}
