// Shared helpers for the benchmark harnesses that regenerate the paper's
// evaluation figures. Every harness prints the workload parameters it ran
// with (the accepted flags are listed in each binary's header comment).
// Defaults are sized so the whole suite finishes in minutes; the
// paper-scale parameters are given in EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>

#include "net/generators.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace chronus::bench {

/// The §V.B workload: one random update instance per call.
inline net::UpdateInstance random_instance_for(std::size_t n, util::Rng& rng) {
  net::RandomInstanceOptions opt;
  opt.n = n;
  return net::random_instance(opt, rng);
}

inline void print_header(const char* figure, const char* what) {
  std::printf("=== %s: %s ===\n", figure, what);
}

inline void reject_unknown_flags(const util::Cli& cli) {
  const auto unused = cli.unused();
  if (!unused.empty()) {
    std::fprintf(stderr, "unknown flag: --%s\n", unused.front().c_str());
    std::exit(2);
  }
}

}  // namespace chronus::bench
