// Shared helpers for the benchmark harnesses that regenerate the paper's
// evaluation figures. Every harness prints the workload parameters it ran
// with (the accepted flags are listed in each binary's header comment).
// Defaults are sized so the whole suite finishes in minutes; the
// paper-scale parameters are given in EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "net/generators.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"

namespace chronus::bench {

/// The §V.B workload: one random update instance per call.
inline net::UpdateInstance random_instance_for(std::size_t n, util::Rng& rng) {
  net::RandomInstanceOptions opt;
  opt.n = n;
  return net::random_instance(opt, rng);
}

inline void print_header(const char* figure, const char* what) {
  std::printf("=== %s: %s ===\n", figure, what);
}

/// Opens the machine-readable mirror when --json=<path> is given; returns
/// null otherwise (callers guard row emission on the pointer). Consume the
/// flag before reject_unknown_flags.
inline std::unique_ptr<util::JsonWriter> json_from_cli(const util::Cli& cli,
                                                       const char* bench) {
  const std::string path = cli.get("json", "");
  if (path.empty()) return nullptr;
  return std::make_unique<util::JsonWriter>(path, bench);
}

/// Installs a metrics registry when --metrics=<path> is given and exports
/// the snapshot next to the --json output when the returned sidecar is
/// destroyed. Keep the sidecar alive for the whole run; consume the flag
/// before reject_unknown_flags.
inline std::unique_ptr<obs::MetricsSidecar> metrics_from_cli(
    const util::Cli& cli, const char* bench) {
  return std::make_unique<obs::MetricsSidecar>(cli.get("metrics", ""), bench);
}

inline void reject_unknown_flags(const util::Cli& cli) {
  const auto unused = cli.unused();
  if (!unused.empty()) {
    std::fprintf(stderr, "unknown flag: --%s\n", unused.front().c_str());
    std::exit(2);
  }
}

}  // namespace chronus::bench
