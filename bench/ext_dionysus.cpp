// Extension — three generations of update machinery on one workload:
// capacity-oblivious static rounds (OR), capacity-aware dynamic scheduling
// that trusts control-plane confirmations (Dionysus-style), and
// delay-aware timed updates (Chronus). The paper positions Chronus exactly
// here: Dionysus "employs dependency graphs to find a fast congestion-free
// update plan", but without modelling the propagation delay, capacity is
// released one drain earlier than it is actually free.
//
// Metrics per scheme over random instances: % of transitions with any
// violation, mean congested time-extended links, mean loops.
//
//   ./bench/ext_dionysus [--instances=N] [--n=N] [--seed=N]
#include "bench_common.hpp"

#include "baselines/dionysus.hpp"
#include "baselines/order_replacement.hpp"
#include "core/greedy_scheduler.hpp"
#include "timenet/verifier.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace chronus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto instances = static_cast<int>(cli.get_int("instances", 40));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 20));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  bench::reject_unknown_flags(cli);

  bench::print_header("Extension", "OR vs Dionysus-style vs Chronus");
  std::printf("n=%zu switches, %d random instances, seed=%llu\n\n", n,
              instances, static_cast<unsigned long long>(seed));

  struct Row {
    int dirty = 0;
    int incomplete = 0;
    util::Summary congested_links;
    util::Summary loops;
  };
  Row orr, dio, chronus_row;

  util::Rng rng(seed);
  for (int i = 0; i < instances; ++i) {
    const auto inst = bench::random_instance_for(n, rng);

    {
      const auto exec = baselines::plan_and_execute_order_replacement(inst, rng);
      const auto rep = timenet::verify_transition(inst, exec.realized);
      orr.dirty += !rep.ok();
      orr.congested_links.add(static_cast<double>(rep.congested_link_count()));
      orr.loops.add(static_cast<double>(rep.loops.size()));
    }
    {
      const auto exec = baselines::dionysus_execute(inst, rng);
      if (!exec.complete) {
        ++dio.incomplete;
      } else {
        const auto rep = timenet::verify_transition(inst, exec.realized);
        dio.dirty += !rep.ok();
        dio.congested_links.add(
            static_cast<double>(rep.congested_link_count()));
        dio.loops.add(static_cast<double>(rep.loops.size()));
      }
    }
    {
      core::GreedyOptions gopts;
      gopts.record_steps = false;
      gopts.force_complete = true;
      const auto plan = core::greedy_schedule(inst, gopts);
      const auto rep = timenet::verify_transition(inst, plan.schedule);
      chronus_row.dirty += !rep.ok();
      chronus_row.congested_links.add(
          static_cast<double>(rep.congested_link_count()));
      chronus_row.loops.add(static_cast<double>(rep.loops.size()));
    }
  }

  util::Table table({"scheme", "dirty %", "congested links (mean)",
                     "loops (mean)", "incomplete"});
  const auto row = [&](const char* name, const Row& x) {
    table.add_row({name, util::fmt(100.0 * x.dirty / instances, 1),
                   util::fmt(x.congested_links.mean(), 2),
                   util::fmt(x.loops.mean(), 2), std::to_string(x.incomplete)});
  };
  row("OR (static rounds)", orr);
  row("Dionysus-style (dynamic)", dio);
  row("CHRONUS (timed)", chronus_row);
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(on these interleaved reroutes nearly every OR violation is "
              "caused by in-flight traffic, not by steady-state "
              "double-booking — so the capacity ledger alone barely helps: "
              "confirmations release capacity one propagation delay before "
              "the drain clears. Delay awareness, not capacity awareness, is "
              "what closes the gap — the paper's core claim.)\n");
  return 0;
}
