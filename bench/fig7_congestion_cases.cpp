// Fig. 7 — percentage of congestion cases vs. number of switches.
//
// Workload (§V.B): random update instances with a fixed initial routing
// path over n switches and a randomly routed final path; n sweeps 10..60 in
// steps of 10. Every scheme must complete the update; an instance counts as
// a congestion case when the executed transition violates the congestion-
// free condition at any moment (checked by the exact time-extended
// verifier).
//
// Schemes: Chronus (Algorithm 2, forced to completion when infeasible),
// OPT (branch-and-bound for program (3), same forcing, per-instance
// deadline like the paper's timeout) and OR (round-minimal loop-free order
// replacement executed with asynchronous rule latencies).
//
// Paper shape to reproduce: Chronus tracks OPT within a few percent and
// both leave roughly 3x fewer congestion cases than OR (at 60 switches:
// ~65% congestion-free for Chronus/OPT vs ~15% for OR).
//
//   ./bench/fig7_congestion_cases [--instances=N] [--runs=N] [--seed=N]
//                                 [--opt-timeout=SEC] [--max-n=N]
#include "bench_common.hpp"

#include "baselines/order_replacement.hpp"
#include "core/greedy_scheduler.hpp"
#include "opt/mutp_bnb.hpp"
#include "timenet/verifier.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace chronus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto instances = static_cast<int>(cli.get_int("instances", 20));
  const auto runs = static_cast<int>(cli.get_int("runs", 2));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const double opt_timeout = cli.get_double("opt-timeout", 0.02);
  const auto max_n = static_cast<std::size_t>(cli.get_int("max-n", 60));
  bench::reject_unknown_flags(cli);

  bench::print_header("Fig. 7", "percentage of congestion cases");
  std::printf("runs=%d, instances/run=%d, OPT timeout=%.3fs, seed=%llu\n\n",
              runs, instances, opt_timeout,
              static_cast<unsigned long long>(seed));

  util::Table table({"switches", "CHRONUS %", "OPT %", "OR %"});
  util::Rng master(seed);

  for (std::size_t n = 10; n <= max_n; n += 10) {
    int chronus_cases = 0;
    int opt_cases = 0;
    int or_cases = 0;
    int total = 0;
    for (int run = 0; run < runs; ++run) {
      util::Rng rng = master.fork(n * 131 + static_cast<std::uint64_t>(run));
      for (int i = 0; i < instances; ++i) {
        const auto inst = bench::random_instance_for(n, rng);
        ++total;

        core::GreedyOptions gopts;
        gopts.force_complete = true;
        gopts.record_steps = false;
        const auto greedy = core::greedy_schedule(inst, gopts);
        chronus_cases +=
            !timenet::verify_transition(inst, greedy.schedule)
                 .congestion_free();

        opt::MutpOptions mopts;
        mopts.timeout_sec = opt_timeout;
        mopts.force_complete = true;
        const auto exact = opt::solve_mutp(inst, mopts);
        opt_cases +=
            !timenet::verify_transition(inst, exact.schedule)
                 .congestion_free();

        const auto exec =
            baselines::plan_and_execute_order_replacement(inst, rng);
        or_cases +=
            !timenet::verify_transition(inst, exec.realized)
                 .congestion_free();
      }
    }
    const double denom = total;
    table.add_row({std::to_string(n),
                   util::fmt(100.0 * chronus_cases / denom, 1),
                   util::fmt(100.0 * opt_cases / denom, 1),
                   util::fmt(100.0 * or_cases / denom, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(paper: at 60 switches >65%% of instances congestion-free "
              "under CHRONUS/OPT vs ~15%% under OR)\n");
  return 0;
}
