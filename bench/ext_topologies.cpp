// Extension — workload sensitivity: the §V.B generator (a line with a
// random permutation detour) produces heavily interleaved reroutes. Real
// topologies give the scheduler shortest-path reroutes instead; this bench
// runs the same comparison on fat-tree and Waxman reroutes to show how
// much of the congestion-case level is workload, not algorithm.
//
//   ./bench/ext_topologies [--instances=N] [--seed=N]
#include "bench_common.hpp"

#include <functional>
#include <optional>

#include "baselines/order_replacement.hpp"
#include "core/greedy_scheduler.hpp"
#include "net/topologies.hpp"
#include "timenet/verifier.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace chronus;

namespace {

struct Family {
  const char* name;
  std::function<std::optional<net::UpdateInstance>(util::Rng&)> make;
};

struct Outcome {
  int produced = 0;
  int chronus_feasible = 0;
  int chronus_dirty = 0;  // best-effort transitions with congestion
  int or_dirty = 0;
};

Outcome run_family(const Family& fam, int instances, util::Rng& rng) {
  Outcome out;
  for (int i = 0; i < instances; ++i) {
    const auto inst = fam.make(rng);
    if (!inst) continue;
    ++out.produced;
    core::GreedyOptions gopts;
    gopts.record_steps = false;
    gopts.force_complete = true;
    const auto plan = core::greedy_schedule(*inst, gopts);
    out.chronus_feasible += plan.status == core::ScheduleStatus::kFeasible;
    out.chronus_dirty +=
        !timenet::verify_transition(*inst, plan.schedule).congestion_free();
    const auto exec = baselines::plan_and_execute_order_replacement(*inst, rng);
    out.or_dirty +=
        !timenet::verify_transition(*inst, exec.realized).congestion_free();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto instances = static_cast<int>(cli.get_int("instances", 30));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  bench::reject_unknown_flags(cli);

  bench::print_header("Extension", "workload sensitivity across topologies");
  std::printf("%d instances per family, seed=%llu\n\n", instances,
              static_cast<unsigned long long>(seed));

  const net::FatTree ft = net::fat_tree(4, net::Capacity{1.0});
  net::WaxmanOptions wopt;
  wopt.n = 24;
  wopt.capacity = net::Capacity{1.0};  // tight links; slack comes from the 0.5-cap mix
  util::Rng topo_rng(seed);
  const net::Graph wax = net::waxman(wopt, topo_rng);

  const std::vector<Family> families = {
      {"line + permutation (paper §V.B)",
       [](util::Rng& rng) -> std::optional<net::UpdateInstance> {
         net::RandomInstanceOptions opt;
         opt.n = 20;
         return net::random_instance(opt, rng);
       }},
      {"fat-tree k=4, pod-to-pod reroute",
       [&ft](util::Rng& rng) -> std::optional<net::UpdateInstance> {
         const auto& e = ft.edge;
         const auto src = e[rng.index(2)][rng.index(e[0].size())];
         const auto dst = e[2 + rng.index(2)][rng.index(e[0].size())];
         return net::random_reroute(ft.graph, src, dst, net::Demand{1.0}, rng);
       }},
      {"Waxman n=24, shortest-path reroute",
       [&wax](util::Rng& rng) -> std::optional<net::UpdateInstance> {
         const auto src = static_cast<net::NodeId>(rng.index(wax.node_count()));
         auto dst = src;
         while (dst == src) {
           dst = static_cast<net::NodeId>(rng.index(wax.node_count()));
         }
         return net::random_reroute(wax, src, dst, net::Demand{0.5}, rng);
       }},
  };

  util::Table table({"workload", "instances", "CHRONUS feasible %",
                     "CHRONUS congested %", "OR congested %"});
  util::Rng rng(seed + 1);
  for (const Family& fam : families) {
    const Outcome out = run_family(fam, instances, rng);
    const double denom = std::max(out.produced, 1);
    table.add_row({fam.name, std::to_string(out.produced),
                   util::fmt(100.0 * out.chronus_feasible / denom, 1),
                   util::fmt(100.0 * out.chronus_dirty / denom, 1),
                   util::fmt(100.0 * out.or_dirty / denom, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(structured-topology reroutes are far friendlier than the "
              "paper-style permutation detours: most are feasible outright, "
              "and even OR congests less — the orderings still matter, the "
              "magnitudes are workload)\n");
  return 0;
}
