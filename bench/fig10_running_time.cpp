// Fig. 10 — algorithm running time vs. number of switches (1K .. 6K).
//
// Measures the planning time of: CHRONUS (the pure Algorithm 2/3/4
// pipeline, the variant whose complexity the paper reports), OR (the
// round-minimization branch and bound) and OPT (the MUTP branch and
// bound). OR and OPT run under a per-instance deadline — the analogue of
// the paper's 600 s timeout, scaled down so the bench suite stays fast;
// ">= deadline" entries mean the solver did not finish, exactly like the
// paper's missing points beyond 2K/4K switches.
//
// Paper shape to reproduce: CHRONUS completes within seconds even at 6K
// switches while OR and OPT blow past any reasonable budget.
//
//   ./bench/fig10_running_time [--timeout=SEC] [--seed=N] [--max-n=N]
//                              [--repeats=N]
#include "bench_common.hpp"

#include "core/greedy_scheduler.hpp"
#include "opt/mutp_bnb.hpp"
#include "opt/order_bnb.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace chronus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double timeout = cli.get_double("timeout", 2.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto max_n = static_cast<std::size_t>(cli.get_int("max-n", 6000));
  const auto repeats = static_cast<int>(cli.get_int("repeats", 3));
  bench::reject_unknown_flags(cli);

  bench::print_header("Fig. 10", "planning time (seconds)");
  std::printf("deadline=%.1fs per solver run (paper: 600 s), repeats=%d, "
              "seed=%llu\n\n",
              timeout, repeats, static_cast<unsigned long long>(seed));

  util::Table table({"switches", "CHRONUS s", "OR s", "OPT s"});
  util::Rng master(seed);

  for (std::size_t n = 1000; n <= max_n; n += 1000) {
    util::Summary chronus_s, or_s, opt_s;
    bool or_timed_out = false;
    bool opt_timed_out = false;
    for (int r = 0; r < repeats; ++r) {
      util::Rng rng = master.fork(n + static_cast<std::uint64_t>(r));
      const auto inst = bench::random_instance_for(n, rng);

      {
        core::GreedyOptions gopts;
        gopts.guard_with_verifier = false;  // the paper's Algorithm 2
        gopts.record_steps = false;
        gopts.force_complete = true;
        util::Stopwatch sw;
        (void)core::greedy_schedule(inst, gopts);
        chronus_s.add(sw.seconds());
      }
      {
        opt::OrderOptions oopts;
        oopts.timeout_sec = timeout;
        oopts.exact_limit = static_cast<std::size_t>(-1);  // force the B&B
        util::Stopwatch sw;
        const auto res = opt::solve_order_replacement(inst, oopts);
        or_s.add(sw.seconds());
        or_timed_out |= res.timed_out;
      }
      {
        opt::MutpOptions mopts;
        mopts.timeout_sec = timeout;
        util::Stopwatch sw;
        const auto res = opt::solve_mutp(inst, mopts);
        opt_s.add(sw.seconds());
        opt_timed_out |= res.timed_out || !res.proved_optimal;
      }
    }
    const auto cell = [](const util::Summary& s, bool timed_out) {
      return util::fmt(s.mean(), 3) + (timed_out ? " (timeout)" : "");
    };
    table.add_row({std::to_string(n), util::fmt(chronus_s.mean(), 3),
                   cell(or_s, or_timed_out), cell(opt_s, opt_timed_out)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(paper: CHRONUS < 6 s at 6K switches; OR and OPT exceed "
              "600 s beyond 2K-4K)\n");
  return 0;
}
