// Extension — service robustness under chaos campaigns (no paper
// counterpart; the paper assumes a faithful data plane, this bench measures
// how the online service degrades when the plane misbehaves).
//
// Sweeps chaos intensity (quiet / mild / storm, compiled programmatically
// from sim/chaos.hpp phases) crossed with the graceful-degradation ladder
// off and on, and reports per point: completions, sheds, watchdog
// cancellations, injected faults, executor retries, health transitions and
// p95 latency. The quiet row must show 0 violations; the mild/storm rows
// deliberately push past the resilient executor's absorption envelope, so
// their violations column charts where consistency starts to cost (the
// shipped soak scenarios in testdata/scenarios/ stay inside the envelope
// and are held to zero violations by `ctest -L chaos`).
//
//   ./bench/ext_chaos [--requests=N] [--workers=N] [--seed=N]
//                     [--json=PATH] [--metrics=PATH]
#include "bench_common.hpp"

#include "service/service.hpp"
#include "service/workload.hpp"
#include "sim/chaos.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace chronus;

namespace {

/// The swept campaigns. Intensity 0 is the quiet control; the storm stacks
/// a drop/reject burst with a flap against a straggler/skew tail (kept in
/// separate phases — see testdata/scenarios/storm.scn for why).
sim::ChaosScenario make_scenario(int intensity) {
  sim::ChaosScenario s;
  s.seed = 21;
  if (intensity == 0) {
    s.name = "quiet";
    return s;
  }
  s.name = intensity == 1 ? "mild" : "storm";
  const double scale = intensity == 1 ? 0.5 : 1.0;

  sim::ChaosPhase burst;
  burst.name = "burst";
  burst.from = 0;
  burst.until = 2 * sim::kSecond;
  burst.drop_rate = 0.06 * scale;
  burst.reject_rate = 0.05 * scale;
  burst.arrival_surge = intensity == 1 ? 1.5 : 2.0;
  if (intensity > 1) {
    burst.flaps.push_back({/*sw=*/2, /*period=*/400 * sim::kMillisecond,
                           /*down=*/80 * sim::kMillisecond, /*offset=*/0});
  }

  sim::ChaosPhase tail;
  tail.name = "tail";
  tail.from = 2 * sim::kSecond;
  tail.until = 5 * sim::kSecond;
  tail.straggler_rate = 0.10 * scale;
  tail.straggler_multiplier = intensity == 1 ? 4.0 : 6.0;
  tail.skew_begin = 100;
  tail.skew_end = 400;

  s.phases = {burst, tail};
  s.validate();
  return s;
}

service::DegradationPolicy make_ladder() {
  service::DegradationPolicy p;
  p.latency_slo = 30 * sim::kSecond;
  p.greedy_enter = 6;
  p.greedy_exit = 3;
  p.defer_enter = 10;
  p.defer_exit = 5;
  p.shed_enter = 14;
  p.shed_exit = 8;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto requests = static_cast<int>(cli.get_int("requests", 60));
  const auto workers = static_cast<int>(cli.get_int("workers", 4));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  auto json = bench::json_from_cli(cli, "ext_chaos");
  auto metrics = bench::metrics_from_cli(cli, "ext_chaos");
  bench::reject_unknown_flags(cli);
  if (json) {
    json->meta("requests", static_cast<std::int64_t>(requests));
    json->meta("workers", static_cast<std::int64_t>(workers));
    json->meta("seed", static_cast<std::int64_t>(seed));
  }

  bench::print_header("Extension", "update service under chaos campaigns");
  std::printf("%d requests per point, %d workers, seed=%llu\n\n", requests,
              workers, static_cast<unsigned long long>(seed));

  util::Table table({"scenario", "ladder", "done", "shed", "watchdog",
                     "faults", "retries", "health", "p95 ms", "violations"});
  for (const int intensity : {0, 1, 2}) {
    const sim::ChaosScenario scenario = make_scenario(intensity);
    for (const bool ladder : {false, true}) {
      service::WorkloadOptions wopt;
      wopt.requests = requests;
      wopt.arrival_rate_hz = 30.0;
      wopt.pairs = 6;
      wopt.conflict_density = 0.4;
      wopt.seed = seed;
      wopt.chaos = &scenario;
      const service::ServiceTrace trace = service::make_workload(wopt);

      service::ServiceOptions sopt;
      sopt.workers = workers;
      sopt.seed = seed;
      sopt.chaos = &scenario;
      if (ladder) sopt.degradation = make_ladder();
      service::UpdateService svc(trace.graph, sopt);
      const service::ServiceReport rep = svc.run(trace);

      std::uint64_t retries = 0;
      for (const auto& rec : rep.records) retries += rec.exec_retries;
      table.add_row({scenario.name, ladder ? "on" : "off",
                     std::to_string(rep.completed), std::to_string(rep.shed),
                     std::to_string(rep.watchdog_cancelled),
                     std::to_string(rep.faults_injected),
                     std::to_string(retries),
                     std::to_string(rep.health_log.size()),
                     util::fmt(rep.latency_percentile(95) / 1000.0, 0),
                     std::to_string(rep.violations)});
      if (json) {
        json->begin_row();
        json->field("scenario", scenario.name);
        json->field("ladder", ladder);
        json->field("completed", static_cast<std::int64_t>(rep.completed));
        json->field("shed", static_cast<std::int64_t>(rep.shed));
        json->field("watchdog_cancelled",
                    static_cast<std::int64_t>(rep.watchdog_cancelled));
        json->field("faults_injected",
                    static_cast<std::int64_t>(rep.faults_injected));
        json->field("exec_retries", static_cast<std::int64_t>(retries));
        json->field("health_transitions",
                    static_cast<std::int64_t>(rep.health_log.size()));
        json->field("latency_p95_us", rep.latency_percentile(95));
        json->field("violations", static_cast<std::int64_t>(rep.violations));
        json->end_row();
      }
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(quiet rows must stay violation-free; mild/storm sweep past "
              "the executor's absorption envelope on purpose, and the ladder "
              "trades completions for bounded queues — sheds and watchdog "
              "fires replace unbounded tail latency)\n");
  return 0;
}
