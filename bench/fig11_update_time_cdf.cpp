// Fig. 11 — CDF of the total update time at 40 switches.
//
// For random instances with n = 40 switches, records the number of time
// steps (|T|, the objective of program (3)) that CHRONUS and OPT need.
// Instances where no congestion- and loop-free schedule exists are skipped,
// as in the paper (the CDF is over completed updates). OPT runs under a
// per-instance deadline; when it expires the incumbent is used, so the OPT
// curve is an upper bound on the true optimum (flagged in the output).
//
// Paper shape to reproduce: CHRONUS's update times sit within a couple of
// steps of OPT ("near optimal"), most updates finishing within ~15 units
// vs OPT's ~13.
//
//   ./bench/fig11_update_time_cdf [--instances=N] [--n=N] [--seed=N]
//                                 [--opt-timeout=SEC]
#include "bench_common.hpp"

#include "core/greedy_scheduler.hpp"
#include "opt/mutp_bnb.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace chronus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto instances = static_cast<int>(cli.get_int("instances", 40));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 40));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const double opt_timeout = cli.get_double("opt-timeout", 0.25);
  bench::reject_unknown_flags(cli);

  bench::print_header("Fig. 11", "CDF of update time (time units)");
  std::printf("n=%zu switches, instances=%d, OPT timeout=%.2fs, seed=%llu\n\n",
              n, instances, opt_timeout,
              static_cast<unsigned long long>(seed));

  util::Rng rng(seed);
  std::vector<double> chronus_times;
  std::vector<double> opt_times;
  int skipped = 0;
  int opt_unproved = 0;
  for (int i = 0; i < instances; ++i) {
    const auto inst = bench::random_instance_for(n, rng);
    core::GreedyOptions gopts;
    gopts.record_steps = false;
    const auto greedy = core::greedy_schedule(inst, gopts);
    if (!greedy.feasible()) {
      ++skipped;
      continue;
    }
    opt::MutpOptions mopts;
    mopts.timeout_sec = opt_timeout;
    const auto exact = opt::solve_mutp(inst, mopts);
    if (!exact.feasible()) {
      ++skipped;
      continue;
    }
    opt_unproved += !exact.proved_optimal;
    chronus_times.push_back(static_cast<double>(greedy.schedule.step_span()));
    opt_times.push_back(static_cast<double>(exact.makespan));
  }

  const util::Cdf chronus_cdf(chronus_times);
  const util::Cdf opt_cdf(opt_times);
  std::printf("%d feasible instances (%d infeasible skipped, OPT incumbent "
              "not proved optimal on %d)\n\n",
              static_cast<int>(chronus_times.size()), skipped, opt_unproved);

  util::Table table({"time units", "CHRONUS CDF", "OPT CDF"});
  double max_t = 0;
  for (const double t : chronus_times) max_t = std::max(max_t, t);
  for (const double t : opt_times) max_t = std::max(max_t, t);
  for (double t = 1; t <= max_t; ++t) {
    table.add_row({util::fmt(t, 0), util::fmt(chronus_cdf.at(t), 2),
                   util::fmt(opt_cdf.at(t), 2)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nmedians: CHRONUS %.0f vs OPT %.0f; p90: %.0f vs %.0f\n",
              chronus_cdf.quantile(0.5), opt_cdf.quantile(0.5),
              chronus_cdf.quantile(0.9), opt_cdf.quantile(0.9));
  std::printf("(paper: CHRONUS near-optimal — most updates within ~15 units "
              "vs OPT ~13)\n");
  return 0;
}
