// Extension — towards the approximation algorithms the paper leaves as
// future work: how much update time do smarter head orders buy over the
// paper's greedy, and how close do they get to the exact optimum?
//
// Per instance family: feasibility rate and mean makespan (|T|) of the
// id-ordered guarded greedy (the paper's order), the longest-chain-first
// greedy, the best of R randomized restarts, and OPT under a budget
// (an upper bound on the true optimum when the budget expires).
//
//   ./bench/ext_heuristics [--instances=N] [--n=N] [--seed=N]
//                          [--restarts=N] [--opt-timeout=SEC]
#include "bench_common.hpp"

#include "core/heuristics.hpp"
#include "core/greedy_scheduler.hpp"
#include "opt/mutp_bnb.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace chronus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto instances = static_cast<int>(cli.get_int("instances", 30));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 16));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto restarts = static_cast<int>(cli.get_int("restarts", 16));
  const double opt_timeout = cli.get_double("opt-timeout", 0.2);
  bench::reject_unknown_flags(cli);

  bench::print_header("Extension", "heuristic schedulers vs greedy vs OPT");
  std::printf("n=%zu, %d instances, %d restarts, OPT budget %.2fs, "
              "seed=%llu\n\n",
              n, instances, restarts, opt_timeout,
              static_cast<unsigned long long>(seed));

  struct Row {
    int feasible = 0;
    util::Summary span;
  };
  Row greedy, chain, restart, tightened, exact;

  util::Rng rng(seed);
  int common = 0;
  double common_greedy = 0, common_chain = 0, common_restart = 0,
         common_exact = 0;
  for (int i = 0; i < instances; ++i) {
    const auto inst = bench::random_instance_for(n, rng);

    core::GreedyOptions gopts;
    gopts.record_steps = false;
    const auto g = core::greedy_schedule(inst, gopts);
    const auto c = core::chain_priority_schedule(inst);
    util::Rng seeds = rng.fork(static_cast<std::uint64_t>(i));
    core::RestartOptions ro;
    ro.restarts = restarts;
    const auto r = core::randomized_restart_schedule(inst, seeds, ro);
    opt::MutpOptions mo;
    mo.timeout_sec = opt_timeout;
    const auto o = opt::solve_mutp(inst, mo);

    const auto tally = [](Row& row, bool ok, std::int64_t span) {
      if (ok) {
        ++row.feasible;
        row.span.add(static_cast<double>(span));
      }
    };
    tally(greedy, g.feasible(), g.schedule.step_span());
    tally(chain, c.feasible(), c.schedule.step_span());
    tally(restart, r.feasible(), r.schedule.step_span());
    if (g.feasible()) {
      const auto tight = core::tighten_schedule(inst, g.schedule);
      tally(tightened, true, tight.step_span());
    }
    tally(exact, o.feasible(), o.makespan);

    if (g.feasible() && c.feasible() && r.feasible() && o.feasible()) {
      ++common;
      common_greedy += static_cast<double>(g.schedule.step_span());
      common_chain += static_cast<double>(c.schedule.step_span());
      common_restart += static_cast<double>(r.schedule.step_span());
      common_exact += static_cast<double>(o.makespan);
    }
  }

  util::Table table({"scheduler", "feasible %", "mean |T| (feasible)",
                     "mean |T| (common)"});
  const auto row = [&](const char* name, const Row& x, double common_mean) {
    table.add_row({name, util::fmt(100.0 * x.feasible / instances, 1),
                   x.span.empty() ? "-" : util::fmt(x.span.mean(), 1),
                   common && common_mean > 0 ? util::fmt(common_mean / common, 1)
                                             : "-"});
  };
  row("greedy (paper order)", greedy, common_greedy);
  row("longest-chain-first", chain, common_chain);
  row("randomized restarts", restart, common_restart);
  row("greedy + tighten", tightened, 0.0);
  row("OPT (budgeted)", exact, common_exact);
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(the 'common' column compares makespans on the instances "
              "every method solved; restarts recover instances the "
              "deterministic orders miss and close most of the gap to OPT)\n");
  return 0;
}
