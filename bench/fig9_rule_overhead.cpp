// Fig. 9 — number of forwarding rules: Chronus vs two-phase (TP).
//
// Workload: random update instances with n = 10..60 switches and (as in
// the Mininet setup, Table II) 10 traffic aggregates plus one host entry
// per switch at the edge. The metric is the number of rules the update
// itself must install, modify or delete: Chronus modifies one action per
// rerouted switch per flow in place, while TP installs a full new rule
// generation, re-stamps the ingress entries and deletes the old generation.
// The box columns give the five-number summary over the instances, like
// the paper's box plot; TP is reported as its mean (the blue dot).
//
// Paper shape to reproduce: ~596 (TP) vs ~190 (Chronus) at 30 switches —
// over 60% of the rule operations saved, with the gap growing in n.
//
//   ./bench/fig9_rule_overhead [--instances=N] [--seed=N] [--flows=N]
//                              [--max-n=N]
#include "bench_common.hpp"

#include "baselines/two_phase.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace chronus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto instances = static_cast<int>(cli.get_int("instances", 100));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto flows = static_cast<int>(cli.get_int("flows", 10));
  const auto max_n = static_cast<std::size_t>(cli.get_int("max-n", 60));
  bench::reject_unknown_flags(cli);

  bench::print_header("Fig. 9", "rule operations per update, CHRONUS vs TP");
  std::printf("instances=%d, flows=%d, hosts=n, seed=%llu\n\n", instances,
              flows, static_cast<unsigned long long>(seed));

  util::Table table({"switches", "CHR min", "CHR q1", "CHR med", "CHR q3",
                     "CHR max", "TP mean", "saved %"});
  util::Rng master(seed);

  for (std::size_t n = 10; n <= max_n; n += 10) {
    util::Rng rng = master.fork(n);
    util::Summary chronus;
    util::Summary tp;
    for (int i = 0; i < instances; ++i) {
      const auto inst = bench::random_instance_for(n, rng);
      baselines::TwoPhaseOptions opts;
      opts.flows = flows;
      const auto rep = baselines::two_phase_update(inst, opts);
      chronus.add(static_cast<double>(rep.rules_touched_chronus));
      tp.add(static_cast<double>(rep.rules_touched_tp));
    }
    const auto box = chronus.box();
    table.add_row({std::to_string(n), util::fmt(box.min, 0),
                   util::fmt(box.q1, 0), util::fmt(box.median, 0),
                   util::fmt(box.q3, 0), util::fmt(box.max, 0),
                   util::fmt(tp.mean(), 0),
                   util::fmt(100.0 * (1.0 - chronus.mean() / tp.mean()), 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(paper: TP ~596 vs CHRONUS ~190 at 30 switches; >60%% of "
              "rules saved)\n");
  return 0;
}
