// Ablation — how much timing accuracy Chronus actually needs (the Time4
// motivation). The Fig. 6 scenario is replayed with the clock-sync error of
// the timed FlowMods swept from microseconds (Time4/PTP territory) to
// hundreds of milliseconds (NTP-or-worse); per-second counters then show at
// which accuracy the timed schedule starts bleeding congestion.
//
// Control-plane faults can be layered on top (--drop, --straggler) and the
// self-healing executor swapped in (--resilient) to see how much of the
// degradation is timing error versus lost/late FlowMods.
//
//   ./bench/ablation_timing_error [--seeds=N] [--delay-ms=N]
//       [--drop=P] [--straggler=P] [--resilient]
#include "bench_common.hpp"

#include <algorithm>

#include "sim/resilient_executor.hpp"
#include "sim/traffic.hpp"
#include "sim/updaters.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace chronus;

namespace {

net::UpdateInstance fig6_instance() {
  net::Graph g;
  for (int i = 1; i <= 10; ++i) g.add_node("v" + std::to_string(i));
  for (net::NodeId v = 0; v + 1 < 10; ++v) g.add_link(v, v + 1, net::Capacity{1.0}, 1);
  g.add_link(0, 3, net::Capacity{1.0}, 1);
  g.add_link(3, 2, net::Capacity{1.0}, 1);
  g.add_link(2, 1, net::Capacity{1.0}, 1);
  g.add_link(1, 9, net::Capacity{1.0}, 1);
  return net::UpdateInstance::from_paths(
      std::move(g), net::Path{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
      net::Path{0, 3, 2, 1, 9}, net::Demand{1.0});
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto seeds = static_cast<int>(cli.get_int("seeds", 5));
  const sim::SimTime delay_unit =
      cli.get_int("delay-ms", 300) * sim::kMillisecond;
  sim::FaultModel faults;
  faults.drop_rate = cli.get_double("drop", 0.0);
  faults.straggler_rate = cli.get_double("straggler", 0.0);
  const bool resilient = cli.get_bool("resilient", false);
  bench::reject_unknown_flags(cli);

  bench::print_header("Ablation", "clock-sync error vs transient congestion");
  std::printf("Fig. 6 scenario, %d seeds per point, link delay %lld ms\n",
              seeds, static_cast<long long>(delay_unit / sim::kMillisecond));
  std::printf("faults: drop %.0f%%, stragglers %.0f%% (10x), executor: %s\n\n",
              faults.drop_rate * 100, faults.straggler_rate * 100,
              resilient ? "resilient" : "naive");

  const auto inst = fig6_instance();
  const sim::SimTime errors[] = {1,
                                 100,
                                 sim::kMillisecond,
                                 10 * sim::kMillisecond,
                                 100 * sim::kMillisecond,
                                 300 * sim::kMillisecond};

  util::Table table({"sync error", "dirty runs", "loop events", "peak Mbps",
                     "congested ms (mean)"});
  for (const sim::SimTime err : errors) {
    int dirty_runs = 0;
    int loop_events = 0;
    double peak = 0.0;
    double over_ms = 0.0;
    for (int s = 0; s < seeds; ++s) {
      sim::Network network(inst.graph(), delay_unit, 500e6);
      sim::EventQueue eq;
      util::Rng rng(900 + static_cast<std::uint64_t>(s));
      sim::ControlChannelModel model;
      model.sync_error_stddev = err;
      sim::Controller ctrl(eq, network, rng, model);
      sim::FaultInjector inj(faults, 700 + static_cast<std::uint64_t>(s));
      if (faults.enabled()) ctrl.attach_fault_injector(&inj);
      sim::SimFlowSpec spec;
      spec.rate_bps = 500e6;
      sim::install_initial_rules(ctrl, inst, spec);
      const sim::SimTime t0 = 5 * sim::kSecond + 7 * sim::kMillisecond;
      if (resilient) {
        sim::ResilientExecutor exec(ctrl);
        exec.run_chronus(inst, spec, t0, delay_unit);
      } else {
        sim::run_chronus_update(ctrl, inst, spec, t0, delay_unit);
      }
      ctrl.flush();

      sim::TrafficFlow flow;
      flow.header.dst = spec.dst_prefix + "1";
      flow.header.in_port = sim::kHostPort;
      flow.ingress = inst.source();
      flow.rate_bps = spec.rate_bps;
      sim::TraceOptions topts;
      topts.t_begin = 0;
      topts.t_end = 25 * sim::kSecond;
      topts.quantum = 5 * sim::kMillisecond;
      const auto rep = trace_traffic(network, {flow}, topts);

      dirty_runs += !rep.congestion.empty() || !rep.loops.empty() ||
                    !rep.drops.empty();
      loop_events += static_cast<int>(rep.loops.size());
      for (const auto& c : rep.congestion) {
        peak = std::max(peak, c.peak_bps / 1e6);
        over_ms += static_cast<double>(c.to - c.from) / sim::kMillisecond;
      }
    }
    std::string label = err >= sim::kMillisecond
                            ? std::to_string(err / sim::kMillisecond) + " ms"
                            : std::to_string(err) + " us";
    table.add_row({label,
                   std::to_string(dirty_runs) + "/" + std::to_string(seeds),
                   std::to_string(loop_events), util::fmt(peak, 1),
                   util::fmt(over_ms / seeds, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(microsecond-accurate scheduling keeps the timed plan "
              "congestion-free; once the error approaches the link delay "
              "the plan degenerates towards unsynchronized behaviour — the "
              "premise of building on Time4)\n");
  return 0;
}
