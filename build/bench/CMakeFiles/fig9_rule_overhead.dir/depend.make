# Empty dependencies file for fig9_rule_overhead.
# This may be replaced when dependencies are built.
