file(REMOVE_RECURSE
  "CMakeFiles/fig9_rule_overhead.dir/fig9_rule_overhead.cpp.o"
  "CMakeFiles/fig9_rule_overhead.dir/fig9_rule_overhead.cpp.o.d"
  "fig9_rule_overhead"
  "fig9_rule_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_rule_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
