# Empty compiler generated dependencies file for ablation_timing_error.
# This may be replaced when dependencies are built.
