file(REMOVE_RECURSE
  "CMakeFiles/ablation_timing_error.dir/ablation_timing_error.cpp.o"
  "CMakeFiles/ablation_timing_error.dir/ablation_timing_error.cpp.o.d"
  "ablation_timing_error"
  "ablation_timing_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timing_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
