file(REMOVE_RECURSE
  "CMakeFiles/fig8_congested_links.dir/fig8_congested_links.cpp.o"
  "CMakeFiles/fig8_congested_links.dir/fig8_congested_links.cpp.o.d"
  "fig8_congested_links"
  "fig8_congested_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_congested_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
