# Empty compiler generated dependencies file for fig8_congested_links.
# This may be replaced when dependencies are built.
