
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_bandwidth.cpp" "bench/CMakeFiles/fig6_bandwidth.dir/fig6_bandwidth.cpp.o" "gcc" "bench/CMakeFiles/fig6_bandwidth.dir/fig6_bandwidth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/chronus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/chronus_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/chronus_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/chronus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/timenet/CMakeFiles/chronus_timenet.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/chronus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/chronus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
