file(REMOVE_RECURSE
  "CMakeFiles/ext_heuristics.dir/ext_heuristics.cpp.o"
  "CMakeFiles/ext_heuristics.dir/ext_heuristics.cpp.o.d"
  "ext_heuristics"
  "ext_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
