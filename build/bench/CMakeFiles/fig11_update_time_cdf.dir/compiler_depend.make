# Empty compiler generated dependencies file for fig11_update_time_cdf.
# This may be replaced when dependencies are built.
