file(REMOVE_RECURSE
  "CMakeFiles/ablation_greedy_variants.dir/ablation_greedy_variants.cpp.o"
  "CMakeFiles/ablation_greedy_variants.dir/ablation_greedy_variants.cpp.o.d"
  "ablation_greedy_variants"
  "ablation_greedy_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_greedy_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
