# Empty compiler generated dependencies file for ablation_greedy_variants.
# This may be replaced when dependencies are built.
