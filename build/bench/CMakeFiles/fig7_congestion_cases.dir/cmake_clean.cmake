file(REMOVE_RECURSE
  "CMakeFiles/fig7_congestion_cases.dir/fig7_congestion_cases.cpp.o"
  "CMakeFiles/fig7_congestion_cases.dir/fig7_congestion_cases.cpp.o.d"
  "fig7_congestion_cases"
  "fig7_congestion_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_congestion_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
