# Empty dependencies file for fig7_congestion_cases.
# This may be replaced when dependencies are built.
