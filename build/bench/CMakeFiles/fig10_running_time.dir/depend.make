# Empty dependencies file for fig10_running_time.
# This may be replaced when dependencies are built.
