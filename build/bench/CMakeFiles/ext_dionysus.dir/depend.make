# Empty dependencies file for ext_dionysus.
# This may be replaced when dependencies are built.
