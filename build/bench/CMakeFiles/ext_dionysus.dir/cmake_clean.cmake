file(REMOVE_RECURSE
  "CMakeFiles/ext_dionysus.dir/ext_dionysus.cpp.o"
  "CMakeFiles/ext_dionysus.dir/ext_dionysus.cpp.o.d"
  "ext_dionysus"
  "ext_dionysus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dionysus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
