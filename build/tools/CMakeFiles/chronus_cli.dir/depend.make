# Empty dependencies file for chronus_cli.
# This may be replaced when dependencies are built.
