file(REMOVE_RECURSE
  "CMakeFiles/chronus_cli.dir/chronus_cli.cpp.o"
  "CMakeFiles/chronus_cli.dir/chronus_cli.cpp.o.d"
  "chronus_cli"
  "chronus_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronus_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
