file(REMOVE_RECURSE
  "libchronus_opt.a"
)
