# Empty compiler generated dependencies file for chronus_opt.
# This may be replaced when dependencies are built.
