file(REMOVE_RECURSE
  "CMakeFiles/chronus_opt.dir/mutp_bnb.cpp.o"
  "CMakeFiles/chronus_opt.dir/mutp_bnb.cpp.o.d"
  "CMakeFiles/chronus_opt.dir/order_bnb.cpp.o"
  "CMakeFiles/chronus_opt.dir/order_bnb.cpp.o.d"
  "libchronus_opt.a"
  "libchronus_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronus_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
