# Empty compiler generated dependencies file for chronus_io.
# This may be replaced when dependencies are built.
