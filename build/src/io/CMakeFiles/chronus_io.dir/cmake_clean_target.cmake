file(REMOVE_RECURSE
  "libchronus_io.a"
)
