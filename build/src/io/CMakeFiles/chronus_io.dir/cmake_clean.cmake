file(REMOVE_RECURSE
  "CMakeFiles/chronus_io.dir/dot.cpp.o"
  "CMakeFiles/chronus_io.dir/dot.cpp.o.d"
  "CMakeFiles/chronus_io.dir/instance_io.cpp.o"
  "CMakeFiles/chronus_io.dir/instance_io.cpp.o.d"
  "libchronus_io.a"
  "libchronus_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronus_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
