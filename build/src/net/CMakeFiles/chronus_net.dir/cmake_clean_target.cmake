file(REMOVE_RECURSE
  "libchronus_net.a"
)
