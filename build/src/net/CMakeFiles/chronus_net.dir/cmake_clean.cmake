file(REMOVE_RECURSE
  "CMakeFiles/chronus_net.dir/generators.cpp.o"
  "CMakeFiles/chronus_net.dir/generators.cpp.o.d"
  "CMakeFiles/chronus_net.dir/graph.cpp.o"
  "CMakeFiles/chronus_net.dir/graph.cpp.o.d"
  "CMakeFiles/chronus_net.dir/instance.cpp.o"
  "CMakeFiles/chronus_net.dir/instance.cpp.o.d"
  "CMakeFiles/chronus_net.dir/path.cpp.o"
  "CMakeFiles/chronus_net.dir/path.cpp.o.d"
  "CMakeFiles/chronus_net.dir/topologies.cpp.o"
  "CMakeFiles/chronus_net.dir/topologies.cpp.o.d"
  "libchronus_net.a"
  "libchronus_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronus_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
