# Empty compiler generated dependencies file for chronus_net.
# This may be replaced when dependencies are built.
