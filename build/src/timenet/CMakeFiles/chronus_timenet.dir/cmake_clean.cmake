file(REMOVE_RECURSE
  "CMakeFiles/chronus_timenet.dir/path_enum.cpp.o"
  "CMakeFiles/chronus_timenet.dir/path_enum.cpp.o.d"
  "CMakeFiles/chronus_timenet.dir/time_extended.cpp.o"
  "CMakeFiles/chronus_timenet.dir/time_extended.cpp.o.d"
  "CMakeFiles/chronus_timenet.dir/trajectory.cpp.o"
  "CMakeFiles/chronus_timenet.dir/trajectory.cpp.o.d"
  "CMakeFiles/chronus_timenet.dir/transition_state.cpp.o"
  "CMakeFiles/chronus_timenet.dir/transition_state.cpp.o.d"
  "CMakeFiles/chronus_timenet.dir/verifier.cpp.o"
  "CMakeFiles/chronus_timenet.dir/verifier.cpp.o.d"
  "libchronus_timenet.a"
  "libchronus_timenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronus_timenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
