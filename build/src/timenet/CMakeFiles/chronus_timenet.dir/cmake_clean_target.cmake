file(REMOVE_RECURSE
  "libchronus_timenet.a"
)
