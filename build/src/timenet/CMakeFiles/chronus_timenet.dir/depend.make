# Empty dependencies file for chronus_timenet.
# This may be replaced when dependencies are built.
