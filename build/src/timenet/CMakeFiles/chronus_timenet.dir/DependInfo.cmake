
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timenet/path_enum.cpp" "src/timenet/CMakeFiles/chronus_timenet.dir/path_enum.cpp.o" "gcc" "src/timenet/CMakeFiles/chronus_timenet.dir/path_enum.cpp.o.d"
  "/root/repo/src/timenet/time_extended.cpp" "src/timenet/CMakeFiles/chronus_timenet.dir/time_extended.cpp.o" "gcc" "src/timenet/CMakeFiles/chronus_timenet.dir/time_extended.cpp.o.d"
  "/root/repo/src/timenet/trajectory.cpp" "src/timenet/CMakeFiles/chronus_timenet.dir/trajectory.cpp.o" "gcc" "src/timenet/CMakeFiles/chronus_timenet.dir/trajectory.cpp.o.d"
  "/root/repo/src/timenet/transition_state.cpp" "src/timenet/CMakeFiles/chronus_timenet.dir/transition_state.cpp.o" "gcc" "src/timenet/CMakeFiles/chronus_timenet.dir/transition_state.cpp.o.d"
  "/root/repo/src/timenet/verifier.cpp" "src/timenet/CMakeFiles/chronus_timenet.dir/verifier.cpp.o" "gcc" "src/timenet/CMakeFiles/chronus_timenet.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/chronus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/chronus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
