file(REMOVE_RECURSE
  "libchronus_core.a"
)
