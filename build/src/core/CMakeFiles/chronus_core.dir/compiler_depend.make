# Empty compiler generated dependencies file for chronus_core.
# This may be replaced when dependencies are built.
