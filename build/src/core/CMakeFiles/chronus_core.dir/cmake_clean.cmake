file(REMOVE_RECURSE
  "CMakeFiles/chronus_core.dir/config.cpp.o"
  "CMakeFiles/chronus_core.dir/config.cpp.o.d"
  "CMakeFiles/chronus_core.dir/dependency.cpp.o"
  "CMakeFiles/chronus_core.dir/dependency.cpp.o.d"
  "CMakeFiles/chronus_core.dir/feasibility_tree.cpp.o"
  "CMakeFiles/chronus_core.dir/feasibility_tree.cpp.o.d"
  "CMakeFiles/chronus_core.dir/greedy_scheduler.cpp.o"
  "CMakeFiles/chronus_core.dir/greedy_scheduler.cpp.o.d"
  "CMakeFiles/chronus_core.dir/heuristics.cpp.o"
  "CMakeFiles/chronus_core.dir/heuristics.cpp.o.d"
  "CMakeFiles/chronus_core.dir/loop_check.cpp.o"
  "CMakeFiles/chronus_core.dir/loop_check.cpp.o.d"
  "CMakeFiles/chronus_core.dir/multi_flow.cpp.o"
  "CMakeFiles/chronus_core.dir/multi_flow.cpp.o.d"
  "libchronus_core.a"
  "libchronus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
