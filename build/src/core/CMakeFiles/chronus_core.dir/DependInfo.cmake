
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/chronus_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/chronus_core.dir/config.cpp.o.d"
  "/root/repo/src/core/dependency.cpp" "src/core/CMakeFiles/chronus_core.dir/dependency.cpp.o" "gcc" "src/core/CMakeFiles/chronus_core.dir/dependency.cpp.o.d"
  "/root/repo/src/core/feasibility_tree.cpp" "src/core/CMakeFiles/chronus_core.dir/feasibility_tree.cpp.o" "gcc" "src/core/CMakeFiles/chronus_core.dir/feasibility_tree.cpp.o.d"
  "/root/repo/src/core/greedy_scheduler.cpp" "src/core/CMakeFiles/chronus_core.dir/greedy_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/chronus_core.dir/greedy_scheduler.cpp.o.d"
  "/root/repo/src/core/heuristics.cpp" "src/core/CMakeFiles/chronus_core.dir/heuristics.cpp.o" "gcc" "src/core/CMakeFiles/chronus_core.dir/heuristics.cpp.o.d"
  "/root/repo/src/core/loop_check.cpp" "src/core/CMakeFiles/chronus_core.dir/loop_check.cpp.o" "gcc" "src/core/CMakeFiles/chronus_core.dir/loop_check.cpp.o.d"
  "/root/repo/src/core/multi_flow.cpp" "src/core/CMakeFiles/chronus_core.dir/multi_flow.cpp.o" "gcc" "src/core/CMakeFiles/chronus_core.dir/multi_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timenet/CMakeFiles/chronus_timenet.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/chronus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/chronus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
