file(REMOVE_RECURSE
  "libchronus_sim.a"
)
