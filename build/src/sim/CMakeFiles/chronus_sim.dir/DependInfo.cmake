
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/controller.cpp" "src/sim/CMakeFiles/chronus_sim.dir/controller.cpp.o" "gcc" "src/sim/CMakeFiles/chronus_sim.dir/controller.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/chronus_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/chronus_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/flow_table.cpp" "src/sim/CMakeFiles/chronus_sim.dir/flow_table.cpp.o" "gcc" "src/sim/CMakeFiles/chronus_sim.dir/flow_table.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/chronus_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/chronus_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/queue.cpp" "src/sim/CMakeFiles/chronus_sim.dir/queue.cpp.o" "gcc" "src/sim/CMakeFiles/chronus_sim.dir/queue.cpp.o.d"
  "/root/repo/src/sim/switch.cpp" "src/sim/CMakeFiles/chronus_sim.dir/switch.cpp.o" "gcc" "src/sim/CMakeFiles/chronus_sim.dir/switch.cpp.o.d"
  "/root/repo/src/sim/traffic.cpp" "src/sim/CMakeFiles/chronus_sim.dir/traffic.cpp.o" "gcc" "src/sim/CMakeFiles/chronus_sim.dir/traffic.cpp.o.d"
  "/root/repo/src/sim/updaters.cpp" "src/sim/CMakeFiles/chronus_sim.dir/updaters.cpp.o" "gcc" "src/sim/CMakeFiles/chronus_sim.dir/updaters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/chronus_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/chronus_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/chronus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/timenet/CMakeFiles/chronus_timenet.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/chronus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/chronus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
