file(REMOVE_RECURSE
  "CMakeFiles/chronus_sim.dir/controller.cpp.o"
  "CMakeFiles/chronus_sim.dir/controller.cpp.o.d"
  "CMakeFiles/chronus_sim.dir/event_queue.cpp.o"
  "CMakeFiles/chronus_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/chronus_sim.dir/flow_table.cpp.o"
  "CMakeFiles/chronus_sim.dir/flow_table.cpp.o.d"
  "CMakeFiles/chronus_sim.dir/network.cpp.o"
  "CMakeFiles/chronus_sim.dir/network.cpp.o.d"
  "CMakeFiles/chronus_sim.dir/queue.cpp.o"
  "CMakeFiles/chronus_sim.dir/queue.cpp.o.d"
  "CMakeFiles/chronus_sim.dir/switch.cpp.o"
  "CMakeFiles/chronus_sim.dir/switch.cpp.o.d"
  "CMakeFiles/chronus_sim.dir/traffic.cpp.o"
  "CMakeFiles/chronus_sim.dir/traffic.cpp.o.d"
  "CMakeFiles/chronus_sim.dir/updaters.cpp.o"
  "CMakeFiles/chronus_sim.dir/updaters.cpp.o.d"
  "libchronus_sim.a"
  "libchronus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
