# Empty compiler generated dependencies file for chronus_sim.
# This may be replaced when dependencies are built.
