file(REMOVE_RECURSE
  "CMakeFiles/chronus_baselines.dir/dionysus.cpp.o"
  "CMakeFiles/chronus_baselines.dir/dionysus.cpp.o.d"
  "CMakeFiles/chronus_baselines.dir/order_replacement.cpp.o"
  "CMakeFiles/chronus_baselines.dir/order_replacement.cpp.o.d"
  "CMakeFiles/chronus_baselines.dir/two_phase.cpp.o"
  "CMakeFiles/chronus_baselines.dir/two_phase.cpp.o.d"
  "libchronus_baselines.a"
  "libchronus_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronus_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
