file(REMOVE_RECURSE
  "libchronus_baselines.a"
)
