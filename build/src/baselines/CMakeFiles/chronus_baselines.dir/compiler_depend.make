# Empty compiler generated dependencies file for chronus_baselines.
# This may be replaced when dependencies are built.
