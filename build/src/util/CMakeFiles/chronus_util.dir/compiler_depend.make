# Empty compiler generated dependencies file for chronus_util.
# This may be replaced when dependencies are built.
