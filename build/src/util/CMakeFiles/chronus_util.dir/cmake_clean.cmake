file(REMOVE_RECURSE
  "CMakeFiles/chronus_util.dir/cli.cpp.o"
  "CMakeFiles/chronus_util.dir/cli.cpp.o.d"
  "CMakeFiles/chronus_util.dir/rng.cpp.o"
  "CMakeFiles/chronus_util.dir/rng.cpp.o.d"
  "CMakeFiles/chronus_util.dir/stats.cpp.o"
  "CMakeFiles/chronus_util.dir/stats.cpp.o.d"
  "CMakeFiles/chronus_util.dir/step_function.cpp.o"
  "CMakeFiles/chronus_util.dir/step_function.cpp.o.d"
  "CMakeFiles/chronus_util.dir/table.cpp.o"
  "CMakeFiles/chronus_util.dir/table.cpp.o.d"
  "libchronus_util.a"
  "libchronus_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronus_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
