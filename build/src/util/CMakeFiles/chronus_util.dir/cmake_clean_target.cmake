file(REMOVE_RECURSE
  "libchronus_util.a"
)
