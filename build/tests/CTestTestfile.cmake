# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/topologies_test[1]_include.cmake")
include("/root/repo/build/tests/timenet_test[1]_include.cmake")
include("/root/repo/build/tests/transition_state_test[1]_include.cmake")
include("/root/repo/build/tests/path_enum_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/heuristics_test[1]_include.cmake")
include("/root/repo/build/tests/feasibility_tree_test[1]_include.cmake")
include("/root/repo/build/tests/multi_flow_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/dionysus_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/queue_test[1]_include.cmake")
include("/root/repo/build/tests/sim_updates_test[1]_include.cmake")
