# Empty compiler generated dependencies file for timenet_test.
# This may be replaced when dependencies are built.
