file(REMOVE_RECURSE
  "CMakeFiles/timenet_test.dir/timenet_test.cpp.o"
  "CMakeFiles/timenet_test.dir/timenet_test.cpp.o.d"
  "timenet_test"
  "timenet_test.pdb"
  "timenet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timenet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
