file(REMOVE_RECURSE
  "CMakeFiles/multi_flow_test.dir/multi_flow_test.cpp.o"
  "CMakeFiles/multi_flow_test.dir/multi_flow_test.cpp.o.d"
  "multi_flow_test"
  "multi_flow_test.pdb"
  "multi_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
