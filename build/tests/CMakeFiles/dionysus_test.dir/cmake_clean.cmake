file(REMOVE_RECURSE
  "CMakeFiles/dionysus_test.dir/dionysus_test.cpp.o"
  "CMakeFiles/dionysus_test.dir/dionysus_test.cpp.o.d"
  "dionysus_test"
  "dionysus_test.pdb"
  "dionysus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dionysus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
