# Empty dependencies file for dionysus_test.
# This may be replaced when dependencies are built.
