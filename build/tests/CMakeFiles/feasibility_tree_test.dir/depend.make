# Empty dependencies file for feasibility_tree_test.
# This may be replaced when dependencies are built.
