file(REMOVE_RECURSE
  "CMakeFiles/feasibility_tree_test.dir/feasibility_tree_test.cpp.o"
  "CMakeFiles/feasibility_tree_test.dir/feasibility_tree_test.cpp.o.d"
  "feasibility_tree_test"
  "feasibility_tree_test.pdb"
  "feasibility_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feasibility_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
