file(REMOVE_RECURSE
  "CMakeFiles/path_enum_test.dir/path_enum_test.cpp.o"
  "CMakeFiles/path_enum_test.dir/path_enum_test.cpp.o.d"
  "path_enum_test"
  "path_enum_test.pdb"
  "path_enum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_enum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
