file(REMOVE_RECURSE
  "CMakeFiles/sim_updates_test.dir/sim_updates_test.cpp.o"
  "CMakeFiles/sim_updates_test.dir/sim_updates_test.cpp.o.d"
  "sim_updates_test"
  "sim_updates_test.pdb"
  "sim_updates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_updates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
