file(REMOVE_RECURSE
  "CMakeFiles/transition_state_test.dir/transition_state_test.cpp.o"
  "CMakeFiles/transition_state_test.dir/transition_state_test.cpp.o.d"
  "transition_state_test"
  "transition_state_test.pdb"
  "transition_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transition_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
