# Empty dependencies file for transition_state_test.
# This may be replaced when dependencies are built.
