file(REMOVE_RECURSE
  "CMakeFiles/maintenance_failover.dir/maintenance_failover.cpp.o"
  "CMakeFiles/maintenance_failover.dir/maintenance_failover.cpp.o.d"
  "maintenance_failover"
  "maintenance_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintenance_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
