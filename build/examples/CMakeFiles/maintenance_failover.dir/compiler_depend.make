# Empty compiler generated dependencies file for maintenance_failover.
# This may be replaced when dependencies are built.
