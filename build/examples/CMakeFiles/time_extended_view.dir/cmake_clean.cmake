file(REMOVE_RECURSE
  "CMakeFiles/time_extended_view.dir/time_extended_view.cpp.o"
  "CMakeFiles/time_extended_view.dir/time_extended_view.cpp.o.d"
  "time_extended_view"
  "time_extended_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_extended_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
