# Empty compiler generated dependencies file for time_extended_view.
# This may be replaced when dependencies are built.
