// chronus_soak — the chaos soak driver: runs a declarative failure
// campaign (io/scenario_io.hpp) against the online update service and
// judges the outcome with the oracles the repo already trusts.
//
//   chronus_soak --scenario=storm.scn [--requests=N] [--rate=HZ]
//                [--pairs=N] [--conflict=P] [--rescue=N] [--workers=N]
//                [--seed=N] [--epoch-ms=N] [--step-ms=N] [--budget-s=N]
//                [--slo-ms=N] [--greedy-enter=N --greedy-exit=N]
//                [--defer-enter=N --defer-exit=N]
//                [--shed-enter=N --shed-exit=N]
//                [--replay] [--minimize] [--json=FILE] [--metrics=FILE]
//                [--log=FILE]
//
// The campaign is fully determined by (--seed, scenario): the workload
// (surges included), every injected fault and every ladder transition
// replay bit-identically. Oracles, in order:
//
//  * the post-hoc transition verifier reported zero violations;
//  * the report is self-consistent (every request accounted for);
//  * with --replay, a second run from the same seed reproduces the
//    identical report digest (degradation-mode sequence included) and the
//    identical logical metrics slice;
//  * a quiet scenario with the ladder disabled is bit-identical to a
//    clean serve run of the same trace (no chaos attached at all).
//
// With --minimize, a failing campaign is greedily shrunk: phases are
// dropped one at a time while the failure persists and the minimal
// still-failing scenario is printed to stdout. Exit codes: 0 pass, 1
// oracle failure, 2 usage/setup error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/scenario_io.hpp"
#include "obs/metrics.hpp"
#include "service/service.hpp"
#include "service/workload.hpp"
#include "sim/chaos.hpp"
#include "util/cli.hpp"
#include "util/json_writer.hpp"

namespace {

using chronus::service::ServiceOptions;
using chronus::service::ServiceReport;
using chronus::service::ServiceTrace;
using chronus::service::UpdateService;
using chronus::service::WorkloadOptions;
using chronus::sim::ChaosScenario;

struct SoakConfig {
  WorkloadOptions workload;
  ServiceOptions service;
  chronus::sim::SimTime budget = 0;  ///< drop arrivals past this (0 = all)
};

struct Outcome {
  ServiceReport report;
  chronus::obs::MetricsSnapshot snapshot;  ///< full, wall metrics included
  chronus::obs::MetricsSnapshot logical;   ///< replay-deterministic slice
};

/// One full campaign: generate the trace under the scenario's surges, run
/// the service with the scenario attached, capture report and logical
/// metrics. Pure function of (config, scenario) — the replay oracle
/// depends on it.
Outcome run_campaign(const SoakConfig& cfg, const ChaosScenario* scenario) {
  WorkloadOptions wopt = cfg.workload;
  wopt.chaos = scenario;
  ServiceTrace trace = chronus::service::make_workload(wopt);
  if (cfg.budget > 0) {
    std::erase_if(trace.requests, [&](const auto& r) {
      return r.arrival > cfg.budget;
    });
  }

  ServiceOptions sopt = cfg.service;
  sopt.chaos = scenario;

  chronus::obs::MetricsRegistry reg;
  Outcome out;
  {
    const chronus::obs::ScopedMetrics scoped(reg);
    UpdateService svc(trace.graph, sopt);
    out.report = svc.run(trace);
  }
  out.snapshot = reg.snapshot();
  out.logical = out.snapshot.logical();
  return out;
}

/// The cheap oracle used both for the main verdict and as the --minimize
/// failure predicate. Returns an empty string on pass, else the reason.
std::string judge(const Outcome& out) {
  const ServiceReport& rep = out.report;
  if (rep.violations != 0) {
    return "post-hoc verifier reported " + std::to_string(rep.violations) +
           " violation(s)";
  }
  std::size_t accounted = rep.completed + rep.failed + rep.rejected();
  for (const auto& rec : rep.records) {
    if (rec.status == chronus::service::RequestStatus::kPending) {
      return "request " + std::to_string(rec.id) + " left pending";
    }
  }
  if (accounted != rep.total()) {
    return "report accounts for " + std::to_string(accounted) + " of " +
           std::to_string(rep.total()) + " requests";
  }
  return "";
}

void write_json(const std::string& path, const std::string& scenario_name,
                const SoakConfig& cfg, const Outcome& out) {
  chronus::util::JsonWriter json(path, "soak");
  json.meta("scenario", scenario_name);
  json.meta("seed", static_cast<std::int64_t>(cfg.workload.seed));
  json.meta("workers", static_cast<std::int64_t>(cfg.service.workers));
  json.meta("requests",
            static_cast<std::int64_t>(out.report.records.size()));
  for (const auto& r : out.report.records) {
    json.begin_row();
    json.field("id", r.id);
    json.field("status",
               std::string(chronus::service::to_string(r.status)));
    json.field("degradation",
               std::string(chronus::service::to_string(r.degradation)));
    json.field("arrival_us", r.arrival);
    json.field("completed_us", r.completed);
    json.field("faults", r.faults);
    json.field("retries", static_cast<std::int64_t>(r.exec_retries));
    json.field("violations", static_cast<std::int64_t>(r.violations));
    json.end_row();
  }
}

int soak_main(const chronus::util::Cli& cli) {
  const std::string scenario_path = cli.get("scenario", "");
  if (scenario_path.empty()) {
    std::fprintf(stderr, "error: --scenario is required\n");
    return 2;
  }
  ChaosScenario scenario = chronus::io::read_scenario_file(scenario_path);

  SoakConfig cfg;
  cfg.workload.requests = static_cast<int>(cli.get_int("requests", 60));
  cfg.workload.arrival_rate_hz = cli.get_double("rate", 30.0);
  cfg.workload.pairs = static_cast<int>(cli.get_int("pairs", 6));
  cfg.workload.conflict_density = cli.get_double("conflict", 0.4);
  cfg.workload.rescue_sites = static_cast<int>(cli.get_int("rescue", 0));
  cfg.workload.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  cfg.service.seed = cfg.workload.seed;
  cfg.service.workers = static_cast<int>(cli.get_int("workers", 4));
  cfg.service.epoch = cli.get_int("epoch-ms", 50) * chronus::sim::kMillisecond;
  cfg.service.step_unit =
      cli.get_int("step-ms", 50) * chronus::sim::kMillisecond;
  cfg.budget = cli.get_int("budget-s", 0) * chronus::sim::kSecond;

  auto& ladder = cfg.service.degradation;
  ladder.latency_slo = cli.get_int("slo-ms", 0) * chronus::sim::kMillisecond;
  ladder.greedy_enter = static_cast<std::size_t>(cli.get_int("greedy-enter", 0));
  ladder.greedy_exit = static_cast<std::size_t>(cli.get_int("greedy-exit", 0));
  ladder.defer_enter = static_cast<std::size_t>(cli.get_int("defer-enter", 0));
  ladder.defer_exit = static_cast<std::size_t>(cli.get_int("defer-exit", 0));
  ladder.shed_enter = static_cast<std::size_t>(cli.get_int("shed-enter", 0));
  ladder.shed_exit = static_cast<std::size_t>(cli.get_int("shed-exit", 0));

  const bool replay = cli.get_bool("replay", false);
  const bool minimize = cli.get_bool("minimize", false);
  const std::string json_path = cli.get("json", "");
  const std::string metrics_path = cli.get("metrics", "");
  const std::string log_path = cli.get("log", "");
  for (const std::string& flag : cli.unused()) {
    std::fprintf(stderr, "error: unknown flag --%s\n", flag.c_str());
    return 2;
  }

  // The campaign itself; run_campaign installs its own registry, so the
  // sidecar file is written from its snapshot afterwards.
  const Outcome out = run_campaign(cfg, &scenario);
  if (!metrics_path.empty()) {
    chronus::util::JsonWriter json(metrics_path, "chronus_soak");
    json.meta("scenario", scenario.name);
    out.snapshot.write_json(json, /*mask_wall=*/false);
  }
  std::printf("scenario %s: %s", scenario.name.c_str(),
              out.report.to_string().c_str());
  if (!log_path.empty()) {
    std::ofstream log(log_path);
    if (!log) throw std::runtime_error("cannot open " + log_path);
    log << out.report.to_string();
  }
  if (!json_path.empty()) {
    write_json(json_path, scenario.name, cfg, out);
  }

  std::string verdict = judge(out);

  if (verdict.empty() && replay) {
    const Outcome again = run_campaign(cfg, &scenario);
    if (again.report.digest() != out.report.digest()) {
      verdict = "replay diverged: report digests differ";
    } else if (!(again.logical == out.logical)) {
      verdict = "replay diverged: logical metrics differ";
    } else {
      std::printf("replay: digest and logical metrics identical\n");
    }
  }

  if (verdict.empty() && scenario.quiet() && !ladder.enabled()) {
    // Zero-knob campaign: must be bit-identical to a clean serve run with
    // no scenario attached at all.
    const Outcome clean = run_campaign(cfg, nullptr);
    if (clean.report.digest() != out.report.digest()) {
      verdict = "quiet campaign diverged from the clean run";
    } else {
      std::printf("quiet campaign: bit-identical to the clean run\n");
    }
  }

  if (verdict.empty()) {
    std::printf("soak PASS\n");
    return 0;
  }
  std::fprintf(stderr, "soak FAIL: %s\n", verdict.c_str());

  if (minimize && !scenario.phases.empty()) {
    // Greedy shrink: drop phases one at a time while the failure holds.
    ChaosScenario minimal = scenario;
    std::size_t i = 0;
    while (i < minimal.phases.size() && minimal.phases.size() > 1) {
      ChaosScenario candidate = minimal;
      candidate.phases.erase(candidate.phases.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (!judge(run_campaign(cfg, &candidate)).empty()) {
        minimal = std::move(candidate);  // still fails without phase i
      } else {
        ++i;  // phase i is load-bearing, keep it
      }
    }
    std::fprintf(stderr, "# minimal failing scenario (%zu of %zu phases):\n",
                 minimal.phases.size(), scenario.phases.size());
    chronus::io::write_scenario(std::cout, minimal);
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const chronus::util::Cli cli(argc, argv);
    return soak_main(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
