// chronus_lint — the repo's own static-analysis gate (no LLVM dependency).
//
// Parses the source tree line by line and enforces the invariant-firewall
// rules that the compiler cannot express:
//
//   raw-unit       declarations of time/capacity/demand/load quantities as
//                  raw `double`/`float` outside src/util — unit arithmetic
//                  must go through util::TimeStep / Demand / Capacity.
//   lib-stdout     `std::cout` / `printf` in library code (src/**): library
//                  layers report through return values and exceptions, not
//                  the process's stdout.
//   pragma-once    every header must open with `#pragma once`.
//   include-style  project includes are rooted at src/ ("net/graph.hpp");
//                  relative ("../x.hpp") or bare same-directory includes
//                  bypass the layer structure.
//   reserve-pair   a service-layer file that calls `try_reserve(` must also
//                  contain a `release(` or use the RAII Reservation guard —
//                  an unpaired reserve is a capacity leak.
//   raw-chrono     direct std::chrono usage (or `#include <chrono>`) in
//                  library code outside src/obs and src/util — all timing
//                  goes through obs spans (CHRONUS_SPAN) or util::Stopwatch
//                  so it can be metered, masked and disabled centrally.
//   test-sleep     wall-clock sleeps (sleep_for / sleep_until / usleep /
//                  nanosleep) in tests/**: the suite is deterministic and
//                  virtual-timed, so a sleeping test is either flaky or
//                  slow for no reason — drive sim::SimTime instead. This is
//                  the only rule that applies under tests/; the library
//                  rules above skip test code.
//
// A finding can be acknowledged inline with
//   // chronus-lint: allow(<rule>) <justification>
// on the offending line (or the line above); the justification is
// mandatory text for the reviewer, not parsed.
//
// Usage:
//   chronus_lint --root <repo> [--sarif=FILE] [subdir...]
//                                            lint the tree (default: src)
//   chronus_lint --self-test --fixtures <dir>
//                                            prove the rules fire on the
//                                            seeded fixture violations
//
// --sarif=FILE additionally writes the findings as a SARIF 2.1.0 log,
// which the CI lint job uploads so findings annotate PR diffs.
//
// Exits 0 when clean / self-test matches, 1 on findings, 2 on usage errors.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sarif.hpp"

namespace fs = std::filesystem;

namespace {

// The Finding struct, findings printer and rule-catalog type live in
// tools/sarif.hpp, shared with chronus_analyzer.
using chronus_tools::Finding;
using chronus_tools::print_findings;

struct Options {
  fs::path root;
  std::vector<std::string> subdirs;
  bool self_test = false;
  fs::path fixtures;
  std::string sarif;
};

const chronus_tools::RuleCatalog& rule_catalog() {
  static const chronus_tools::RuleCatalog kRules = {
      {"raw-unit",
       "unit-bearing quantity declared as raw double/float — use "
       "util::Demand / util::Capacity"},
      {"lib-stdout", "library code writing to stdout"},
      {"pragma-once", "header missing #pragma once"},
      {"include-style", "project include not rooted at src/"},
      {"reserve-pair", "ledger reserve without a matching release"},
      {"raw-chrono",
       "direct std::chrono timing outside src/obs and src/util"},
      {"test-sleep",
       "wall-clock sleep in a test — drive virtual time instead"},
  };
  return kRules;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `name` names a unit-bearing quantity: demand, capacity or
/// load as a whole word segment, or a *_time / time_* style schedule time.
bool is_unit_name(const std::string& name) {
  static const std::vector<std::string> kUnits = {"demand", "capacity",
                                                  "load", "headroom"};
  std::string lower;
  for (char c : name) lower += static_cast<char>(std::tolower(c));
  for (const auto& unit : kUnits) {
    for (std::size_t pos = lower.find(unit); pos != std::string::npos;
         pos = lower.find(unit, pos + 1)) {
      const bool left_ok = pos == 0 || lower[pos - 1] == '_';
      const std::size_t end = pos + unit.size();
      const bool right_ok = end == lower.size() || lower[end] == '_' ||
                            std::isdigit(static_cast<unsigned char>(lower[end]));
      if (left_ok && right_ok) return true;
    }
  }
  return false;
}

/// The identifier declared right after a type keyword at `pos`, if the
/// line looks like a declaration (not a cast, comment or string).
std::string declared_name(const std::string& line, std::size_t type_end) {
  std::size_t i = type_end;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i == type_end) return {};  // "double(x)" — a cast or constructor
  std::string name;
  while (i < line.size() && is_ident_char(line[i])) name += line[i++];
  // "double demand = ..." / "double demand;" / "double demand," /
  // "double demand)" all declare; "double demandFn(" declares a function
  // returning double, which the rule also covers.
  return name;
}

std::string strip_line_comment(const std::string& line) {
  const std::size_t pos = line.find("//");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

bool has_allowance(const std::vector<std::string>& lines, std::size_t idx,
                   const std::string& rule) {
  const std::string needle = "chronus-lint: allow(" + rule + ")";
  if (lines[idx].find(needle) != std::string::npos) return true;
  return idx > 0 && lines[idx - 1].find(needle) != std::string::npos;
}

bool in_util(const std::string& rel) {
  return rel.rfind("src/util/", 0) == 0 || rel.rfind("util/", 0) == 0;
}

bool in_obs(const std::string& rel) {
  return rel.rfind("src/obs/", 0) == 0 || rel.rfind("obs/", 0) == 0;
}

bool in_tests(const std::string& rel) {
  return rel.rfind("tests/", 0) == 0;
}

bool is_header(const fs::path& p) { return p.extension() == ".hpp"; }
bool is_source(const fs::path& p) {
  return p.extension() == ".cpp" || p.extension() == ".hpp";
}

void check_file(const fs::path& path, const std::string& rel,
                std::vector<Finding>& findings) {
  std::ifstream in(path);
  if (!in) return;
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);

  bool saw_pragma_once = false;
  bool saw_try_reserve = false;
  bool saw_release = false;
  long first_reserve_line = 0;
  bool in_block_comment = false;

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& raw = lines[i];
    std::string code = strip_line_comment(raw);

    // Cheap block-comment tracking (no nesting, like C++).
    if (in_block_comment) {
      const std::size_t close = code.find("*/");
      if (close == std::string::npos) continue;
      code = code.substr(close + 2);
      in_block_comment = false;
    }
    const std::size_t open = code.find("/*");
    if (open != std::string::npos && code.find("*/", open) == std::string::npos)
      in_block_comment = true;

    const long lineno = static_cast<long>(i) + 1;

    if (raw.find("#pragma once") != std::string::npos) saw_pragma_once = true;

    // test-sleep ----------------------------------------------------------
    // The only rule that looks at test code; everything below is for the
    // library tree and skips tests/ entirely.
    if (in_tests(rel)) {
      for (const char* call :
           {"sleep_for", "sleep_until", "usleep", "nanosleep"}) {
        const std::string fn = call;
        const std::size_t pos = code.find(fn);
        if (pos == std::string::npos) continue;
        if (pos > 0 && is_ident_char(code[pos - 1]) && fn != "sleep_for" &&
            fn != "sleep_until") {
          continue;  // e.g. "nanosleeps" as part of a longer identifier
        }
        if (!has_allowance(lines, i, "test-sleep")) {
          findings.push_back(
              {rel, lineno, "test-sleep",
               "'" + fn +
                   "' blocks on the wall clock inside a test — the suite is "
                   "virtual-timed; advance sim::SimTime (or poll a "
                   "condition) instead"});
        }
        break;  // one finding per line is enough
      }
      continue;
    }

    // include-style -------------------------------------------------------
    if (code.rfind("#include", 0) == 0) {
      const std::size_t q1 = code.find('"');
      const std::size_t q2 =
          q1 == std::string::npos ? std::string::npos : code.find('"', q1 + 1);
      if (q2 != std::string::npos) {
        const std::string inc = code.substr(q1 + 1, q2 - q1 - 1);
        if (inc.find("..") != std::string::npos &&
            !has_allowance(lines, i, "include-style")) {
          findings.push_back({rel, lineno, "include-style",
                              "relative include \"" + inc +
                                  "\" bypasses the src/-rooted layer paths"});
        } else if (inc.find('/') == std::string::npos &&
                   !has_allowance(lines, i, "include-style")) {
          findings.push_back({rel, lineno, "include-style",
                              "bare include \"" + inc +
                                  "\" — project includes are rooted at src/ "
                                  "(e.g. \"net/graph.hpp\")"});
        }
      }
    }

    // lib-stdout ----------------------------------------------------------
    if (!in_util(rel) || true) {  // applies to util too: no stdout anywhere
      const bool cout_hit = code.find("std::cout") != std::string::npos;
      std::size_t printf_pos = code.find("printf");
      const bool printf_hit =
          printf_pos != std::string::npos &&
          (printf_pos == 0 || !is_ident_char(code[printf_pos - 1])) &&
          code.compare(0, 8, "#include") != 0;
      if ((cout_hit || printf_hit) && !has_allowance(lines, i, "lib-stdout")) {
        findings.push_back({rel, lineno, "lib-stdout",
                            "library code must not write to stdout (return "
                            "strings / use callbacks instead)"});
      }
    }

    // raw-unit ------------------------------------------------------------
    if (!in_util(rel)) {
      for (const char* type : {"double", "float"}) {
        const std::string ty = type;
        for (std::size_t pos = code.find(ty); pos != std::string::npos;
             pos = code.find(ty, pos + ty.size())) {
          const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
          const std::size_t end = pos + ty.size();
          const bool right_ok = end >= code.size() || !is_ident_char(code[end]);
          if (!left_ok || !right_ok) continue;
          const std::string name = declared_name(code, end);
          if (!name.empty() && is_unit_name(name) &&
              !has_allowance(lines, i, "raw-unit")) {
            findings.push_back(
                {rel, lineno, "raw-unit",
                 "'" + ty + " " + name +
                     "' declares a unit-bearing quantity as a raw " + ty +
                     " — use util::Demand / util::Capacity (see "
                     "src/util/strong_types.hpp)"});
          }
        }
      }
    }

    // raw-chrono ----------------------------------------------------------
    if (!in_util(rel) && !in_obs(rel)) {
      const bool use_hit = code.find("std::chrono") != std::string::npos;
      const bool include_hit =
          code.rfind("#include", 0) == 0 &&
          code.find("<chrono>") != std::string::npos;
      if ((use_hit || include_hit) && !has_allowance(lines, i, "raw-chrono")) {
        findings.push_back(
            {rel, lineno, "raw-chrono",
             "direct std::chrono timing in library code — time through "
             "CHRONUS_SPAN (obs/span.hpp) or util::Stopwatch so the clock "
             "reads stay meterable and maskable"});
      }
    }

    // reserve-pair bookkeeping -------------------------------------------
    if (code.find("try_reserve(") != std::string::npos &&
        !has_allowance(lines, i, "reserve-pair")) {
      if (!saw_try_reserve) first_reserve_line = lineno;
      saw_try_reserve = true;
    }
    if (code.find("release(") != std::string::npos ||
        code.find("Reservation") != std::string::npos) {
      saw_release = true;
    }
  }

  // pragma-once -----------------------------------------------------------
  if (is_header(path) && !in_tests(rel) && !saw_pragma_once) {
    findings.push_back(
        {rel, 1, "pragma-once", "header is missing '#pragma once'"});
  }

  // reserve-pair ----------------------------------------------------------
  const bool service_file = rel.find("service") != std::string::npos;
  if (service_file && saw_try_reserve && !saw_release) {
    findings.push_back(
        {rel, first_reserve_line, "reserve-pair",
         "file reserves ledger capacity but never releases it (pair every "
         "try_reserve with a release or a Reservation guard)"});
  }
}

std::vector<Finding> lint_tree(const fs::path& root,
                               const std::vector<std::string>& subdirs) {
  std::vector<Finding> findings;
  std::vector<fs::path> files;
  for (const auto& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && is_source(entry.path()))
        files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& f : files) {
    check_file(f, fs::relative(f, root).generic_string(), findings);
  }
  return findings;
}

/// Self-test: every fixture file whose name starts with "bad_" must
/// produce at least one finding of the rule named between "bad_" and the
/// next "__" (or the whole stem); files starting with "good_" must be
/// clean. Proves the gate actually catches what it claims to catch.
int self_test(const fs::path& fixtures) {
  if (!fs::exists(fixtures)) {
    std::cerr << "fixtures directory not found: " << fixtures << "\n";
    return 2;
  }
  int failures = 0;
  for (const auto& entry : fs::directory_iterator(fixtures)) {
    if (!entry.is_regular_file() || !is_source(entry.path())) continue;
    const std::string stem = entry.path().stem().string();
    std::vector<Finding> findings;
    // Fixtures emulate service-layer or test files when their name says so.
    const std::string filename = entry.path().filename().string();
    std::string rel = "src/fixture/" + filename;
    if (stem.find("__tests") != std::string::npos) {
      rel = "tests/" + filename;
    } else if (stem.find("service") != std::string::npos) {
      rel = "src/service/" + filename;
    }
    check_file(entry.path(), rel, findings);
    if (stem.rfind("good_", 0) == 0) {
      if (!findings.empty()) {
        std::cerr << "SELF-TEST FAIL: expected no findings in " << stem
                  << " but got:\n";
        print_findings(findings, std::cerr);
        ++failures;
      }
      continue;
    }
    if (stem.rfind("bad_", 0) == 0) {
      const std::size_t sep = stem.find("__");
      const std::string rule = stem.substr(
          4, sep == std::string::npos ? std::string::npos : sep - 4);
      const bool hit = std::any_of(
          findings.begin(), findings.end(),
          [&](const Finding& f) { return f.rule == rule; });
      if (!hit) {
        std::cerr << "SELF-TEST FAIL: expected a [" << rule << "] finding in "
                  << entry.path().filename().string() << ", got "
                  << findings.size() << " findings\n";
        print_findings(findings, std::cerr);
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::cerr << "chronus_lint self-test: all fixtures behaved as seeded\n";
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.root = fs::current_path();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opt.root = argv[++i];
    } else if (arg == "--self-test") {
      opt.self_test = true;
    } else if (arg == "--fixtures" && i + 1 < argc) {
      opt.fixtures = argv[++i];
    } else if (arg.rfind("--sarif=", 0) == 0) {
      opt.sarif = arg.substr(8);
    } else if (arg == "--help" || arg == "-h") {
      std::cerr << "usage: chronus_lint [--root DIR] [--sarif=FILE] "
                   "[subdir...]\n"
                << "       chronus_lint --self-test --fixtures DIR\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    } else {
      opt.subdirs.push_back(arg);
    }
  }
  if (opt.self_test) return self_test(opt.fixtures);
  if (opt.subdirs.empty()) opt.subdirs = {"src"};

  const auto findings = lint_tree(opt.root, opt.subdirs);
  if (!opt.sarif.empty() &&
      !chronus_tools::write_findings_sarif(opt.sarif, "chronus_lint",
                                           rule_catalog(), findings)) {
    std::cerr << "cannot write SARIF log to " << opt.sarif << "\n";
    return 2;
  }
  if (findings.empty()) {
    std::cerr << "chronus_lint: clean\n";
    return 0;
  }
  print_findings(findings, std::cerr);
  std::cerr << findings.size() << " finding(s)\n";
  return 1;
}
