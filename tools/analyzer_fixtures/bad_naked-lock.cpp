// Seeded violation: a hand-rolled lock()/unlock() pair. The early return
// between them leaks the lock; an RAII guard cannot.
#include <mutex>

struct Queue {
  bool pop(int* out) {
    mu_.lock();
    if (items_ == 0) {
      mu_.unlock();
      return false;
    }
    --items_;
    *out = items_;
    mu_.unlock();
    return true;
  }

  std::mutex mu_;
  int items_ = 0;
};
