// Seeded violation: a socket read inside a critical section. Even on a
// nonblocking fd the syscall sits at the kernel boundary, and the rpc
// reactor's rule is that no I/O ever happens under a lock — every other
// contender for mu_ would stall behind the peer's send pacing.
#include <sys/socket.h>

#include <mutex>

struct WireIntake {
  std::size_t pump() {
    std::lock_guard<std::mutex> lock(mu_);
    char chunk[4096];
    ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);  // I/O under the lock
    if (n > 0) buffered_ += static_cast<std::size_t>(n);
    return buffered_;
  }

  std::mutex mu_;
  int fd_ = -1;
  std::size_t buffered_ = 0;
};
