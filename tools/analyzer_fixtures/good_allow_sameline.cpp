// Fixture: a stray-random violation acknowledged on the SAME line as the
// finding — one of the three allow-comment placements the lexer supports.
#include <random>

namespace fixture {

unsigned seed_for_demo() {
  std::random_device dev;  // chronus-analyzer: allow(stray-random) demo seeding only, never replayed
  return dev();
}

}  // namespace fixture
