// Seeded violation: joining a thread while holding the state mutex.
// Every contender for mu_ now waits for the joined thread too.
#include <mutex>
#include <thread>

struct Supervisor {
  void shutdown() {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    worker_.join();  // blocking call inside the critical section
  }

  std::mutex mu_;
  bool stopping_ = false;
  std::thread worker_;
};
