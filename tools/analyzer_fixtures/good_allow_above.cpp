// Fixture: the same acknowledgement placed on its own line ABOVE the
// finding — must suppress exactly like the same-line placement.
#include <random>

namespace fixture {

unsigned seed_for_demo() {
  // chronus-analyzer: allow(stray-random) demo seeding only, never replayed
  std::random_device dev;
  return dev();
}

}  // namespace fixture
