// Fixture: a MULTI-LINE block-comment acknowledgement. The allowance must
// reach the statement after the comment's last line — anchoring at the
// comment's first line (the old behavior) would miss it.
#include <random>

namespace fixture {

unsigned seed_for_demo() {
  /* chronus-analyzer: allow(stray-random)
     Demo seeding only; this fixture pins the block-comment placement,
     where the allowance covers the line after the comment ends. */
  std::random_device dev;
  return dev();
}

}  // namespace fixture
