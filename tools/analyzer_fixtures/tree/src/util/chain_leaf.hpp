// Clean: leaf of the three-deep call chain the summary-cache
// invalidation test edits. Its function summary is deliberately empty
// (no taint, no blocking) so the test can flip it and watch the
// invalidation ripple up through chain_mid and chain_top.
#pragma once

namespace fixture::util {

inline long chain_leaf(long ticks) { return ticks * 2; }

}  // namespace fixture::util
