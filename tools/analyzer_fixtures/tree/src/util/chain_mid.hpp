// Clean: middle link of the three-deep call chain. Re-analyzed only
// when chain_leaf's summary changes.
#pragma once

#include "util/chain_leaf.hpp"

namespace fixture::util {

inline long chain_mid(long ticks) { return chain_leaf(ticks) + 1; }

}  // namespace fixture::util
