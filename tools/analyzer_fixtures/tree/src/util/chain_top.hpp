// Clean: top of the three-deep call chain. Two hops from chain_leaf;
// still re-analyzed when the leaf's summary changes.
#pragma once

#include "util/chain_mid.hpp"

namespace fixture::util {

inline long chain_top(long ticks) { return chain_mid(ticks) + 2; }

}  // namespace fixture::util
