// Seeded violation: util is the bottom layer, but this header reaches up
// into net — a layering back-edge the manifest does not declare.
#pragma once

#include "net/socket.hpp"

namespace fixture::util {

inline long stamp_frame() { return fixture::net::next_sequence(); }

}  // namespace fixture::util
