// Other half of the seeded include cycle.
#pragma once

#include "net/socket.hpp"

namespace fixture::net {

inline long frame_overhead() { return 14; }

}  // namespace fixture::net
