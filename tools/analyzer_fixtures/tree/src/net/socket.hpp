// Half of the seeded include cycle: socket.hpp needs frame.hpp, which
// needs socket.hpp right back.
#pragma once

#include "net/frame.hpp"

namespace fixture::net {

inline long next_sequence() { return frame_overhead() + 1; }

}  // namespace fixture::net
