// Seeded violation: a throwing destructor. Destructors are implicitly
// noexcept since C++11, so this throw is std::terminate in disguise.
#include <stdexcept>

struct Flusher {
  ~Flusher() {
    if (!flushed_) {
      throw std::runtime_error("buffer destroyed with unflushed data");
    }
  }

  bool flushed_ = false;
};
