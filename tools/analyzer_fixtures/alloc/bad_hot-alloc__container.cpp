// Seeded: default-allocator std:: containers in allocating positions —
// a local object, a braced temporary, and a constructor-argument
// declaration — must each fire [hot-alloc].
#include <set>
#include <vector>

namespace fixture {

int widen(const std::vector<int>& input) {  // reference: not an allocation
  std::vector<int> out;
  for (const int v : input) out.push_back(v * 2);
  std::set<int> uniq(out.begin(), out.end());
  return static_cast<int>(uniq.size()) +
         static_cast<int>(std::vector<int>{1, 2, 3}.size());
}

}  // namespace fixture
