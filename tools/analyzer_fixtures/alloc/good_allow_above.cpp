// Clean: the line-above allow(hot-alloc) placement silences the rule.
#include <memory>

namespace fixture {

struct Slab {
  int bytes = 0;
};

std::unique_ptr<Slab> open_slab(int bytes) {
  // chronus-analyzer: allow(hot-alloc) slabs are allocated once at startup
  auto slab = std::make_unique<Slab>();
  slab->bytes = bytes;
  return slab;
}

}  // namespace fixture
