// Seeded: make_unique / make_shared each cost one heap allocation per
// call; inside the planner loops that is exactly what the arena removed.
#include <memory>

namespace fixture {

struct Node {
  int id = 0;
};

std::unique_ptr<Node> fresh_node(int id) {
  auto node = std::make_unique<Node>();
  node->id = id;
  return node;
}

std::shared_ptr<Node> shared_node(int id) {
  auto node = std::make_shared<Node>();
  node->id = id;
  return node;
}

}  // namespace fixture
