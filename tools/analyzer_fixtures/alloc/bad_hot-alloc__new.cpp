// Seeded: a bare `new` expression on a hot path must fire [hot-alloc].
// (Placement new is the sanctioned arena pattern and stays silent — see
// good_arena_backed.cpp.)
#include <cstddef>

namespace fixture {

int* scratch_row(std::size_t n) {
  int* row = new int[n];
  for (std::size_t i = 0; i < n; ++i) row[i] = 0;
  return row;
}

}  // namespace fixture
