// Seeded: a using-alias of a default-allocator container exists to be
// instantiated — flagging the one alias line is one acknowledgement
// instead of one per use site.
#include <map>
#include <string>

namespace fixture {

using Memo = std::map<std::string, long>;

long lookup(const Memo& memo, const std::string& key) {
  const auto it = memo.find(key);
  return it == memo.end() ? 0 : it->second;
}

}  // namespace fixture
