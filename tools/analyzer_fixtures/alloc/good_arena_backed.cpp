// Clean: the sanctioned patterns. Arena-allocated containers, placement
// new into arena memory, and container types in non-allocating positions
// (references, nested names, signatures, trailing return types) must all
// stay silent under [hot-alloc].
#include <cstddef>
#include <memory>
#include <vector>

namespace fixture {

template <typename T>
struct ArenaAllocator {
  using value_type = T;
  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { ::operator delete(p); }
};

using ArenaRow = std::vector<int, ArenaAllocator<int>>;

int sum_row(const std::vector<int>& row) {  // reference parameter
  int total = 0;
  for (const int v : row) total += v;
  return total;
}

std::vector<int>::size_type row_width(const std::vector<int>& row) {
  return row.size();  // nested-name use, no object constructed
}

auto arena_copy(const ArenaRow& row) -> std::vector<int, ArenaAllocator<int>> {
  std::vector<int, ArenaAllocator<int>> out;
  out.assign(row.begin(), row.end());
  return out;
}

int construct_in_place(void* slot) {
  int* value = new (slot) int(7);  // placement new: arena memory, no heap
  return *value;
}

}  // namespace fixture
