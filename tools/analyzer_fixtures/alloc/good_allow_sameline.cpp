// Clean: a same-line allow(hot-alloc) acknowledgement silences the rule.
#include <vector>

namespace fixture {

std::vector<long> cold_path_snapshot() {
  std::vector<long> out;  // chronus-analyzer: allow(hot-alloc) cold path
  out.push_back(1);
  return out;
}

}  // namespace fixture
