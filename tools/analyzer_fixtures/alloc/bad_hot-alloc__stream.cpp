// Seeded: ostringstream key-building is the classic hot-loop allocator
// churn (every str() is a fresh heap string) — util::ArenaString is the
// arena-backed replacement.
#include <sstream>
#include <string>

namespace fixture {

std::string memo_key(int a, int b) {
  std::ostringstream os;
  os << a << ':' << b;
  return os.str();
}

}  // namespace fixture
