// Clean: a multi-line /* block */ allow(hot-alloc) still reaches the
// statement immediately below it.
#include <set>

namespace fixture {

int distinct(int a, int b, int c) {
  /* The escape-hatch bundle keeps its original heap state on purpose:
     chronus-analyzer: allow(hot-alloc) — legacy verbatim path. */
  std::set<int> uniq{a, b, c};
  return static_cast<int>(uniq.size());
}

}  // namespace fixture
