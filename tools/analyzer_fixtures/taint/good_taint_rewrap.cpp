// Clean control: arithmetic on a .count() value is fine when the
// statement re-wraps the result into the strong type — that constructor
// IS the documented crossing point.
namespace fixture {

class TimeStep {
 public:
  explicit TimeStep(long v);
  long count() const;
};

TimeStep advance(TimeStep t, long delta) {
  return TimeStep{t.count() + delta};
}

}  // namespace fixture
