// Seeded violation: a wall-clock double is encoded onto the wire. Frames
// are replay-compared across transports, so encoded values must be pure
// functions of logical state.
#include <chrono>
#include <string>

namespace fixture {

void put_f64(std::string& out, double v);

void stamp_frame(std::string& body) {
  const double now_s =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  put_f64(body, now_s);
}

}  // namespace fixture
