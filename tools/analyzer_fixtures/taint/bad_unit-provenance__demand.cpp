// Seeded violation: Demand::value() feeds a raw double multiply — the
// exact mixing chronus_lint's raw-unit regex cannot see once the value
// hides behind a local.
namespace fixture {

class Demand {
 public:
  double value() const;
};

double overcommit_ratio(Demand d, double factor) {
  return d.value() * factor;
}

}  // namespace fixture
