// Clean control: wall-clock values laundered through the two documented
// masking channels — an instrument named *_wall_us (dropped/zeroed by
// MetricsSnapshot::logical()) and a mask_* helper.
#include <chrono>
#include <string>

namespace fixture {

void observe(const std::string& name, long v);
long mask_wall(long v);

class Span {
 public:
  void finish() {
    const long us =
        std::chrono::steady_clock::now().time_since_epoch().count();
    observe("span.parse_wall_us", us);
    observe("span.queue_depth", mask_wall(us));
  }
};

}  // namespace fixture
