// Clean control: real violations acknowledged inline — once with the
// allow comment on the line ABOVE the finding, once on the SAME line.
// Both placements must suppress.
#include <cstdint>
#include <cstdlib>
#include <string>

namespace fixture {

struct Cursor {
  std::uint32_t u32();
};

void add(const std::string& name, long v);

void parse_trusted(Cursor& cur, std::string& out) {
  const std::uint32_t n = cur.u32();
  // chronus-analyzer: allow(wire-taint) loopback-only fixture transport
  out.resize(n);
}

void record_demo() {
  const char* env = std::getenv("CHRONUS_DEMO");
  long stamp = 0;
  stamp = env != nullptr ? env[0] : 0;
  add("demo.launches", stamp);  // chronus-analyzer: allow(determinism-taint) demo-only counter
}

}  // namespace fixture
