// Seeded violation: a decoded length reaches resize() with no bounds
// check — a hostile 4-byte count allocates gigabytes. This is the
// oversize-frame class seeded in testdata/rpc.
#include <cstdint>
#include <string>

namespace fixture {

struct Cursor {
  std::uint32_t u32();
};

void parse_body(Cursor& cur, std::string& out) {
  const std::uint32_t n = cur.u32();
  out.resize(n);
}

}  // namespace fixture
