// Seeded violation: a decoded count drives a loop's trip count without
// ever being validated against the remaining frame.
#include <cstdint>

namespace fixture {

struct Cursor {
  std::uint32_t u32();
};

void consume_one(Cursor& cur);

void parse_list(Cursor& cur) {
  const std::uint32_t entries = cur.u32();
  for (std::uint32_t i = 0; i < entries; ++i) {
    consume_one(cur);
  }
}

}  // namespace fixture
