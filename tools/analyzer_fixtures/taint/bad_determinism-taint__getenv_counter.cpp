// Seeded violation: an environment-derived value lands in a logical
// metric. logical() keeps every counter for replay comparison, so a
// getenv-dependent count differs across hosts.
#include <cstdlib>
#include <string>

namespace fixture {

void add(const std::string& name, long v);

void record_seed() {
  const char* env = std::getenv("CHRONUS_SEED");
  long seed = 0;
  seed = env != nullptr ? env[0] : 0;
  add("service.seed", seed);
}

}  // namespace fixture
