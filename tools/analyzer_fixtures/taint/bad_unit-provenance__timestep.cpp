// Seeded violation: raw arithmetic on a value that crossed the TimeStep
// boundary via .count(). The algebra belongs inside the strong type; a
// naked multiply silently mixes step counts with plain integers.
namespace fixture {

class TimeStep {
 public:
  long count() const;
};

long shifted_raw(TimeStep t, long delta) {
  const long raw = t.count();
  return raw * 2 + delta;
}

}  // namespace fixture
