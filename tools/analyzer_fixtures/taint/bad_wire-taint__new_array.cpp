// Seeded violation: a decoded length sizes a raw new[] allocation.
#include <cstdint>

namespace fixture {

struct Cursor {
  std::uint32_t u32();
};

char* alloc_payload(Cursor& cur) {
  const std::uint32_t len = cur.u32();
  char* buf = new char[len];
  return buf;
}

}  // namespace fixture
