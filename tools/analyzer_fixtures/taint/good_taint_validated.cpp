// Clean control: the decoded length is validated against the remaining
// frame before it reaches the allocation — the guard-then-throw idiom
// from rpc::Cursor sanitises the wire taint.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace fixture {

struct Cursor {
  std::uint32_t u32();
  std::size_t remaining() const;
};

void parse_body(Cursor& cur, std::string& out) {
  const std::uint32_t n = cur.u32();
  if (n > cur.remaining()) {
    throw std::runtime_error("truncated frame");
  }
  out.resize(n);
}

}  // namespace fixture
