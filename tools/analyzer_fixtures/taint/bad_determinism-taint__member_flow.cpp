// Seeded violation: the wall-clock value is stored into a member in one
// method and recorded in another — the engine must propagate member
// taint across the methods of a TU, not just within one body.
#include <chrono>
#include <string>

namespace fixture {

void observe(const std::string& name, long v);

class Probe {
 public:
  void begin() {
    start_ = std::chrono::steady_clock::now().time_since_epoch().count();
  }
  void flush() const { observe("probe.latency", start_); }

 private:
  long start_ = 0;
};

}  // namespace fixture
