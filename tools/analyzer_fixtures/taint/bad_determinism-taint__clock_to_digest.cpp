// Seeded violation: a system_clock read flows into a digest function.
// Digests certify bit-identical replay across transports and worker
// counts; a wall-clock stamp in the stream breaks that by construction.
#include <chrono>
#include <sstream>
#include <string>

namespace fixture {

std::string report_digest() {
  std::ostringstream out;
  const auto stamp =
      std::chrono::system_clock::now().time_since_epoch().count();
  out << "stamp=" << stamp;
  return out.str();
}

}  // namespace fixture
