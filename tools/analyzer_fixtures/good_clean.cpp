// Clean control: RAII guards, no blocking under a lock, reported catch,
// and rule mentions inside comments and strings that must NOT fire —
// lexer awareness is the whole point of this tool over chronus_lint.
#include <mutex>
#include <string>

// A comment may say mu_.lock() and mu_.unlock() freely.
const char* kDoc =
    "docs: call rand() or std::random_device; throw in a ~Dtor(); "
    "worker_.join() under lock";

struct Safe {
  int read() {
    std::lock_guard<std::mutex> lock(mu_);
    return value_;
  }

  void write(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    value_ = v;
  }

  bool try_describe(std::string* out) {
    try {
      *out = describe();
      return true;
    } catch (...) {
      *out = "describe failed";  // reported, not swallowed
      return false;
    }
  }

  std::string describe();

  std::mutex mu_;
  int value_ = 0;
};

// Raw strings hide nothing from the lexer either.
const char* kRaw = R"doc(
  std::random_device inside a raw string is prose, not code.
  ~Fake() { throw 1; } stays prose too.
)doc";
