// Seeded violation: recursive acquisition of the same mutex. The nested
// guard deadlocks a std::mutex the moment both lines execute.
#include <mutex>

struct Account {
  void deposit(double amount) {
    std::lock_guard<std::mutex> outer(mu_);
    balance_ += amount;
    audit();  // looks harmless...
  }

  void audit() {
    // ...but re-locks the mutex the caller already holds.
    std::lock_guard<std::mutex> inner(mu_);
    last_audit_ = balance_;
  }

  void deposit_audited(double amount) {
    std::lock_guard<std::mutex> outer(mu_);
    balance_ += amount;
    std::lock_guard<std::mutex> again(mu_);  // the analyzer fires here
    last_audit_ = balance_;
  }

  std::mutex mu_;
  double balance_ = 0.0;
  double last_audit_ = 0.0;
};
