// Seeded violation: device randomness and libc rand() outside
// src/util/rng. Neither replays, so any schedule derived from them breaks
// the bit-identical determinism contract.
#include <cstdlib>
#include <random>

int pick_jitter_ms() {
  std::random_device dev;  // non-deterministic seed source
  return static_cast<int>(dev() % 100u);
}

int pick_backoff_ms() {
  return rand() % 100;  // unseeded global stream
}
