// Seeded violation: catch (...) that swallows every exception without
// rethrowing or recording anything — the failure simply vanishes.
struct Runner {
  bool step();

  void run_all() {
    for (;;) {
      try {
        if (!step()) return;
      } catch (...) {
      }
    }
  }
};
