// Clean: function-scope acknowledgement, marker inside the body. Any
// marker line within the definition span covers the whole function.
#include <cstddef>

namespace fixture {

long* g_defaults = nullptr;

void seed_defaults() {
  util::Arena arena;
  // chronus-analyzer: allow-fn(arena-escape) defaults are installed once
  // at startup and intentionally immortal.
  g_defaults =
      static_cast<long*>(arena.allocate(16 * sizeof(long), alignof(long)));
}

}  // namespace fixture
