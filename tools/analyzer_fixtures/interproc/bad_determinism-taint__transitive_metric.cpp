// Seeded violation: queue_age_ms() derives its result from
// system_clock::now(); recording it into a logical counter breaks the
// bit-identical replay of MetricsSnapshot::logical(). The taint only
// surfaces through the helper's summary.
#include <chrono>

namespace fixture {

double queue_age_ms(long enqueued_ms) {
  const auto now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count();
  return static_cast<double>(now_ms - enqueued_ms);
}

void sample(metrics::Registry& registry, long enqueued_ms) {
  registry.counter("update_queue_age_ms").add(queue_age_ms(enqueued_ms));
}

}  // namespace fixture
