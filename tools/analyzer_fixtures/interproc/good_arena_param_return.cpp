// Clean: the arena_new idiom (src/opt/arena_search.hpp). A helper that
// carves from a CALLER-provided arena may return the pointer — the
// caller owns the lifetime. Only function-local arenas must not leak.
#include <cstddef>
#include <new>

namespace fixture {

template <typename T>
T* arena_new(util::Arena* arena, const T& seed) {
  void* slot = arena->allocate(sizeof(T), alignof(T));
  return new (slot) T(seed);
}

long* carve_totals(util::Arena& arena, std::size_t n) {
  return static_cast<long*>(arena.allocate(n * sizeof(long), alignof(long)));
}

long sum_batch(util::Arena& arena, std::size_t n) {
  long* totals = carve_totals(arena, n);
  long acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += totals[i];
  return acc;
}

}  // namespace fixture
