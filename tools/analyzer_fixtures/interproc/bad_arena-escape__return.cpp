// Seeded violation: a function-local arena's storage is returned to the
// caller. The ArenaScope unwinds on return and the pointer dangles.
#include <cstddef>

namespace fixture {

int* make_table() {
  util::Arena arena;
  util::ArenaScope scope(arena);
  int* table = static_cast<int*>(arena.allocate(256 * sizeof(int), alignof(int)));
  table[0] = 1;  // element stores keep the base's lifetime history
  return table;
}

}  // namespace fixture
