// Clean: arena statistics accessors return plain numbers, not
// arena-backed storage — returning or caching them is not an escape.
#include <cstddef>

namespace fixture {

std::size_t peak_usage(std::size_t n) {
  util::Arena arena;
  util::ArenaScope scope(arena);
  int* scratch = static_cast<int*>(arena.allocate(n * sizeof(int), alignof(int)));
  scratch[0] = 1;
  return arena.used();
}

class PoolMonitor {
 public:
  void sample(std::size_t n) {
    util::Arena arena;
    char* buf = static_cast<char*>(arena.allocate(n, 1));
    buf[0] = 'x';
    bytes_ = arena.used();
    blocks_ = arena.block_count();
  }

 private:
  std::size_t bytes_ = 0;
  std::size_t blocks_ = 0;
};

}  // namespace fixture
