// Seeded violation: the wall-clock read hides inside a helper; its
// summary carries the taint into the digest function. Digests certify
// bit-identical replay, so any ambient input poisons them.
#include <chrono>

namespace fixture {

long stamp_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

unsigned long mix(unsigned long h, unsigned long v) {
  return (h ^ v) * 1099511628211ul;
}

unsigned long state_digest(unsigned long seed) {
  const long started = stamp_us();
  return mix(seed, static_cast<unsigned long>(started));
}

}  // namespace fixture
