// Seeded violation: a lambda captures a pointer carved from a local
// arena and is stored into a member, so the capture outlives the
// ArenaScope that owns the storage it points at.
#include <cstddef>

namespace fixture {

class Replay {
 public:
  void arm() {
    util::Arena arena;
    int* frame = static_cast<int*>(arena.allocate(32 * sizeof(int), alignof(int)));
    on_tick_ = [frame](int i) { return frame[i]; };
  }

 private:
  fixture_detail::TickFn on_tick_;
};

}  // namespace fixture
