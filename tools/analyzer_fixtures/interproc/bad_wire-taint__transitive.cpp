// Seeded violation: the decoder read hides inside frame_count(); the
// unvalidated 32-bit count still reaches .resize() in the caller via the
// helper's wire-taint summary. A hostile peer allocates gigabytes.
#include <cstddef>

namespace fixture {

std::size_t frame_count(rpc::Cursor& cur) { return cur.u32(); }

void load_frames(FrameTable& table, rpc::Cursor& cur) {
  const std::size_t n = frame_count(cur);
  table.slots.resize(n);
}

}  // namespace fixture
