// Seeded violation: a pointer carved from a function-local arena escapes
// into a global. The storage dies with the frame; the global keeps
// pointing at it forever.
#include <cstddef>

namespace fixture {

int* g_scratch = nullptr;

void warm_scratch(std::size_t n) {
  util::Arena arena;
  g_scratch = static_cast<int*>(arena.allocate(n * sizeof(int), alignof(int)));
}

}  // namespace fixture
