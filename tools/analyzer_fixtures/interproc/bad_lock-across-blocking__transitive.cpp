// Seeded violation: the call under the lock looks innocent, but its
// summary reaches poll(2) one hop down — publish() stalls every
// contender on mu_ for as long as the socket stays quiet.
#include <mutex>

namespace fixture {

class Worker {
 public:
  void drain_queue() { flush_socket(); }

  void flush_socket() { poll(nullptr, 0, -1); }

  void publish() {
    std::lock_guard<std::mutex> guard(mu_);
    seq_ = seq_ + 1;
    drain_queue();
  }

 private:
  std::mutex mu_;
  long seq_ = 0;
};

}  // namespace fixture
