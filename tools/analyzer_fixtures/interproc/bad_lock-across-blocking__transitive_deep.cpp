// Seeded violation: the blocking primitive hides three calls down
// (open -> settle_all -> settle_round -> settle -> accept(2)). Only the
// fixpointed function summaries can see through the whole chain.
#include <mutex>

namespace fixture {

int settle() { return accept(3, nullptr, nullptr); }

int settle_round() { return settle(); }

int settle_all() { return settle_round(); }

class Gate {
 public:
  void open() {
    std::lock_guard<std::mutex> guard(mu_);
    settle_all();
  }

 private:
  std::mutex mu_;
};

}  // namespace fixture
