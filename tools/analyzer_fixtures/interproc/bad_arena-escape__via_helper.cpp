// Seeded violation: the arena-backed pointer takes a detour through a
// helper. carve_row() legitimately returns caller-arena storage (the
// arena_new idiom) — but the caller's arena is function-local, so caching
// the result in a member still escapes the ArenaScope. Only the
// cross-function summary sees this.
#include <cstddef>

namespace fixture {

double* carve_row(util::Arena& arena, std::size_t n) {
  return static_cast<double*>(
      arena.allocate(n * sizeof(double), alignof(double)));
}

class RowCache {
 public:
  void refresh() {
    util::Arena arena;
    row_ = carve_row(arena, 16);
  }

 private:
  double* row_ = nullptr;
};

}  // namespace fixture
