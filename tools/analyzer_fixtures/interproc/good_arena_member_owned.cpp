// Clean: the build_arena idiom (src/timenet/time_extended.cpp). An
// object that owns its arena as a member may cache pointers carved from
// it in other members — pointer and storage share one lifetime.
#include <cstddef>

namespace fixture {

class SchedulePlan {
 public:
  void build(std::size_t n) {
    slots_ = static_cast<int*>(arena_.allocate(n * sizeof(int), alignof(int)));
    width_ = n;
  }

  std::size_t width() const { return width_; }

 private:
  util::Arena arena_;
  int* slots_ = nullptr;
  std::size_t width_ = 0;
};

}  // namespace fixture
