// Seeded violation: a pointer carved from a function-local arena is
// stashed in a member field. The ArenaScope unwinds when build() returns
// and the cached pointer dangles on the very next read.
#include <cstddef>

namespace fixture {

class PathCache {
 public:
  void build() {
    util::Arena arena;
    util::ArenaScope scope(arena);
    hops_ = static_cast<int*>(arena.allocate(64 * sizeof(int), alignof(int)));
  }

 private:
  int* hops_ = nullptr;
};

}  // namespace fixture
