// Clean: function-scope acknowledgement, marker on the line above the
// definition head. The allow-fn form suppresses the named rule for the
// whole function body, not just one line.
#include <cstddef>

namespace fixture {

int* g_boot_table = nullptr;

// The boot table lives for the process lifetime; its arena is never reset.
// chronus-analyzer: allow-fn(arena-escape)
void install_boot_table() {
  util::Arena arena;
  g_boot_table =
      static_cast<int*>(arena.allocate(64 * sizeof(int), alignof(int)));
}

}  // namespace fixture
