// Seeded violation: even a CALLER-provided arena must not leak into a
// global — the global outlives every arena, including the caller's.
// (Returning caller-arena storage is fine; storing it globally is not.)
#include <cstddef>

namespace fixture {

long* g_last_row = nullptr;

void record_row(util::Arena& arena, std::size_t n) {
  g_last_row =
      static_cast<long*>(arena.allocate(n * sizeof(long), alignof(long)));
}

}  // namespace fixture
