// Clean: function-scope acknowledgement, block-comment form directly
// above the definition head.
#include <cstddef>

namespace fixture {

short* g_row = nullptr;

/* chronus-analyzer: allow-fn(arena-escape)
   The registry row is copied out by the consumer before the next call;
   the dangling window is acknowledged in DESIGN.md section 17. */
void publish_row() {
  util::Arena arena;
  g_row = static_cast<short*>(arena.allocate(8 * sizeof(short), alignof(short)));
}

}  // namespace fixture
