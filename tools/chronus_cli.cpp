// chronus_cli — drive the library from the command line.
//
//   chronus_cli example --name=fig1 > fig1.inst
//   chronus_cli schedule --instance=fig1.inst [--algo=greedy] > fig1.sched
//   chronus_cli schedule-flows --instance=flows.inst [--mode=joint|seq]
//   chronus_cli verify --instance=fig1.inst --schedule=fig1.sched
//   chronus_cli or-plan --instance=fig1.inst
//   chronus_cli dot --instance=fig1.inst [--schedule=fig1.sched]
//   chronus_cli trace --requests=200 [--rate=40] [--conflict=0.5] > w.trace
//   chronus_cli serve --trace=w.trace [--workers=4] [--json=report.json]
//                     [--metrics=metrics.json] [--via-intake]
//                     [--listen=PORT] [--codec=binary|json] [--connections=N]
//                     [--intake-cap=N] [--intake-soft=N] [--trigger-depth=N]
//
// Algorithms for `schedule`: greedy (Algorithm 2, verifier-guarded),
// pure (paper-literal Algorithm 2), chain (longest-chain-first), restart
// (best of N randomized restarts), sweep (Algorithm 1 witness), opt
// (branch-and-bound under --timeout seconds).
//
// `serve` drives the online update service (src/service) over a request
// trace: admission, ledger reservation, worker-pool planning and timed
// execution; exits non-zero if any accepted plan failed re-verification.
// With --listen=PORT (0 = ephemeral) the trace is instead served through
// the rpc socket front-end (src/rpc): an rpc::Server is started on
// loopback and the trace is replayed into it by the multi-connection load
// driver, printing one report per planning round. --via-intake keeps the
// in-process path but routes the requests through the bounded
// service::IntakeQueue, the same queue the socket sessions feed.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>

#include "core/feasibility_tree.hpp"
#include "core/multi_flow.hpp"
#include "core/heuristics.hpp"
#include "io/dot.hpp"
#include "io/instance_io.hpp"
#include "io/trace_io.hpp"
#include "net/generators.hpp"
#include "obs/metrics.hpp"
#include "opt/mutp_bnb.hpp"
#include "opt/order_bnb.hpp"
#include "rpc/load_driver.hpp"
#include "rpc/server.hpp"
#include "service/intake_queue.hpp"
#include "service/workload.hpp"
#include "timenet/verifier.hpp"
#include "util/cli.hpp"
#include "util/json_writer.hpp"

using namespace chronus;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: chronus_cli <command> [--flags]\n"
               "  example  --name=fig1|random [--n=N] [--seed=N]\n"
               "  schedule --instance=FILE [--algo=greedy|pure|chain|restart|"
               "sweep|opt] [--timeout=SEC]\n"
               "  schedule-flows --instance=FILE [--mode=joint|seq]\n"
               "  verify   --instance=FILE --schedule=FILE\n"
               "  or-plan  --instance=FILE\n"
               "  dot      --instance=FILE [--schedule=FILE]\n"
               "  trace    [--requests=N] [--rate=HZ] [--conflict=P]"
               " [--pairs=N] [--rescue=N] [--seed=N] [--out=FILE]\n"
               "           [--metrics=FILE]\n"
               "  serve    --trace=FILE [--workers=N] [--epoch-ms=N]"
               " [--step-ms=N] [--seed=N]\n"
               "           [--max-defers=N] [--plan-only] [--json=FILE]"
               " [--metrics=FILE]\n"
               "           [--via-intake] [--intake-cap=N] [--intake-soft=N]\n"
               "           [--listen=PORT] [--codec=binary|json]"
               " [--connections=N] [--trigger-depth=N]\n");
  return 2;
}

net::UpdateInstance load_instance(const util::Cli& cli) {
  const std::string path = cli.get("instance", "");
  if (path.empty()) throw std::runtime_error("--instance is required");
  return io::read_instance_file(path);
}

int cmd_example(const util::Cli& cli) {
  const std::string name = cli.get("name", "fig1");
  if (name == "fig1") {
    io::write_instance(std::cout, net::fig1_instance());
    return 0;
  }
  if (name == "random") {
    net::RandomInstanceOptions opt;
    opt.n = static_cast<std::size_t>(cli.get_int("n", 10));
    util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));
    io::write_instance(std::cout, net::random_instance(opt, rng));
    return 0;
  }
  std::fprintf(stderr, "unknown example: %s\n", name.c_str());
  return 2;
}

int report_schedule(const net::UpdateInstance& inst,
                    const timenet::UpdateSchedule& sched, bool feasible,
                    const std::string& message) {
  if (!feasible) {
    std::fprintf(stderr, "no feasible schedule: %s\n", message.c_str());
    return 1;
  }
  io::write_schedule(std::cout, inst, sched);
  const auto report = timenet::verify_transition(inst, sched);
  std::fprintf(stderr, "# %zu switches in %lld step(s); verification: %s\n",
               sched.size(), static_cast<long long>(sched.step_span()),
               report.ok() ? "clean" : report.to_string(inst.graph()).c_str());
  return report.ok() ? 0 : 1;
}

int cmd_schedule(const util::Cli& cli) {
  const auto inst = load_instance(cli);
  const std::string algo = cli.get("algo", "greedy");
  if (algo == "greedy" || algo == "pure") {
    core::GreedyOptions opts;
    opts.guard_with_verifier = algo == "greedy";
    const auto res = core::greedy_schedule(inst, opts);
    return report_schedule(inst, res.schedule, res.feasible(), res.message);
  }
  if (algo == "chain") {
    const auto res = core::chain_priority_schedule(inst);
    return report_schedule(inst, res.schedule, res.feasible(), res.message);
  }
  if (algo == "restart") {
    util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));
    const auto res = core::randomized_restart_schedule(inst, rng);
    return report_schedule(inst, res.schedule, res.feasible(), res.message);
  }
  if (algo == "sweep") {
    const auto res = core::tree_feasibility_check(inst);
    return report_schedule(inst, res.witness, res.feasible, res.message);
  }
  if (algo == "opt") {
    opt::MutpOptions opts;
    opts.timeout_sec = cli.get_double("timeout", 10.0);
    const auto res = opt::solve_mutp(inst, opts);
    if (res.feasible() && !res.proved_optimal) {
      std::fprintf(stderr, "# warning: optimality not proved (%s)\n",
                   res.message.c_str());
    }
    return report_schedule(inst, res.schedule, res.feasible(), res.message);
  }
  std::fprintf(stderr, "unknown algorithm: %s\n", algo.c_str());
  return 2;
}

int cmd_schedule_flows(const util::Cli& cli) {
  const std::string path = cli.get("instance", "");
  if (path.empty()) throw std::runtime_error("--instance is required");
  const auto flows = io::read_flows_file(path);
  const std::string mode = cli.get("mode", "joint");
  const auto res = mode == "seq"
                       ? core::schedule_flows_sequentially(flows)
                       : core::schedule_flows_jointly(flows);
  if (!res.feasible()) {
    std::fprintf(stderr, "no feasible multi-flow plan: %s\n",
                 res.message.c_str());
    return 1;
  }
  for (std::size_t k = 0; k < flows.size(); ++k) {
    std::printf("# flow %zu\n", k);
    io::write_schedule(std::cout, flows[k], res.schedules[k]);
  }
  std::fprintf(stderr, "# %zu flows, %s composition, total span %lld\n",
               flows.size(), mode.c_str(),
               static_cast<long long>(res.total_span));
  return 0;
}

int cmd_verify(const util::Cli& cli) {
  const auto inst = load_instance(cli);
  const std::string spath = cli.get("schedule", "");
  if (spath.empty()) throw std::runtime_error("--schedule is required");
  std::ifstream in(spath);
  if (!in) throw std::runtime_error("cannot open " + spath);
  const auto sched = io::read_schedule(in, inst);
  const auto report = timenet::verify_transition(inst, sched);
  std::printf("%s", report.to_string(inst.graph()).c_str());
  return report.ok() ? 0 : 1;
}

int cmd_or_plan(const util::Cli& cli) {
  const auto inst = load_instance(cli);
  const auto plan = opt::solve_order_replacement(inst);
  if (!plan.feasible) {
    std::fprintf(stderr, "no loop-free round sequence: %s\n",
                 plan.message.c_str());
    return 1;
  }
  for (std::size_t r = 0; r < plan.rounds.size(); ++r) {
    std::printf("round %zu:", r + 1);
    for (const auto v : plan.rounds[r]) {
      std::printf(" %s", inst.graph().name(v).c_str());
    }
    std::printf("\n");
  }
  std::fprintf(stderr, "# %zu round(s)%s\n", plan.round_count(),
               plan.proved_optimal ? ", round-minimal" : "");
  return 0;
}

int cmd_trace(const util::Cli& cli) {
  const obs::MetricsSidecar metrics(cli.get("metrics", ""), "chronus_cli.trace");
  service::WorkloadOptions opt;
  opt.requests = static_cast<int>(cli.get_int("requests", 200));
  opt.arrival_rate_hz = cli.get_double("rate", 40.0);
  opt.conflict_density = cli.get_double("conflict", 0.5);
  opt.pairs = static_cast<int>(cli.get_int("pairs", 8));
  opt.oversize_prob = cli.get_double("oversize", 0.0);
  opt.rescue_sites = static_cast<int>(cli.get_int("rescue", 0));
  opt.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string out = cli.get("out", "");
  if (out.empty()) {
    io::write_trace(std::cout, service::make_workload(opt));
  } else {
    std::ofstream file(out);
    if (!file) throw std::runtime_error("cannot open " + out);
    io::write_trace(file, service::make_workload(opt));
  }
  return 0;
}

int cmd_serve(const util::Cli& cli) {
  const obs::MetricsSidecar metrics(cli.get("metrics", ""), "chronus_cli.serve");
  const std::string path = cli.get("trace", "");
  if (path.empty()) throw std::runtime_error("--trace is required");
  const service::ServiceTrace trace = io::read_trace_file(path);

  service::ServiceOptions opts;
  opts.workers = static_cast<int>(cli.get_int("workers", 4));
  opts.epoch = cli.get_int("epoch-ms", 50) * sim::kMillisecond;
  opts.step_unit = cli.get_int("step-ms", 50) * sim::kMillisecond;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  opts.execute = !cli.get_bool("plan-only", false);
  opts.admission.max_defers =
      static_cast<int>(cli.get_int("max-defers", opts.admission.max_defers));
  const std::string json_path = cli.get("json", "");

  const std::size_t intake_cap =
      static_cast<std::size_t>(cli.get_int("intake-cap", 256));
  const std::size_t intake_soft =
      static_cast<std::size_t>(cli.get_int("intake-soft", 0));
  const long long listen_port = cli.get_int("listen", -1);

  service::ServiceReport report;
  if (listen_port >= 0) {
    // Socket front-end: serve the request stream to ourselves over
    // loopback through the rpc server, exactly as a remote client would.
    rpc::ServerOptions sopts;
    sopts.port = static_cast<std::uint16_t>(listen_port);
    sopts.intake_capacity = intake_cap;
    sopts.intake_soft_limit = intake_soft;
    sopts.round_trigger_depth =
        static_cast<std::size_t>(cli.get_int("trigger-depth", 0));
    sopts.service = opts;
    rpc::Server server(trace.graph, sopts);
    server.start();
    std::fprintf(stderr, "# listening on %s:%u\n", sopts.host.c_str(),
                 static_cast<unsigned>(server.port()));

    rpc::LoadOptions lopts;
    lopts.port = server.port();
    lopts.codec =
        cli.get("codec", "binary") == "json" ? rpc::Codec::kJson
                                             : rpc::Codec::kBinary;
    lopts.connections =
        static_cast<std::size_t>(cli.get_int("connections", 4));
    const rpc::LoadResult load =
        rpc::run_load(trace.graph, trace.requests, lopts);
    server.join();
    const rpc::ServerStats stats = server.stats();
    std::fprintf(stderr,
                 "# rpc: %llu session(s), %llu submit(s), %llu deferred, "
                 "%llu rejected, %llu round(s)\n",
                 static_cast<unsigned long long>(stats.sessions),
                 static_cast<unsigned long long>(stats.submits),
                 static_cast<unsigned long long>(stats.deferred),
                 static_cast<unsigned long long>(stats.rejected),
                 static_cast<unsigned long long>(stats.rounds));
    if (!load.ok) {
      std::fprintf(stderr, "# load driver failed: %s\n", load.error.c_str());
      return 1;
    }
    const auto rounds = server.round_reports();
    int violations = 0;
    for (std::size_t i = 0; i < rounds.size(); ++i) {
      std::printf("== round %zu ==\n%s", i + 1, rounds[i].to_string().c_str());
      violations += rounds[i].violations;
    }
    if (violations != 0) {
      std::fprintf(stderr, "# %d verifier violation(s)\n", violations);
      return 1;
    }
    return 0;
  }

  service::UpdateService svc(trace.graph, opts);
  if (cli.get_bool("via-intake", false)) {
    // Same run, but fed through the bounded transport-agnostic intake
    // queue (a producer thread stands in for the wire).
    service::IntakeQueue intake(intake_cap, intake_soft);
    std::thread producer([&trace, &intake] {
      for (const service::UpdateRequest& r : trace.requests) {
        if (!intake.push_wait(r)) break;
      }
      intake.close();
    });
    report = svc.run_intake(intake);
    producer.join();
  } else {
    report = svc.run(trace);
  }
  std::printf("%s", report.to_string().c_str());

  if (!json_path.empty()) {
    util::JsonWriter json(json_path, "serve");
    json.meta("trace", path);
    json.meta("workers", static_cast<std::int64_t>(opts.workers));
    json.meta("seed", static_cast<std::int64_t>(opts.seed));
    for (const service::RequestRecord& r : report.records) {
      json.begin_row();
      json.field("id", r.id);
      json.field("status", std::string(service::to_string(r.status)));
      json.field("arrival_us", r.arrival);
      json.field("admitted_us", r.admitted);
      json.field("completed_us", r.completed);
      json.field("defers", static_cast<std::int64_t>(r.defers));
      json.field("joint", r.joint);
      json.field("plan_span", r.plan_span);
      json.field("exec_duration_us", r.exec_duration);
      json.field("retries", static_cast<std::int64_t>(r.exec_retries));
      json.field("violations", static_cast<std::int64_t>(r.violations));
      json.end_row();
    }
  }
  if (report.violations != 0) {
    std::fprintf(stderr, "# %d verifier violation(s)\n", report.violations);
    return 1;
  }
  return 0;
}

int cmd_dot(const util::Cli& cli) {
  const auto inst = load_instance(cli);
  const std::string spath = cli.get("schedule", "");
  if (spath.empty()) {
    std::printf("%s", io::to_dot(inst).c_str());
    return 0;
  }
  std::ifstream in(spath);
  if (!in) throw std::runtime_error("cannot open " + spath);
  const auto sched = io::read_schedule(in, inst);
  std::printf("%s", io::to_dot(inst, &sched).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const util::Cli cli(argc - 1, argv + 1);
    if (command == "example") return cmd_example(cli);
    if (command == "schedule") return cmd_schedule(cli);
    if (command == "schedule-flows") return cmd_schedule_flows(cli);
    if (command == "verify") return cmd_verify(cli);
    if (command == "or-plan") return cmd_or_plan(cli);
    if (command == "trace") return cmd_trace(cli);
    if (command == "serve") return cmd_serve(cli);
    if (command == "dot") return cmd_dot(cli);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
