// Minimal SARIF 2.1.0 emitter shared by chronus_lint and chronus_analyzer.
//
// Deliberately self-contained (no chronus library dependency): the
// analysis tools must stay buildable even when the tree they analyse does
// not compile. Emits exactly the subset GitHub code scanning consumes —
// one run, one driver, rule metadata, and physical locations with
// repo-relative URIs — so findings annotate PR diffs when the CI lint job
// uploads the file.
#pragma once

#include <fstream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace chronus_tools {

/// One step of an interprocedural witness chain (the call path an
/// analyzer finding travelled through). Rendered as SARIF
/// `relatedLocations` so code-scanning viewers show the whole chain.
struct RelatedLocation {
  std::string file;  // repo-relative, forward slashes
  long line = 0;
  std::string note;  // e.g. "helper() returns wall-clock value"
};

struct SarifResult {
  std::string rule;
  std::string file;  // repo-relative, forward slashes
  long line = 0;
  std::string message;
  std::vector<RelatedLocation> related;
};

/// The finding currency shared by chronus_lint and chronus_analyzer: both
/// tools used to hand-roll an identical struct plus the printing and
/// SARIF-conversion plumbing around it; this is the single home now.
struct Finding {
  Finding() = default;
  Finding(std::string file_, long line_, std::string rule_,
          std::string message_)
      : file(std::move(file_)),
        line(line_),
        rule(std::move(rule_)),
        message(std::move(message_)) {}

  std::string file;  // path relative to the analysis root
  long line = 0;
  std::string rule;
  std::string message;
  /// Interprocedural call-chain witness, outermost first; empty for
  /// intra-procedural findings.
  std::vector<RelatedLocation> related;
};

/// Rule id -> one-line description. The catalog doubles as the SARIF rule
/// metadata (rules that never fired are still listed so the viewer can
/// show the full gate) and as the `--help` rule listing.
using RuleCatalog = std::map<std::string, std::string>;

inline void print_findings(const std::vector<Finding>& findings,
                           std::ostream& os) {
  for (const auto& f : findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
    for (const auto& r : f.related) {
      os << "    via " << r.file << ":" << r.line << ": " << r.note << "\n";
    }
  }
}

inline std::string sarif_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Writes `results` as a single-run SARIF log for driver `tool`.
/// `rule_help` maps every rule id to its short description (rules that
/// never fired are still listed, so the viewer can show the full gate).
/// Returns false when the file cannot be opened.
inline bool write_sarif(const std::string& path, const std::string& tool,
                        const std::map<std::string, std::string>& rule_help,
                        const std::vector<SarifResult>& results) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n"
      << "          \"name\": \"" << sarif_escape(tool) << "\",\n"
      << "          \"rules\": [\n";
  bool first = true;
  for (const auto& [id, help] : rule_help) {
    if (!first) out << ",\n";
    first = false;
    out << "            {\"id\": \"" << sarif_escape(id)
        << "\", \"shortDescription\": {\"text\": \"" << sarif_escape(help)
        << "\"}}";
  }
  out << "\n          ]\n        }\n      },\n      \"results\": [\n";
  first = true;
  for (const auto& r : results) {
    if (!first) out << ",\n";
    first = false;
    out << "        {\"ruleId\": \"" << sarif_escape(r.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << sarif_escape(r.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << sarif_escape(r.file)
        << "\"}, \"region\": {\"startLine\": " << (r.line > 0 ? r.line : 1)
        << "}}}]";
    if (!r.related.empty()) {
      out << ", \"relatedLocations\": [";
      bool first_rel = true;
      for (const auto& rel : r.related) {
        if (!first_rel) out << ", ";
        first_rel = false;
        out << "{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
            << sarif_escape(rel.file) << "\"}, \"region\": {\"startLine\": "
            << (rel.line > 0 ? rel.line : 1)
            << "}}, \"message\": {\"text\": \"" << sarif_escape(rel.note)
            << "\"}}";
      }
      out << "]";
    }
    out << "}";
  }
  out << "\n      ]\n    }\n  ]\n}\n";
  return out.good();
}

/// The Finding-typed front door both tools call: converts to SarifResult
/// rows and writes the single-run log with the catalog as rule metadata.
inline bool write_findings_sarif(const std::string& path,
                                 const std::string& tool,
                                 const RuleCatalog& catalog,
                                 const std::vector<Finding>& findings) {
  std::vector<SarifResult> results;
  results.reserve(findings.size());
  for (const auto& f : findings) {
    results.push_back({f.rule, f.file, f.line, f.message, f.related});
  }
  return write_sarif(path, tool, catalog, results);
}

}  // namespace chronus_tools
