// chronus_analyzer — token-level and dataflow static analysis for the
// invariants the line-oriented chronus_lint cannot see.
//
// The tool is split across tools/analyzer/:
//   lex.hpp       comment/string/raw-string-aware tokenizer + inline
//                 `// chronus-analyzer: allow(<rule>)` acknowledgements
//                 (same line or the line(s) above).
//   passes.hpp    the classic passes: layering against tools/layering.toml
//                 (layer-back-edge, layer-undeclared, include-cycle,
//                 manifest-cycle), lock discipline (double-lock,
//                 lock-across-blocking, naked-lock), determinism &
//                 exception hygiene (stray-random, throw-in-dtor,
//                 swallowed-catch).
//   dataflow.hpp  the per-TU symbol-table + taint engine behind
//                 determinism-taint, wire-taint, unit-provenance and
//                 arena-escape; consumes the whole-program summary table
//                 when one is supplied.
//   callgraph.hpp per-TU function/call-site extraction feeding the
//                 whole-program call graph.
//   summaries.hpp the cross-TU summary fixpoint (Tarjan SCCs, bottom-up)
//                 plus the transitive lock-across-blocking pass.
//   alloc.hpp     the hot-path allocation pass (hot-alloc): keeps the
//                 arena-managed modules (src/timenet, src/opt) off the
//                 default heap.
//   cache.hpp     content-hash FileFacts cache shared by every per-file
//                 pass, so a warm tree scan lexes nothing.
//
// This file is the driver: a `--jobs=N` worker pool reads + hashes +
// analyzes (or cache-loads) each file, the cross-file layering pass runs
// over the summaries, findings are sorted, optionally diffed against a
// checked-in baseline (`--baseline FILE --baseline-diff`: CI fails only
// on findings *beyond* the baselined count per rule+file), and emitted as
// text and/or SARIF.
//
// Usage:
//   chronus_analyzer [--root DIR] [--manifest FILE] [--passes=classic|
//       taint|alloc|all] [--jobs=N] [--cache=DIR|--no-cache] [--baseline FILE
//       [--baseline-diff]] [--write-baseline FILE] [--sarif=FILE]
//       [subdir...]
//   chronus_analyzer --self-test --fixtures DIR [--no-fixture-tree]
//       [--sarif=FILE]
//
// Exits 0 when clean / self-test matches, 1 on findings, 2 on usage or
// manifest errors.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "analyzer/alloc.hpp"
#include "analyzer/cache.hpp"
#include "analyzer/callgraph.hpp"
#include "analyzer/dataflow.hpp"
#include "analyzer/lex.hpp"
#include "analyzer/passes.hpp"
#include "analyzer/summaries.hpp"
#include "sarif.hpp"

namespace fs = std::filesystem;

using chronus_analyzer::AnalysisCache;
using chronus_analyzer::FileFacts;
using chronus_analyzer::LexedFile;
using chronus_analyzer::Manifest;
using chronus_analyzer::SourceFile;
using chronus_tools::Finding;

namespace {

const chronus_tools::RuleCatalog& rule_catalog() {
  static const chronus_tools::RuleCatalog kRules = {
      {"layer-back-edge",
       "include edge not declared in the module DAG (tools/layering.toml)"},
      {"layer-undeclared", "module missing from the layering manifest"},
      {"include-cycle", "file-level #include cycle"},
      {"manifest-cycle", "the declared layering DAG is itself cyclic"},
      {"double-lock", "RAII guard on a mutex already held in this scope"},
      {"lock-across-blocking",
       "blocking call made while holding a lock"},
      {"naked-lock",
       "manual lock()/unlock() pair instead of an RAII guard"},
      {"stray-random",
       "rand/srand/std::random_device outside src/util/rng"},
      {"throw-in-dtor", "throw inside a destructor body"},
      {"swallowed-catch",
       "catch (...) that neither rethrows nor reports"},
      {"determinism-taint",
       "wall-clock/ambient value reaches a determinism sink (digest, "
       "logical metric, codec-encoded field) without masking"},
      {"wire-taint",
       "unvalidated wire-derived value reaches an allocation, array "
       "index, or loop bound"},
      {"unit-provenance",
       "raw arithmetic on a value that crossed a TimeStep/Demand/Capacity "
       "strong-type boundary"},
      {"hot-alloc",
       "heap allocation (new/make_unique/make_shared/ostringstream/"
       "default-allocator container) on an arena-managed hot path "
       "(src/timenet, src/opt) without an allow(hot-alloc) acknowledgement"},
      {"arena-escape",
       "arena-backed pointer/reference/view escapes the owning ArenaScope: "
       "stored into a member or global, captured by an escaping lambda, or "
       "returned from the function that owns the arena"},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Pass selection
// ---------------------------------------------------------------------------

struct PassSet {
  bool classic = true;  // layering + lock + determinism hygiene
  bool taint = true;    // the dataflow engine
  bool alloc = true;    // hot-path allocation discipline (arena modules)
  bool escape = true;   // arena-escape lifetime analysis

  /// Any pass that consumes the whole-program summary table (phase B/C):
  /// classic feeds the transitive lock upgrade, taint/escape the
  /// interprocedural dataflow run.
  bool interproc() const { return classic || taint || escape; }

  unsigned emit_mask() const {
    return (taint ? chronus_analyzer::kEmitTaintRules : 0u) |
           (escape ? chronus_analyzer::kEmitEscape : 0u);
  }

  std::string config_string() const {
    return std::string("classic=") + (classic ? "1" : "0") +
           ";taint=" + (taint ? "1" : "0") + ";alloc=" + (alloc ? "1" : "0") +
           ";escape=" + (escape ? "1" : "0");
  }
};

/// Runs every enabled per-file pass and packs the result into the
/// cacheable FileFacts summary. Pure function of (rel, content, passes) —
/// which is exactly the cache contract.
FileFacts analyze_file(const fs::path& path, const std::string& rel,
                       const std::string& content, const PassSet& passes) {
  SourceFile f;
  f.path = path;
  f.rel = rel;
  if (rel.rfind("src/", 0) == 0) {
    const std::size_t slash = rel.find('/', 4);
    if (slash != std::string::npos) f.module = rel.substr(4, slash - 4);
  }
  f.lexed = chronus_analyzer::lex(content);

  FileFacts facts;
  facts.rel = f.rel;
  facts.module = f.module;
  facts.includes = chronus_analyzer::quoted_includes(f.lexed);
  facts.allowances = f.lexed.allowances;
  facts.fn_allowances = f.lexed.fn_allowances;
  // The function table feeds the whole-program summary fixpoint (phase B).
  // Extracted under every pass set — the serialized form is tiny, and one
  // shape per content hash keeps the cache simple.
  facts.fns = chronus_analyzer::extract_functions(f.lexed);
  if (passes.classic) {
    chronus_analyzer::lock_pass(f, facts.findings);
    chronus_analyzer::determinism_pass(f, facts.findings);
  }
  if (passes.taint || passes.escape) {
    // Taint findings moved to phase C (the interprocedural run, which
    // re-emits the intra-procedural set with whole-program summaries
    // visible); phase A only computes each function's local return taint.
    const chronus_analyzer::TaintSummaries sum =
        chronus_analyzer::collect_taint_summaries(f);
    for (chronus_analyzer::FnDef& fn : facts.fns) {
      const auto it = sum.fn_return.find(fn.name);
      if (it != sum.fn_return.end()) fn.local_return_taint = it->second;
    }
  }
  if (passes.alloc) {
    chronus_analyzer::hot_alloc_pass(f, facts.findings);
  }
  return facts;
}

// ---------------------------------------------------------------------------
// Tree walking — parallel over files, cache-aware
// ---------------------------------------------------------------------------

bool is_source(const fs::path& p) {
  return p.extension() == ".cpp" || p.extension() == ".hpp";
}

std::vector<fs::path> list_sources(const fs::path& root,
                                   const std::vector<std::string>& subdirs) {
  std::vector<fs::path> paths;
  for (const std::string& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && is_source(entry.path())) {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

struct TreeScan {
  std::vector<FileFacts> facts;
  // Parallel to `facts`: the file's bytes and path, kept for phase C
  // (the interprocedural run re-lexes content; a whole src tree is a few
  // hundred KB, far cheaper than a second read pass).
  std::vector<std::string> contents;
  std::vector<fs::path> paths;
  std::size_t cache_hits = 0;
};

TreeScan scan_tree(const fs::path& root, const std::vector<fs::path>& paths,
                   const PassSet& passes, const AnalysisCache& cache,
                   unsigned jobs) {
  TreeScan scan;
  scan.facts.resize(paths.size());
  scan.contents.resize(paths.size());
  scan.paths = paths;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> hits{0};

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= paths.size()) return;
      std::ifstream in(paths[i], std::ios::binary);
      if (!in) continue;
      std::ostringstream buf;
      buf << in.rdbuf();
      scan.contents[i] = buf.str();
      const std::string& content = scan.contents[i];
      const std::string rel =
          fs::relative(paths[i], root).generic_string();
      // The file's identity is part of the key: identical bytes at two
      // paths must not share an entry (rel feeds module + findings).
      const std::string key = cache.key_for(rel + '\x1f' + content);
      if (cache.load(key, &scan.facts[i])) {
        hits.fetch_add(1);
        continue;
      }
      scan.facts[i] = analyze_file(paths[i], rel, content, passes);
      cache.store(key, scan.facts[i]);
    }
  };

  if (jobs <= 1 || paths.size() <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    const unsigned n = std::min<unsigned>(
        jobs, static_cast<unsigned>(paths.size()));
    pool.reserve(n);
    for (unsigned i = 0; i < n; ++i) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }
  scan.cache_hits = hits.load();
  // Drop unreadable files (empty rel) so downstream passes see real facts,
  // keeping the parallel vectors aligned.
  std::size_t w = 0;
  for (std::size_t i = 0; i < scan.facts.size(); ++i) {
    if (scan.facts[i].rel.empty()) continue;
    if (w != i) {
      scan.facts[w] = std::move(scan.facts[i]);
      scan.contents[w] = std::move(scan.contents[i]);
      scan.paths[w] = std::move(scan.paths[i]);
    }
    ++w;
  }
  scan.facts.resize(w);
  scan.contents.resize(w);
  scan.paths.resize(w);
  return scan;
}

// ---------------------------------------------------------------------------
// Phase C: the interprocedural run over the whole-program summary table
// ---------------------------------------------------------------------------

/// Runs the summary-consuming passes for one TU and appends the findings:
/// the interprocedural dataflow engine (taint + arena-escape, per the emit
/// mask) and the transitive lock-across-blocking upgrade.
void interproc_file(const fs::path& path, const FileFacts& facts,
                    const std::string& content,
                    const chronus_analyzer::GlobalSummaries& global,
                    const PassSet& passes, std::vector<Finding>* out) {
  if (passes.taint || passes.escape) {
    SourceFile f;
    f.path = path;
    f.rel = facts.rel;
    f.module = facts.module;
    f.lexed = chronus_analyzer::lex(content);
    chronus_analyzer::interproc_dataflow_pass(f, global, passes.emit_mask(),
                                              *out);
  }
  if (passes.classic) {
    chronus_analyzer::transitive_lock_pass(facts, global, *out);
  }
}

struct InterprocStats {
  std::size_t analyzed = 0;  // TUs whose phase-C result was recomputed
  std::size_t cached = 0;    // TUs served from the summary-keyed cache
};

/// Phase C over the tree: per TU, cached under content *plus* the hash of
/// every reachable whole-program summary — so editing a leaf callee
/// re-analyzes exactly the TUs that can see it through the call graph.
std::vector<Finding> interproc_tree(
    const TreeScan& scan, const chronus_analyzer::GlobalSummaries& global,
    const PassSet& passes, const AnalysisCache& cache, unsigned jobs,
    InterprocStats* stats) {
  std::vector<std::vector<Finding>> per_file(scan.facts.size());
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> analyzed{0}, cached{0};

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= scan.facts.size()) return;
      const FileFacts& facts = scan.facts[i];
      const std::string key = cache.key_for(
          "ipf\x1f" + facts.rel + '\x1f' +
          chronus_analyzer::hex64(global.reachable_hash(facts)) + '\x1f' +
          scan.contents[i]);
      if (cache.load_findings(key, &per_file[i])) {
        cached.fetch_add(1);
        continue;
      }
      interproc_file(scan.paths[i], facts, scan.contents[i], global, passes,
                     &per_file[i]);
      cache.store_findings(key, facts.rel, per_file[i]);
      analyzed.fetch_add(1);
    }
  };

  if (jobs <= 1 || scan.facts.size() <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    const unsigned n = std::min<unsigned>(
        jobs, static_cast<unsigned>(scan.facts.size()));
    pool.reserve(n);
    for (unsigned i = 0; i < n; ++i) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }
  if (stats != nullptr) {
    stats->analyzed = analyzed.load();
    stats->cached = cached.load();
  }
  std::vector<Finding> out;
  for (auto& fs_findings : per_file) {
    out.insert(out.end(), fs_findings.begin(), fs_findings.end());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Baseline: rule<TAB>file<TAB>count, sorted; CI fails only on growth
// ---------------------------------------------------------------------------

using BaselineCounts = std::map<std::pair<std::string, std::string>, long>;

BaselineCounts count_findings(const std::vector<Finding>& findings) {
  BaselineCounts counts;
  for (const Finding& f : findings) ++counts[{f.rule, f.file}];
  return counts;
}

bool load_baseline(const fs::path& path, BaselineCounts* out,
                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open baseline " + path.string();
    return false;
  }
  std::string line;
  long lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t t1 = line.find('\t');
    const std::size_t t2 =
        t1 == std::string::npos ? std::string::npos : line.find('\t', t1 + 1);
    if (t2 == std::string::npos) {
      *error = path.string() + ":" + std::to_string(lineno) +
               ": expected rule<TAB>file<TAB>count";
      return false;
    }
    (*out)[{line.substr(0, t1), line.substr(t1 + 1, t2 - t1 - 1)}] =
        std::stol(line.substr(t2 + 1));
  }
  return true;
}

bool write_baseline(const fs::path& path, const BaselineCounts& counts) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# chronus_analyzer findings baseline: rule<TAB>file<TAB>count.\n"
      << "# Regenerate with --write-baseline after fixing or consciously\n"
      << "# accepting findings; --baseline-diff fails only on growth.\n";
  for (const auto& [key, n] : counts) {
    out << key.first << "\t" << key.second << "\t" << n << "\n";
  }
  return out.good();
}

/// Keeps only the findings in (rule, file) groups that exceed their
/// baselined count — the whole group is reported so the developer sees
/// every candidate for "which one is new".
std::vector<Finding> diff_against_baseline(const std::vector<Finding>& all,
                                           const BaselineCounts& baseline) {
  const BaselineCounts current = count_findings(all);
  std::vector<Finding> fresh;
  for (const Finding& f : all) {
    const auto key = std::make_pair(f.rule, f.file);
    const auto base = baseline.find(key);
    const long allowed_count = base == baseline.end() ? 0 : base->second;
    if (current.at(key) > allowed_count) fresh.push_back(f);
  }
  return fresh;
}

void sort_findings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
}

// ---------------------------------------------------------------------------
// Self-test
// ---------------------------------------------------------------------------

/// Fixture contract, mirroring tools/lint_fixtures: each `bad_<rule>*`
/// file must fire <rule> (the stem between "bad_" and the first "__"),
/// `good_*` files must be clean under EVERY per-file pass, and (unless
/// --no-fixture-tree) the `tree/` mini-repo must produce exactly the
/// layering rules seeded into it. Proves every pass catches what it
/// claims to catch.
int self_test(const fs::path& fixtures, const std::string& sarif_path,
              bool expect_tree) {
  if (!fs::exists(fixtures)) {
    std::cerr << "fixtures directory not found: " << fixtures << "\n";
    return 2;
  }
  const PassSet all_passes;  // self-test always exercises every pass
  int failures = 0;
  std::size_t checked = 0;
  std::vector<Finding> everything;

  std::vector<fs::path> entries;
  for (const auto& entry : fs::directory_iterator(fixtures)) {
    if (entry.is_regular_file() && is_source(entry.path())) {
      entries.push_back(entry.path());
    }
  }
  std::sort(entries.begin(), entries.end());

  for (const fs::path& path : entries) {
    const std::string stem = path.stem().string();
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();
    const FileFacts facts =
        analyze_file(path, "src/fixture/" + path.filename().string(),
                     content, all_passes);
    std::vector<Finding> findings = facts.findings;
    // Each fixture is its own whole program: the interprocedural passes
    // run over a single-TU summary table, which is exactly what the
    // transitive bad_/good_ fixtures exercise.
    chronus_analyzer::GlobalSummaries global;
    const std::vector<FileFacts> one{facts};
    global.build(one);
    interproc_file(path, facts, content, global, all_passes, &findings);
    sort_findings(&findings);
    everything.insert(everything.end(), findings.begin(), findings.end());
    ++checked;

    if (stem.rfind("good_", 0) == 0) {
      if (!findings.empty()) {
        std::cerr << "SELF-TEST FAIL: expected no findings in " << stem
                  << " but got:\n";
        chronus_tools::print_findings(findings, std::cerr);
        ++failures;
      }
      continue;
    }
    if (stem.rfind("bad_", 0) == 0) {
      const std::size_t sep = stem.find("__");
      const std::string rule = stem.substr(
          4, sep == std::string::npos ? std::string::npos : sep - 4);
      const bool hit =
          std::any_of(findings.begin(), findings.end(),
                      [&](const Finding& x) { return x.rule == rule; });
      if (!hit) {
        std::cerr << "SELF-TEST FAIL: expected a [" << rule << "] finding in "
                  << path.filename().string() << ", got "
                  << findings.size() << " findings\n";
        chronus_tools::print_findings(findings, std::cerr);
        ++failures;
      }
    }
  }

  // The layering mini-tree: fixtures/tree/{layering.toml, src/...}.
  const fs::path tree = fixtures / "tree";
  if (fs::exists(tree)) {
    const Manifest m = chronus_analyzer::parse_manifest(tree / "layering.toml");
    if (!m.error.empty()) {
      std::cerr << "SELF-TEST FAIL: " << m.error << "\n";
      ++failures;
    } else {
      const std::vector<fs::path> paths = list_sources(tree, {"src"});
      const AnalysisCache no_cache({}, "");
      const TreeScan scan = scan_tree(tree, paths, all_passes, no_cache, 1);
      std::vector<Finding> findings;
      chronus_analyzer::layering_pass(scan.facts, m, findings);
      chronus_analyzer::GlobalSummaries global;
      global.build(scan.facts);
      std::vector<Finding> interproc =
          interproc_tree(scan, global, all_passes, no_cache, 1, nullptr);
      findings.insert(findings.end(), interproc.begin(), interproc.end());
      everything.insert(everything.end(), findings.begin(), findings.end());
      for (const char* rule : {"include-cycle", "layer-back-edge"}) {
        const bool hit =
            std::any_of(findings.begin(), findings.end(),
                        [&](const Finding& x) { return x.rule == rule; });
        if (!hit) {
          std::cerr << "SELF-TEST FAIL: the fixtures tree did not fire ["
                    << rule << "]; findings were:\n";
          chronus_tools::print_findings(findings, std::cerr);
          ++failures;
        }
      }
    }
  } else if (expect_tree) {
    std::cerr << "SELF-TEST FAIL: fixtures tree/ with the seeded layering "
                 "violations is missing\n";
    ++failures;
  }

  if (!sarif_path.empty()) {
    chronus_tools::write_findings_sarif(sarif_path, "chronus_analyzer",
                                        rule_catalog(), everything);
  }
  if (failures == 0) {
    std::cerr << "chronus_analyzer self-test: all " << checked
              << " fixtures behaved as seeded\n";
    return 0;
  }
  return 1;
}

struct Options {
  fs::path root;
  fs::path manifest;
  std::vector<std::string> subdirs;
  bool self_test = false;
  bool expect_tree = true;
  fs::path fixtures;
  std::string sarif;
  PassSet passes;
  unsigned jobs = 0;  // 0 = hardware concurrency
  bool stats = false;
  fs::path cache_dir;
  bool no_cache = false;
  fs::path baseline;
  bool baseline_diff = false;
  fs::path write_baseline_path;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.root = fs::current_path();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opt.root = argv[++i];
    } else if (arg == "--manifest" && i + 1 < argc) {
      opt.manifest = argv[++i];
    } else if (arg == "--self-test") {
      opt.self_test = true;
    } else if (arg == "--fixtures" && i + 1 < argc) {
      opt.fixtures = argv[++i];
    } else if (arg == "--no-fixture-tree") {
      opt.expect_tree = false;
    } else if (arg.rfind("--sarif=", 0) == 0) {
      opt.sarif = arg.substr(8);
    } else if (arg.rfind("--passes=", 0) == 0) {
      const std::string which = arg.substr(9);
      if (which == "classic") {
        opt.passes = {true, false, false, false};
      } else if (which == "taint") {
        opt.passes = {false, true, false, false};
      } else if (which == "alloc") {
        opt.passes = {false, false, true, false};
      } else if (which == "escape") {
        opt.passes = {false, false, false, true};
      } else if (which == "all") {
        opt.passes = {true, true, true, true};
      } else {
        std::cerr << "unknown pass set: " << which
                  << " (expected classic|taint|alloc|escape|all)\n";
        return 2;
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      opt.jobs = static_cast<unsigned>(std::stoul(arg.substr(7)));
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (arg.rfind("--cache=", 0) == 0) {
      opt.cache_dir = arg.substr(8);
    } else if (arg == "--no-cache") {
      opt.no_cache = true;
    } else if (arg == "--baseline" && i + 1 < argc) {
      opt.baseline = argv[++i];
    } else if (arg == "--baseline-diff") {
      opt.baseline_diff = true;
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      opt.write_baseline_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cerr
          << "usage: chronus_analyzer [--root DIR] [--manifest FILE]\n"
             "           [--passes=classic|taint|alloc|escape|all]\n"
             "           [--jobs=N] [--stats]\n"
             "           [--cache=DIR | --no-cache]\n"
             "           [--baseline FILE [--baseline-diff]]\n"
             "           [--write-baseline FILE] [--sarif=FILE] [subdir...]\n"
             "       chronus_analyzer --self-test --fixtures DIR\n"
             "           [--no-fixture-tree] [--sarif=FILE]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    } else {
      opt.subdirs.push_back(arg);
    }
  }
  if (opt.self_test) return self_test(opt.fixtures, opt.sarif, opt.expect_tree);

  if (opt.subdirs.empty()) opt.subdirs = {"src"};
  if (opt.manifest.empty()) opt.manifest = opt.root / "tools/layering.toml";
  if (opt.jobs == 0) {
    opt.jobs = std::max(1u, std::thread::hardware_concurrency());
  }
  if (opt.cache_dir.empty() && !opt.no_cache) {
    opt.cache_dir = opt.root / ".cache" / "chronus_analyzer";
  }

  Manifest manifest;
  if (opt.passes.classic) {
    manifest = chronus_analyzer::parse_manifest(opt.manifest);
    if (!manifest.error.empty()) {
      std::cerr << manifest.error << "\n";
      return 2;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  const AnalysisCache cache(opt.no_cache ? fs::path() : opt.cache_dir,
                            opt.passes.config_string());
  const std::vector<fs::path> paths = list_sources(opt.root, opt.subdirs);
  const TreeScan scan =
      scan_tree(opt.root, paths, opt.passes, cache, opt.jobs);

  std::vector<Finding> findings;
  if (opt.passes.classic) {
    chronus_analyzer::layering_pass(scan.facts, manifest, findings);
  }
  for (const FileFacts& f : scan.facts) {
    findings.insert(findings.end(), f.findings.begin(), f.findings.end());
  }

  // Phase B: link the whole-program call graph and run the summary
  // fixpoint (cheap — every run), then phase C: the interprocedural
  // passes, cached per TU under content + reachable-summary hashes.
  InterprocStats ip_stats;
  if (opt.passes.interproc()) {
    chronus_analyzer::GlobalSummaries global;
    global.build(scan.facts);
    std::vector<Finding> interproc = interproc_tree(
        scan, global, opt.passes, cache, opt.jobs, &ip_stats);
    // The classic intra pass already reports direct blocking-under-lock;
    // drop phase-C duplicates at the same (rule, file, line).
    std::set<std::tuple<std::string, std::string, long>> seen;
    for (const Finding& f : findings) seen.insert({f.rule, f.file, f.line});
    for (Finding& f : interproc) {
      if (seen.count({f.rule, f.file, f.line}) == 0) {
        findings.push_back(std::move(f));
      }
    }
  }
  sort_findings(&findings);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  if (opt.stats) {
    std::cerr << "chronus_analyzer stats: files=" << scan.facts.size()
              << " lex_cache_hits=" << scan.cache_hits
              << " interproc_analyzed=" << ip_stats.analyzed
              << " interproc_cached=" << ip_stats.cached
              << " jobs=" << opt.jobs << " elapsed_ms=" << elapsed_ms
              << "\n";
  }

  if (!opt.write_baseline_path.empty()) {
    if (!write_baseline(opt.write_baseline_path, count_findings(findings))) {
      std::cerr << "cannot write baseline to " << opt.write_baseline_path
                << "\n";
      return 2;
    }
    std::cerr << "chronus_analyzer: baseline of " << findings.size()
              << " finding(s) written to " << opt.write_baseline_path << "\n";
    return 0;
  }

  std::vector<Finding> reported = findings;
  if (opt.baseline_diff) {
    BaselineCounts baseline;
    if (!opt.baseline.empty()) {
      std::string error;
      if (!load_baseline(opt.baseline, &baseline, &error)) {
        std::cerr << error << "\n";
        return 2;
      }
    }
    reported = diff_against_baseline(findings, baseline);
    if (!reported.empty()) {
      std::cerr << "chronus_analyzer: " << reported.size()
                << " finding(s) beyond the baseline (" << findings.size()
                << " total; groups above their baselined count are shown in "
                   "full)\n";
    }
  }

  if (!opt.sarif.empty() &&
      !chronus_tools::write_findings_sarif(opt.sarif, "chronus_analyzer",
                                           rule_catalog(), reported)) {
    std::cerr << "cannot write SARIF log to " << opt.sarif << "\n";
    return 2;
  }
  if (reported.empty()) {
    std::cerr << "chronus_analyzer: clean (" << scan.facts.size()
              << " files, " << scan.cache_hits << " cache hits, "
              << opt.jobs << " jobs, " << elapsed_ms << " ms"
              << (opt.baseline_diff
                      ? ", " + std::to_string(findings.size()) + " baselined"
                      : "")
              << ")\n";
    return 0;
  }
  chronus_tools::print_findings(reported, std::cerr);
  std::cerr << reported.size() << " finding(s)\n";
  return 1;
}
