// chronus_analyzer — token-level static analysis for the layering and
// concurrency invariants the line-oriented chronus_lint cannot see.
//
// Where chronus_lint matches patterns per line, this tool lexes every
// translation unit properly (line/block comments, string/char literals,
// raw strings, digit separators) and runs three passes over the token
// stream and the include graph:
//
//   layering          `#include "mod/..."` edges across src/ must follow
//                     the module DAG declared in tools/layering.toml.
//                     Findings: layer-back-edge (edge not declared),
//                     layer-undeclared (module missing from the manifest),
//                     include-cycle (file-level include cycle),
//                     manifest-cycle (the declared DAG itself is cyclic).
//   lock discipline   every RAII guard (std::lock_guard / unique_lock /
//                     scoped_lock / shared_lock / util::MutexLock) opens a
//                     lock region bounded by its scope. Findings:
//                     double-lock (guard on a mutex already held in an
//                     enclosing region), lock-across-blocking (a blocking
//                     call — join, wait_idle, sleep_for/until, system,
//                     and the socket syscalls accept/accept4/recv/send/
//                     poll — inside a lock region), naked-lock (manual
//                     .lock()/.unlock() pairs instead of RAII).
//                     src/util is exempt: util/thread_annotations.hpp is
//                     the one legitimate home of manual lock calls.
//   determinism &     stray-random (rand/srand/std::random_device outside
//   exception safety  src/util/rng — all randomness flows through
//                     util::Rng so runs replay), throw-in-dtor (throwing
//                     destructors terminate), swallowed-catch
//                     (`catch (...)` whose body neither rethrows nor
//                     reports).
//
// A finding is acknowledged inline with
//   // chronus-analyzer: allow(<rule>) <justification>
// on the offending line or the line above.
//
// Usage:
//   chronus_analyzer --root DIR [--manifest FILE] [--sarif=FILE] [subdir...]
//   chronus_analyzer --self-test --fixtures DIR [--sarif=FILE]
//
// Exits 0 when clean / self-test matches, 1 on findings, 2 on usage or
// manifest errors.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sarif.hpp"

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;  // path relative to the analysis root
  long line = 0;
  std::string rule;
  std::string message;
};

const std::map<std::string, std::string>& rule_catalog() {
  static const std::map<std::string, std::string> kRules = {
      {"layer-back-edge",
       "include edge not declared in the module DAG (tools/layering.toml)"},
      {"layer-undeclared", "module missing from the layering manifest"},
      {"include-cycle", "file-level #include cycle"},
      {"manifest-cycle", "the declared layering DAG is itself cyclic"},
      {"double-lock", "RAII guard on a mutex already held in this scope"},
      {"lock-across-blocking",
       "blocking call made while holding a lock"},
      {"naked-lock",
       "manual lock()/unlock() pair instead of an RAII guard"},
      {"stray-random",
       "rand/srand/std::random_device outside src/util/rng"},
      {"throw-in-dtor", "throw inside a destructor body"},
      {"swallowed-catch",
       "catch (...) that neither rethrows nor reports"},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tok { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  Tok kind;
  std::string text;
  long line = 0;
};

struct LexedFile {
  std::vector<Token> tokens;
  /// Lines carrying a `chronus-analyzer: allow(<rule>)` comment, per rule.
  std::map<std::string, std::set<long>> allowances;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

void record_allowances(const std::string& comment, long line,
                       LexedFile& out) {
  static const std::string kMarker = "chronus-analyzer: allow(";
  for (std::size_t pos = comment.find(kMarker); pos != std::string::npos;
       pos = comment.find(kMarker, pos + 1)) {
    const std::size_t open = pos + kMarker.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) continue;
    const std::string rule = comment.substr(open, close - open);
    // The allowance covers its own line and the next one, so a comment
    // above the offending statement works too.
    out.allowances[rule].insert(line);
    out.allowances[rule].insert(line + 1);
  }
}

/// Comment-, string- and raw-string-aware tokenizer. Preprocessor
/// directives are lexed like ordinary tokens (`#`, `include`, "path"),
/// which is exactly what the include scanner needs.
LexedFile lex(const std::string& src) {
  LexedFile out;
  long line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto prev_kind = Tok::kPunct;

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t eol = src.find('\n', i);
      const std::size_t end = eol == std::string::npos ? n : eol;
      record_allowances(src.substr(i, end - i), line, out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t close = src.find("*/", i + 2);
      const std::size_t end = close == std::string::npos ? n : close + 2;
      const std::string body = src.substr(i, end - i);
      record_allowances(body, line, out);
      line += static_cast<long>(std::count(body.begin(), body.end(), '\n'));
      i = end;
      continue;
    }
    // String literal (raw strings are handled at the identifier below,
    // because their prefix R/u8R/... lexes as an identifier).
    if (c == '"') {
      const long start_line = line;
      std::string text;
      ++i;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < n) {
          text += src[i];
          text += src[i + 1];
          i += 2;
          continue;
        }
        if (src[i] == '\n') ++line;  // unterminated string: stay sane
        text += src[i++];
      }
      if (i < n) ++i;  // closing quote
      out.tokens.push_back({Tok::kString, text, start_line});
      prev_kind = Tok::kString;
      continue;
    }
    // Character literal — but not a digit separator (1'000'000), which is
    // consumed by the number scanner and never reaches here.
    if (c == '\'') {
      const long start_line = line;
      ++i;
      std::string text;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < n) {
          text += src[i];
          text += src[i + 1];
          i += 2;
          continue;
        }
        if (src[i] == '\n') {
          break;  // stray quote (apostrophe in a #error, say): bail out
        }
        text += src[i++];
      }
      if (i < n && src[i] == '\'') ++i;
      out.tokens.push_back({Tok::kChar, text, start_line});
      prev_kind = Tok::kChar;
      continue;
    }
    // Number (digit separators and exponent signs included).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      std::string text;
      while (i < n) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          text += d;
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && !text.empty()) {
          const char e = text.back();
          if (e == 'e' || e == 'E' || e == 'p' || e == 'P') {
            text += d;
            ++i;
            continue;
          }
        }
        break;
      }
      out.tokens.push_back({Tok::kNumber, text, line});
      prev_kind = Tok::kNumber;
      continue;
    }
    // Identifier — possibly a raw-string prefix.
    if (ident_start(c)) {
      std::string text;
      while (i < n && ident_char(src[i])) text += src[i++];
      const bool raw_prefix = i < n && src[i] == '"' &&
                              (text == "R" || text == "u8R" || text == "uR" ||
                               text == "LR");
      if (raw_prefix) {
        // R"delim( ... )delim"
        ++i;  // opening quote
        std::string delim;
        while (i < n && src[i] != '(') delim += src[i++];
        if (i < n) ++i;  // '('
        const std::string closer = ")" + delim + "\"";
        const std::size_t close = src.find(closer, i);
        const std::size_t end =
            close == std::string::npos ? n : close + closer.size();
        const std::string body = src.substr(i, (close == std::string::npos
                                                    ? n
                                                    : close) -
                                                   i);
        out.tokens.push_back({Tok::kString, body, line});
        line += static_cast<long>(std::count(body.begin(), body.end(), '\n'));
        i = end;
        prev_kind = Tok::kString;
        continue;
      }
      out.tokens.push_back({Tok::kIdent, text, line});
      prev_kind = Tok::kIdent;
      continue;
    }
    // Punctuation, one char at a time.
    out.tokens.push_back({Tok::kPunct, std::string(1, c), line});
    prev_kind = Tok::kPunct;
    ++i;
  }
  (void)prev_kind;
  return out;
}

bool allowed(const LexedFile& lf, const std::string& rule, long line) {
  const auto it = lf.allowances.find(rule);
  return it != lf.allowances.end() && it->second.count(line) > 0;
}

// ---------------------------------------------------------------------------
// Layering manifest (tools/layering.toml)
// ---------------------------------------------------------------------------

struct Manifest {
  /// module -> modules it may include from (itself is always allowed).
  std::map<std::string, std::vector<std::string>> allow;
  std::string error;  // non-empty on parse failure
};

std::string trim(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a])) != 0) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])) != 0) --b;
  return s.substr(a, b - a);
}

/// Parses the `[layers]` table of a deliberately tiny TOML subset:
/// `module = ["dep", "dep"]` entries, `#` comments, one entry per line.
Manifest parse_manifest(const fs::path& path) {
  Manifest m;
  std::ifstream in(path);
  if (!in) {
    m.error = "cannot open manifest " + path.string();
    return m;
  }
  bool in_layers = false;
  long lineno = 0;
  for (std::string raw; std::getline(in, raw);) {
    ++lineno;
    const std::size_t hash = raw.find('#');
    std::string s = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (s.empty()) continue;
    if (s.front() == '[') {
      in_layers = s == "[layers]";
      continue;
    }
    if (!in_layers) continue;
    const std::size_t eq = s.find('=');
    if (eq == std::string::npos) {
      m.error = path.string() + ":" + std::to_string(lineno) +
                ": expected `module = [..]`";
      return m;
    }
    const std::string key = trim(s.substr(0, eq));
    const std::string val = trim(s.substr(eq + 1));
    if (val.size() < 2 || val.front() != '[' || val.back() != ']') {
      m.error = path.string() + ":" + std::to_string(lineno) +
                ": expected a [\"dep\", ...] list for " + key;
      return m;
    }
    std::vector<std::string> deps;
    std::string item;
    std::istringstream items(val.substr(1, val.size() - 2));
    while (std::getline(items, item, ',')) {
      item = trim(item);
      if (item.size() >= 2 && item.front() == '"' && item.back() == '"') {
        deps.push_back(item.substr(1, item.size() - 2));
      } else if (!item.empty()) {
        m.error = path.string() + ":" + std::to_string(lineno) +
                  ": dependency names must be quoted";
        return m;
      }
    }
    m.allow[key] = std::move(deps);
  }
  return m;
}

/// Reports a cycle in the declared module DAG, if any (manifest-cycle).
void check_manifest_acyclic(const Manifest& m, std::vector<Finding>& out) {
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  const std::function<bool(const std::string&)> dfs =
      [&](const std::string& mod) -> bool {
    color[mod] = 1;
    stack.push_back(mod);
    const auto it = m.allow.find(mod);
    if (it != m.allow.end()) {
      for (const std::string& dep : it->second) {
        if (dep == mod) continue;
        const int c = color[dep];
        if (c == 1) {
          std::string path;
          for (const auto& s : stack) path += s + " -> ";
          out.push_back({"tools/layering.toml", 0, "manifest-cycle",
                         "declared layering is cyclic: " + path + dep});
          return true;
        }
        if (c == 0 && dfs(dep)) return true;
      }
    }
    color[mod] = 2;
    stack.pop_back();
    return false;
  };
  for (const auto& [mod, deps] : m.allow) {
    (void)deps;
    if (color[mod] == 0 && dfs(mod)) return;
  }
}

// ---------------------------------------------------------------------------
// Pass 1: layering
// ---------------------------------------------------------------------------

struct SourceFile {
  fs::path path;
  std::string rel;     // e.g. "src/net/graph.hpp", forward slashes
  std::string module;  // e.g. "net"; empty when not under src/<mod>/
  LexedFile lexed;
};

/// Quoted includes with their lines, straight from the token stream
/// (`#` `include` "path" — comments and strings cannot fake this).
std::vector<std::pair<std::string, long>> quoted_includes(
    const LexedFile& lf) {
  std::vector<std::pair<std::string, long>> out;
  const auto& t = lf.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind == Tok::kPunct && t[i].text == "#" &&
        t[i + 1].kind == Tok::kIdent && t[i + 1].text == "include" &&
        t[i + 2].kind == Tok::kString) {
      out.emplace_back(t[i + 2].text, t[i + 2].line);
    }
  }
  return out;
}

std::string module_of_include(const std::string& inc) {
  const std::size_t slash = inc.find('/');
  return slash == std::string::npos ? std::string() : inc.substr(0, slash);
}

void layering_pass(const std::vector<SourceFile>& files, const Manifest& m,
                   std::vector<Finding>& findings) {
  check_manifest_acyclic(m, findings);

  // Module back-edges against the declared DAG.
  for (const SourceFile& f : files) {
    if (f.module.empty()) continue;
    const auto self = m.allow.find(f.module);
    if (self == m.allow.end()) {
      findings.push_back(
          {f.rel, 1, "layer-undeclared",
           "module '" + f.module +
               "' is not declared in tools/layering.toml — add it with its "
               "allowed dependencies"});
      continue;
    }
    for (const auto& [inc, line] : quoted_includes(f.lexed)) {
      const std::string target = module_of_include(inc);
      if (target.empty() || target == f.module) continue;
      if (m.allow.find(target) == m.allow.end()) continue;  // not a module
      const auto& deps = self->second;
      if (std::find(deps.begin(), deps.end(), target) == deps.end() &&
          !allowed(f.lexed, "layer-back-edge", line)) {
        findings.push_back(
            {f.rel, line, "layer-back-edge",
             f.module + " -> " + target + " (#include \"" + inc +
                 "\") is not a declared edge of the module DAG; layering "
                 "is " + f.module + " <- [deps] in tools/layering.toml"});
      }
    }
  }

  // File-level include cycles (DFS over src-relative include paths).
  std::map<std::string, std::vector<std::pair<std::string, long>>> graph;
  std::set<std::string> known;
  for (const SourceFile& f : files) known.insert(f.rel);
  for (const SourceFile& f : files) {
    for (const auto& [inc, line] : quoted_includes(f.lexed)) {
      const std::string target = "src/" + inc;
      if (known.count(target) > 0) graph[f.rel].emplace_back(target, line);
    }
  }
  std::map<std::string, int> color;
  std::vector<std::string> stack;
  bool reported = false;
  const std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        for (const auto& [next, line] : graph[node]) {
          if (reported) break;
          const int c = color[next];
          if (c == 1) {
            std::string path;
            const auto at =
                std::find(stack.begin(), stack.end(), next);
            for (auto it = at; it != stack.end(); ++it) path += *it + " -> ";
            findings.push_back({node, line, "include-cycle",
                                "#include cycle: " + path + next});
            reported = true;
            break;
          }
          if (c == 0) dfs(next);
        }
        color[node] = 2;
        stack.pop_back();
      };
  for (const SourceFile& f : files) {
    if (color[f.rel] == 0 && !reported) dfs(f.rel);
  }
}

// ---------------------------------------------------------------------------
// Pass 2: lock discipline
// ---------------------------------------------------------------------------

bool is_guard_name(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock" || s == "MutexLock";
}

/// Joins the tokens of one guard constructor argument into a stable key
/// ("this->mu_", "state.mu"). Whitespace-free so spelling variants match.
std::string join_expr(const std::vector<Token>& t, std::size_t b,
                      std::size_t e) {
  std::string out;
  for (std::size_t i = b; i < e; ++i) out += t[i].text;
  return out;
}

void lock_pass(const SourceFile& f, std::vector<Finding>& findings) {
  if (f.rel.rfind("src/util/", 0) == 0) return;  // annotated wrapper home
  const auto& t = f.lexed.tokens;

  struct Region {
    std::string mutex;
    int depth = 0;
    long line = 0;
  };
  std::vector<Region> regions;
  int depth = 0;

  // Manual lock()/unlock() receivers, for the pairing heuristic: a
  // receiver that is both .lock()ed and .unlock()ed in one TU is being
  // hand-rolled where a guard belongs. (weak_ptr::lock has no unlock, so
  // it never pairs.)
  std::map<std::string, long> lock_calls;    // receiver -> first line
  std::set<std::string> unlock_calls;

  // Socket syscalls count as blocking: even on an O_NONBLOCK fd they sit
  // at the kernel boundary, and the rpc reactor's design rule is that no
  // I/O ever happens inside a lock region (src/rpc/reactor.hpp).
  static const std::set<std::string> kBlocking = {
      "join", "wait_idle", "sleep_for", "sleep_until", "system",
      "accept", "accept4", "recv", "send", "poll"};

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind == Tok::kPunct) {
      if (tok.text == "{") ++depth;
      if (tok.text == "}") {
        --depth;
        while (!regions.empty() && regions.back().depth > depth) {
          regions.pop_back();
        }
      }
      continue;
    }
    if (tok.kind != Tok::kIdent) continue;

    // RAII guard declaration: guard<...> name(args...) / guard name(args).
    if (is_guard_name(tok.text)) {
      std::size_t j = i + 1;
      if (j < t.size() && t[j].kind == Tok::kPunct && t[j].text == "<") {
        int angle = 1;
        ++j;
        while (j < t.size() && angle > 0) {
          if (t[j].kind == Tok::kPunct && t[j].text == "<") ++angle;
          if (t[j].kind == Tok::kPunct && t[j].text == ">") --angle;
          ++j;
        }
      }
      if (j >= t.size() || t[j].kind != Tok::kIdent) continue;  // a cast etc.
      ++j;  // variable name
      if (j >= t.size() || t[j].kind != Tok::kPunct ||
          (t[j].text != "(" && t[j].text != "{")) {
        continue;
      }
      const std::string open = t[j].text;
      const std::string close = open == "(" ? ")" : "}";
      int paren = 1;
      ++j;
      std::vector<std::pair<std::size_t, std::size_t>> args;
      std::size_t arg_begin = j;
      while (j < t.size() && paren > 0) {
        const Token& a = t[j];
        if (a.kind == Tok::kPunct) {
          if (a.text == "(" || a.text == "{" || a.text == "[") ++paren;
          if (a.text == ")" || a.text == "}" || a.text == "]") --paren;
          if (paren == 0) break;
          if (a.text == "," && paren == 1) {
            args.emplace_back(arg_begin, j);
            arg_begin = j + 1;
          }
        }
        ++j;
      }
      if (j > arg_begin) args.emplace_back(arg_begin, j);
      bool deferred = false;
      for (const auto& [b, e] : args) {
        const std::string expr = join_expr(t, b, e);
        if (expr.find("defer_lock") != std::string::npos) deferred = true;
      }
      if (deferred || args.empty()) {
        i = j;
        continue;
      }
      // scoped_lock may take several mutexes; every non-tag argument is
      // an acquisition.
      for (const auto& [b, e] : args) {
        const std::string expr = join_expr(t, b, e);
        if (expr.find("adopt_lock") != std::string::npos ||
            expr.find("try_to_lock") != std::string::npos) {
          continue;
        }
        for (const Region& r : regions) {
          if (r.mutex == expr && !allowed(f.lexed, "double-lock", tok.line)) {
            findings.push_back(
                {f.rel, tok.line, "double-lock",
                 "'" + expr + "' is already held by the guard at line " +
                     std::to_string(r.line) +
                     " — recursive locking deadlocks std::mutex"});
          }
        }
        regions.push_back({expr, depth, tok.line});
      }
      i = j;
      continue;
    }

    // Blocking call while a lock region is active.
    if (!regions.empty() && kBlocking.count(tok.text) > 0 && i + 1 < t.size() &&
        t[i + 1].kind == Tok::kPunct && t[i + 1].text == "(" &&
        !allowed(f.lexed, "lock-across-blocking", tok.line)) {
      findings.push_back(
          {f.rel, tok.line, "lock-across-blocking",
           "'" + tok.text + "(' is called while holding '" +
               regions.back().mutex + "' (guard at line " +
               std::to_string(regions.back().line) +
               ") — blocking under a lock stalls every contender"});
    }

    // Manual .lock() / .unlock() bookkeeping.
    if ((tok.text == "lock" || tok.text == "unlock") && i >= 2 &&
        i + 1 < t.size() && t[i + 1].kind == Tok::kPunct &&
        t[i + 1].text == "(") {
      // Receiver: the longest ident/./->/:: chain ending just before.
      std::size_t b = i;
      while (b >= 1) {
        const Token& p = t[b - 1];
        if (p.kind == Tok::kPunct &&
            (p.text == "." || p.text == ":" || p.text == ">" ||
             p.text == "-")) {
          --b;
          continue;
        }
        if (p.kind == Tok::kIdent && b >= 1 && t[b].kind == Tok::kPunct) {
          --b;
          continue;
        }
        break;
      }
      if (b < i) {  // has a receiver — a bare lock( is some local function
        const std::string receiver = join_expr(t, b, i - 1);
        if (!receiver.empty()) {
          if (tok.text == "lock") {
            lock_calls.emplace(receiver, tok.line);
          } else {
            unlock_calls.insert(receiver);
          }
        }
      }
    }
  }

  for (const std::string& receiver : unlock_calls) {
    const auto it = lock_calls.find(receiver);
    if (it == lock_calls.end()) continue;
    if (!allowed(f.lexed, "naked-lock", it->second)) {
      findings.push_back(
          {f.rel, it->second, "naked-lock",
           "manual " + receiver + ".lock()/.unlock() pair — use an RAII "
           "guard (util::MutexLock / std::lock_guard) so early returns and "
           "exceptions cannot leak the lock"});
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 3: determinism & exception safety
// ---------------------------------------------------------------------------

bool in_rng_home(const std::string& rel) {
  return rel.rfind("src/util/rng", 0) == 0;
}

void determinism_pass(const SourceFile& f, std::vector<Finding>& findings) {
  const auto& t = f.lexed.tokens;

  // stray-random -----------------------------------------------------------
  if (!in_rng_home(f.rel)) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent) continue;
      const bool member_access =
          i >= 1 && t[i - 1].kind == Tok::kPunct &&
          (t[i - 1].text == "." ||
           (t[i - 1].text == ">" && i >= 2 && t[i - 2].text == "-"));
      if (member_access) continue;  // foo.rand() is someone else's rand
      const bool call = i + 1 < t.size() && t[i + 1].kind == Tok::kPunct &&
                        (t[i + 1].text == "(" || t[i + 1].text == "{");
      const bool is_rand_call =
          (t[i].text == "rand" || t[i].text == "srand") && call;
      const bool is_device = t[i].text == "random_device";
      if ((is_rand_call || is_device) &&
          !allowed(f.lexed, "stray-random", t[i].line)) {
        findings.push_back(
            {f.rel, t[i].line, "stray-random",
             "'" + t[i].text +
                 "' bypasses util::Rng — unseeded or device randomness "
                 "breaks bit-identical replay (src/util/rng.hpp)"});
      }
    }
  }

  // throw-in-dtor and swallowed-catch: both need matched-brace bodies.
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Destructor head: `~ Name (` ... `)` [qualifiers] `{`. The token
    // *before* the `~` separates a declaration from a bitwise-not
    // expression (`return ~hash(x)` must not look like a destructor):
    // declarations follow `;` `}` `{` `:` or a declaration keyword.
    const bool decl_position =
        i == 0 ||
        (t[i - 1].kind == Tok::kPunct &&
         (t[i - 1].text == ";" || t[i - 1].text == "}" ||
          t[i - 1].text == "{" || t[i - 1].text == ":")) ||
        (t[i - 1].kind == Tok::kIdent &&
         (t[i - 1].text == "virtual" || t[i - 1].text == "inline" ||
          t[i - 1].text == "constexpr"));
    if (t[i].kind == Tok::kPunct && t[i].text == "~" && decl_position &&
        i + 2 < t.size() && t[i + 1].kind == Tok::kIdent &&
        t[i + 2].kind == Tok::kPunct && t[i + 2].text == "(") {
      std::size_t j = i + 3;
      int paren = 1;
      while (j < t.size() && paren > 0) {
        if (t[j].kind == Tok::kPunct && t[j].text == "(") ++paren;
        if (t[j].kind == Tok::kPunct && t[j].text == ")") --paren;
        ++j;
      }
      // Scan qualifiers until the body opens or the declaration ends.
      while (j < t.size() &&
             !(t[j].kind == Tok::kPunct &&
               (t[j].text == "{" || t[j].text == ";" || t[j].text == "="))) {
        ++j;
      }
      if (j >= t.size() || t[j].text != "{") continue;  // declaration only
      int body = 1;
      ++j;
      while (j < t.size() && body > 0) {
        if (t[j].kind == Tok::kPunct && t[j].text == "{") ++body;
        if (t[j].kind == Tok::kPunct && t[j].text == "}") --body;
        if (t[j].kind == Tok::kIdent && t[j].text == "throw" &&
            !allowed(f.lexed, "throw-in-dtor", t[j].line)) {
          findings.push_back(
              {f.rel, t[j].line, "throw-in-dtor",
               "throw inside ~" + t[i + 1].text +
                   "() — destructors are implicitly noexcept; a throw here "
                   "is std::terminate"});
        }
        ++j;
      }
      continue;
    }

    // catch (...) { body }
    if (t[i].kind == Tok::kIdent && t[i].text == "catch" &&
        i + 4 < t.size() && t[i + 1].kind == Tok::kPunct &&
        t[i + 1].text == "(" && t[i + 2].text == "." && t[i + 3].text == "." &&
        t[i + 4].text == ".") {
      std::size_t j = i + 5;
      while (j < t.size() &&
             !(t[j].kind == Tok::kPunct && t[j].text == "{")) {
        ++j;
      }
      if (j >= t.size()) continue;
      int body = 1;
      ++j;
      bool handles = false;
      static const std::vector<std::string> kReporters = {
          "log",  "report", "note",   "record", "message", "warn",
          "err",  "status", "abort",  "terminate", "add",  "observe",
          "fail", "retry",  "rethrow"};
      while (j < t.size() && body > 0) {
        if (t[j].kind == Tok::kPunct && t[j].text == "{") ++body;
        if (t[j].kind == Tok::kPunct && t[j].text == "}") --body;
        // A rethrow, a reporter-shaped identifier, or a string (an error
        // message being recorded) all count as handling the exception.
        if (t[j].kind == Tok::kIdent || t[j].kind == Tok::kString) {
          if (t[j].text == "throw") handles = true;
          std::string lower;
          for (const char c : t[j].text) {
            lower += static_cast<char>(std::tolower(
                static_cast<unsigned char>(c)));
          }
          for (const std::string& r : kReporters) {
            if (lower.find(r) != std::string::npos) handles = true;
          }
        }
        ++j;
      }
      if (!handles && !allowed(f.lexed, "swallowed-catch", t[i].line)) {
        findings.push_back(
            {f.rel, t[i].line, "swallowed-catch",
             "catch (...) swallows every exception without rethrowing or "
             "reporting — at minimum record the failure, or acknowledge "
             "with // chronus-analyzer: allow(swallowed-catch) why"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Tree walking & driver
// ---------------------------------------------------------------------------

bool is_source(const fs::path& p) {
  return p.extension() == ".cpp" || p.extension() == ".hpp";
}

std::vector<SourceFile> load_tree(const fs::path& root,
                                  const std::vector<std::string>& subdirs) {
  std::vector<fs::path> paths;
  for (const std::string& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && is_source(entry.path())) {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& p : paths) {
    std::ifstream in(p);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    SourceFile f;
    f.path = p;
    f.rel = fs::relative(p, root).generic_string();
    if (f.rel.rfind("src/", 0) == 0) {
      const std::size_t slash = f.rel.find('/', 4);
      if (slash != std::string::npos) f.module = f.rel.substr(4, slash - 4);
    }
    f.lexed = lex(buf.str());
    files.push_back(std::move(f));
  }
  return files;
}

void print_findings(const std::vector<Finding>& findings, std::ostream& os) {
  for (const auto& f : findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
  }
}

std::vector<chronus_tools::SarifResult> to_sarif(
    const std::vector<Finding>& findings) {
  std::vector<chronus_tools::SarifResult> out;
  out.reserve(findings.size());
  for (const auto& f : findings) {
    out.push_back({f.rule, f.file, f.line, f.message});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Self-test
// ---------------------------------------------------------------------------

/// Fixture contract, mirroring tools/lint_fixtures: each `bad_<rule>*`
/// file must fire <rule> (the stem between "bad_" and the first "__"),
/// `good_*` files must be clean, and the `tree/` mini-repo must produce
/// exactly the layering rules seeded into it (an include cycle and a
/// module back-edge). Proves every pass catches what it claims to catch.
int self_test(const fs::path& fixtures, const std::string& sarif_path) {
  if (!fs::exists(fixtures)) {
    std::cerr << "fixtures directory not found: " << fixtures << "\n";
    return 2;
  }
  int failures = 0;
  std::vector<Finding> everything;

  for (const auto& entry : fs::directory_iterator(fixtures)) {
    if (!entry.is_regular_file() || !is_source(entry.path())) continue;
    const std::string stem = entry.path().stem().string();
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    SourceFile f;
    f.path = entry.path();
    f.rel = "src/fixture/" + entry.path().filename().string();
    f.module = "fixture";
    f.lexed = lex(buf.str());
    std::vector<Finding> findings;
    lock_pass(f, findings);
    determinism_pass(f, findings);
    everything.insert(everything.end(), findings.begin(), findings.end());

    if (stem.rfind("good_", 0) == 0) {
      if (!findings.empty()) {
        std::cerr << "SELF-TEST FAIL: expected no findings in " << stem
                  << " but got:\n";
        print_findings(findings, std::cerr);
        ++failures;
      }
      continue;
    }
    if (stem.rfind("bad_", 0) == 0) {
      const std::size_t sep = stem.find("__");
      const std::string rule = stem.substr(
          4, sep == std::string::npos ? std::string::npos : sep - 4);
      const bool hit =
          std::any_of(findings.begin(), findings.end(),
                      [&](const Finding& x) { return x.rule == rule; });
      if (!hit) {
        std::cerr << "SELF-TEST FAIL: expected a [" << rule << "] finding in "
                  << entry.path().filename().string() << ", got "
                  << findings.size() << " findings\n";
        print_findings(findings, std::cerr);
        ++failures;
      }
    }
  }

  // The layering mini-tree: fixtures/tree/{layering.toml, src/...}.
  const fs::path tree = fixtures / "tree";
  if (fs::exists(tree)) {
    const Manifest m = parse_manifest(tree / "layering.toml");
    if (!m.error.empty()) {
      std::cerr << "SELF-TEST FAIL: " << m.error << "\n";
      ++failures;
    } else {
      std::vector<Finding> findings;
      const std::vector<SourceFile> files = load_tree(tree, {"src"});
      layering_pass(files, m, findings);
      everything.insert(everything.end(), findings.begin(), findings.end());
      for (const char* rule : {"include-cycle", "layer-back-edge"}) {
        const bool hit =
            std::any_of(findings.begin(), findings.end(),
                        [&](const Finding& x) { return x.rule == rule; });
        if (!hit) {
          std::cerr << "SELF-TEST FAIL: the fixtures tree did not fire ["
                    << rule << "]; findings were:\n";
          print_findings(findings, std::cerr);
          ++failures;
        }
      }
    }
  } else {
    std::cerr << "SELF-TEST FAIL: fixtures tree/ with the seeded layering "
                 "violations is missing\n";
    ++failures;
  }

  if (!sarif_path.empty()) {
    chronus_tools::write_sarif(sarif_path, "chronus_analyzer", rule_catalog(),
                               to_sarif(everything));
  }
  if (failures == 0) {
    std::cerr << "chronus_analyzer self-test: all fixtures behaved as "
                 "seeded\n";
    return 0;
  }
  return 1;
}

struct Options {
  fs::path root;
  fs::path manifest;
  std::vector<std::string> subdirs;
  bool self_test = false;
  fs::path fixtures;
  std::string sarif;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.root = fs::current_path();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opt.root = argv[++i];
    } else if (arg == "--manifest" && i + 1 < argc) {
      opt.manifest = argv[++i];
    } else if (arg == "--self-test") {
      opt.self_test = true;
    } else if (arg == "--fixtures" && i + 1 < argc) {
      opt.fixtures = argv[++i];
    } else if (arg.rfind("--sarif=", 0) == 0) {
      opt.sarif = arg.substr(8);
    } else if (arg == "--help" || arg == "-h") {
      std::cerr
          << "usage: chronus_analyzer [--root DIR] [--manifest FILE] "
             "[--sarif=FILE] [subdir...]\n"
             "       chronus_analyzer --self-test --fixtures DIR "
             "[--sarif=FILE]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    } else {
      opt.subdirs.push_back(arg);
    }
  }
  if (opt.self_test) return self_test(opt.fixtures, opt.sarif);

  if (opt.subdirs.empty()) opt.subdirs = {"src"};
  if (opt.manifest.empty()) opt.manifest = opt.root / "tools/layering.toml";

  const Manifest manifest = parse_manifest(opt.manifest);
  if (!manifest.error.empty()) {
    std::cerr << manifest.error << "\n";
    return 2;
  }

  const std::vector<SourceFile> files = load_tree(opt.root, opt.subdirs);
  std::vector<Finding> findings;
  layering_pass(files, manifest, findings);
  for (const SourceFile& f : files) {
    lock_pass(f, findings);
    determinism_pass(f, findings);
  }

  if (!opt.sarif.empty() &&
      !chronus_tools::write_sarif(opt.sarif, "chronus_analyzer",
                                  rule_catalog(), to_sarif(findings))) {
    std::cerr << "cannot write SARIF log to " << opt.sarif << "\n";
    return 2;
  }
  if (findings.empty()) {
    std::cerr << "chronus_analyzer: clean (" << files.size() << " files)\n";
    return 0;
  }
  print_findings(findings, std::cerr);
  std::cerr << findings.size() << " finding(s)\n";
  return 1;
}
