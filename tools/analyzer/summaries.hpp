// Whole-program function summaries for chronus_analyzer (PR 10).
//
// Consumes the per-TU FnDef tables (callgraph.hpp, cached per content
// hash) and links them into one call graph at overload-set granularity:
// a call site named `f` edges to every definition of `f` anywhere in the
// program (method-qualified definitions keep their qualified names for
// reporting, but resolution is by bare name — the analyzer lexes, it does
// not type-check). Summaries are then computed bottom-up over Tarjan
// SCCs, iterating inside each SCC to a fixpoint (all summary fields are
// monotone — taint bits and flags only ever widen — so termination is
// structural):
//
//   returns_taint     taint bits (wall / wire / unit / arena) of the
//                     function's return value, local sources unioned with
//                     every callee whose result flows into a `return`.
//   propagates_param  some parameter is mentioned in a return statement —
//                     callers must treat the result as tainted when any
//                     argument is.
//   blocks            the function reaches a blocking primitive through
//                     any depth of calls; `block_chain` is the witness
//                     path, rendered into SARIF relatedLocations.
//   wall/wire/arena   witness chains for the corresponding return-taint
//                     bits, same rendering.
//
// The transitive lock pass lives here too: a call site holding a lock
// whose callee summary `blocks` is the `hold lock → f() → g() → poll()`
// chain the intra-procedural pass cannot see. To keep bare-name
// resolution honest it only fires when *every* candidate definition
// blocks — an overload set where only some overloads block is reported by
// the summary of whichever overload the reviewer actually calls, via the
// baseline, not by guessing.
//
// Summary serialization (`serialize_summary`) doubles as the cache key
// material: the interprocedural result cache keys each TU on its content
// hash *plus* the hash of every summary reachable from it, so editing a
// leaf callee transitively invalidates exactly its callers (cache.hpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyzer/callgraph.hpp"
#include "analyzer/passes.hpp"

namespace chronus_analyzer {

using chronus_tools::RelatedLocation;

/// Taint bits shared by the dataflow engine and the summary fixpoint.
/// (kTaintWall/Wire/Unit mirror dataflow.hpp's values; the arena bits are
/// the PR 10 lifetime axis.)
enum : unsigned {
  kSumWall = 1u << 0,
  kSumWire = 1u << 1,
  kSumUnit = 1u << 2,
  kSumArenaLocal = 1u << 3,  // derived from a function-local Arena
  kSumArenaParam = 1u << 4,  // derived from a caller-owned Arena
};

struct FnSummary {
  unsigned returns_taint = 0;
  bool propagates_param = false;
  bool blocks = false;
  std::vector<RelatedLocation> block_chain;
  std::vector<RelatedLocation> wall_chain;
  std::vector<RelatedLocation> wire_chain;
  std::vector<RelatedLocation> arena_chain;
};

inline constexpr std::size_t kMaxChain = 8;

/// Stable text form of one summary — the unit the interprocedural cache
/// key hashes. Chains are included: a chain change re-renders SARIF even
/// when the bits did not move.
inline std::string serialize_summary(const std::string& qname,
                                     const FnSummary& s) {
  std::string out = qname + "|" + std::to_string(s.returns_taint) + "|" +
                    (s.propagates_param ? "p" : "-") + "|" +
                    (s.blocks ? "b" : "-");
  const auto app = [&out](const std::vector<RelatedLocation>& chain) {
    out += "|";
    for (const auto& r : chain) {
      out += r.file + ":" + std::to_string(r.line) + ":" + r.note + ";";
    }
  };
  app(s.block_chain);
  app(s.wall_chain);
  app(s.wire_chain);
  app(s.arena_chain);
  return out;
}

class GlobalSummaries {
 public:
  /// Links every FnDef across `files` and runs the SCC fixpoint. The
  /// FileFacts vector must outlive this object (nodes point into it).
  void build(const std::vector<FileFacts>& files) {
    nodes_.clear();
    by_name_.clear();
    merged_.clear();
    for (const FileFacts& f : files) {
      for (const FnDef& fn : f.fns) {
        by_name_[fn.name].push_back(nodes_.size());
        nodes_.push_back(Node{&fn, f.rel, {}, {}});
      }
    }
    for (Node& n : nodes_) {
      n.out.reserve(n.def->calls.size());
      for (std::size_t c = 0; c < n.def->calls.size(); ++c) {
        const auto it = by_name_.find(n.def->calls[c].name);
        if (it == by_name_.end()) continue;
        for (const std::size_t callee : it->second) {
          n.out.push_back({c, callee});
        }
      }
    }
    run_fixpoint();
    node_hash_.clear();
    node_hash_.reserve(nodes_.size());
    for (const Node& n : nodes_) {
      const std::string s = serialize_summary(n.def->qname, n.sum);
      std::uint64_t h = 1469598103934665603ull;
      for (const char ch : s) {
        h ^= static_cast<unsigned char>(ch);
        h *= 1099511628211ull;
      }
      node_hash_.push_back(h);
    }
    for (const auto& [name, idxs] : by_name_) {
      FnSummary m;
      for (const std::size_t i : idxs) merge_into(&m, nodes_[i].sum);
      merged_[name] = std::move(m);
    }
  }

  /// Overload-set-merged summary for a bare callee name; null when the
  /// name resolves to no definition in the program.
  const FnSummary* merged(const std::string& name) const {
    const auto it = merged_.find(name);
    return it == merged_.end() ? nullptr : &it->second;
  }

  unsigned return_taint_of(const std::string& name) const {
    const FnSummary* s = merged(name);
    return s == nullptr ? 0u : s->returns_taint;
  }

  struct Candidate {
    const FnDef* def;
    const std::string* file;
    const FnSummary* sum;
  };

  std::vector<Candidate> candidates(const std::string& name) const {
    std::vector<Candidate> out;
    const auto it = by_name_.find(name);
    if (it == by_name_.end()) return out;
    out.reserve(it->second.size());
    for (const std::size_t i : it->second) {
      out.push_back({nodes_[i].def, &nodes_[i].file, &nodes_[i].sum});
    }
    return out;
  }

  std::size_t node_count() const { return nodes_.size(); }

  /// Hash of every summary reachable from `f`'s own functions and call
  /// sites — the transitive part of the interprocedural cache key. Each
  /// node's summary hash is precomputed in build(); the per-TU combine is
  /// commutative (XOR of well-mixed per-node hashes plus the count), so
  /// no sorting is needed and a warm run's key derivation stays cheap.
  std::uint64_t reachable_hash(const FileFacts& f) const {
    std::vector<char> visited(nodes_.size(), 0);
    std::vector<std::size_t> work;
    std::uint64_t h = 1469598103934665603ull;
    std::size_t count = 0;
    const auto visit = [&](std::size_t i) {
      if (visited[i] != 0) return;
      visited[i] = 1;
      work.push_back(i);
      h ^= node_hash_[i];
      ++count;
    };
    for (const FnDef& fn : f.fns) {
      const auto it = by_name_.find(fn.name);
      if (it != by_name_.end()) {
        for (const std::size_t i : it->second) visit(i);
      }
      for (const CallSite& cs : fn.calls) {
        const auto ct = by_name_.find(cs.name);
        if (ct == by_name_.end()) continue;
        for (const std::size_t i : ct->second) visit(i);
      }
    }
    while (!work.empty()) {
      const std::size_t n = work.back();
      work.pop_back();
      for (const auto& [c, callee] : nodes_[n].out) {
        (void)c;
        visit(callee);
      }
    }
    return h * 1099511628211ull + count;
  }

 private:
  struct Node {
    const FnDef* def;
    std::string file;  // rel path of the defining TU
    FnSummary sum;
    std::vector<std::pair<std::size_t, std::size_t>> out;  // (call, callee)
  };

  static void append_chain(std::vector<RelatedLocation>* dst,
                           const RelatedLocation& head,
                           const std::vector<RelatedLocation>& tail) {
    dst->clear();
    dst->push_back(head);
    for (const auto& r : tail) {
      if (dst->size() >= kMaxChain) break;
      dst->push_back(r);
    }
  }

  static void merge_into(FnSummary* m, const FnSummary& s) {
    m->returns_taint |= s.returns_taint;
    m->propagates_param = m->propagates_param || s.propagates_param;
    m->blocks = m->blocks || s.blocks;
    if (m->block_chain.empty()) m->block_chain = s.block_chain;
    if (m->wall_chain.empty()) m->wall_chain = s.wall_chain;
    if (m->wire_chain.empty()) m->wire_chain = s.wire_chain;
    if (m->arena_chain.empty()) m->arena_chain = s.arena_chain;
  }

  /// One monotone update of node `n` from its local facts and current
  /// callee summaries. Returns true when anything widened.
  bool update(std::size_t n) {
    Node& node = nodes_[n];
    const FnDef& def = *node.def;
    FnSummary next = node.sum;

    next.propagates_param = next.propagates_param || def.propagates_param;

    if (def.local_blocks && !next.blocks) {
      next.blocks = true;
      next.block_chain = {{node.file, def.block_line,
                           "'" + def.qname + "' calls blocking '" +
                               def.block_callee + "(' directly"}};
    }
    const unsigned local = def.local_return_taint;
    if ((local & ~next.returns_taint) != 0) {
      next.returns_taint |= local;
      const RelatedLocation here{
          node.file, def.head_line,
          "'" + def.qname + "' derives the value locally"};
      if ((local & kSumWall) != 0 && next.wall_chain.empty()) {
        next.wall_chain = {here};
      }
      if ((local & kSumWire) != 0 && next.wire_chain.empty()) {
        next.wire_chain = {here};
      }
      if ((local & (kSumArenaLocal | kSumArenaParam)) != 0 &&
          next.arena_chain.empty()) {
        next.arena_chain = {here};
      }
    }

    for (const auto& [c, callee] : node.out) {
      const CallSite& cs = def.calls[c];
      const FnSummary& cs_sum = nodes_[callee].sum;
      const std::string& cs_file = nodes_[callee].file;
      const std::string& cs_qname = nodes_[callee].def->qname;

      if (cs_sum.blocks && !next.blocks) {
        next.blocks = true;
        append_chain(&next.block_chain,
                     {node.file, cs.line,
                      "'" + def.qname + "' calls '" + cs_qname + "'"},
                     cs_sum.block_chain);
      }
      if (!cs.in_return) continue;
      const unsigned fresh = cs_sum.returns_taint & ~next.returns_taint;
      if (fresh == 0) continue;
      next.returns_taint |= cs_sum.returns_taint;
      const RelatedLocation via{node.file, cs.line,
                                "'" + def.qname + "' returns via '" +
                                    cs_qname + "'"};
      if ((fresh & kSumWall) != 0) {
        append_chain(&next.wall_chain, via, cs_sum.wall_chain);
      }
      if ((fresh & kSumWire) != 0) {
        append_chain(&next.wire_chain, via, cs_sum.wire_chain);
      }
      if ((fresh & (kSumArenaLocal | kSumArenaParam)) != 0) {
        append_chain(&next.arena_chain, via, cs_sum.arena_chain);
      }
      (void)cs_file;
    }

    const bool changed = next.returns_taint != node.sum.returns_taint ||
                         next.blocks != node.sum.blocks ||
                         next.propagates_param != node.sum.propagates_param;
    node.sum = std::move(next);
    return changed;
  }

  /// Tarjan SCCs (iterative), then bottom-up fixpoint: Tarjan emits each
  /// SCC only after every SCC it can reach, so processing components in
  /// emission order sees final callee summaries; inside a component we
  /// iterate until no member widens.
  void run_fixpoint() {
    const std::size_t n = nodes_.size();
    std::vector<long> index(n, -1), low(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<std::size_t> stack;
    std::vector<std::vector<std::size_t>> sccs;
    long next_index = 0;

    struct Frame {
      std::size_t v;
      std::size_t edge = 0;
    };
    for (std::size_t root = 0; root < n; ++root) {
      if (index[root] != -1) continue;
      std::vector<Frame> frames{{root, 0}};
      index[root] = low[root] = next_index++;
      stack.push_back(root);
      on_stack[root] = true;
      while (!frames.empty()) {
        Frame& fr = frames.back();
        if (fr.edge < nodes_[fr.v].out.size()) {
          const std::size_t w = nodes_[fr.v].out[fr.edge++].second;
          if (index[w] == -1) {
            index[w] = low[w] = next_index++;
            stack.push_back(w);
            on_stack[w] = true;
            frames.push_back({w, 0});
          } else if (on_stack[w]) {
            low[fr.v] = std::min(low[fr.v], index[w]);
          }
          continue;
        }
        if (low[fr.v] == index[fr.v]) {
          std::vector<std::size_t> scc;
          for (;;) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
            if (w == fr.v) break;
          }
          sccs.push_back(std::move(scc));
        }
        const std::size_t v = fr.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }

    for (const auto& scc : sccs) {
      bool changed = true;
      std::size_t rounds = 0;
      while (changed && ++rounds <= scc.size() + 4) {
        changed = false;
        for (const std::size_t v : scc) changed = update(v) || changed;
      }
    }
  }

  std::vector<Node> nodes_;
  /// FNV of serialize_summary(node), memoized post-fixpoint —
  /// reachable_hash runs once per TU and must not re-render summaries.
  std::vector<std::uint64_t> node_hash_;
  std::map<std::string, std::vector<std::size_t>> by_name_;
  std::map<std::string, FnSummary> merged_;
};

/// The transitive lock-across-blocking pass: call sites holding a lock
/// whose callee summary reaches a blocking primitive through any depth.
/// Fires only when every candidate definition blocks (see file comment);
/// the direct-primitive case stays with the classic intra pass.
inline void transitive_lock_pass(const FileFacts& f, const GlobalSummaries& g,
                                 std::vector<Finding>& out) {
  for (const FnDef& fn : f.fns) {
    for (const CallSite& cs : fn.calls) {
      if (cs.lock_expr.empty()) continue;
      const auto cands = g.candidates(cs.name);
      if (cands.empty()) continue;
      bool all_block = true;
      for (const auto& c : cands) all_block = all_block && c.sum->blocks;
      if (!all_block) continue;
      if (facts_allowed(f, "lock-across-blocking", cs.line)) continue;
      if (fn_allowed(f.fn_allowances, "lock-across-blocking", fn.head_line,
                     fn.end_line)) {
        continue;
      }
      const auto& c = cands.front();
      Finding finding{
          f.rel, cs.line, "lock-across-blocking",
          "'" + cs.name + "(...)' transitively reaches a blocking call "
          "while holding '" + cs.lock_expr + "' (guard at line " +
              std::to_string(cs.lock_line) +
              ") — blocking under a lock stalls every contender; chain "
              "starts at '" + c.def->qname + "'"};
      finding.related.push_back({*c.file, c.def->head_line,
                                 "'" + c.def->qname + "' defined here"});
      for (const auto& r : c.sum->block_chain) {
        if (finding.related.size() >= kMaxChain) break;
        finding.related.push_back(r);
      }
      out.push_back(std::move(finding));
    }
  }
}

}  // namespace chronus_analyzer
