// Cross-TU call-graph extraction for chronus_analyzer (PR 10).
//
// Per TU this walks the token stream once and produces a table of
// function definitions — namespace- and method-qualified, at overload-set
// granularity (same-named overloads share one node) — each carrying the
// local facts the whole-program summary fixpoint needs:
//
//   - every call site in the body, with the innermost RAII lock region
//     held at that point (for the transitive lock-across-blocking pass)
//     and whether the call's result flows into a `return` statement (for
//     transitive return-taint propagation);
//   - whether the body calls a blocking primitive directly (join /
//     wait_idle / sleep_for / sleep_until / system / accept / accept4 /
//     recv / send / poll as free calls — `x.send(...)` is a method on our
//     own types and is resolved through the call graph instead);
//   - whether any parameter is mentioned in a `return` statement (the
//     param-taint-to-return propagation bit);
//   - the head/end lines of the definition, which is the span a
//     `chronus-analyzer: allow-fn(<rule>)` acknowledgement governs.
//
// The extraction is deliberately the same lex-don't-parse heuristic as
// the rest of the analyzer: function recognition mirrors the dataflow
// engine's shape matcher, plus a namespace/class context stack so
// definitions get stable qualified names across TUs. FnDef records are
// serialized into the per-file analysis cache (cache.hpp), so a warm run
// rebuilds the whole-program call graph without lexing anything.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyzer/lex.hpp"

namespace chronus_analyzer {

/// One call site inside a function body.
struct CallSite {
  std::string name;          // bare callee name as written
  long line = 0;
  bool member_call = false;  // x.f() / x->f() — receiver unknown
  bool in_return = false;    // result flows into a return statement
  std::string lock_expr;     // innermost guard expr held here; "" = none
  long lock_line = 0;        // that guard's declaration line
};

/// One function definition with the local facts feeding the summary
/// fixpoint. `local_return_taint` is filled in by the taint engine after
/// extraction (dataflow.hpp owns taint semantics).
struct FnDef {
  std::string name;   // bare name
  std::string qname;  // namespace/class-qualified name
  long head_line = 0;
  long end_line = 0;
  unsigned local_return_taint = 0;
  bool propagates_param = false;  // a param is mentioned in a return stmt
  bool local_blocks = false;      // calls a blocking primitive directly
  std::string block_callee;
  long block_line = 0;
  std::vector<CallSite> calls;
};

/// True when `rule` is acknowledged for the whole function spanning
/// [head_line, end_line]: an allow-fn marker on the head line (covers the
/// comment-above placement via the lexer's line+1 rule) or anywhere
/// inside the body.
inline bool fn_allowed(const std::map<std::string, std::set<long>>& fn_allow,
                       const std::string& rule, long head_line,
                       long end_line) {
  const auto it = fn_allow.find(rule);
  if (it == fn_allow.end()) return false;
  const auto lo = it->second.lower_bound(head_line);
  return lo != it->second.end() && *lo <= end_line;
}

namespace detail {

inline bool cg_is_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",     "while",   "switch",        "catch",   "return",
      "sizeof", "new",     "delete",  "throw",         "else",    "do",
      "case",   "defined", "alignof", "static_assert", "decltype",
      "assert", "noexcept"};
  return kKeywords.count(s) > 0;
}

inline bool cg_is_guard_name(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock" || s == "MutexLock";
}

/// Free-call blocking primitives. Method spellings (`x.send(...)`) are
/// resolved through the call graph as ordinary calls instead.
inline bool cg_is_blocking_primitive(const std::string& s) {
  static const std::set<std::string> kBlocking = {
      "join", "wait_idle", "sleep_for", "sleep_until", "system",
      "accept", "accept4", "recv", "send", "poll"};
  return kBlocking.count(s) > 0;
}

struct TokView {
  const std::vector<Token>& t;
  bool punct(std::size_t i, const char* s) const {
    return i < t.size() && t[i].kind == Tok::kPunct && t[i].text == s;
  }
  bool ident(std::size_t i) const {
    return i < t.size() && t[i].kind == Tok::kIdent;
  }
  bool ident_is(std::size_t i, const char* s) const {
    return ident(i) && t[i].text == s;
  }
  std::size_t match(std::size_t open) const {
    const std::string& o = t[open].text;
    const std::string c = o == "(" ? ")" : o == "{" ? "}" : "]";
    int depth = 1;
    std::size_t i = open + 1;
    while (i < t.size() && depth > 0) {
      if (t[i].kind == Tok::kPunct) {
        if (t[i].text == o) ++depth;
        if (t[i].text == c) --depth;
      }
      ++i;
    }
    return i;
  }
};

/// Matches a function-definition head at `i` (name token followed by a
/// parameter list and, after qualifiers, a `{` body). Same shape matcher
/// as the dataflow engine, minus the initializer-list capture (the call
/// extractor does not need it). Returns false when `i` is not a
/// definition.
struct FnShape {
  std::size_t name_tok = 0;
  std::size_t params_begin = 0, params_end = 0;
  std::size_t body_begin = 0, body_end = 0;
  std::vector<std::pair<std::size_t, std::size_t>> init_spans;  // ctor inits
};

inline bool cg_find_function(const TokView& v, std::size_t i, FnShape* fn) {
  const auto& t = v.t;
  if (!v.ident(i) || !v.punct(i + 1, "(") || cg_is_keyword(t[i].text)) {
    return false;
  }
  if (i >= 1 && (v.punct(i - 1, ".") ||
                 (v.punct(i - 1, ">") && i >= 2 && v.punct(i - 2, "-")))) {
    return false;
  }
  const std::size_t params_close = v.match(i + 1);
  if (params_close >= t.size()) return false;
  std::size_t k = params_close;
  std::size_t steps = 0;
  while (k < t.size() && ++steps < 40) {
    if (v.punct(k, "{")) break;
    if (v.punct(k, ";") || v.punct(k, "=") || v.punct(k, "#") ||
        v.punct(k, ",") || v.punct(k, ")")) {
      return false;
    }
    if (v.punct(k, ":")) {  // constructor initializer list
      ++k;
      while (k < t.size() && !v.punct(k, "{")) {
        while (k < t.size() && !v.ident(k)) ++k;
        if (k >= t.size()) return false;
        ++k;
        if (v.punct(k, "(") || v.punct(k, "{")) {
          const std::size_t close = v.match(k);
          fn->init_spans.push_back({k + 1, close - 1});
          k = close;
        }
        if (v.punct(k, ",")) {
          ++k;
        } else {
          break;
        }
      }
      continue;
    }
    ++k;
  }
  if (k >= t.size() || !v.punct(k, "{")) return false;
  fn->name_tok = i;
  fn->params_begin = i + 2;
  fn->params_end = params_close - 1;
  fn->body_begin = k + 1;
  fn->body_end = v.match(k);
  return true;
}

/// Parameter names: the last identifier of each comma-separated group.
inline std::set<std::string> cg_param_names(const TokView& v, std::size_t b,
                                            std::size_t e) {
  std::set<std::string> names;
  std::size_t arg_b = b;
  int depth = 0;
  for (std::size_t i = b; i <= e; ++i) {
    const bool at_end = i == e;
    if (!at_end && v.t[i].kind == Tok::kPunct) {
      const std::string& p = v.t[i].text;
      if (p == "(" || p == "<" || p == "[") ++depth;
      if (p == ")" || p == ">" || p == "]") --depth;
    }
    if (at_end || (depth == 0 && v.punct(i, ","))) {
      std::string name, type;
      for (std::size_t j = arg_b; j < i; ++j) {
        if (v.ident(j) && !v.punct(j + 1, ":")) {
          type = name;
          name = v.t[j].text;
        }
      }
      if (!name.empty() && name != "void" && !type.empty()) {
        names.insert(name);
      }
      arg_b = i + 1;
    }
  }
  return names;
}

inline std::string cg_join(const std::vector<Token>& t, std::size_t b,
                           std::size_t e) {
  std::string out;
  for (std::size_t i = b; i < e; ++i) out += t[i].text;
  return out;
}

/// Extracts the call sites, lock regions, blocking primitives and
/// return-flow facts from one function body.
inline void cg_scan_body(const TokView& v, const FnShape& shape,
                         const std::set<std::string>& params, FnDef* fn) {
  const auto& t = v.t;
  struct Region {
    std::string mutex;
    int depth = 0;
    long line = 0;
  };
  std::vector<Region> regions;
  int depth = 0;
  std::size_t return_end = 0;  // token index past the current return stmt

  for (std::size_t i = shape.body_begin; i < shape.body_end; ++i) {
    const Token& tok = t[i];
    if (tok.kind == Tok::kPunct) {
      if (tok.text == "{") ++depth;
      if (tok.text == "}") {
        --depth;
        while (!regions.empty() && regions.back().depth > depth) {
          regions.pop_back();
        }
      }
      continue;
    }
    if (tok.kind != Tok::kIdent) continue;

    if (tok.text == "return") {
      // The return expression runs to the statement's `;` (brace-init
      // `return {...}` included via bracket balancing).
      int bal = 0;
      std::size_t j = i + 1;
      while (j < shape.body_end) {
        if (t[j].kind == Tok::kPunct) {
          const std::string& p = t[j].text;
          if (p == "(" || p == "[" || p == "{") ++bal;
          if (p == ")" || p == "]" || p == "}") --bal;
          if (bal == 0 && p == ";") break;
          if (bal < 0) break;  // `return x }` — unterminated, stay sane
        }
        if (t[j].kind == Tok::kIdent && params.count(t[j].text) > 0) {
          fn->propagates_param = true;
        }
        ++j;
      }
      return_end = j;
      continue;
    }

    // RAII guard declaration — same recognizer as the classic lock pass.
    if (cg_is_guard_name(tok.text)) {
      std::size_t j = i + 1;
      if (v.punct(j, "<")) {
        int angle = 1;
        ++j;
        while (j < t.size() && angle > 0) {
          if (v.punct(j, "<")) ++angle;
          if (v.punct(j, ">")) --angle;
          ++j;
        }
      }
      if (!v.ident(j)) continue;
      ++j;
      if (!v.punct(j, "(") && !v.punct(j, "{")) continue;
      const std::size_t close = v.match(j);
      const std::string expr = cg_join(t, j + 1, close - 1);
      if (expr.find("defer_lock") == std::string::npos && !expr.empty()) {
        regions.push_back({expr, depth, tok.line});
      }
      i = close - 1;
      continue;
    }

    // Call site: ident followed by `(`, not a declaration (`Type name(`)
    // and not a `new X(` / guard / keyword shape.
    if (v.punct(i + 1, "(") && !cg_is_keyword(tok.text)) {
      const bool after_ident = i >= 1 && t[i - 1].kind == Tok::kIdent &&
                               !cg_is_keyword(t[i - 1].text);
      const bool after_new = i >= 1 && v.ident_is(i - 1, "new");
      if (after_ident || after_new) continue;  // declaration / placement
      const bool member_call =
          i >= 1 && (v.punct(i - 1, ".") ||
                     (v.punct(i - 1, ">") && i >= 2 && v.punct(i - 2, "-")));
      if (!member_call && cg_is_blocking_primitive(tok.text)) {
        if (!fn->local_blocks) {
          fn->local_blocks = true;
          fn->block_callee = tok.text;
          fn->block_line = tok.line;
        }
        continue;
      }
      CallSite cs;
      cs.name = tok.text;
      cs.line = tok.line;
      cs.member_call = member_call;
      cs.in_return = i < return_end;
      if (!regions.empty()) {
        cs.lock_expr = regions.back().mutex;
        cs.lock_line = regions.back().line;
      }
      fn->calls.push_back(std::move(cs));
    }
  }
}

}  // namespace detail

/// Extracts every function definition from one lexed TU. `rel` is only
/// used for diagnostics — FnDef records carry no file member; the caller
/// (FileFacts) knows which file they came from.
inline std::vector<FnDef> extract_functions(const LexedFile& lf) {
  const detail::TokView v{lf.tokens};
  const auto& t = lf.tokens;
  std::vector<FnDef> fns;

  // Context stack: one entry per currently-open `{` outside function
  // bodies. Named entries are namespaces/classes; anonymous entries keep
  // the depth bookkeeping right for enums, initializer braces, etc.
  struct Scope {
    std::string name;  // "" for anonymous
  };
  std::vector<Scope> context;

  std::size_t i = 0;
  while (i < t.size()) {
    // Function definition (free or method, possibly `Class::`-qualified).
    detail::FnShape shape;
    if (detail::cg_find_function(v, i, &shape)) {
      FnDef fn;
      fn.name = t[shape.name_tok].text;
      fn.head_line = t[shape.name_tok].line;
      fn.end_line = shape.body_end > 0 && shape.body_end - 1 < t.size()
                        ? t[shape.body_end - 1].line
                        : fn.head_line;
      // Qualified name: enclosing namespace/class context plus any
      // explicit `A::B::` chain written before the name.
      std::vector<std::string> quals;
      std::size_t q = shape.name_tok;
      while (q >= 3 && v.punct(q - 1, ":") && v.punct(q - 2, ":") &&
             v.ident(q - 3)) {
        quals.insert(quals.begin(), t[q - 3].text);
        q -= 3;
      }
      std::string qname;
      for (const Scope& s : context) {
        if (!s.name.empty()) qname += s.name + "::";
      }
      for (const std::string& s : quals) qname += s + "::";
      qname += fn.name;
      fn.qname = qname;

      const std::set<std::string> params =
          detail::cg_param_names(v, shape.params_begin, shape.params_end);
      detail::cg_scan_body(v, shape, params, &fn);
      fns.push_back(std::move(fn));
      i = shape.body_end;
      continue;
    }

    if (v.punct(i, "{")) {
      // Classify the opener: namespace, class/struct, or anonymous.
      Scope scope;
      if (i >= 1 && v.ident_is(i - 1, "namespace")) {
        scope.name = "";  // anonymous namespace: no qualifier
      } else if (i >= 2 && v.ident(i - 1) && v.ident_is(i - 2, "namespace")) {
        scope.name = t[i - 1].text;
      } else {
        // Walk back to the statement start looking for class/struct.
        std::size_t b = i;
        while (b >= 1) {
          const Token& p = t[b - 1];
          if (p.kind == Tok::kPunct &&
              (p.text == ";" || p.text == "}" || p.text == "{")) {
            break;
          }
          --b;
        }
        for (std::size_t k = b; k + 1 < i; ++k) {
          if ((v.ident_is(k, "class") || v.ident_is(k, "struct") ||
               v.ident_is(k, "union")) &&
              !(k >= 1 && v.ident_is(k - 1, "enum")) && v.ident(k + 1)) {
            scope.name = t[k + 1].text;
            break;
          }
        }
      }
      context.push_back(scope);
      ++i;
      continue;
    }
    if (v.punct(i, "}")) {
      if (!context.empty()) context.pop_back();
      ++i;
      continue;
    }
    ++i;
  }
  return fns;
}

}  // namespace chronus_analyzer
