// The chronus_analyzer dataflow engine: a per-TU symbol table plus an
// intra-procedural taint propagation over the token stream (assignments,
// compound assignments, constructor initializer lists, calls through
// TU-local return summaries, and member-field propagation across the
// methods of one TU). Three taint passes run on top of it:
//
//   determinism-taint  values originating from wall-clock / ambient
//                      sources (system_clock / steady_clock /
//                      high_resolution_clock ::now, getenv, random_device,
//                      poll, clock_gettime, gettimeofday) must never reach
//                      a determinism sink: a statement inside a
//                      digest/hash function, a logical metrics record
//                      (Counter::add / Histogram::observe / obs::add /
//                      obs::observe), or a codec encode helper
//                      (put_u32/put_u64/put_i32/put_i64/put_f64/
//                      append_double). Laundering through the documented
//                      masking helpers is clean: a metric whose name
//                      literal ends in `_wall_us` (the
//                      MetricsSnapshot::is_wall_metric convention), any
//                      gauge-family call (gauges are dropped from
//                      logical()), or a value passed through a helper
//                      whose name contains `mask`.
//   wire-taint         values produced by recv(2) or the incremental
//                      decoder readers (.u8/.u16/.u32/.u64/.i32/.i64/
//                      .f64/.boolean member calls, Decoder::next
//                      out-params) are untrusted until validated. A
//                      tainted value reaching .resize()/.reserve(),
//                      new T[n], array subscripts, or a loop bound is a
//                      finding. Validation is recognised as: the value
//                      appearing in an `if (...)` comparison (the
//                      guard-then-throw idiom), being passed to a
//                      bounds-checking helper (`need`, `clamp`,
//                      `bounded`, or any name containing `valid`/`check`/
//                      `sanit`), or flowing through std::min/std::clamp.
//   arena-escape       a pointer/reference/view whose storage lives in a
//                      function-local bump arena (declared `Arena a;` in
//                      this frame) escapes the owning ArenaScope: stored
//                      into a member or global, captured by a lambda that
//                      leaves the function, or returned. Caller-owned
//                      arenas (an `Arena&`/`Arena*` parameter) only flag
//                      on stores into globals — handing a caller-arena
//                      pointer back to the caller is the documented
//                      arena_new/allocate_array idiom, and an object
//                      storing views of its *own* member arena
//                      (time_extended.cpp's build_arena) is clean because
//                      object and arena share a lifetime.
//   unit-provenance    raw arithmetic (+ - * / and compound assignment)
//                      on a value that crossed a strong-type boundary via
//                      TimeStep/TimePoint::count() or Demand/Capacity::
//                      value() is flagged, unless the statement re-wraps
//                      the result in a strong-type constructor
//                      (TimeStep{...} et al — the documented crossing) or
//                      the file lives in src/util (the types' home, where
//                      the operator definitions themselves live).
//
// The engine is deliberately heuristic — it lexes rather than parses
// C++ — and errs lenient: an `if` comparison sanitises every symbol it
// mentions, summaries are TU-local, and functions whose definition shape
// the recognizer cannot see are skipped. The seeded fixtures under
// tools/analyzer_fixtures/taint/ pin down exactly what it must catch and
// what it must stay silent on; everything residual goes through
// `// chronus-analyzer: allow(<rule>)` or the checked-in baseline.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyzer/lex.hpp"
#include "analyzer/passes.hpp"
#include "analyzer/summaries.hpp"

namespace chronus_analyzer {

enum : unsigned {
  kTaintWall = kSumWall,  // wall clock / environment / device randomness
  kTaintWire = kSumWire,  // bytes or lengths decoded from the network
  kTaintUnit = kSumUnit,  // escaped a TimeStep/Demand/Capacity strong type
  // The arena lifetime axis (PR 10): a pointer/reference/container view
  // whose storage lives in a bump arena. Local = the arena is owned by
  // the current function (dies with its ArenaScope); Param = the arena is
  // caller-owned (a parameter or an object member), so the value's
  // lifetime is the caller's/owner's problem, not this function's.
  kTaintArenaLocal = kSumArenaLocal,
  kTaintArenaParam = kSumArenaParam,
};

/// Which rule families the engine may emit. Phase-C invocations select
/// these from the --passes set; summary-collection invocations emit
/// nothing regardless.
enum : unsigned {
  kEmitTaintRules = 1u << 0,  // determinism-taint / wire-taint / unit-prov.
  kEmitEscape = 1u << 1,      // arena-escape
};

/// TU-wide facts accumulated on the first engine pass and consumed on the
/// second: function return taint, member-field taint (propagated across
/// the methods of one TU), and declared types for receiver resolution.
/// When `global` is set (the interprocedural phase), calls to functions
/// defined in *other* TUs resolve through the whole-program summary
/// table, which is what makes `now() → helper() → digest` visible.
struct TaintSummaries {
  std::map<std::string, unsigned> fn_return;
  std::map<std::string, unsigned> member;
  std::map<std::string, std::string> type_of;
  const GlobalSummaries* global = nullptr;
};

inline bool is_strong_type_name(const std::string& s) {
  return s == "TimeStep" || s == "TimePoint" || s == "Demand" ||
         s == "Capacity";
}

class TaintEngine {
 public:
  TaintEngine(const SourceFile& f, TaintSummaries& sum,
              std::vector<Finding>* out,
              unsigned emit_mask = kEmitTaintRules | kEmitEscape)
      : f_(f),
        t_(f.lexed.tokens),
        sum_(sum),
        out_(out),
        emit_mask_(emit_mask) {}

  void run() {
    collect_types();
    std::size_t i = 0;
    while (i < t_.size()) {
      FunctionShape fn;
      if (find_function(i, &fn)) {
        analyze_function(fn);
        i = fn.body_end;
      } else {
        ++i;
      }
    }
  }

 private:
  struct Sym {
    std::string type;
    unsigned taint = 0;
  };

  struct FunctionShape {
    std::string name;
    std::size_t params_begin = 0, params_end = 0;  // inside the ( )
    std::size_t body_begin = 0, body_end = 0;      // inside the { }
    // Constructor initializer-list entries: member name -> init expr span.
    std::vector<std::pair<std::string, std::pair<std::size_t, std::size_t>>>
        inits;
  };

  // -- token helpers --------------------------------------------------------

  bool punct(std::size_t i, const char* s) const {
    return i < t_.size() && t_[i].kind == Tok::kPunct && t_[i].text == s;
  }
  bool ident(std::size_t i) const {
    return i < t_.size() && t_[i].kind == Tok::kIdent;
  }
  bool ident_is(std::size_t i, const char* s) const {
    return ident(i) && t_[i].text == s;
  }

  /// Index just past the bracket matching the opener at `open`.
  std::size_t match(std::size_t open) const {
    static const std::map<std::string, std::string> kPairs = {
        {"(", ")"}, {"{", "}"}, {"[", "]"}};
    const std::string& close = kPairs.at(t_[open].text);
    int depth = 1;
    std::size_t i = open + 1;
    while (i < t_.size() && depth > 0) {
      if (t_[i].kind == Tok::kPunct) {
        if (t_[i].text == t_[open].text) ++depth;
        if (t_[i].text == close) --depth;
      }
      ++i;
    }
    return i;
  }

  static bool is_keyword(const std::string& s) {
    static const std::set<std::string> kKeywords = {
        "if",     "for",    "while",  "switch",       "catch",  "return",
        "sizeof", "new",    "delete", "throw",        "else",   "do",
        "case",   "defined", "alignof", "static_assert", "decltype",
        "assert", "noexcept"};
    return kKeywords.count(s) > 0;
  }

  // -- TU-wide type collection ----------------------------------------------

  /// Records `Type name` pairs for the receiver-resolution types (strong
  /// types and decoders) wherever they occur — locals, params, members.
  void collect_types() {
    for (std::size_t i = 0; i + 1 < t_.size(); ++i) {
      if (!ident(i)) continue;
      const std::string& ty = t_[i].text;
      if (!is_strong_type_name(ty) && ty != "Decoder" && ty != "Cursor" &&
          ty != "Arena" && ty != "ArenaAllocator") {
        continue;
      }
      std::size_t j = i + 1;
      while (punct(j, "&") || punct(j, "*") || ident_is(j, "const")) ++j;
      if (ident(j) && !punct(j + 1, "(")) sum_.type_of[t_[j].text] = ty;
    }
  }

  // -- function recognition -------------------------------------------------

  bool find_function(std::size_t i, FunctionShape* fn) const {
    if (!ident(i) || !punct(i + 1, "(") || is_keyword(t_[i].text)) {
      return false;
    }
    // Reject member-call receivers (`x.foo(`): a definition's name is not
    // preceded by `.` or `->`.
    if (i >= 1 && (punct(i - 1, ".") ||
                   (punct(i - 1, ">") && i >= 2 && punct(i - 2, "-")))) {
      return false;
    }
    const std::size_t params_close = match(i + 1);
    if (params_close >= t_.size()) return false;
    std::size_t k = params_close;
    // Qualifiers between the parameter list and the body; bail out fast on
    // anything that cannot be a definition (a bounded walk keeps macro
    // definitions from swallowing unrelated tokens).
    std::size_t steps = 0;
    while (k < t_.size() && ++steps < 40) {
      if (punct(k, "{")) break;
      if (punct(k, ";") || punct(k, "=") || punct(k, "#") || punct(k, ",") ||
          punct(k, ")")) {
        return false;
      }
      if (punct(k, ":")) {  // constructor initializer list
        ++k;
        while (k < t_.size() && !punct(k, "{")) {
          while (k < t_.size() && !ident(k)) ++k;
          if (k >= t_.size()) return false;
          const std::string member = t_[k].text;
          ++k;
          if (punct(k, "(") || punct(k, "{")) {
            const std::size_t close = match(k);
            fn->inits.push_back({member, {k + 1, close - 1}});
            k = close;
          }
          if (punct(k, ",")) ++k;
          else break;
        }
        continue;
      }
      ++k;
    }
    if (k >= t_.size() || !punct(k, "{")) return false;
    fn->name = t_[i].text;
    fn->params_begin = i + 2;
    fn->params_end = params_close - 1;
    fn->body_begin = k + 1;
    fn->body_end = match(k);
    return true;
  }

  // -- the per-function walk ------------------------------------------------

  void analyze_function(const FunctionShape& fn) {
    fn_name_ = fn.name;
    std::string lower;
    for (char c : fn.name) {
      lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    digest_fn_ = lower.find("digest") != std::string::npos ||
                 lower.find("hash") != std::string::npos;
    // The definition span, for `allow-fn(<rule>)` suppression.
    cur_head_line_ =
        fn.params_begin >= 2 ? t_[fn.params_begin - 2].line : 0;
    cur_end_line_ = fn.body_end > 0 && fn.body_end - 1 < t_.size()
                        ? t_[fn.body_end - 1].line
                        : cur_head_line_;
    scopes_.clear();
    scopes_.emplace_back();
    declare_params(fn.params_begin, fn.params_end);
    for (const auto& [member, span] : fn.inits) {
      const unsigned bits = eval(span.first, span.second);
      if (bits != 0) sum_.member[member] |= bits;
    }

    std::size_t stmt_b = fn.body_begin;
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (punct(i, "{")) {
        // Brace-init (`TimeStep{...}`, `return {...}`, `f(Foo{...})`) is
        // part of the current statement, not a block boundary.
        if (expression_brace(i, fn.body_begin)) {
          i = std::min(match(i), fn.body_end) - 1;
          continue;
        }
        process_stmt(stmt_b, i);
        scopes_.emplace_back();
        stmt_b = i + 1;
      } else if (punct(i, "}")) {
        process_stmt(stmt_b, i);
        if (scopes_.size() > 1) scopes_.pop_back();
        stmt_b = i + 1;
      } else if (punct(i, ";")) {
        process_stmt(stmt_b, i);
        stmt_b = i + 1;
      } else if (ident_is(i, "if") && punct(i + 1, "(")) {
        process_stmt(stmt_b, i);
        const std::size_t close = match(i + 1);
        process_if_header(i + 2, close - 1);
        i = close - 1;
        stmt_b = close;
      } else if ((ident_is(i, "for") || ident_is(i, "while")) &&
                 punct(i + 1, "(")) {
        process_stmt(stmt_b, i);
        const std::size_t close = match(i + 1);
        process_loop_header(t_[i].text, i + 2, close - 1);
        i = close - 1;
        stmt_b = close;
      }
    }
    process_stmt(stmt_b, fn.body_end);
    scopes_.clear();
  }

  /// A `{` that continues an expression rather than opening a block:
  /// preceded by an ident (other than do/else/try), a literal, or one of
  /// `= , ( [`. Control-flow and plain blocks follow `)` `;` `{` `}` `:`.
  bool expression_brace(std::size_t i, std::size_t body_b) const {
    if (i <= body_b) return false;
    const Token& p = t_[i - 1];
    if (p.kind == Tok::kIdent) {
      return p.text != "do" && p.text != "else" && p.text != "try";
    }
    if (p.kind == Tok::kNumber || p.kind == Tok::kString) return true;
    return p.kind == Tok::kPunct &&
           (p.text == "=" || p.text == "," || p.text == "(" || p.text == "[");
  }

  void declare_params(std::size_t b, std::size_t e) {
    std::size_t arg_b = b;
    int depth = 0;
    for (std::size_t i = b; i <= e; ++i) {
      const bool at_end = i == e;
      if (!at_end && t_[i].kind == Tok::kPunct) {
        if (t_[i].text == "(" || t_[i].text == "<" || t_[i].text == "[") {
          ++depth;
        }
        if (t_[i].text == ")" || t_[i].text == ">" || t_[i].text == "]") {
          --depth;
        }
      }
      if (at_end || (depth == 0 && punct(i, ","))) {
        // Name = last ident of the parameter, type = the ident before it.
        std::string name, type;
        for (std::size_t j = arg_b; j < i; ++j) {
          if (ident(j) && !punct(j + 1, ":")) {
            type = name;
            name = t_[j].text;
          }
        }
        if (!name.empty() && name != "void" && !type.empty()) {
          // A parameter of arena type hands this function a caller-owned
          // arena: values carved from it carry the Param lifetime bit.
          const unsigned bits = (type == "Arena" || type == "ArenaAllocator")
                                    ? kTaintArenaParam
                                    : 0u;
          scopes_.back()[name] = {type, bits};
        }
        arg_b = i + 1;
      }
    }
  }

  // -- symbol table ---------------------------------------------------------

  Sym* find_sym(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto s = it->find(name);
      if (s != it->end()) return &s->second;
    }
    return nullptr;
  }

  unsigned lookup(const std::string& name) {
    if (const Sym* s = find_sym(name)) return s->taint;
    const auto m = sum_.member.find(name);
    return m != sum_.member.end() ? m->second : 0;
  }

  std::string type_of(const std::string& name) {
    if (const Sym* s = find_sym(name)) {
      if (!s->type.empty()) return s->type;
    }
    const auto it = sum_.type_of.find(name);
    return it != sum_.type_of.end() ? it->second : std::string();
  }

  void set_taint(const std::string& name, unsigned bits, bool merge) {
    if (Sym* s = find_sym(name)) {
      s->taint = merge ? (s->taint | bits) : bits;
    } else {
      scopes_.back()[name] = {std::string(), bits};
    }
    // Member-style names propagate across the TU's methods; taint only
    // ever widens there (any method may run after the store).
    if (!name.empty() && name.back() == '_' && bits != 0) {
      sum_.member[name] |= bits;
    }
  }

  /// Head ident of the `a.b->c::d` chain ending at the member token `i`,
  /// or "" when the chain starts at a call result / subscript (so no
  /// declared type can be resolved for it).
  std::string base_of_chain(std::size_t i) const {
    std::size_t j = i;
    for (;;) {
      if (j == 0) break;
      const std::size_t k = j - 1;  // token before the current chain ident
      if (punct(k, ".")) {
        if (k >= 1 && ident(k - 1)) {
          j = k - 1;
          continue;
        }
        break;
      }
      if (punct(k, ">") && k >= 1 && punct(k - 1, "-")) {
        if (k >= 2 && ident(k - 2)) {
          j = k - 2;
          continue;
        }
        break;
      }
      if (punct(k, ":") && k >= 1 && punct(k - 1, ":")) {
        if (k >= 2 && ident(k - 2)) {
          j = k - 2;
          continue;
        }
        break;
      }
      break;
    }
    return j != i && ident(j) ? t_[j].text : std::string();
  }

  // -- expression taint -----------------------------------------------------

  static bool mask_helper(const std::string& s) {
    return s.find("mask") != std::string::npos;
  }
  static bool bounds_helper(const std::string& s) {
    return s == "min" || s == "clamp" || s == "need" || s == "bounded" ||
           s.find("valid") != std::string::npos ||
           s.find("check") != std::string::npos ||
           s.find("sanit") != std::string::npos;
  }
  static bool wire_reader(const std::string& s) {
    return s == "u8" || s == "u16" || s == "u32" || s == "u64" || s == "i32" ||
           s == "i64" || s == "f64" || s == "boolean";
  }

  /// `sym.used()` / `sym->capacity()` — a non-aliasing accessor on an
  /// arena-typed symbol at token `i`.
  bool arena_stat_access(std::size_t i) const {
    static const std::set<std::string> kStats = {
        "used",      "capacity", "size",        "empty",
        "remaining", "count",    "high_water",  "bytes_allocated",
        "block_count"};
    std::size_t m = 0;
    if (punct(i + 1, ".")) {
      m = i + 2;
    } else if (punct(i + 1, "-") && punct(i + 2, ">")) {
      m = i + 3;
    } else {
      return false;
    }
    return ident(m) && punct(m + 1, "(") && kStats.count(t_[m].text) > 0;
  }

  unsigned eval(std::size_t b, std::size_t e) {
    unsigned bits = 0;
    bool masked = false, bounded = false;
    for (std::size_t i = b; i < e; ++i) {
      if (!ident(i)) continue;
      const std::string& s = t_[i].text;
      const bool called = i + 1 < e && punct(i + 1, "(");
      const bool member =
          i > b && (punct(i - 1, ".") ||
                    (punct(i - 1, ">") && i >= 2 && punct(i - 2, "-")));
      // Wall / ambient-nondeterminism sources.
      if ((s == "system_clock" || s == "steady_clock" ||
           s == "high_resolution_clock") &&
          punct(i + 1, ":") && punct(i + 2, ":") && ident_is(i + 3, "now")) {
        bits |= kTaintWall;
        continue;
      }
      if ((s == "getenv" || s == "clock_gettime" || s == "gettimeofday" ||
           s == "poll") &&
          called) {
        bits |= kTaintWall;
        continue;
      }
      if (s == "random_device" || ((s == "rand" || s == "srand") && called)) {
        bits |= kTaintWall;
        continue;
      }
      // Wire sources: decoder reader members and recv(2).
      if (member && called && wire_reader(s)) {
        bits |= kTaintWire;
        continue;
      }
      if (s == "recv" && called) {
        bits |= kTaintWire;
        continue;
      }
      // Strong-type boundary crossings.
      if (member && called && (s == "count" || s == "value")) {
        if (is_strong_type_name(type_of(base_of_chain(i)))) {
          bits |= kTaintUnit;
        }
        continue;
      }
      // Sanitizer helpers inside the expression launder the result.
      if (called && mask_helper(s)) {
        masked = true;
        continue;
      }
      if (called && (s == "min" || s == "clamp")) {
        bounded = true;
        continue;
      }
      if (member) {
        // A member access contributes its base's taint (counted at the
        // base token) plus any TU-level member taint when the base is
        // `this` or unknown.
        const std::string base = base_of_chain(i);
        if (base.empty() || base == "this" || find_sym(base) == nullptr) {
          const auto m = sum_.member.find(s);
          if (m != sum_.member.end()) bits |= m->second;
        }
        continue;
      }
      if (called) {
        const auto fr = sum_.fn_return.find(s);
        if (fr != sum_.fn_return.end()) bits |= fr->second;
        // Whole-program resolution: a free call to a function defined in
        // another TU contributes its fixpoint return taint, which is what
        // carries `now() → helper() → digest` through any depth. Member
        // calls stay TU-local — resolving `.size()` by bare name across
        // the program would be noise, not signal.
        if (sum_.global != nullptr) {
          const unsigned ext = sum_.global->return_taint_of(s);
          if (ext != 0) {
            bits |= ext;
            note_external(s);
          }
        }
        continue;
      }
      unsigned sym = lookup(s);
      // An arena *statistic* (`arena.used()`, `.capacity()`...) is a
      // plain number — it does not alias arena storage, so the lifetime
      // bits must not ride along.
      if ((sym & (kTaintArenaLocal | kTaintArenaParam)) != 0 &&
          arena_stat_access(i)) {
        sym &= ~(kTaintArenaLocal | kTaintArenaParam);
      }
      bits |= sym;
    }
    if (masked) bits &= ~kTaintWall;
    if (bounded) bits &= ~kTaintWire;
    return bits;
  }

  /// Taint of the primary expression whose last token is at `i` (an
  /// operand to the left of a binary operator).
  unsigned operand_taint_left(std::size_t i) {
    if (i < t_.size() && t_[i].kind == Tok::kNumber) return 0;
    if (ident(i)) {
      std::size_t b = i;
      while (b >= 1 && (punct(b - 1, ".") || punct(b - 1, ":") ||
                        (punct(b - 1, ">") && b >= 2 && punct(b - 2, "-")) ||
                        (ident(b - 1) && b >= 1))) {
        --b;
        if (b == 0) break;
      }
      return eval(b, i + 1);
    }
    if (punct(i, ")")) {
      // Walk to the matching opener, then to the head of the call chain.
      int depth = 1;
      std::size_t j = i;
      while (j >= 1 && depth > 0) {
        --j;
        if (punct(j, ")")) ++depth;
        if (punct(j, "(")) --depth;
      }
      std::size_t b = j;
      while (b >= 1 &&
             (ident(b - 1) || punct(b - 1, ".") || punct(b - 1, ":") ||
              (punct(b - 1, ">") && b >= 2 && punct(b - 2, "-")) ||
              punct(b - 1, "-"))) {
        --b;
      }
      return eval(b, i + 1);
    }
    return 0;
  }

  /// Taint of the primary starting at `i` (operand right of an operator).
  unsigned operand_taint_right(std::size_t i, std::size_t e) {
    if (i >= e) return 0;
    if (t_[i].kind == Tok::kNumber) return 0;
    std::size_t j = i;
    while (j < e &&
           (ident(j) || punct(j, ".") || punct(j, ":") || punct(j, "-") ||
            punct(j, ">"))) {
      ++j;
    }
    if (j < e && punct(j, "(")) j = match(j);
    return eval(i, j);
  }

  // -- statement processing -------------------------------------------------

  void process_stmt(std::size_t b, std::size_t e) {
    ext_used_.clear();
    while (b < e && (punct(b, ")") || ident_is(b, "else") ||
                     ident_is(b, "do") || ident_is(b, "try"))) {
      ++b;
    }
    if (b >= e) return;

    sanitize_calls(b, e);

    if (ident_is(b, "return")) {
      const unsigned bits = eval(b + 1, e);
      if (bits != 0) sum_.fn_return[fn_name_] |= bits;
      // arena-escape: the storage behind this value unwinds with the
      // function's own ArenaScope the moment it returns.
      if ((bits & kTaintArenaLocal) != 0) {
        emit("arena-escape", t_[b].line,
             "arena-backed value returned past the owning ArenaScope — the "
             "storage dies when '" + fn_name_ +
                 "' returns; allocate from a caller-provided arena or copy "
                 "out");
      }
      check_sinks(b, e);
      return;
    }

    if (!try_declaration(b, e)) try_assignment(b, e);
    check_sinks(b, e);
  }

  /// `need(n)`, `validate(n)`, `cur.check_bounds(n)` ... clear the wire
  /// taint of every symbol argument: the callee's contract is that it
  /// throws or clamps on hostile values.
  void sanitize_calls(std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      if (!ident(i) || !punct(i + 1, "(") || !bounds_helper(t_[i].text)) {
        continue;
      }
      const std::size_t close = match(i + 1);
      for (std::size_t j = i + 2; j + 1 < close; ++j) {
        if (!ident(j)) continue;
        if (Sym* s = find_sym(t_[j].text)) s->taint &= ~kTaintWire;
      }
    }
  }

  /// `[const] Type[::Type...]<...> [*&] name ( = expr | (args) | {args} )`.
  bool try_declaration(std::size_t b, std::size_t e) {
    std::size_t i = b;
    std::vector<std::string> idents;
    bool saw_indirection = false;
    while (i < e) {
      if (ident(i) && !is_keyword(t_[i].text)) {
        idents.push_back(t_[i].text);
        ++i;
        continue;
      }
      if (punct(i, ":") && punct(i + 1, ":")) {
        i += 2;
        continue;
      }
      if (punct(i, "<")) {  // template argument list in the type
        const std::size_t close = skip_angles(i, e);
        if (close == i) break;
        i = close;
        continue;
      }
      if (punct(i, "*") || punct(i, "&")) {
        saw_indirection = true;
        ++i;
        continue;
      }
      break;
    }
    if (idents.size() < 2) return false;
    if (i < e && !(punct(i, "=") || punct(i, "(") || punct(i, "{") ||
                   punct(i, ";"))) {
      return false;
    }
    // Reject `a = b` shapes that reached here via `a::b` — fine: `::`
    // consumed above keeps real scoping; two plain idents before `=` is a
    // declaration in this codebase's style.
    const std::string name = idents.back();
    const std::string type = idents[idents.size() - 2];
    unsigned bits = 0;
    if (i < e && punct(i, "=")) {
      bits = eval(i + 1, e);
    } else if (i < e && (punct(i, "(") || punct(i, "{"))) {
      const std::size_t close = match(i);
      bits = eval(i + 1, close - 1);
    }
    // `Arena arena;` by value declares a function-owned arena: everything
    // carved from it dies with this frame. A `Arena&`/`Arena*` local is an
    // alias — its lifetime bits come from the initializer instead.
    if (type == "Arena" && !saw_indirection) bits |= kTaintArenaLocal;
    scopes_.back()[name] = {type, bits};
    if (!name.empty() && name.back() == '_' && bits != 0) {
      sum_.member[name] |= bits;
    }
    return true;
  }

  std::size_t skip_angles(std::size_t i, std::size_t e) const {
    int depth = 1;
    std::size_t j = i + 1;
    while (j < e && depth > 0) {
      if (punct(j, "<")) ++depth;
      if (punct(j, ">")) --depth;
      ++j;
    }
    return depth == 0 ? j : i;
  }

  void try_assignment(std::size_t b, std::size_t e) {
    int depth = 0;
    for (std::size_t i = b; i < e; ++i) {
      if (t_[i].kind == Tok::kPunct) {
        const std::string& p = t_[i].text;
        if (p == "(" || p == "[" || p == "{") ++depth;
        if (p == ")" || p == "]" || p == "}") --depth;
        if (depth != 0 || p != "=") continue;
        if (punct(i + 1, "=")) return;  // ==
        const bool compound =
            i > b && (punct(i - 1, "+") || punct(i - 1, "-") ||
                      punct(i - 1, "*") || punct(i - 1, "/"));
        if (!compound && i > b &&
            (punct(i - 1, "<") || punct(i - 1, ">") || punct(i - 1, "!") ||
             punct(i - 1, "%") || punct(i - 1, "&") || punct(i - 1, "|") ||
             punct(i - 1, "^"))) {
          return;  // comparison or op-assign we don't model
        }
        // LHS base symbol: the first ident of the chain. A `p[i] = x` or
        // `*p = x` shape stores INTO the pointee — the base keeps its own
        // lifetime/taint history instead of being overwritten by the rhs.
        std::string base;
        bool element_store = punct(b, "*");
        for (std::size_t j = b; j < i; ++j) {
          if (punct(j, "[")) element_store = true;
          if (ident(j) && base.empty()) base = t_[j].text;
        }
        if (base.empty()) return;
        if (base == "this") {  // this->member_ = ...
          for (std::size_t j = b; j < i; ++j) {
            if (ident(j) && t_[j].text != "this") {
              base = t_[j].text;
              break;
            }
          }
        }
        const unsigned rhs = eval(i + 1, e);
        if (compound) {
          // A compound assignment IS arithmetic: flag the unit crossing
          // here, then merge (the lhs keeps its history).
          const unsigned lhs = lookup(base);
          if (((lhs | rhs) & kTaintUnit) != 0) unit_finding(t_[i].line);
          set_taint(base, lhs | rhs, /*merge=*/true);
        } else {
          // arena-escape: stores into storage that outlives the arena.
          // Members (trailing-underscore / this->) outlive a *local*
          // arena's scope; globals (qualified or g_-named) outlive every
          // arena, caller-owned ones included.
          bool qualified_lhs = false;
          for (std::size_t j = b; j + 1 < i; ++j) {
            if (punct(j, ":") && punct(j + 1, ":")) qualified_lhs = true;
          }
          const bool member_lhs = !base.empty() && base.back() == '_';
          const bool global_lhs = qualified_lhs || base.rfind("g_", 0) == 0;
          if ((rhs & kTaintArenaLocal) != 0 && (member_lhs || global_lhs)) {
            emit("arena-escape", t_[i].line,
                 "arena-backed value stored into '" + base +
                     "' which outlives the owning ArenaScope — copy the "
                     "data out or allocate it from the long-lived side's "
                     "arena");
          } else if ((rhs & kTaintArenaParam) != 0 && global_lhs) {
            emit("arena-escape", t_[i].line,
                 "caller-arena-backed value stored into global '" + base +
                     "' — globals outlive every arena; copy the data out");
          }
          set_taint(base, rhs, /*merge=*/element_store);
        }
        return;
      }
    }
  }

  void process_if_header(std::size_t b, std::size_t e) {
    ext_used_.clear();
    check_sinks(b, e);
    // The guard heuristic: a wire-tainted symbol mentioned in an `if`
    // comparison has been bounds-checked (the guard-then-throw idiom in
    // rpc::Decoder / Cursor). Lenient by design — the taint engine trusts
    // that a comparison the reviewer can see is a real guard.
    bool comparison = false;
    for (std::size_t i = b; i < e; ++i) {
      if ((punct(i, "<") && !punct(i + 1, "<")) ||
          (punct(i, ">") && !punct(i - 1, "-") && !punct(i + 1, ">")) ||
          (punct(i, "=") && punct(i + 1, "=")) ||
          (punct(i, "!") && punct(i + 1, "="))) {
        comparison = true;
        break;
      }
    }
    if (!comparison) return;
    for (std::size_t i = b; i < e; ++i) {
      if (!ident(i)) continue;
      if (Sym* s = find_sym(t_[i].text)) s->taint &= ~kTaintWire;
    }
  }

  void process_loop_header(const std::string& kw, std::size_t b,
                           std::size_t e) {
    ext_used_.clear();
    std::size_t cond_b = b, cond_e = e;
    if (kw == "for") {
      // for (init; cond; inc) — init is an ordinary statement, the
      // condition is the loop bound.
      std::size_t first = e, second = e;
      int depth = 0;
      for (std::size_t i = b; i < e; ++i) {
        if (punct(i, "(") || punct(i, "[") || punct(i, "{")) ++depth;
        if (punct(i, ")") || punct(i, "]") || punct(i, "}")) --depth;
        if (depth == 0 && punct(i, ";")) {
          if (first == e) {
            first = i;
          } else {
            second = i;
            break;
          }
        }
      }
      if (first < e) {
        process_stmt(b, first);
        cond_b = first + 1;
        cond_e = second;
      }
    }
    check_sinks(cond_b, cond_e);
    // Loop bounded by an unvalidated wire value: comparisons here are the
    // sink, not a sanitizer.
    for (std::size_t i = cond_b; i < cond_e; ++i) {
      const bool cmp = (punct(i, "<") && !punct(i + 1, "<")) ||
                       (punct(i, ">") && !punct(i - 1, "-")) ||
                       (punct(i, "=") && punct(i + 1, "=")) ||
                       (punct(i, "!") && punct(i + 1, "="));
      if (!cmp) continue;
      const unsigned bits = operand_taint_left(i == cond_b ? i : i - 1) |
                            operand_taint_right(i + (punct(i + 1, "=") ? 2 : 1),
                                                cond_e);
      if ((bits & kTaintWire) != 0) {
        emit("wire-taint", t_[i].line,
             "loop bounded by an unvalidated wire-derived value — a hostile "
             "length or count drives this trip count; validate against the "
             "remaining frame first (see rpc::Cursor::names)");
      }
    }
  }

  // -- sinks ----------------------------------------------------------------

  void check_sinks(std::size_t b, std::size_t e) {
    if (out_ == nullptr || b >= e) return;
    const long line = t_[b].line;

    // determinism-taint: any wall-tainted value inside a digest/hash
    // function poisons the replay identity the digest certifies.
    if (digest_fn_ && (eval(b, e) & kTaintWall) != 0) {
      emit("determinism-taint", line,
           "wall-clock/ambient value used inside '" + fn_name_ +
               "' — digests must be a pure function of logical state "
               "(mask the value or derive it from virtual time)");
    }

    bool wall_us_literal = false;
    bool gauge_call = false;
    for (std::size_t i = b; i < e; ++i) {
      if (t_[i].kind == Tok::kString) {
        static const std::string kSuffix = "_wall_us";
        if (t_[i].text.size() >= kSuffix.size() &&
            t_[i].text.compare(t_[i].text.size() - kSuffix.size(),
                               kSuffix.size(), kSuffix) == 0) {
          wall_us_literal = true;
        }
      }
      if (ident(i) && t_[i].text.rfind("gauge", 0) == 0) gauge_call = true;
    }

    for (std::size_t i = b; i < e; ++i) {
      if (!ident(i) || !punct(i + 1, "(")) continue;
      const std::string& s = t_[i].text;
      const std::size_t close = match(i + 1);
      const std::size_t args_b = i + 2, args_e = close - 1;

      // determinism-taint: logical metric records. Counters and non-wall
      // histograms survive into MetricsSnapshot::logical(); gauges and
      // `_wall_us`-named instruments are the documented masking channel.
      if ((s == "add" || s == "observe") && !wall_us_literal && !gauge_call &&
          (eval(args_b, args_e) & kTaintWall) != 0) {
        emit("determinism-taint", t_[i].line,
             "wall-clock/ambient value recorded into a logical metric — "
             "logical() counters must replay bit-identically; name the "
             "instrument *_wall_us (masked) or use a gauge");
      }

      // determinism-taint: codec-encoded values travel to the peer and
      // into cross-transport digest comparisons.
      if ((s == "put_f64" || s == "put_u64" || s == "put_i64" ||
           s == "put_u32" || s == "put_i32" || s == "append_double") &&
          (eval(args_b, args_e) & kTaintWall) != 0) {
        emit("determinism-taint", t_[i].line,
             "wall-clock/ambient value encoded onto the wire — frames are "
             "replay-compared across transports; only logical quantities "
             "may be encoded");
      }

      // wire-taint: untrusted length into an allocation.
      const bool member_call =
          i >= 1 && (punct(i - 1, ".") ||
                     (punct(i - 1, ">") && i >= 2 && punct(i - 2, "-")));
      if (member_call && (s == "resize" || s == "reserve") &&
          (eval(args_b, args_e) & kTaintWire) != 0) {
        emit("wire-taint", t_[i].line,
             "unvalidated wire-derived length reaches ." + s +
                 "() — a hostile 4-byte count allocates gigabytes; bound "
                 "it against the remaining frame first (rpc::Cursor::need)");
      }
      i = close - 1;
    }

    // wire-taint: new T[n] with a tainted extent.
    for (std::size_t i = b; i + 2 < e; ++i) {
      if (!ident_is(i, "new")) continue;
      std::size_t j = i + 1;
      while (j < e && (ident(j) || punct(j, ":") || punct(j, "<") ||
                       punct(j, ">") || punct(j, "*"))) {
        ++j;
      }
      if (j < e && punct(j, "[")) {
        const std::size_t close = match(j);
        if ((eval(j + 1, close - 1) & kTaintWire) != 0) {
          emit("wire-taint", t_[i].line,
               "unvalidated wire-derived length reaches new[] — bound the "
               "extent against the frame size before allocating");
        }
      }
    }

    // wire-taint: tainted subscript.
    for (std::size_t i = b; i < e; ++i) {
      if (!punct(i, "[")) continue;
      if (i == b || !(ident(i - 1) || punct(i - 1, ")") ||
                      punct(i - 1, "]"))) {
        continue;  // lambda captures etc.
      }
      if (i >= 2 && ident_is(i - 2, "new")) continue;  // handled above
      const std::size_t close = match(i);
      if ((eval(i + 1, close - 1) & kTaintWire) != 0) {
        emit("wire-taint", t_[i].line,
             "unvalidated wire-derived value used as an array index — "
             "check it against the container size first");
      }
    }

    unit_arithmetic_sink(b, e);
    arena_lambda_sink(b, e);
  }

  /// arena-escape: a lambda whose capture list names an arena-local
  /// value, in a statement that lets the lambda outlive this function —
  /// `return [p]...` or a store into a member/global. A `[` is a capture
  /// list only when it does not follow an ident / `)` / `]` (those are
  /// subscripts).
  void arena_lambda_sink(std::size_t b, std::size_t e) {
    bool escaping_ctx = ident_is(b, "return");
    if (!escaping_ctx) {
      int depth = 0;
      for (std::size_t i = b; i < e; ++i) {
        if (t_[i].kind != Tok::kPunct) continue;
        const std::string& p = t_[i].text;
        if (p == "(" || p == "[" || p == "{") ++depth;
        if (p == ")" || p == "]" || p == "}") --depth;
        if (depth == 0 && p == "=" && i > b && !punct(i + 1, "=")) {
          std::string base;
          for (std::size_t j = b; j < i; ++j) {
            if (ident(j) && t_[j].text != "this") {
              base = t_[j].text;
              break;
            }
          }
          escaping_ctx = !base.empty() && (base.back() == '_' ||
                                           base.rfind("g_", 0) == 0);
          break;
        }
      }
    }
    if (!escaping_ctx) return;
    for (std::size_t i = b; i < e; ++i) {
      if (!punct(i, "[")) continue;
      if (i > b && (ident(i - 1) || punct(i - 1, ")") || punct(i - 1, "]"))) {
        continue;  // subscript
      }
      const std::size_t close = match(i);
      for (std::size_t j = i + 1; j + 1 < close; ++j) {
        if (!ident(j)) continue;
        if ((lookup(t_[j].text) & kTaintArenaLocal) != 0) {
          emit("arena-escape", t_[j].line,
               "lambda captures arena-local '" + t_[j].text +
                   "' and escapes '" + fn_name_ +
                   "' — the capture dangles once the owning ArenaScope "
                   "unwinds; capture a copy instead");
          break;
        }
      }
      i = close - 1;
    }
  }

  void unit_arithmetic_sink(std::size_t b, std::size_t e) {
    if (f_.rel.rfind("src/util/", 0) == 0) return;  // the types' home
    // A statement that re-wraps into a strong type is the documented
    // crossing idiom: TimeStep{t.count() + d} is exactly how the
    // strong-type algebra is meant to be extended.
    for (std::size_t i = b; i < e; ++i) {
      if (ident(i) && is_strong_type_name(t_[i].text) &&
          (punct(i + 1, "{") || punct(i + 1, "("))) {
        return;
      }
    }
    for (std::size_t i = b + 1; i + 1 < e; ++i) {
      if (t_[i].kind != Tok::kPunct) continue;
      const std::string& p = t_[i].text;
      if (p != "+" && p != "-" && p != "*" && p != "/") continue;
      // Binary only: both neighbours must be operand-shaped, and the
      // operator must not be half of ->, ++, --, +=, <<= ...
      if (punct(i + 1, p.c_str()) || (i >= 1 && punct(i - 1, p.c_str()))) {
        continue;  // ++ / -- / ...
      }
      if (p == "-" && punct(i + 1, ">")) continue;  // ->
      if (punct(i + 1, "=")) continue;              // compound assign
      const bool left_operand =
          ident(i - 1) || t_[i - 1].kind == Tok::kNumber || punct(i - 1, ")");
      const bool right_operand = ident(i + 1) ||
                                 t_[i + 1].kind == Tok::kNumber ||
                                 punct(i + 1, "(");
      if (!left_operand || !right_operand) continue;
      const unsigned bits =
          operand_taint_left(i - 1) | operand_taint_right(i + 1, e);
      if ((bits & kTaintUnit) != 0) unit_finding(t_[i].line);
    }
  }

  void unit_finding(long line) {
    emit("unit-provenance", line,
         "raw arithmetic on a value that crossed a TimeStep/Demand/"
         "Capacity boundary via .count()/.value() — keep the algebra "
         "inside the strong type, or re-wrap the result "
         "(e.g. TimeStep{t.count() + d}) to document the crossing");
  }

  bool rule_on(const std::string& rule) const {
    if (rule == "arena-escape") return (emit_mask_ & kEmitEscape) != 0;
    return (emit_mask_ & kEmitTaintRules) != 0;
  }

  void note_external(const std::string& name) {
    for (const std::string& s : ext_used_) {
      if (s == name) return;
    }
    ext_used_.push_back(name);
  }

  void emit(const std::string& rule, long line, const std::string& msg) {
    if (out_ == nullptr || !rule_on(rule)) return;
    if (allowed(f_.lexed, rule, line)) return;
    if (fn_allowed(f_.lexed.fn_allowances, rule, cur_head_line_,
                   cur_end_line_)) {
      return;
    }
    if (!emitted_.insert({rule, line}).second) return;
    Finding fd{f_.rel, line, rule, msg};
    attach_chain(rule, &fd);
    out_->push_back(std::move(fd));
  }

  /// When an external summary contributed the triggering bits, attach the
  /// callee's witness chain as SARIF relatedLocations so the report shows
  /// the whole `source → helper → sink` path, not just the sink line.
  void attach_chain(const std::string& rule, Finding* fd) const {
    if (sum_.global == nullptr || ext_used_.empty()) return;
    unsigned want = 0;
    if (rule == "determinism-taint") {
      want = kSumWall;
    } else if (rule == "wire-taint") {
      want = kSumWire;
    } else if (rule == "arena-escape") {
      want = kSumArenaLocal | kSumArenaParam;
    } else {
      return;
    }
    for (const std::string& name : ext_used_) {
      const FnSummary* s = sum_.global->merged(name);
      if (s == nullptr || (s->returns_taint & want) == 0) continue;
      const std::vector<RelatedLocation>& chain =
          (want & kSumWall) != 0
              ? s->wall_chain
              : (want & kSumWire) != 0 ? s->wire_chain : s->arena_chain;
      for (const auto& r : chain) {
        if (fd->related.size() >= kMaxChain) break;
        fd->related.push_back(r);
      }
      if (!fd->related.empty()) return;
    }
  }

  const SourceFile& f_;
  const std::vector<Token>& t_;
  TaintSummaries& sum_;
  std::vector<Finding>* out_;
  unsigned emit_mask_ = kEmitTaintRules | kEmitEscape;
  std::vector<std::map<std::string, Sym>> scopes_;
  std::string fn_name_;
  bool digest_fn_ = false;
  long cur_head_line_ = 0, cur_end_line_ = 0;
  std::vector<std::string> ext_used_;
  std::set<std::pair<std::string, long>> emitted_;
};

/// The TU-local taint pass entry point: two engine passes over the TU —
/// the first accumulates function-return and member-field summaries, the
/// second propagates with those summaries visible everywhere and emits
/// findings. No whole-program table: transitive flows stay invisible.
inline void taint_pass(const SourceFile& f, std::vector<Finding>& findings) {
  TaintSummaries sum;
  TaintEngine(f, sum, nullptr).run();
  TaintEngine(f, sum, &findings).run();
}

/// Phase-A helper: one summary-collection engine pass. The returned
/// per-function return-taint map is what the driver copies into the
/// FnDef.local_return_taint records feeding the whole-program fixpoint.
inline TaintSummaries collect_taint_summaries(const SourceFile& f) {
  TaintSummaries sum;
  TaintEngine(f, sum, nullptr).run();
  return sum;
}

/// Phase-C entry: the interprocedural run. Two passes as in taint_pass,
/// with the whole-program summary table visible to both, and the emit
/// mask selecting which rule families (--passes) may fire.
inline void interproc_dataflow_pass(const SourceFile& f,
                                    const GlobalSummaries& g,
                                    unsigned emit_mask,
                                    std::vector<Finding>& findings) {
  TaintSummaries sum;
  sum.global = &g;
  TaintEngine(f, sum, nullptr, emit_mask).run();
  TaintEngine(f, sum, &findings, emit_mask).run();
}

}  // namespace chronus_analyzer
