// Content-hash analysis cache for chronus_analyzer.
//
// The per-file passes (lock, determinism, taint) are pure functions of one
// file's bytes, and the cross-file layering pass consumes only the tiny
// FileFacts summary — so the cache key is FNV-1a(config || content) and
// the cached value is the serialized FileFacts, findings included. On a
// warm tree nothing is lexed: each file is read once, hashed, and its
// facts loaded from the cache directory. The config seed folds in the
// cache format version and the enabled pass set, so changing either
// invalidates every entry without any bookkeeping.
//
// The store is one flat directory of `<hex>.facts` text files. Writes go
// through a temp file + rename so concurrent `--jobs` workers (or two
// analyzer invocations racing in CI) never observe a torn entry. All I/O
// failures degrade to a cache miss — the cache can never change results,
// only speed.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer/passes.hpp"

namespace chronus_analyzer {

inline constexpr const char* kCacheFormat = "chronus-analyzer-cache v2";

/// Tool release, folded into every cache key: a new analyzer binary must
/// never reuse entries written by an older one, even when the on-disk
/// format happens to still parse.
inline constexpr const char* kAnalyzerVersion = "chronus-analyzer 0.10";

/// Bumped whenever any pass's *semantics* change without a record-format
/// change (new sink, retuned heuristic, widened source set). This is what
/// makes a pass upgrade invalidate warm caches in CI.
inline constexpr int kPassRevision = 10;

inline std::uint64_t fnv1a(const std::string& s,
                           std::uint64_t h = 1469598103934665603ull) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

inline std::string hex64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

// -- FileFacts text serialization -------------------------------------------
// Line-oriented, tab-separated fields; tabs/newlines/backslashes in
// messages are escaped so the format stays one record per line.

inline std::string cache_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

inline std::string cache_unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    if (s[i] == 't') {
      out += '\t';
    } else if (s[i] == 'n') {
      out += '\n';
    } else {
      out += s[i];
    }
  }
  return out;
}

/// One `F` record: line, rule, file, message, then (file, line, note)
/// triples for each related location (the SARIF call-chain witness).
inline void write_finding(std::ostream& out, const Finding& fi) {
  out << "F\t" << fi.line << "\t" << cache_escape(fi.rule) << "\t"
      << cache_escape(fi.file) << "\t" << cache_escape(fi.message);
  for (const auto& r : fi.related) {
    out << "\t" << cache_escape(r.file) << "\t" << r.line << "\t"
        << cache_escape(r.note);
  }
  out << "\n";
}

inline bool parse_finding_cols(const std::vector<std::string>& cols,
                               Finding* fi) {
  if (cols.size() < 5 || (cols.size() - 5) % 3 != 0) return false;
  fi->file = cache_unescape(cols[3]);
  fi->line = std::stol(cols[1]);
  fi->rule = cache_unescape(cols[2]);
  fi->message = cache_unescape(cols[4]);
  for (std::size_t c = 5; c + 3 <= cols.size(); c += 3) {
    fi->related.push_back({cache_unescape(cols[c]), std::stol(cols[c + 1]),
                           cache_unescape(cols[c + 2])});
  }
  return true;
}

inline std::string serialize_facts(const FileFacts& f) {
  std::ostringstream out;
  out << kCacheFormat << "\n";
  out << "rel\t" << cache_escape(f.rel) << "\n";
  out << "module\t" << cache_escape(f.module) << "\n";
  for (const auto& [inc, line] : f.includes) {
    out << "I\t" << line << "\t" << cache_escape(inc) << "\n";
  }
  for (const auto& [rule, lines] : f.allowances) {
    for (const long line : lines) {
      out << "A\t" << line << "\t" << cache_escape(rule) << "\n";
    }
  }
  for (const auto& [rule, lines] : f.fn_allowances) {
    for (const long line : lines) {
      out << "AF\t" << line << "\t" << cache_escape(rule) << "\n";
    }
  }
  for (const auto& fi : f.findings) {
    write_finding(out, fi);
  }
  for (const auto& fn : f.fns) {
    out << "FN\t" << fn.head_line << "\t" << fn.end_line << "\t"
        << fn.local_return_taint << "\t" << (fn.propagates_param ? 1 : 0)
        << "\t" << (fn.local_blocks ? 1 : 0) << "\t" << fn.block_line << "\t"
        << cache_escape(fn.name) << "\t" << cache_escape(fn.qname) << "\t"
        << cache_escape(fn.block_callee) << "\n";
    for (const auto& cs : fn.calls) {
      out << "C\t" << cs.line << "\t" << (cs.member_call ? 1 : 0) << "\t"
          << (cs.in_return ? 1 : 0) << "\t" << cs.lock_line << "\t"
          << cache_escape(cs.name) << "\t" << cache_escape(cs.lock_expr)
          << "\n";
    }
  }
  return out.str();
}

inline bool parse_facts(const std::string& text, FileFacts* out) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kCacheFormat) return false;
  while (std::getline(in, line)) {
    std::vector<std::string> cols;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == '\t') {
        cols.push_back(line.substr(start, i - start));
        start = i + 1;
      }
    }
    if (cols.empty()) continue;
    const std::string& tag = cols[0];
    if (tag == "rel" && cols.size() == 2) {
      out->rel = cache_unescape(cols[1]);
    } else if (tag == "module" && cols.size() == 2) {
      out->module = cache_unescape(cols[1]);
    } else if (tag == "I" && cols.size() == 3) {
      out->includes.emplace_back(cache_unescape(cols[2]),
                                 std::stol(cols[1]));
    } else if (tag == "A" && cols.size() == 3) {
      out->allowances[cache_unescape(cols[2])].insert(std::stol(cols[1]));
    } else if (tag == "AF" && cols.size() == 3) {
      out->fn_allowances[cache_unescape(cols[2])].insert(std::stol(cols[1]));
    } else if (tag == "F") {
      Finding fi;
      if (!parse_finding_cols(cols, &fi)) return false;
      out->findings.push_back(std::move(fi));
    } else if (tag == "FN" && cols.size() == 10) {
      FnDef fn;
      fn.head_line = std::stol(cols[1]);
      fn.end_line = std::stol(cols[2]);
      fn.local_return_taint =
          static_cast<unsigned>(std::stoul(cols[3]));
      fn.propagates_param = cols[4] == "1";
      fn.local_blocks = cols[5] == "1";
      fn.block_line = std::stol(cols[6]);
      fn.name = cache_unescape(cols[7]);
      fn.qname = cache_unescape(cols[8]);
      fn.block_callee = cache_unescape(cols[9]);
      out->fns.push_back(std::move(fn));
    } else if (tag == "C" && cols.size() == 7) {
      if (out->fns.empty()) return false;  // call record before any FN
      CallSite cs;
      cs.line = std::stol(cols[1]);
      cs.member_call = cols[2] == "1";
      cs.in_return = cols[3] == "1";
      cs.lock_line = std::stol(cols[4]);
      cs.name = cache_unescape(cols[5]);
      cs.lock_expr = cache_unescape(cols[6]);
      out->fns.back().calls.push_back(std::move(cs));
    } else {
      return false;  // unknown record: treat the entry as corrupt
    }
  }
  return !out->rel.empty();
}

// -- the store ---------------------------------------------------------------

class AnalysisCache {
 public:
  /// `dir` empty disables the cache. `config` folds the enabled pass set
  /// (and anything else result-affecting) into every key.
  AnalysisCache(std::filesystem::path dir, const std::string& config)
      : dir_(std::move(dir)),
        seed_(fnv1a(std::string(kCacheFormat) + "\x1f" + kAnalyzerVersion +
                    "\x1f" + std::to_string(kPassRevision) + "\x1f" +
                    config)) {
    if (dir_.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    enabled_ = !ec && std::filesystem::is_directory(dir_, ec);
  }

  bool enabled() const { return enabled_; }

  std::string key_for(const std::string& content) const {
    return hex64(fnv1a(content, seed_));
  }

  bool load(const std::string& key, FileFacts* out) const {
    if (!enabled_) return false;
    std::ifstream in(dir_ / (key + ".facts"), std::ios::binary);
    if (!in) return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    FileFacts facts;
    if (!parse_facts(buf.str(), &facts)) return false;
    *out = std::move(facts);
    return true;
  }

  void store(const std::string& key, const FileFacts& facts) const {
    if (!enabled_) return;
    const std::filesystem::path final_path = dir_ / (key + ".facts");
    const std::filesystem::path tmp_path =
        dir_ / (key + "." + hex64(fnv1a(facts.rel)) + ".tmp");
    {
      std::ofstream out(tmp_path, std::ios::binary);
      if (!out) return;
      out << serialize_facts(facts);
      if (!out.good()) return;
    }
    std::error_code ec;
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec) std::filesystem::remove(tmp_path, ec);
  }

  // -- interprocedural findings store (phase C) -----------------------------
  // Same directory, `.ipf` suffix. The caller composes the key from the
  // file's bytes *plus* the hash of every whole-program summary reachable
  // from it, so editing a leaf callee transitively invalidates exactly
  // its callers. An existing-but-empty entry is a hit with zero findings
  // (hit/miss is file existence, not content).

  bool load_findings(const std::string& key,
                     std::vector<Finding>* out) const {
    if (!enabled_) return false;
    std::ifstream in(dir_ / (key + ".ipf"), std::ios::binary);
    if (!in) return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::istringstream text(buf.str());
    std::string line;
    if (!std::getline(text, line) || line != kCacheFormat) return false;
    std::vector<Finding> findings;
    while (std::getline(text, line)) {
      std::vector<std::string> cols;
      std::size_t start = 0;
      for (std::size_t i = 0; i <= line.size(); ++i) {
        if (i == line.size() || line[i] == '\t') {
          cols.push_back(line.substr(start, i - start));
          start = i + 1;
        }
      }
      if (cols.empty() || cols[0] != "F") return false;
      Finding fi;
      if (!parse_finding_cols(cols, &fi)) return false;
      findings.push_back(std::move(fi));
    }
    *out = std::move(findings);
    return true;
  }

  void store_findings(const std::string& key, const std::string& rel,
                      const std::vector<Finding>& findings) const {
    if (!enabled_) return;
    const std::filesystem::path final_path = dir_ / (key + ".ipf");
    const std::filesystem::path tmp_path =
        dir_ / (key + "." + hex64(fnv1a(rel)) + ".ipftmp");
    {
      std::ofstream out(tmp_path, std::ios::binary);
      if (!out) return;
      out << kCacheFormat << "\n";
      for (const auto& fi : findings) write_finding(out, fi);
      if (!out.good()) return;
    }
    std::error_code ec;
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec) std::filesystem::remove(tmp_path, ec);
  }

 private:
  std::filesystem::path dir_;
  std::uint64_t seed_;
  bool enabled_ = false;
};

}  // namespace chronus_analyzer
