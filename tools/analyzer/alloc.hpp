// The hot-path allocation pass (PR 9): the arena work (src/util/arena.hpp,
// DESIGN.md §16) moved the planner hot loops off the general-purpose heap,
// and this pass keeps them off. Inside the arena-managed modules it flags
// every construct that reaches operator new — `new` expressions,
// make_unique/make_shared, ostringstream state, and std:: containers left
// on their default allocator — unless the line carries an explicit
//   // chronus-analyzer: allow(hot-alloc) <why this one stays on the heap>
// acknowledgement (same line, line above, or a block comment — the same
// three placements every other rule honours).
//
// Scope: .cpp files under src/timenet/ and src/opt/ only. Headers are out
// (they declare types for every caller, hot or not), and so is the rest of
// the tree — the heap is the right default everywhere the arena does not
// reach. src/fixture/ is the self-test mount point.
//
// Deliberately NOT flagged, because they are the sanctioned patterns:
//   - placement new (`new (ptr) T...`) — that is how arena memory is
//     constructed into;
//   - containers whose template arguments name an allocator
//     (ArenaAllocator, std::pmr, any `allocator` spelling);
//   - references, pointers, nested-name uses (`std::vector<T>&`,
//     `std::vector<T>::iterator`) and function declarations — types in
//     those positions allocate nothing at that site.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analyzer/lex.hpp"
#include "analyzer/passes.hpp"

namespace chronus_analyzer {

/// Arena-managed modules only, and only where code runs (.cpp). The
/// src/fixture/ prefix is where the --self-test harness mounts fixture
/// files, so the seeded bad_hot-alloc fixtures reach the pass.
inline bool hot_alloc_in_scope(const std::string& rel) {
  if (rel.size() < 4 || rel.compare(rel.size() - 4, 4, ".cpp") != 0) {
    return false;
  }
  return rel.rfind("src/timenet/", 0) == 0 || rel.rfind("src/opt/", 0) == 0 ||
         rel.rfind("src/fixture/", 0) == 0;
}

inline bool is_default_alloc_container(const std::string& s) {
  static const std::set<std::string> kContainers = {
      "vector",        "deque",          "list",
      "forward_list",  "map",            "multimap",
      "set",           "multiset",       "unordered_map",
      "unordered_set", "unordered_multimap", "unordered_multiset"};
  return kContainers.count(s) > 0;
}

inline bool is_stream_state(const std::string& s) {
  return s == "ostringstream" || s == "istringstream" || s == "stringstream";
}

inline void hot_alloc_pass(const SourceFile& f, std::vector<Finding>& findings) {
  if (!hot_alloc_in_scope(f.rel)) return;
  const auto& t = f.lexed.tokens;

  const auto flag = [&](long line, const std::string& what) {
    if (allowed(f.lexed, "hot-alloc", line)) return;
    findings.push_back(
        {f.rel, line, "hot-alloc",
         what + " on an arena-managed hot path — build into util::Arena "
               "(ArenaAllocator / the module's scratch arena, DESIGN.md §16) "
               "or acknowledge the heap with // chronus-analyzer: "
               "allow(hot-alloc) and the reason"});
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind != Tok::kIdent) continue;

    // `new T...` — but not placement new, which is exactly how objects are
    // constructed into arena memory (`new (arena.allocate(...)) T`), and
    // not the header name in `#include <new>`.
    if (tok.text == "new") {
      const bool placement = i + 1 < t.size() &&
                             t[i + 1].kind == Tok::kPunct &&
                             t[i + 1].text == "(";
      const bool header_name =
          i >= 1 && t[i - 1].kind == Tok::kPunct && t[i - 1].text == "<" &&
          i + 1 < t.size() && t[i + 1].kind == Tok::kPunct &&
          t[i + 1].text == ">";
      if (!placement && !header_name) flag(tok.line, "'new' expression");
      continue;
    }

    // make_unique / make_shared — each call is a heap allocation.
    if ((tok.text == "make_unique" || tok.text == "make_shared") &&
        i + 1 < t.size() && t[i + 1].kind == Tok::kPunct &&
        (t[i + 1].text == "<" || t[i + 1].text == "(")) {
      flag(tok.line, "'" + tok.text + "'");
      continue;
    }

    // Stringstream state: `ostringstream os;` — SSO-defeating key building
    // is the classic hot-loop allocator churn (util::ArenaString exists).
    if (is_stream_state(tok.text) && i + 1 < t.size() &&
        t[i + 1].kind == Tok::kIdent) {
      flag(tok.line, "'" + tok.text + "' state");
      continue;
    }

    // Default-allocator std:: container in an allocating position.
    if (!is_default_alloc_container(tok.text)) continue;
    if (i + 1 >= t.size() || t[i + 1].kind != Tok::kPunct ||
        t[i + 1].text != "<") {
      continue;
    }
    // A trailing return type (`-> std::vector<T> {`) is a declaration,
    // not a temporary; the `{` after it opens the function body.
    bool trailing_return = false;
    {
      std::size_t b = i;
      while (b >= 1 && t[b - 1].kind == Tok::kIdent) --b;  // std
      while (b >= 1 && t[b - 1].kind == Tok::kPunct && t[b - 1].text == ":") {
        --b;
      }
      if (b >= 2 && t[b - 1].kind == Tok::kPunct && t[b - 1].text == ">" &&
          t[b - 2].kind == Tok::kPunct && t[b - 2].text == "-") {
        trailing_return = true;
      }
    }
    // Walk the balanced template argument list; a named allocator anywhere
    // inside it means the type is already routed off the default heap.
    std::size_t j = i + 2;
    int angle = 1;
    bool custom_allocator = false;
    while (j < t.size() && angle > 0) {
      if (t[j].kind == Tok::kPunct && t[j].text == "<") ++angle;
      if (t[j].kind == Tok::kPunct && t[j].text == ">") --angle;
      if (t[j].kind == Tok::kIdent &&
          (t[j].text == "ArenaAllocator" || t[j].text == "allocator" ||
           t[j].text == "polymorphic_allocator" ||
           t[j].text == "ArenaVector" || t[j].text == "ArenaString")) {
        custom_allocator = true;
      }
      ++j;
    }
    if (custom_allocator || j >= t.size()) {
      i = j - 1;
      continue;
    }
    const Token& after = t[j];  // first token past the closing '>'

    // `Container<T>{...}` — a braced temporary allocates right here.
    if (after.kind == Tok::kPunct && after.text == "{" && !trailing_return) {
      flag(tok.line, "default-allocator 'std::" + tok.text + "' temporary");
      continue;
    }
    // `using Alias = Container<T>;` — the alias itself is inert, but it
    // exists to be instantiated; flagging the single alias line is one
    // acknowledgement instead of one per use site.
    if (after.kind == Tok::kPunct && after.text == ";") {
      bool is_alias = false;
      for (std::size_t b = i; b-- > 0;) {
        if (t[b].kind == Tok::kPunct &&
            (t[b].text == ";" || t[b].text == "{" || t[b].text == "}")) {
          break;
        }
        if (t[b].kind == Tok::kIdent &&
            (t[b].text == "using" || t[b].text == "typedef")) {
          is_alias = true;
          break;
        }
      }
      if (is_alias) {
        flag(tok.line, "default-allocator 'std::" + tok.text + "' alias");
      }
      continue;
    }
    if (after.kind != Tok::kIdent) continue;  // & * :: , ) ( > — no object
    if (j + 1 >= t.size() || t[j + 1].kind != Tok::kPunct) continue;
    const std::string& nxt = t[j + 1].text;

    // `Container<T> name;` / `name{...}` / `name = ...` — a local or
    // member that owns heap storage. `name,` and `name)` are by-value
    // parameters and multi-declarators: they copy into the heap too.
    if (nxt == ";" || nxt == "{" || nxt == "=" || nxt == "," || nxt == ")") {
      flag(tok.line, "default-allocator 'std::" + tok.text + "' object");
      continue;
    }
    // `Container<T> name(...)`: a constructor call unless it parses as a
    // function declaration. Empty parens and parameter lists are
    // signatures; constructor arguments are expressions, which is what
    // member access, literals and strings inside the parens reveal.
    if (nxt == "(") {
      std::size_t k = j + 2;
      int paren = 1;
      bool expression_args = false;
      while (k < t.size() && paren > 0) {
        if (t[k].kind == Tok::kPunct && t[k].text == "(") ++paren;
        if (t[k].kind == Tok::kPunct && t[k].text == ")") --paren;
        if (t[k].kind == Tok::kNumber || t[k].kind == Tok::kString ||
            (t[k].kind == Tok::kPunct && t[k].text == ".")) {
          expression_args = true;
        }
        ++k;
      }
      // `) {` / `) const` right after closes a function definition head.
      const bool definition_head =
          k < t.size() && ((t[k].kind == Tok::kPunct && t[k].text == "{") ||
                           (t[k].kind == Tok::kIdent && t[k].text == "const"));
      if (expression_args && !definition_head) {
        flag(tok.line, "default-allocator 'std::" + tok.text + "' object");
      }
    }
  }
}

}  // namespace chronus_analyzer
