// The classic chronus_analyzer passes (PR 5): module layering against
// tools/layering.toml, lock discipline, and determinism/exception hygiene.
//
// The per-file passes (lock_pass, determinism_pass) take a lexed
// SourceFile and emit findings for that file alone — their results are
// cacheable per content hash (tools/analyzer/cache.hpp). The layering
// pass is cross-file: it runs every time, but only over the tiny FileFacts
// summaries (includes, module, allowances), never the token streams, so a
// warm-cache tree scan does no lexing at all.
#pragma once

#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer/callgraph.hpp"
#include "analyzer/lex.hpp"
#include "sarif.hpp"

namespace chronus_analyzer {

using chronus_tools::Finding;

// ---------------------------------------------------------------------------
// Source files and their cacheable facts
// ---------------------------------------------------------------------------

struct SourceFile {
  std::filesystem::path path;
  std::string rel;     // e.g. "src/net/graph.hpp", forward slashes
  std::string module;  // e.g. "net"; empty when not under src/<mod>/
  LexedFile lexed;
};

/// Everything the cross-file passes and the report need from one file.
/// This is the unit the analysis cache stores: on a content-hash hit the
/// file is neither read past hashing nor lexed again.
struct FileFacts {
  std::string rel;
  std::string module;
  std::vector<std::pair<std::string, long>> includes;  // quoted, with lines
  std::map<std::string, std::set<long>> allowances;
  /// Function-scope `allow-fn(<rule>)` marker lines (see lex.hpp).
  std::map<std::string, std::set<long>> fn_allowances;
  /// The TU's function-definition table feeding the whole-program call
  /// graph and summary fixpoint (callgraph.hpp / summaries.hpp).
  std::vector<FnDef> fns;
  std::vector<Finding> findings;  // per-file pass findings (lock/det/alloc)
};

inline bool facts_allowed(const FileFacts& f, const std::string& rule,
                          long line) {
  const auto it = f.allowances.find(rule);
  return it != f.allowances.end() && it->second.count(line) > 0;
}

/// Quoted includes with their lines, straight from the token stream
/// (`#` `include` "path" — comments and strings cannot fake this).
inline std::vector<std::pair<std::string, long>> quoted_includes(
    const LexedFile& lf) {
  std::vector<std::pair<std::string, long>> out;
  const auto& t = lf.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind == Tok::kPunct && t[i].text == "#" &&
        t[i + 1].kind == Tok::kIdent && t[i + 1].text == "include" &&
        t[i + 2].kind == Tok::kString) {
      out.emplace_back(t[i + 2].text, t[i + 2].line);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Layering manifest (tools/layering.toml)
// ---------------------------------------------------------------------------

struct Manifest {
  /// module -> modules it may include from (itself is always allowed).
  std::map<std::string, std::vector<std::string>> allow;
  std::string error;  // non-empty on parse failure
};

inline std::string trim(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a])) != 0) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])) != 0) --b;
  return s.substr(a, b - a);
}

/// Parses the `[layers]` table of a deliberately tiny TOML subset:
/// `module = ["dep", "dep"]` entries, `#` comments, one entry per line.
inline Manifest parse_manifest(const std::filesystem::path& path) {
  Manifest m;
  std::ifstream in(path);
  if (!in) {
    m.error = "cannot open manifest " + path.string();
    return m;
  }
  bool in_layers = false;
  long lineno = 0;
  for (std::string raw; std::getline(in, raw);) {
    ++lineno;
    const std::size_t hash = raw.find('#');
    std::string s = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (s.empty()) continue;
    if (s.front() == '[') {
      in_layers = s == "[layers]";
      continue;
    }
    if (!in_layers) continue;
    const std::size_t eq = s.find('=');
    if (eq == std::string::npos) {
      m.error = path.string() + ":" + std::to_string(lineno) +
                ": expected `module = [..]`";
      return m;
    }
    const std::string key = trim(s.substr(0, eq));
    const std::string val = trim(s.substr(eq + 1));
    if (val.size() < 2 || val.front() != '[' || val.back() != ']') {
      m.error = path.string() + ":" + std::to_string(lineno) +
                ": expected a [\"dep\", ...] list for " + key;
      return m;
    }
    std::vector<std::string> deps;
    std::string item;
    std::istringstream items(val.substr(1, val.size() - 2));
    while (std::getline(items, item, ',')) {
      item = trim(item);
      if (item.size() >= 2 && item.front() == '"' && item.back() == '"') {
        deps.push_back(item.substr(1, item.size() - 2));
      } else if (!item.empty()) {
        m.error = path.string() + ":" + std::to_string(lineno) +
                  ": dependency names must be quoted";
        return m;
      }
    }
    m.allow[key] = std::move(deps);
  }
  return m;
}

/// Reports a cycle in the declared module DAG, if any (manifest-cycle).
inline void check_manifest_acyclic(const Manifest& m,
                                   std::vector<Finding>& out) {
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  const std::function<bool(const std::string&)> dfs =
      [&](const std::string& mod) -> bool {
    color[mod] = 1;
    stack.push_back(mod);
    const auto it = m.allow.find(mod);
    if (it != m.allow.end()) {
      for (const std::string& dep : it->second) {
        if (dep == mod) continue;
        const int c = color[dep];
        if (c == 1) {
          std::string path;
          for (const auto& s : stack) path += s + " -> ";
          out.push_back({"tools/layering.toml", 0, "manifest-cycle",
                         "declared layering is cyclic: " + path + dep});
          return true;
        }
        if (c == 0 && dfs(dep)) return true;
      }
    }
    color[mod] = 2;
    stack.pop_back();
    return false;
  };
  for (const auto& [mod, deps] : m.allow) {
    (void)deps;
    if (color[mod] == 0 && dfs(mod)) return;
  }
}

// ---------------------------------------------------------------------------
// Pass 1: layering — cross-file, runs over FileFacts summaries
// ---------------------------------------------------------------------------

inline std::string module_of_include(const std::string& inc) {
  const std::size_t slash = inc.find('/');
  return slash == std::string::npos ? std::string() : inc.substr(0, slash);
}

inline void layering_pass(const std::vector<FileFacts>& files,
                          const Manifest& m, std::vector<Finding>& findings) {
  check_manifest_acyclic(m, findings);

  // Module back-edges against the declared DAG.
  for (const FileFacts& f : files) {
    if (f.module.empty()) continue;
    const auto self = m.allow.find(f.module);
    if (self == m.allow.end()) {
      findings.push_back(
          {f.rel, 1, "layer-undeclared",
           "module '" + f.module +
               "' is not declared in tools/layering.toml — add it with its "
               "allowed dependencies"});
      continue;
    }
    for (const auto& [inc, line] : f.includes) {
      const std::string target = module_of_include(inc);
      if (target.empty() || target == f.module) continue;
      if (m.allow.find(target) == m.allow.end()) continue;  // not a module
      const auto& deps = self->second;
      if (std::find(deps.begin(), deps.end(), target) == deps.end() &&
          !facts_allowed(f, "layer-back-edge", line)) {
        findings.push_back(
            {f.rel, line, "layer-back-edge",
             f.module + " -> " + target + " (#include \"" + inc +
                 "\") is not a declared edge of the module DAG; layering "
                 "is " + f.module + " <- [deps] in tools/layering.toml"});
      }
    }
  }

  // File-level include cycles (DFS over src-relative include paths).
  std::map<std::string, std::vector<std::pair<std::string, long>>> graph;
  std::set<std::string> known;
  for (const FileFacts& f : files) known.insert(f.rel);
  for (const FileFacts& f : files) {
    for (const auto& [inc, line] : f.includes) {
      const std::string target = "src/" + inc;
      if (known.count(target) > 0) graph[f.rel].emplace_back(target, line);
    }
  }
  std::map<std::string, int> color;
  std::vector<std::string> stack;
  bool reported = false;
  const std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        for (const auto& [next, line] : graph[node]) {
          if (reported) break;
          const int c = color[next];
          if (c == 1) {
            std::string path;
            const auto at = std::find(stack.begin(), stack.end(), next);
            for (auto it = at; it != stack.end(); ++it) path += *it + " -> ";
            findings.push_back({node, line, "include-cycle",
                                "#include cycle: " + path + next});
            reported = true;
            break;
          }
          if (c == 0) dfs(next);
        }
        color[node] = 2;
        stack.pop_back();
      };
  for (const FileFacts& f : files) {
    if (color[f.rel] == 0 && !reported) dfs(f.rel);
  }
}

// ---------------------------------------------------------------------------
// Pass 2: lock discipline — per file
// ---------------------------------------------------------------------------

inline bool is_guard_name(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock" || s == "MutexLock";
}

/// Joins the tokens of one guard constructor argument into a stable key
/// ("this->mu_", "state.mu"). Whitespace-free so spelling variants match.
inline std::string join_expr(const std::vector<Token>& t, std::size_t b,
                             std::size_t e) {
  std::string out;
  for (std::size_t i = b; i < e; ++i) out += t[i].text;
  return out;
}

inline void lock_pass(const SourceFile& f, std::vector<Finding>& findings) {
  if (f.rel.rfind("src/util/", 0) == 0) return;  // annotated wrapper home
  const auto& t = f.lexed.tokens;

  struct Region {
    std::string mutex;
    int depth = 0;
    long line = 0;
  };
  std::vector<Region> regions;
  int depth = 0;

  // Manual lock()/unlock() receivers, for the pairing heuristic: a
  // receiver that is both .lock()ed and .unlock()ed in one TU is being
  // hand-rolled where a guard belongs. (weak_ptr::lock has no unlock, so
  // it never pairs.)
  std::map<std::string, long> lock_calls;  // receiver -> first line
  std::set<std::string> unlock_calls;

  // Socket syscalls count as blocking: even on an O_NONBLOCK fd they sit
  // at the kernel boundary, and the rpc reactor's design rule is that no
  // I/O ever happens inside a lock region (src/rpc/reactor.hpp).
  static const std::set<std::string> kBlocking = {
      "join", "wait_idle", "sleep_for", "sleep_until", "system",
      "accept", "accept4", "recv", "send", "poll"};

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind == Tok::kPunct) {
      if (tok.text == "{") ++depth;
      if (tok.text == "}") {
        --depth;
        while (!regions.empty() && regions.back().depth > depth) {
          regions.pop_back();
        }
      }
      continue;
    }
    if (tok.kind != Tok::kIdent) continue;

    // RAII guard declaration: guard<...> name(args...) / guard name(args).
    if (is_guard_name(tok.text)) {
      std::size_t j = i + 1;
      if (j < t.size() && t[j].kind == Tok::kPunct && t[j].text == "<") {
        int angle = 1;
        ++j;
        while (j < t.size() && angle > 0) {
          if (t[j].kind == Tok::kPunct && t[j].text == "<") ++angle;
          if (t[j].kind == Tok::kPunct && t[j].text == ">") --angle;
          ++j;
        }
      }
      if (j >= t.size() || t[j].kind != Tok::kIdent) continue;  // a cast etc.
      ++j;  // variable name
      if (j >= t.size() || t[j].kind != Tok::kPunct ||
          (t[j].text != "(" && t[j].text != "{")) {
        continue;
      }
      int paren = 1;
      ++j;
      std::vector<std::pair<std::size_t, std::size_t>> args;
      std::size_t arg_begin = j;
      while (j < t.size() && paren > 0) {
        const Token& a = t[j];
        if (a.kind == Tok::kPunct) {
          if (a.text == "(" || a.text == "{" || a.text == "[") ++paren;
          if (a.text == ")" || a.text == "}" || a.text == "]") --paren;
          if (paren == 0) break;
          if (a.text == "," && paren == 1) {
            args.emplace_back(arg_begin, j);
            arg_begin = j + 1;
          }
        }
        ++j;
      }
      if (j > arg_begin) args.emplace_back(arg_begin, j);
      bool deferred = false;
      for (const auto& [b, e] : args) {
        const std::string expr = join_expr(t, b, e);
        if (expr.find("defer_lock") != std::string::npos) deferred = true;
      }
      if (deferred || args.empty()) {
        i = j;
        continue;
      }
      // scoped_lock may take several mutexes; every non-tag argument is
      // an acquisition.
      for (const auto& [b, e] : args) {
        const std::string expr = join_expr(t, b, e);
        if (expr.find("adopt_lock") != std::string::npos ||
            expr.find("try_to_lock") != std::string::npos) {
          continue;
        }
        for (const Region& r : regions) {
          if (r.mutex == expr && !allowed(f.lexed, "double-lock", tok.line)) {
            findings.push_back(
                {f.rel, tok.line, "double-lock",
                 "'" + expr + "' is already held by the guard at line " +
                     std::to_string(r.line) +
                     " — recursive locking deadlocks std::mutex"});
          }
        }
        regions.push_back({expr, depth, tok.line});
      }
      i = j;
      continue;
    }

    // Blocking call while a lock region is active.
    if (!regions.empty() && kBlocking.count(tok.text) > 0 && i + 1 < t.size() &&
        t[i + 1].kind == Tok::kPunct && t[i + 1].text == "(" &&
        !allowed(f.lexed, "lock-across-blocking", tok.line)) {
      findings.push_back(
          {f.rel, tok.line, "lock-across-blocking",
           "'" + tok.text + "(' is called while holding '" +
               regions.back().mutex + "' (guard at line " +
               std::to_string(regions.back().line) +
               ") — blocking under a lock stalls every contender"});
    }

    // Manual .lock() / .unlock() bookkeeping.
    if ((tok.text == "lock" || tok.text == "unlock") && i >= 2 &&
        i + 1 < t.size() && t[i + 1].kind == Tok::kPunct &&
        t[i + 1].text == "(") {
      // Receiver: the longest ident/./->/:: chain ending just before.
      std::size_t b = i;
      while (b >= 1) {
        const Token& p = t[b - 1];
        if (p.kind == Tok::kPunct &&
            (p.text == "." || p.text == ":" || p.text == ">" ||
             p.text == "-")) {
          --b;
          continue;
        }
        if (p.kind == Tok::kIdent && b >= 1 && t[b].kind == Tok::kPunct) {
          --b;
          continue;
        }
        break;
      }
      if (b < i) {  // has a receiver — a bare lock( is some local function
        const std::string receiver = join_expr(t, b, i - 1);
        if (!receiver.empty()) {
          if (tok.text == "lock") {
            lock_calls.emplace(receiver, tok.line);
          } else {
            unlock_calls.insert(receiver);
          }
        }
      }
    }
  }

  for (const std::string& receiver : unlock_calls) {
    const auto it = lock_calls.find(receiver);
    if (it == lock_calls.end()) continue;
    if (!allowed(f.lexed, "naked-lock", it->second)) {
      findings.push_back(
          {f.rel, it->second, "naked-lock",
           "manual " + receiver + ".lock()/.unlock() pair — use an RAII "
           "guard (util::MutexLock / std::lock_guard) so early returns and "
           "exceptions cannot leak the lock"});
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 3: determinism & exception safety — per file
// ---------------------------------------------------------------------------

inline bool in_rng_home(const std::string& rel) {
  return rel.rfind("src/util/rng", 0) == 0;
}

inline void determinism_pass(const SourceFile& f,
                             std::vector<Finding>& findings) {
  const auto& t = f.lexed.tokens;

  // stray-random -----------------------------------------------------------
  if (!in_rng_home(f.rel)) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent) continue;
      const bool member_access =
          i >= 1 && t[i - 1].kind == Tok::kPunct &&
          (t[i - 1].text == "." ||
           (t[i - 1].text == ">" && i >= 2 && t[i - 2].text == "-"));
      if (member_access) continue;  // foo.rand() is someone else's rand
      const bool call = i + 1 < t.size() && t[i + 1].kind == Tok::kPunct &&
                        (t[i + 1].text == "(" || t[i + 1].text == "{");
      const bool is_rand_call =
          (t[i].text == "rand" || t[i].text == "srand") && call;
      const bool is_device = t[i].text == "random_device";
      if ((is_rand_call || is_device) &&
          !allowed(f.lexed, "stray-random", t[i].line)) {
        findings.push_back(
            {f.rel, t[i].line, "stray-random",
             "'" + t[i].text +
                 "' bypasses util::Rng — unseeded or device randomness "
                 "breaks bit-identical replay (src/util/rng.hpp)"});
      }
    }
  }

  // throw-in-dtor and swallowed-catch: both need matched-brace bodies.
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Destructor head: `~ Name (` ... `)` [qualifiers] `{`. The token
    // *before* the `~` separates a declaration from a bitwise-not
    // expression (`return ~hash(x)` must not look like a destructor):
    // declarations follow `;` `}` `{` `:` or a declaration keyword.
    const bool decl_position =
        i == 0 ||
        (t[i - 1].kind == Tok::kPunct &&
         (t[i - 1].text == ";" || t[i - 1].text == "}" ||
          t[i - 1].text == "{" || t[i - 1].text == ":")) ||
        (t[i - 1].kind == Tok::kIdent &&
         (t[i - 1].text == "virtual" || t[i - 1].text == "inline" ||
          t[i - 1].text == "constexpr"));
    if (t[i].kind == Tok::kPunct && t[i].text == "~" && decl_position &&
        i + 2 < t.size() && t[i + 1].kind == Tok::kIdent &&
        t[i + 2].kind == Tok::kPunct && t[i + 2].text == "(") {
      std::size_t j = i + 3;
      int paren = 1;
      while (j < t.size() && paren > 0) {
        if (t[j].kind == Tok::kPunct && t[j].text == "(") ++paren;
        if (t[j].kind == Tok::kPunct && t[j].text == ")") --paren;
        ++j;
      }
      // Scan qualifiers until the body opens or the declaration ends.
      while (j < t.size() &&
             !(t[j].kind == Tok::kPunct &&
               (t[j].text == "{" || t[j].text == ";" || t[j].text == "="))) {
        ++j;
      }
      if (j >= t.size() || t[j].text != "{") continue;  // declaration only
      int body = 1;
      ++j;
      while (j < t.size() && body > 0) {
        if (t[j].kind == Tok::kPunct && t[j].text == "{") ++body;
        if (t[j].kind == Tok::kPunct && t[j].text == "}") --body;
        if (t[j].kind == Tok::kIdent && t[j].text == "throw" &&
            !allowed(f.lexed, "throw-in-dtor", t[j].line)) {
          findings.push_back(
              {f.rel, t[j].line, "throw-in-dtor",
               "throw inside ~" + t[i + 1].text +
                   "() — destructors are implicitly noexcept; a throw here "
                   "is std::terminate"});
        }
        ++j;
      }
      continue;
    }

    // catch (...) { body }
    if (t[i].kind == Tok::kIdent && t[i].text == "catch" &&
        i + 4 < t.size() && t[i + 1].kind == Tok::kPunct &&
        t[i + 1].text == "(" && t[i + 2].text == "." && t[i + 3].text == "." &&
        t[i + 4].text == ".") {
      std::size_t j = i + 5;
      while (j < t.size() &&
             !(t[j].kind == Tok::kPunct && t[j].text == "{")) {
        ++j;
      }
      if (j >= t.size()) continue;
      int body = 1;
      ++j;
      bool handles = false;
      static const std::vector<std::string> kReporters = {
          "log",  "report", "note",   "record", "message", "warn",
          "err",  "status", "abort",  "terminate", "add",  "observe",
          "fail", "retry",  "rethrow"};
      while (j < t.size() && body > 0) {
        if (t[j].kind == Tok::kPunct && t[j].text == "{") ++body;
        if (t[j].kind == Tok::kPunct && t[j].text == "}") --body;
        // A rethrow, a reporter-shaped identifier, or a string (an error
        // message being recorded) all count as handling the exception.
        if (t[j].kind == Tok::kIdent || t[j].kind == Tok::kString) {
          if (t[j].text == "throw") handles = true;
          std::string lower;
          for (const char c : t[j].text) {
            lower += static_cast<char>(std::tolower(
                static_cast<unsigned char>(c)));
          }
          for (const std::string& r : kReporters) {
            if (lower.find(r) != std::string::npos) handles = true;
          }
        }
        ++j;
      }
      if (!handles && !allowed(f.lexed, "swallowed-catch", t[i].line)) {
        findings.push_back(
            {f.rel, t[i].line, "swallowed-catch",
             "catch (...) swallows every exception without rethrowing or "
             "reporting — at minimum record the failure, or acknowledge "
             "with // chronus-analyzer: allow(swallowed-catch) why"});
      }
    }
  }
}

}  // namespace chronus_analyzer
