// The chronus_analyzer lexer: a comment-, string- and raw-string-aware
// tokenizer over one translation unit. Every analyzer pass — the classic
// token passes and the dataflow taint engine — consumes this token stream,
// which is what lets the tool ignore rule mentions inside comments,
// strings and raw strings (the whole point over line-oriented
// chronus_lint).
//
// Inline acknowledgements are collected here too:
//   // chronus-analyzer: allow(<rule>) <justification>
// covers the comment's own line and the line *after the comment ends* —
// so the comment may sit at the end of the offending line or on its own
// line above, and a multi-line /* ... */ block still reaches the
// statement below it.
#pragma once

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace chronus_analyzer {

enum class Tok { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  Tok kind;
  std::string text;
  long line = 0;
};

struct LexedFile {
  std::vector<Token> tokens;
  /// Lines carrying a `chronus-analyzer: allow(<rule>)` comment, per rule.
  std::map<std::string, std::set<long>> allowances;
  /// Lines carrying a `chronus-analyzer: allow-fn(<rule>)` comment, per
  /// rule. The marker acknowledges every finding of <rule> anywhere in
  /// the function whose definition the marker line falls inside (or whose
  /// head it sits directly above) — the right scope for interprocedural
  /// findings whose anchor line is a callee deep in the body.
  std::map<std::string, std::set<long>> fn_allowances;
};

inline bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
inline bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Records allow(<rule>) markers found in `comment`. `first_line` is the
/// line the comment starts on, `last_line` the line it ends on (equal for
/// line comments). The allowance covers every comment line plus the line
/// after the end, so both same-line and line-above placements match, and
/// a block comment spanning several lines still covers the statement
/// immediately below it.
inline void record_allowances(const std::string& comment, long first_line,
                              long last_line, LexedFile& out) {
  static const std::string kMarker = "chronus-analyzer: allow(";
  for (std::size_t pos = comment.find(kMarker); pos != std::string::npos;
       pos = comment.find(kMarker, pos + 1)) {
    const std::size_t open = pos + kMarker.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) continue;
    const std::string rule = comment.substr(open, close - open);
    for (long l = first_line; l <= last_line + 1; ++l) {
      out.allowances[rule].insert(l);
    }
  }
  // The function-scope form. Only the marker lines are recorded here —
  // mapping a marker to the function span it governs needs the function
  // table, which the interprocedural passes own (callgraph.hpp).
  static const std::string kFnMarker = "chronus-analyzer: allow-fn(";
  for (std::size_t pos = comment.find(kFnMarker); pos != std::string::npos;
       pos = comment.find(kFnMarker, pos + 1)) {
    const std::size_t open = pos + kFnMarker.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) continue;
    const std::string rule = comment.substr(open, close - open);
    for (long l = first_line; l <= last_line + 1; ++l) {
      out.fn_allowances[rule].insert(l);
    }
  }
}

/// Comment-, string- and raw-string-aware tokenizer. Preprocessor
/// directives are lexed like ordinary tokens (`#`, `include`, "path"),
/// which is exactly what the include scanner needs.
inline LexedFile lex(const std::string& src) {
  LexedFile out;
  long line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t eol = src.find('\n', i);
      const std::size_t end = eol == std::string::npos ? n : eol;
      record_allowances(src.substr(i, end - i), line, line, out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t close = src.find("*/", i + 2);
      const std::size_t end = close == std::string::npos ? n : close + 2;
      const std::string body = src.substr(i, end - i);
      const long newlines =
          static_cast<long>(std::count(body.begin(), body.end(), '\n'));
      record_allowances(body, line, line + newlines, out);
      line += newlines;
      i = end;
      continue;
    }
    // String literal (raw strings are handled at the identifier below,
    // because their prefix R/u8R/... lexes as an identifier).
    if (c == '"') {
      const long start_line = line;
      std::string text;
      ++i;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < n) {
          text += src[i];
          text += src[i + 1];
          i += 2;
          continue;
        }
        if (src[i] == '\n') ++line;  // unterminated string: stay sane
        text += src[i++];
      }
      if (i < n) ++i;  // closing quote
      out.tokens.push_back({Tok::kString, text, start_line});
      continue;
    }
    // Character literal — but not a digit separator (1'000'000), which is
    // consumed by the number scanner and never reaches here.
    if (c == '\'') {
      const long start_line = line;
      ++i;
      std::string text;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < n) {
          text += src[i];
          text += src[i + 1];
          i += 2;
          continue;
        }
        if (src[i] == '\n') {
          break;  // stray quote (apostrophe in a #error, say): bail out
        }
        text += src[i++];
      }
      if (i < n && src[i] == '\'') ++i;
      out.tokens.push_back({Tok::kChar, text, start_line});
      continue;
    }
    // Number (digit separators and exponent signs included).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      std::string text;
      while (i < n) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          text += d;
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && !text.empty()) {
          const char e = text.back();
          if (e == 'e' || e == 'E' || e == 'p' || e == 'P') {
            text += d;
            ++i;
            continue;
          }
        }
        break;
      }
      out.tokens.push_back({Tok::kNumber, text, line});
      continue;
    }
    // Identifier — possibly a raw-string prefix.
    if (ident_start(c)) {
      std::string text;
      while (i < n && ident_char(src[i])) text += src[i++];
      const bool raw_prefix = i < n && src[i] == '"' &&
                              (text == "R" || text == "u8R" || text == "uR" ||
                               text == "LR");
      if (raw_prefix) {
        // R"delim( ... )delim"
        ++i;  // opening quote
        std::string delim;
        while (i < n && src[i] != '(') delim += src[i++];
        if (i < n) ++i;  // '('
        const std::string closer = ")" + delim + "\"";
        const std::size_t close = src.find(closer, i);
        const std::size_t end =
            close == std::string::npos ? n : close + closer.size();
        const std::string body = src.substr(i, (close == std::string::npos
                                                    ? n
                                                    : close) -
                                                   i);
        out.tokens.push_back({Tok::kString, body, line});
        line += static_cast<long>(std::count(body.begin(), body.end(), '\n'));
        i = end;
        continue;
      }
      out.tokens.push_back({Tok::kIdent, text, line});
      continue;
    }
    // Punctuation, one char at a time.
    out.tokens.push_back({Tok::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

inline bool allowed(const LexedFile& lf, const std::string& rule, long line) {
  const auto it = lf.allowances.find(rule);
  return it != lf.allowances.end() && it->second.count(line) > 0;
}

}  // namespace chronus_analyzer
