// Seeded violation for the test-sleep rule: a test that parks on the wall
// clock instead of driving virtual time. The self-test proves chronus_lint
// flags every one of these forms when the file lives under tests/.
#include <chrono>
#include <thread>

void flaky_wait() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

void also_flaky() {
  std::this_thread::sleep_until(std::chrono::steady_clock::now() +
                                std::chrono::seconds(1));
}
