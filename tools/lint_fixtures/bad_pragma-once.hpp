// Seeded violation: header missing its include guard pragma.
#include "net/graph.hpp"

namespace fixture {
inline int answer() { return 42; }
}  // namespace fixture
