// Clean fixture: strong types, rooted includes, no stdout. Must produce no
// findings — proves the rules don't fire on idiomatic code.
#pragma once

#include "net/graph.hpp"
#include "util/strong_types.hpp"

namespace fixture {

inline chronus::util::Demand scaled(chronus::util::Demand d) {
  return d * 2.0;
}

// An acknowledged exception carries an allowance with justification:
// chronus-lint: allow(raw-unit) wall-clock seconds, not a flow quantity
inline double timeout_demand_seconds() { return 1.5; }

}  // namespace fixture
