// Seeded violation: library code writing to stdout.
#include <cstdio>
#include <iostream>

#include "net/graph.hpp"

namespace fixture {

void report() {
  std::cout << "done\n";
  printf("done again\n");
}

}  // namespace fixture
