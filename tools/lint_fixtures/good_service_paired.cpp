// Clean service-layer fixture: every reserve has a matching release.
#include "service/capacity_ledger.hpp"

namespace fixture {

void cycle(chronus::service::CapacityLedger& ledger,
           const chronus::service::Footprint& fp) {
  if (ledger.try_reserve(fp)) ledger.release(fp);
}

}  // namespace fixture
