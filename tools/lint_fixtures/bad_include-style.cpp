// Seeded violation: relative and bare project includes.
#include "../net/graph.hpp"
#include "helpers.hpp"

namespace fixture {
inline int layered() { return 1; }
}  // namespace fixture
