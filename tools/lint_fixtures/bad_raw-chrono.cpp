// Seeded violation: library code timing itself with std::chrono directly
// instead of an obs span or util::Stopwatch.
#include <chrono>

#include "net/graph.hpp"

namespace fixture {

inline long long elapsed_us() {
  const auto start = std::chrono::steady_clock::now();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(end - start)
      .count();
}

}  // namespace fixture
