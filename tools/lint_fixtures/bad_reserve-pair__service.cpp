// Seeded violation: service-layer file that reserves but never releases.
#include "service/capacity_ledger.hpp"

namespace fixture {

bool grab(chronus::service::CapacityLedger& ledger,
          const chronus::service::Footprint& fp) {
  return ledger.try_reserve(fp);
}

}  // namespace fixture
