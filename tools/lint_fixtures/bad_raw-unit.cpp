// Seeded violation: unit-bearing quantities declared as raw doubles.
#include "net/graph.hpp"

namespace fixture {

double demand = 1.0;

struct Flow {
  double capacity = 4.0;
  float link_load = 0.0F;
};

double peak_demand(double base_demand) { return base_demand * 2.0; }

}  // namespace fixture
