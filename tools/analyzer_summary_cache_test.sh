#!/bin/sh
# Summary-cache invalidation test for chronus_analyzer.
#
# The interprocedural finding cache keys each TU by its own content PLUS
# the hash of every function summary reachable from it, so editing a leaf
# callee must transitively re-analyze its callers while unrelated TUs stay
# cached. The fixture tree carries a three-deep chain
# (chain_top -> chain_mid -> chain_leaf) seeded for exactly this check:
#
#   1. cold run   : every TU analyzed
#   2. warm run   : every TU served from cache (interproc_analyzed=0)
#   3. leaf edit  : chain_leaf gains a blocking call (summary flips),
#                   then exactly leaf+mid+top re-analyze; the other three
#                   TUs (socket/frame/clock) stay cached.
#
# Usage: analyzer_summary_cache_test.sh <analyzer-binary> <fixture-tree> <workdir>
set -eu

ANALYZER="$1"
SRC_TREE="$2"
WORK="$3"

rm -rf "$WORK"
mkdir -p "$WORK"
cp -r "$SRC_TREE" "$WORK/tree"
CACHE="$WORK/cache"

run() {
  # escape pass on the fixture tree is clean, so a non-zero exit is real.
  "$ANALYZER" --root "$WORK/tree" --manifest "$WORK/tree/layering.toml" \
      --passes=escape --cache="$CACHE" --stats src 2>"$WORK/stats.txt" \
      >"$WORK/findings.txt"
  cat "$WORK/stats.txt"
}

stat_of() {  # stat_of <key> <stats-line>
  printf '%s\n' "$2" | tr ' ' '\n' | sed -n "s/^$1=//p"
}

fail() {
  echo "FAIL: $1" >&2
  echo "  cold: $COLD" >&2
  echo "  warm: ${WARM:-<not run>}" >&2
  echo "  edit: ${EDIT:-<not run>}" >&2
  exit 1
}

COLD=$(run)
FILES=$(stat_of files "$COLD")
[ "$(stat_of interproc_analyzed "$COLD")" = "$FILES" ] || \
    fail "cold run should analyze every TU"
[ "$(stat_of interproc_cached "$COLD")" = "0" ] || \
    fail "cold run should have no cache hits"

WARM=$(run)
[ "$(stat_of interproc_analyzed "$WARM")" = "0" ] || \
    fail "warm run should analyze nothing"
[ "$(stat_of interproc_cached "$WARM")" = "$FILES" ] || \
    fail "warm run should serve every TU from cache"

# Flip the leaf's summary: a blocking call where there was pure
# arithmetic. Content change re-keys the leaf itself; the summary change
# re-keys everything whose reachable set contains chain_leaf.
sed 's/ticks \* 2/poll(nullptr, 0, 1)/' \
    "$WORK/tree/src/util/chain_leaf.hpp" >"$WORK/leaf.tmp"
mv "$WORK/leaf.tmp" "$WORK/tree/src/util/chain_leaf.hpp"

EDIT=$(run)
[ "$(stat_of interproc_analyzed "$EDIT")" = "3" ] || \
    fail "leaf edit should re-analyze exactly leaf+mid+top"
[ "$(stat_of interproc_cached "$EDIT")" = "$((FILES - 3))" ] || \
    fail "TUs not reaching chain_leaf should stay cached"

echo "summary-cache invalidation: cold=$FILES warm=0 after-leaf-edit=3 — OK"
