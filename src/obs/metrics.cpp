#include "obs/metrics.hpp"

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string_view>

#include "util/json_writer.hpp"

namespace chronus::obs {

namespace {

std::atomic<MetricsRegistry*> g_registry{nullptr};

// Per-thread mute depth (MetricsMute nests): contract scans silence only
// the thread running them, never concurrent workers.
thread_local int t_mute_depth = 0;

bool metrics_vetoed() {
  const char* env = std::getenv("CHRONUS_METRICS");
  return env != nullptr &&
         (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0);
}

}  // namespace

MetricsRegistry* install(MetricsRegistry* r) {
  if (r != nullptr && metrics_vetoed()) {
    return g_registry.exchange(nullptr, std::memory_order_acq_rel);
  }
  return g_registry.exchange(r, std::memory_order_acq_rel);
}

MetricsRegistry* registry() noexcept {
  MetricsRegistry* r = g_registry.load(std::memory_order_relaxed);
  // Disabled path stays one relaxed load + branch; the thread-local mute
  // check only runs when a registry is actually installed.
  if (r == nullptr) return nullptr;
  return t_mute_depth > 0 ? nullptr : r;
}

namespace detail {

void push_mute() noexcept { ++t_mute_depth; }
void pop_mute() noexcept { --t_mute_depth; }

}  // namespace detail

Counter& MetricsRegistry::counter(const std::string& name) {
  const util::MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const util::MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const util::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const util::MutexLock lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = {g->value(), g->max()};
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData d;
    d.count = h->count();
    d.sum = h->sum();
    d.max = h->max();
    d.buckets.reserve(Histogram::kBuckets);
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      d.buckets.push_back(h->bucket(i));
    }
    snap.histograms[name] = std::move(d);
  }
  return snap;
}

bool MetricsSnapshot::is_wall_metric(const std::string& name) {
  static constexpr std::string_view kSuffix = "_wall_us";
  return name.size() >= kSuffix.size() &&
         name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) ==
             0;
}

MetricsSnapshot MetricsSnapshot::logical() const {
  MetricsSnapshot out;
  out.counters = counters;
  for (const auto& [name, h] : histograms) {
    if (!is_wall_metric(name)) out.histograms[name] = h;
  }
  return out;
}

void MetricsSnapshot::write_json(util::JsonWriter& out, bool mask_wall) const {
  for (const auto& [name, value] : counters) {
    out.begin_row();
    out.field("name", name);
    out.field("type", std::string("counter"));
    out.field("value", value);
    out.end_row();
  }
  for (const auto& [name, g] : gauges) {
    const bool mask = mask_wall;  // gauges are machine state: always volatile
    out.begin_row();
    out.field("name", name);
    out.field("type", std::string("gauge"));
    out.field("value", mask ? std::int64_t{0} : g.value);
    out.field("max", mask ? std::int64_t{0} : g.max);
    out.end_row();
  }
  for (const auto& [name, h] : histograms) {
    const bool mask = mask_wall && is_wall_metric(name);
    out.begin_row();
    out.field("name", name);
    out.field("type", std::string("histogram"));
    out.field("count", h.count);
    out.field("sum_us", mask ? std::int64_t{0} : h.sum);
    out.field("max_us", mask ? std::int64_t{0} : h.max);
    std::ostringstream buckets;
    if (!mask) {
      // Sparse "index:count" pairs: stable, compact and diff-friendly.
      bool first = true;
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        if (h.buckets[i] == 0) continue;
        if (!first) buckets << " ";
        first = false;
        buckets << i << ":" << h.buckets[i];
      }
    }
    out.field("buckets", buckets.str());
    out.end_row();
  }
}

MetricsSidecar::MetricsSidecar(std::string path, std::string tool)
    : path_(std::move(path)), tool_(std::move(tool)) {
  if (path_.empty()) return;
  prev_ = install(&reg_);
  installed_ = registry() == &reg_;  // false when CHRONUS_METRICS=off
}

MetricsSidecar::~MetricsSidecar() {
  if (path_.empty()) return;
  try {
    const MetricsSnapshot snap = reg_.snapshot();
    install(prev_);
    if (!installed_) return;
    util::JsonWriter out(path_, tool_);
    out.meta("kind", std::string("metrics"));
    snap.write_json(out, /*mask_wall=*/false);
  } catch (...) {  // chronus-analyzer: allow(swallowed-catch) a sidecar
    // write failure (disk full, unwritable path) must not escape a
    // destructor; the run's primary output is unaffected.
  }
}

bool MetricsSidecar::active() const noexcept { return installed_; }

}  // namespace chronus::obs
