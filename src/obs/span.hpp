// Hierarchical trace spans. A Span measures the wall-clock time of a
// lexical scope on the monotonic clock and records it into the installed
// MetricsRegistry as two instruments derived from the span's dotted path:
//
//   span.<path>_wall_us   histogram of scope durations (wall time, masked
//                         in deterministic comparisons)
//   span.<path>.calls     counter of scope entries (logical)
//
// Paths nest through a thread-local stack: a Span opened while another is
// active on the same thread gets the parent's path as a prefix, so
// CHRONUS_SPAN("serve") > CHRONUS_SPAN("greedy") records under
// "span.serve.greedy_wall_us". Nesting never crosses threads — a worker
// pool job starts a fresh root on its own thread.
//
// Overhead contract: when no registry is installed, constructing a Span is
// one relaxed pointer load and a branch — no clock read, no string work.
// All timing in library code goes through spans (or util::Stopwatch inside
// src/util); chronus_lint's raw-chrono rule enforces this.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace chronus::obs {

class Span {
 public:
  /// `name` must outlive the span (string literals in practice).
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Dotted path including enclosing spans on this thread; empty when the
  /// span is disabled (no registry installed at construction).
  const std::string& path() const noexcept { return path_; }

  /// The innermost active span on the calling thread, or null.
  static const Span* current() noexcept;

 private:
  bool enabled_;
  std::string path_;
  const Span* parent_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace chronus::obs

// Scope-timing macro: CHRONUS_SPAN("greedy.schedule"); the trailing
// __LINE__ paste lets two spans coexist in one scope.
#define CHRONUS_SPAN_CAT2(a, b) a##b
#define CHRONUS_SPAN_CAT(a, b) CHRONUS_SPAN_CAT2(a, b)
#define CHRONUS_SPAN(name) \
  const ::chronus::obs::Span CHRONUS_SPAN_CAT(chronus_span_, __LINE__)(name)
