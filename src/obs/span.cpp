#include "obs/span.hpp"

#include "obs/metrics.hpp"

namespace chronus::obs {

namespace {

thread_local const Span* t_current = nullptr;

}  // namespace

const Span* Span::current() noexcept { return t_current; }

Span::Span(const char* name) : enabled_(registry() != nullptr) {
  if (!enabled_) return;
  if (t_current != nullptr && !t_current->path_.empty()) {
    path_.reserve(t_current->path_.size() + 1 + std::char_traits<char>::length(name));
    path_ = t_current->path_;
    path_ += '.';
    path_ += name;
  } else {
    path_ = name;
  }
  parent_ = t_current;
  t_current = this;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!enabled_) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  t_current = parent_;
  // The registry may have been swapped out mid-span (tests that install a
  // ScopedMetrics inside a span); record into whichever is live now — a
  // null registry simply drops the sample.
  if (MetricsRegistry* r = registry()) {
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
    r->histogram("span." + path_ + "_wall_us").observe(us);
    r->counter("span." + path_ + ".calls").add(1);
  }
}

}  // namespace chronus::obs
