// The observability substrate: named counters, gauges and fixed-bucket
// latency histograms collected in a MetricsRegistry, plus the process-wide
// installation point the instrumented layers report through.
//
// Design rules (the overhead contract, DESIGN.md §11):
//
//  * No registry installed (the default) — every instrument site costs one
//    relaxed atomic pointer load and a predicted branch; no locks, no
//    allocation, no clock reads. Hot loops additionally aggregate into
//    plain locals and flush once per operation, so the disabled cost is
//    per *call*, not per *event*.
//  * Registry installed — instrument updates are relaxed atomic increments
//    on pre-created slots; the registry mutex is only taken on the first
//    use of a name (slot creation) and on snapshot().
//  * CHRONUS_METRICS=off in the environment vetoes installation entirely,
//    so a binary can be benchmarked with all instrumentation dark even
//    when its harness asks for a registry.
//
// Determinism: metric *values* are atomically accumulated sums, so any
// set of concurrent updaters whose logical work is deterministic produces
// bit-identical counters regardless of thread interleaving or worker
// count. Wall-clock metrics are segregated by name — anything ending in
// `_wall_us` holds machine time and is masked out of golden comparisons
// (MetricsSnapshot::write_json(mask_wall=true)); everything else is
// logical and must replay exactly (tests/obs_test.cpp).
//
// Gauges sit outside that split: logical() drops them wholesale because a
// gauge is a point-in-time level, not an accumulated history — equal end
// states don't prove equal runs, so they carry no replay signal. That
// includes `service.health_state` (the degradation rung of DESIGN.md §13):
// it *is* deterministic, and its full transition history is replay-checked
// through the report digest's health log instead. The chaos/ladder family —
// `service.shed`, `service.watchdog_fires`, `service.health_transitions`,
// `service.degraded_epochs`, `service.faults_injected` — are ordinary
// logical counters and replay bit-identically (tests/chaos_test.cpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace chronus::util {
class JsonWriter;
}  // namespace chronus::util

namespace chronus::obs {

/// A monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A signed level (queue depth, in-flight reservations) with a high-water
/// mark maintained on every set/add.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    track_max(v);
  }
  void add(std::int64_t d) noexcept {
    const std::int64_t now = v_.fetch_add(d, std::memory_order_relaxed) + d;
    track_max(now);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  std::int64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

 private:
  void track_max(std::int64_t v) noexcept {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// A fixed-bucket histogram: bucket i counts observations with
/// value < 2^i (the last bucket is unbounded). Values are clamped at 0.
/// With microsecond inputs the range spans 1 us .. ~1.1 hours, which
/// covers every latency this repo measures; count/sum/max are exact.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 33;

  /// Upper bound of bucket i (exclusive), for export and tests.
  static std::int64_t bucket_bound(std::size_t i) noexcept {
    return i + 1 >= kBuckets ? INT64_MAX : std::int64_t{1} << (i + 1);
  }

  void observe(std::int64_t value) noexcept {
    const std::int64_t v = value < 0 ? 0 : value;
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::int64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  static std::size_t bucket_index(std::int64_t v) noexcept {
    std::size_t i = 0;
    while (i + 1 < kBuckets && v >= (std::int64_t{1} << (i + 1))) ++i;
    return i;
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> max_{0};
};

/// A point-in-time copy of every instrument, safe to compare and export
/// after the run that produced it has finished.
struct MetricsSnapshot {
  struct HistogramData {
    std::uint64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t max = 0;
    std::vector<std::uint64_t> buckets;  ///< kBuckets entries

    bool operator==(const HistogramData&) const = default;
  };
  struct GaugeData {
    std::int64_t value = 0;
    std::int64_t max = 0;

    bool operator==(const GaugeData&) const = default;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeData> gauges;
  std::map<std::string, HistogramData> histograms;

  /// True iff `name` holds wall-clock time (masked in golden comparisons).
  static bool is_wall_metric(const std::string& name);

  /// One row per metric: {name, type, ...}. With `mask_wall`, wall-clock
  /// sums/maxima/buckets are zeroed (their logical counts survive) so the
  /// output is bit-stable across machines.
  void write_json(util::JsonWriter& out, bool mask_wall) const;

  /// The logical (replay-deterministic) slice: every counter, plus every
  /// non-wall histogram in full. Gauges and wall-clock durations — the
  /// only machine-dependent state — are excluded.
  MetricsSnapshot logical() const;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Thread-safe instrument directory. Instruments are created on first use
/// and never move or disappear until the registry is destroyed, so call
/// sites may cache the returned references while the registry is alive.
/// The directory maps are GUARDED_BY(mu_); the instruments they point at
/// are lock-free atomics, which is why returning plain references out of
/// the critical section is sound.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name) CHRONUS_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) CHRONUS_EXCLUDES(mu_);
  Histogram& histogram(const std::string& name) CHRONUS_EXCLUDES(mu_);

  MetricsSnapshot snapshot() const CHRONUS_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      CHRONUS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      CHRONUS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      CHRONUS_GUARDED_BY(mu_);
};

/// Installs `r` as the process-wide registry and returns the previous one
/// (null if none). Passing null uninstalls. When the environment sets
/// CHRONUS_METRICS=off the installation is vetoed and null stays
/// installed — the kill switch for overhead measurements.
MetricsRegistry* install(MetricsRegistry* r);

/// The installed registry, or null when observability is dark. One relaxed
/// atomic load.
MetricsRegistry* registry() noexcept;

/// RAII installation for tests and harnesses: installs on construction,
/// restores the previous registry on destruction.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry& r) : prev_(install(&r)) {}
  ~ScopedMetrics() { install(prev_); }
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  MetricsRegistry* prev_;
};

namespace detail {
void push_mute() noexcept;
void pop_mute() noexcept;
}  // namespace detail

/// Suppresses metric recording on the *calling thread* for the current
/// scope (registry() returns nullptr there; other threads are untouched).
/// Used around audit-level contract scans: a contract check may re-run
/// instrumented code (e.g. the greedy's whole-transition re-verify), and
/// the logical metric stream must stay bit-identical across contract
/// levels or replay/golden comparisons would depend on the build preset.
/// The mute must be thread-local — a global uninstall would race with
/// concurrent workers and silently drop their samples.
class MetricsMute {
 public:
  MetricsMute() noexcept { detail::push_mute(); }
  ~MetricsMute() { detail::pop_mute(); }
  MetricsMute(const MetricsMute&) = delete;
  MetricsMute& operator=(const MetricsMute&) = delete;
};

/// Harness-side convenience used by chronus_cli and the benches: when
/// `path` is non-empty, installs a private registry for the object's
/// lifetime and writes its snapshot to `path` on destruction (a JsonWriter
/// document with one row per metric, wall-clock values included). With an
/// empty path — or under CHRONUS_METRICS=off — nothing is installed and
/// nothing is written.
class MetricsSidecar {
 public:
  MetricsSidecar(std::string path, std::string tool);
  ~MetricsSidecar();
  MetricsSidecar(const MetricsSidecar&) = delete;
  MetricsSidecar& operator=(const MetricsSidecar&) = delete;

  /// True iff the private registry is the installed one (not vetoed).
  bool active() const noexcept;

 private:
  std::string path_;
  std::string tool_;
  MetricsRegistry reg_;
  MetricsRegistry* prev_ = nullptr;
  bool installed_ = false;
};

// ---- call-site helpers -----------------------------------------------------
// All no-ops (one relaxed pointer load + branch) when no registry is
// installed. Hot loops should aggregate locally and flush once per call
// instead of calling these per event.

inline void add(const char* name, std::uint64_t n = 1) {
  if (MetricsRegistry* r = registry()) r->counter(name).add(n);
}

inline void gauge_set(const char* name, std::int64_t v) {
  if (MetricsRegistry* r = registry()) r->gauge(name).set(v);
}

inline void gauge_add(const char* name, std::int64_t d) {
  if (MetricsRegistry* r = registry()) r->gauge(name).add(d);
}

inline void observe(const char* name, std::int64_t value) {
  if (MetricsRegistry* r = registry()) r->histogram(name).observe(value);
}

/// Cached-handle lookups for hot objects: resolve once (e.g. in a
/// constructor) and test the pointer per event. The pointer stays valid
/// while the issuing registry is installed; objects constructed under a
/// ScopedMetrics must not outlive it.
inline Counter* counter_ptr(const char* name) {
  MetricsRegistry* r = registry();
  return r ? &r->counter(name) : nullptr;
}
inline Gauge* gauge_ptr(const char* name) {
  MetricsRegistry* r = registry();
  return r ? &r->gauge(name) : nullptr;
}
inline Histogram* histogram_ptr(const char* name) {
  MetricsRegistry* r = registry();
  return r ? &r->histogram(name) : nullptr;
}

}  // namespace chronus::obs
