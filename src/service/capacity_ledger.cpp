#include "service/capacity_ledger.hpp"

#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace chronus::service {

namespace {

// Reservations are compared against headroom with a small epsilon so that
// repeated add/subtract round-trips (release after reserve) cannot starve
// an exactly-fitting footprint through floating-point drift.
constexpr net::Demand kEps{1e-9};

}  // namespace

Footprint transition_footprint(const net::Graph& g, const net::Path& p_init,
                               const net::Path& p_fin, net::Demand demand) {
  CHRONUS_EXPECTS(demand >= net::Demand{},
                  "transition footprints carry non-negative demand");
  Footprint fp;
  for (const net::LinkId id : net::path_links(g, p_init)) fp[id] += demand;
  for (const net::LinkId id : net::path_links(g, p_fin)) fp[id] += demand;
  return fp;
}

CapacityLedger::CapacityLedger(const net::Graph& g)
    : capacity_(g.link_count()), committed_(g.link_count()) {
  for (net::LinkId id = 0; id < g.link_count(); ++id) {
    capacity_[id] = g.link(id).capacity;
  }
}

net::Capacity CapacityLedger::capacity(net::LinkId id) const {
  return capacity_.at(id);
}

net::Demand CapacityLedger::committed(net::LinkId id) const {
  const util::MutexLock lock(mu_);
  return committed_.at(id);
}

net::Capacity CapacityLedger::headroom(net::LinkId id) const {
  const util::MutexLock lock(mu_);
  const net::Capacity room = capacity_.at(id) - committed_.at(id);
  return room > net::Capacity{} ? room : net::Capacity{};
}

bool CapacityLedger::fits(const Footprint& fp) const {
  const util::MutexLock lock(mu_);
  for (const auto& [id, amount] : fp) {
    if (committed_.at(id) + amount > capacity_.at(id) + kEps) return false;
  }
  return true;
}

bool CapacityLedger::try_reserve(const Footprint& fp) {
  obs::add("ledger.reserve_attempts");
  const util::MutexLock lock(mu_);
  for (const auto& [id, amount] : fp) {
    if (amount < net::Demand{}) {
      throw std::invalid_argument("negative reservation on link " +
                                  std::to_string(id));
    }
    if (committed_.at(id) + amount > capacity_.at(id) + kEps) {
      obs::add("ledger.conflicts");
      return false;
    }
  }
  for (const auto& [id, amount] : fp) {
    committed_[id] += amount;
    // Reserve/release balance: a successful reserve never drives a link
    // past its raw capacity (beyond float drift).
    CHRONUS_ENSURES(committed_[id] <= capacity_[id] + kEps,
                    "ledger commitment exceeds raw capacity");
    const double util = committed_[id] / capacity_[id];
    if (util > peak_) peak_ = util;
  }
  obs::add("ledger.reserves");
  obs::gauge_add("ledger.outstanding", 1);
  return true;
}

void CapacityLedger::release(const Footprint& fp) {
  obs::add("ledger.releases");
  obs::gauge_add("ledger.outstanding", -1);
  const util::MutexLock lock(mu_);
  for (const auto& [id, amount] : fp) {
    if (committed_.at(id) + kEps < amount) {
      throw std::logic_error("release of " + std::to_string(amount.value()) +
                             " exceeds commitment on link " +
                             std::to_string(id));
    }
  }
  for (const auto& [id, amount] : fp) {
    committed_[id] -= amount;
    if (committed_[id] < net::Demand{}) committed_[id] = net::Demand{};
    // Balance invariant: a release can only return to (or toward) idle.
    CHRONUS_ENSURES(committed_[id] >= net::Demand{},
                    "ledger commitment went negative");
  }
}

net::Graph CapacityLedger::restricted_graph(const net::Graph& g,
                                            const Footprint& fp) const {
  net::Graph out = g;
  for (const auto& [id, amount] : fp) {
    out.mutable_link(id).capacity = util::capacity_for(amount);
  }
  return out;
}

double CapacityLedger::peak_utilization() const {
  const util::MutexLock lock(mu_);
  return peak_;
}

bool CapacityLedger::idle() const {
  const util::MutexLock lock(mu_);
  for (const net::Demand c : committed_) {
    if (c > kEps) return false;
  }
  return true;
}

}  // namespace chronus::service
