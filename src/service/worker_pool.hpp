// A fixed-size worker thread pool for the service's planning and execution
// jobs.
//
// Jobs are pure with respect to shared service state: they read an
// immutable snapshot (instance + restricted graph + seed) and write only
// their own result slot, so the pool adds wall-clock parallelism without
// adding nondeterminism — the dispatcher commits results in request order
// regardless of which worker finished first. `wait_idle` is the barrier the
// epoch loop uses between the parallel phase and the deterministic commit
// phase.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace chronus::service {

class WorkerPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit WorkerPool(int workers);

  /// Drains outstanding jobs, then joins the threads.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueues a job. Jobs must not throw (std::terminate otherwise) and
  /// must not touch shared mutable state except through their own slot.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: job or stop
  std::condition_variable idle_cv_;   // signals waiters: all drained
  std::deque<std::function<void()>> jobs_;
  std::size_t active_ = 0;  ///< jobs currently running on a worker
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace chronus::service
