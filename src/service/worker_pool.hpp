// A fixed-size worker thread pool for the service's planning and execution
// jobs.
//
// Jobs are pure with respect to shared service state: they read an
// immutable snapshot (instance + restricted graph + seed) and write only
// their own result slot, so the pool adds wall-clock parallelism without
// adding nondeterminism — the dispatcher commits results in request order
// regardless of which worker finished first. `wait_idle` is the barrier the
// epoch loop uses between the parallel phase and the deterministic commit
// phase.
//
// Lock contract (compiler-checked on Clang, DESIGN.md §12): the queue,
// the running-job count and the stop flag are GUARDED_BY(mu_); the two
// condition variables pair with the same mutex. Result slots written by
// jobs are deliberately *not* guarded — they are handed off by the
// wait_idle barrier, which is stronger than any per-slot lock.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace chronus::service {

class WorkerPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit WorkerPool(int workers);

  /// Drains outstanding jobs, then joins the threads.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueues a job. Jobs must not throw (std::terminate otherwise) and
  /// must not touch shared mutable state except through their own slot.
  void submit(std::function<void()> job) CHRONUS_EXCLUDES(mu_);

  /// Blocks until every submitted job has finished.
  void wait_idle() CHRONUS_EXCLUDES(mu_);

 private:
  void worker_loop() CHRONUS_EXCLUDES(mu_);

  util::Mutex mu_;
  util::CondVar work_cv_;  // signals workers: job or stop
  util::CondVar idle_cv_;  // signals waiters: all drained
  std::deque<std::function<void()>> jobs_ CHRONUS_GUARDED_BY(mu_);
  std::size_t active_ CHRONUS_GUARDED_BY(mu_) = 0;  ///< jobs running now
  bool stop_ CHRONUS_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace chronus::service
