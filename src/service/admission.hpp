// Admission control for the online update service.
//
// Each admission round walks the pending queue in service order (priority
// descending, then request id) and sorts every request into one of:
//
//  * rejected  — deadline expired, demand exceeds a link's raw capacity
//                (can never fit), or the request has been deferred more than
//                max_defers rounds (capacity starvation);
//  * single    — its full transition footprint fits the ledger headroom and
//                was reserved: it plans independently via greedy_schedule;
//  * joint     — its footprint does not fit, but it conflicts (shares
//                footprint links) with other same-round candidates —
//                leftovers or already-reserved singles. A leftover's
//                unavoidable start/end load exceeds the current headroom,
//                so headroom scraps alone can never rescue it; a
//                conflicting neighbour that *vacates* the contested link
//                can. The conflict component pools its singles'
//                reservations back into the headroom, reserves
//                min(sum-of-footprints, headroom) per link, and is planned
//                together via schedule_flows_jointly, which orders the
//                vacating transitions ahead of the entering ones inside
//                the shared window;
//  * deferred  — blocked by in-flight commitments that a future completion
//                will release (or its conflict component was a singleton or
//                exceeded max_joint_batch); retried next round.
//
// The controller performs the reservations itself (it is only ever called
// from the service's dispatcher thread, between worker-pool barriers), so a
// returned round is already capacity-consistent: the service merely has to
// release the reservations of requests whose planning later fails.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "service/capacity_ledger.hpp"
#include "service/request.hpp"

namespace chronus::service {

struct AdmissionPolicy {
  /// Admission rounds a request may sit in the queue before it is
  /// rejected with kRejectedCapacity. The default covers several in-flight
  /// completion cycles at the default epoch/dispatch lead, so contended
  /// requests wait out transient congestion instead of starving.
  int max_defers = 64;
  /// Form joint batches from conflicting leftovers (else defer them).
  bool allow_joint = true;
  /// Rounds a leftover must have waited before it may trigger a joint
  /// batch. Batching pulls conflicting singles out of their fast path, so
  /// it is reserved for requests that plain in-flight turnover has not
  /// unblocked.
  int joint_after_defers = 4;
  /// Largest joint batch attempted; bigger conflict components fall back
  /// to individual treatment (singles stay single, leftovers deferred).
  std::size_t max_joint_batch = 6;
};

/// A queued request as the admission controller sees it.
struct PendingRequest {
  const UpdateRequest* request = nullptr;
  Footprint footprint;
  int defers = 0;
  /// Rounds left before the request may trigger another joint batch; the
  /// service arms this after a failed joint plan so doomed conflict groups
  /// are not re-attempted every epoch.
  int joint_cooldown = 0;
};

/// A conflict group admitted for joint planning. `reservation` is what was
/// committed on the ledger — per touched link the smaller of the members'
/// combined footprint and the headroom at decision time; the joint plan is
/// verified against exactly these capacities, so the reservation bounds the
/// group's transient load.
struct JointGroup {
  std::vector<std::size_t> members;  ///< indices into the pending queue
  Footprint reservation;
};

struct AdmissionRound {
  std::vector<std::size_t> singles;  ///< footprint reserved, plan alone
  std::vector<JointGroup> groups;
  std::vector<std::size_t> deferred;
  std::vector<std::pair<std::size_t, RequestStatus>> rejected;
};

class AdmissionController {
 public:
  explicit AdmissionController(const net::Graph& base,
                               AdmissionPolicy policy = {});

  const AdmissionPolicy& policy() const { return policy_; }

  /// True iff every footprint entry fits the raw link capacity — the
  /// necessary condition for the request to ever be admitted alone.
  bool statically_feasible(const Footprint& fp) const;

  /// One admission round over `pending` (already in service order).
  /// Reserves capacity for singles and joint groups as described above.
  AdmissionRound decide(const std::vector<PendingRequest>& pending,
                        CapacityLedger& ledger, sim::SimTime now) const;

 private:
  const net::Graph* base_;
  AdmissionPolicy policy_;
};

}  // namespace chronus::service
