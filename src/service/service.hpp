// The online update service: Chronus as a long-running controller process.
//
// Requests arrive over virtual time and are admitted in fixed *epochs*
// (admission quanta). Every epoch boundary the dispatcher, single-threaded
// and deterministic, (1) folds due completions back into the capacity
// ledger, (2) ingests new arrivals, (3) runs one admission round
// (service/admission.hpp) that reserves ledger capacity for independent
// requests and conflict batches, (4) fans the reserved work out to the
// worker pool — greedy planning against the reservation-restricted graph,
// joint planning for batches, then timed execution through
// sim::ResilientExecutor in a per-request private simulation — and
// (5) commits the results in request order.
//
// Determinism contract: the jobs handed to the pool are pure functions of
// (request, reservation graph, derived seed) and write only their own
// result slot; every ledger mutation and every record update happens on
// the dispatcher between pool barriers, in request order; and completions
// are quantized to epoch boundaries and applied in (due time, id) order.
// Hence the ServiceReport is bit-identical for any worker count — the pool
// only changes how fast the wall clock gets there (tested in
// tests/service_test.cpp, including under ThreadSanitizer).
#pragma once

#include <cstdint>
#include <vector>

#include "core/greedy_scheduler.hpp"
#include "service/admission.hpp"
#include "service/capacity_ledger.hpp"
#include "service/request.hpp"
#include "sim/faults.hpp"
#include "sim/resilient_executor.hpp"

namespace chronus::sim {
struct ChaosScenario;
}  // namespace chronus::sim

namespace chronus::service {

class IntakeQueue;

/// A complete service input: the shared topology plus the request stream.
struct ServiceTrace {
  net::Graph graph;
  std::vector<UpdateRequest> requests;
};

/// Thresholds of the graceful-degradation ladder. All knobs default to 0 =
/// disabled, so a default-constructed policy leaves the dispatcher exactly
/// as it was before the ladder existed (the clean-run bit-identity tests
/// rely on this).
///
/// The ladder reads only deterministic state — the dispatcher queue depth
/// and virtual time — never the wall clock, so a degraded run replays
/// bit-identically from its seed. Escalation is immediate (an epoch whose
/// queue depth trips a higher `*_enter` threshold jumps straight to that
/// mode); de-escalation is one rung per epoch and only once the depth has
/// fallen to the current rung's `*_exit` threshold. Keeping exit below
/// enter gives the hysteresis band that stops the ladder from flapping at
/// a threshold.
struct DegradationPolicy {
  /// Watchdog: a request still queued `latency_slo` after its arrival is
  /// cancelled (kWatchdogTimeout) instead of being planned late. Virtual
  /// time, not wall time; 0 disables.
  sim::SimTime latency_slo = 0;

  /// Queue depths (pending requests at an epoch boundary) entering and
  /// leaving each rung; 0 disables the rung.
  std::size_t greedy_enter = 0;  ///< full planning -> greedy-only
  std::size_t greedy_exit = 0;
  std::size_t defer_enter = 0;   ///< greedy-only -> defer (no admissions)
  std::size_t defer_exit = 0;
  std::size_t shed_enter = 0;    ///< defer -> shed (reject the excess)
  std::size_t shed_exit = 0;     ///< shed down to this depth, then recover

  bool enabled() const {
    return latency_slo > 0 || greedy_enter > 0 || defer_enter > 0 ||
           shed_enter > 0;
  }
  /// Throws util::ContractViolation unless every enabled rung has
  /// exit < enter and the enter thresholds are non-decreasing up the
  /// ladder.
  void validate() const;
};

struct ServiceOptions {
  /// Worker threads planning and executing admitted requests.
  int workers = 4;

  /// Admission quantum: arrivals are admitted and completions released at
  /// multiples of this virtual duration.
  sim::SimTime epoch = 50 * sim::kMillisecond;

  /// Wall microseconds per abstract schedule step (and per link-delay unit
  /// of the private execution simulations).
  sim::SimTime step_unit = 50 * sim::kMillisecond;

  /// Lead time between admission and schedule step 0, covering control-
  /// channel delivery of the timed mods.
  sim::SimTime dispatch_lead = 500 * sim::kMillisecond;

  /// Data-plane scaling of the private simulations (bits/s per demand
  /// unit).
  double bps_per_unit = 500e6;

  /// Master seed; per-request streams are derived from it and the request
  /// id, never from the worker that runs the job.
  std::uint64_t seed = 1;

  /// Execute plans through sim::ResilientExecutor (else planning only:
  /// durations count the schedule span alone).
  bool execute = true;

  /// Graceful-degradation ladder; default (all zero) keeps the dispatcher
  /// ladder-free.
  DegradationPolicy degradation;

  /// Always-on fault model for every private execution simulation; the
  /// default all-zero model attaches no injector, leaving runs bit-
  /// identical to the pre-fault service.
  sim::FaultModel faults;

  /// Optional chaos campaign overlaying time-varying faults on top of
  /// `faults`, compiled per admission epoch (sim/chaos.hpp). Not owned;
  /// must outlive the run. Null = no campaign.
  const sim::ChaosScenario* chaos = nullptr;

  AdmissionPolicy admission;
  core::GreedyOptions greedy{.record_steps = false};
  sim::ControlChannelModel channel{.latency_median = 10 * sim::kMillisecond,
                                   .latency_sigma = 0.5};
  sim::RetryPolicy retry;
};

class UpdateService {
 public:
  /// `base` is the shared topology every request's paths refer to.
  UpdateService(net::Graph base, ServiceOptions opts = {});

  const net::Graph& graph() const { return base_; }
  const ServiceOptions& options() const { return opts_; }

  /// Processes the whole request stream to completion and reports.
  /// Requests may be given in any order; ids must be unique.
  ServiceReport run(std::vector<UpdateRequest> requests);
  ServiceReport run(const ServiceTrace& trace) { return run(trace.requests); }

  /// Transport-agnostic intake: consumes batches from `intake` until the
  /// queue is closed and empty, then runs the accumulated stream exactly
  /// like run(). The producers (trace reader, bench client, rpc sessions)
  /// may still be pushing while this call accumulates; arrival order does
  /// not matter because the dispatcher sorts by (arrival, id), so a
  /// wire-fed run digests bit-identically to a vector-fed one.
  ServiceReport run_intake(IntakeQueue& intake);

 private:
  net::Graph base_;
  ServiceOptions opts_;
};

}  // namespace chronus::service
