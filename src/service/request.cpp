#include "service/request.hpp"

#include <algorithm>
#include <sstream>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace chronus::service {

const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kPending:
      return "pending";
    case RequestStatus::kCompleted:
      return "completed";
    case RequestStatus::kRejectedInfeasible:
      return "rejected-infeasible";
    case RequestStatus::kRejectedDeadline:
      return "rejected-deadline";
    case RequestStatus::kRejectedCapacity:
      return "rejected-capacity";
    case RequestStatus::kFailed:
      return "failed";
    case RequestStatus::kShedOverload:
      return "shed-overload";
    case RequestStatus::kWatchdogTimeout:
      return "watchdog-timeout";
  }
  return "?";
}

const char* to_string(DegradationMode m) {
  switch (m) {
    case DegradationMode::kFull:
      return "full";
    case DegradationMode::kGreedyOnly:
      return "greedy-only";
    case DegradationMode::kDefer:
      return "defer";
    case DegradationMode::kShed:
      return "shed";
  }
  return "?";
}

void ServiceReport::finalize() {
  completed = failed = 0;
  rejected_infeasible = rejected_deadline = rejected_capacity = 0;
  shed = watchdog_cancelled = 0;
  faults_injected = 0;
  violations = 0;
  makespan = 0;
  for (const RequestRecord& r : records) {
    switch (r.status) {
      case RequestStatus::kCompleted:
        ++completed;
        break;
      case RequestStatus::kFailed:
        ++failed;
        break;
      case RequestStatus::kRejectedInfeasible:
        ++rejected_infeasible;
        break;
      case RequestStatus::kRejectedDeadline:
        ++rejected_deadline;
        break;
      case RequestStatus::kRejectedCapacity:
        ++rejected_capacity;
        break;
      case RequestStatus::kShedOverload:
        ++shed;
        break;
      case RequestStatus::kWatchdogTimeout:
        ++watchdog_cancelled;
        break;
      case RequestStatus::kPending:
        break;
    }
    faults_injected += r.faults;
    violations += r.violations;
    makespan = std::max(makespan, r.completed);
  }
}

double ServiceReport::throughput_hz() const {
  if (makespan <= 0) return 0.0;
  return static_cast<double>(completed) /
         (static_cast<double>(makespan) / static_cast<double>(sim::kSecond));
}

double ServiceReport::mean_latency() const {
  util::Summary s;
  for (const RequestRecord& r : records) {
    if (r.status == RequestStatus::kCompleted) {
      s.add(static_cast<double>(r.latency()));
    }
  }
  return s.empty() ? 0.0 : s.mean();
}

double ServiceReport::latency_percentile(double p) const {
  util::Summary s;
  for (const RequestRecord& r : records) {
    if (r.status == RequestStatus::kCompleted) {
      s.add(static_cast<double>(r.latency()));
    }
  }
  return s.empty() ? 0.0 : s.percentile(p);
}

std::string ServiceReport::to_string() const {
  std::ostringstream out;
  out << "requests " << total() << ": " << completed << " completed, "
      << failed << " failed, " << rejected() << " rejected ("
      << rejected_infeasible << " infeasible, " << rejected_deadline
      << " deadline, " << rejected_capacity << " capacity, " << shed
      << " shed, " << watchdog_cancelled << " watchdog)\n";
  if (!health_log.empty() || faults_injected > 0) {
    out << "degradation: " << health_log.size() << " health transition(s), "
        << faults_injected << " fault(s) injected\n";
    for (const auto& [t, mode] : health_log) {
      out << "  t=" << util::fmt(static_cast<double>(t) / sim::kSecond, 3)
          << "s -> " << service::to_string(mode) << "\n";
    }
  }
  out << "joint batches " << joint_batches << ", admission rounds "
      << admission_rounds << ", peak link utilization "
      << util::fmt(100.0 * peak_utilization, 1) << "%\n";
  out << "makespan " << util::fmt(static_cast<double>(makespan) / sim::kSecond,
                                  3)
      << " s, throughput " << util::fmt(throughput_hz(), 2)
      << " req/s, latency mean " << util::fmt(mean_latency() / sim::kSecond, 3)
      << " s / p95 " << util::fmt(latency_percentile(95) / sim::kSecond, 3)
      << " s\n";
  out << "verifier violations " << violations << "\n";

  util::Table table({"id", "status", "arrival ms", "wait ms", "latency ms",
                     "defers", "mode", "span", "retries", "verified"});
  for (const RequestRecord& r : records) {
    const bool done = r.status == RequestStatus::kCompleted ||
                      r.status == RequestStatus::kFailed;
    table.add_row(
        {std::to_string(r.id), service::to_string(r.status),
         util::fmt(static_cast<double>(r.arrival) / sim::kMillisecond, 1),
         done ? util::fmt(static_cast<double>(r.wait()) / sim::kMillisecond, 1)
              : "-",
         done ? util::fmt(static_cast<double>(r.latency()) / sim::kMillisecond,
                          1)
              : "-",
         std::to_string(r.defers),
         done ? (r.joint ? "joint#" + std::to_string(r.batch) : "single") : "-",
         done ? std::to_string(r.plan_span) : "-",
         done ? std::to_string(r.exec_retries) : "-",
         done ? (r.plan_verified && r.run_verified ? "clean" : "VIOLATION")
              : "-"});
  }
  out << table.to_string();
  return out.str();
}

std::string ServiceReport::digest() const {
  std::ostringstream out;
  for (const RequestRecord& r : records) {
    out << r.id << '|' << service::to_string(r.status) << '|' << r.arrival
        << '|' << r.admitted << '|' << r.completed << '|' << r.defers << '|'
        << r.joint << '|' << r.batch << '|' << r.plan_span << '|'
        << r.exec_duration << '|' << r.exec_retries << '|' << r.plan_verified
        << '|' << r.run_verified << '|' << r.violations;
    // Ladder fields are appended only when a campaign touched the request,
    // so clean-run digests stay byte-identical to the pre-ladder format.
    if (r.faults != 0 || r.degradation != DegradationMode::kFull) {
      out << '|' << service::to_string(r.degradation) << '|' << r.faults;
    }
    out << '\n';
  }
  out << "batches=" << joint_batches << " rounds=" << admission_rounds
      << " violations=" << violations << '\n';
  for (const auto& [t, mode] : health_log) {
    out << "health|" << t << '|' << service::to_string(mode) << '\n';
  }
  return out.str();
}

}  // namespace chronus::service
