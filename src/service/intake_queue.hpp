// The transport-agnostic request intake of the update service.
//
// Every way a request can reach the dispatcher — the trace reader behind
// `chronus_cli serve`, the in-process bench clients, and the rpc socket
// sessions — feeds the same bounded queue, so admission backpressure is
// defined once, here, instead of per transport:
//
//   * try_push (the non-blocking producers: rpc sessions on the reactor
//     thread) is answered kDeferred once the depth reaches `soft_limit`.
//     A deferred producer is expected to surface the deferral to its
//     client (an explicit `deferred` wire reply) and retry later; nothing
//     is queued.
//   * push_wait (the in-process producers: trace reader, bench drivers)
//     blocks while the queue is saturated — the thread-level equivalent
//     of a paused socket session.
//   * saturated() (depth == capacity) is the reactor's cue to stop
//     *reading* from streaming sessions entirely, which pushes the
//     backpressure into the kernel socket buffers and from there to the
//     clients.
//
// The soft limit gives the defer-before-shed band that mirrors the
// service's degradation ladder (DESIGN.md §13): deferral engages strictly
// before the hard capacity wall, so well-behaved clients see `deferred`
// responses and back off while the planner catches up, and only an
// aggressive burst ever hits the read-pause. Keep `soft_limit` at or
// below the ladder's `defer_enter` so wire-level deferral engages before
// the dispatcher starts shedding admitted work.
//
// Consumption is batch-oriented: the dispatcher (or the rpc server's
// planner thread) drains whole batches at epoch/round boundaries with
// take_batch/wait_batch, never single elements, matching the epoch
// semantics of UpdateService::run.
#pragma once

#include <cstddef>
#include <vector>

#include "service/request.hpp"
#include "util/thread_annotations.hpp"

namespace chronus::service {

class IntakeQueue {
 public:
  enum class Push {
    kAccepted,  ///< queued
    kDeferred,  ///< backpressure: at/above the soft limit — retry later
    kClosed,    ///< intake closed; nothing will be queued again
  };

  /// `capacity` bounds the queue depth (must be positive); `soft_limit`
  /// is the deferral watermark, clamped into [1, capacity]; 0 means
  /// "equal to capacity" (deferral only at the hard wall).
  explicit IntakeQueue(std::size_t capacity, std::size_t soft_limit = 0);

  /// Non-blocking submit for reactor-style producers.
  Push try_push(UpdateRequest req) CHRONUS_EXCLUDES(mu_);

  /// Blocking submit for in-process producers: waits while the queue is
  /// saturated. Returns false iff the queue was closed first.
  bool push_wait(UpdateRequest req) CHRONUS_EXCLUDES(mu_);

  /// Drains everything currently queued (possibly nothing) and wakes
  /// blocked producers.
  std::vector<UpdateRequest> take_batch() CHRONUS_EXCLUDES(mu_);

  /// Blocks until the queue is non-empty or closed, then drains it. An
  /// empty result means closed-and-empty: the producer side is finished.
  std::vector<UpdateRequest> wait_batch() CHRONUS_EXCLUDES(mu_);

  /// Closes the intake: producers are refused from now on, blocked
  /// producers and consumers wake. Idempotent.
  void close() CHRONUS_EXCLUDES(mu_);

  bool closed() const CHRONUS_EXCLUDES(mu_);
  std::size_t depth() const CHRONUS_EXCLUDES(mu_);
  /// depth() == capacity — producers must stop reading/submitting.
  bool saturated() const CHRONUS_EXCLUDES(mu_);

  std::size_t capacity() const { return capacity_; }
  std::size_t soft_limit() const { return soft_; }

 private:
  const std::size_t capacity_;
  const std::size_t soft_;

  mutable util::Mutex mu_;
  util::CondVar space_cv_;  // producers blocked in push_wait
  util::CondVar data_cv_;   // consumers blocked in wait_batch
  std::vector<UpdateRequest> q_ CHRONUS_GUARDED_BY(mu_);
  bool closed_ CHRONUS_GUARDED_BY(mu_) = false;
};

}  // namespace chronus::service
