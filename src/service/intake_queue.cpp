#include "service/intake_queue.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace chronus::service {

IntakeQueue::IntakeQueue(std::size_t capacity, std::size_t soft_limit)
    : capacity_(capacity),
      soft_(soft_limit == 0 ? capacity
                            : std::clamp<std::size_t>(soft_limit, 1,
                                                      capacity)) {
  CHRONUS_EXPECTS(capacity > 0, "intake capacity must be positive");
}

IntakeQueue::Push IntakeQueue::try_push(UpdateRequest req) {
  std::size_t new_depth = 0;
  {
    util::MutexLock lock(mu_);
    if (closed_) return Push::kClosed;
    if (q_.size() >= soft_) {
      obs::add("service.intake_deferred");
      return Push::kDeferred;
    }
    q_.push_back(std::move(req));
    new_depth = q_.size();
  }
  data_cv_.notify_one();
  obs::add("service.intake_accepted");
  obs::gauge_set("service.intake_depth", static_cast<std::int64_t>(new_depth));
  return Push::kAccepted;
}

bool IntakeQueue::push_wait(UpdateRequest req) {
  std::size_t new_depth = 0;
  {
    util::MutexLock lock(mu_);
    while (!closed_ && q_.size() >= capacity_) space_cv_.wait(mu_);
    if (closed_) return false;
    q_.push_back(std::move(req));
    new_depth = q_.size();
  }
  data_cv_.notify_one();
  obs::add("service.intake_accepted");
  obs::gauge_set("service.intake_depth", static_cast<std::int64_t>(new_depth));
  return true;
}

std::vector<UpdateRequest> IntakeQueue::take_batch() {
  std::vector<UpdateRequest> batch;
  {
    util::MutexLock lock(mu_);
    batch.swap(q_);
  }
  if (!batch.empty()) {
    space_cv_.notify_all();
    obs::add("service.intake_batches");
    obs::gauge_set("service.intake_depth", 0);
  }
  return batch;
}

std::vector<UpdateRequest> IntakeQueue::wait_batch() {
  std::vector<UpdateRequest> batch;
  {
    util::MutexLock lock(mu_);
    while (!closed_ && q_.empty()) data_cv_.wait(mu_);
    batch.swap(q_);
  }
  if (!batch.empty()) {
    space_cv_.notify_all();
    obs::add("service.intake_batches");
    obs::gauge_set("service.intake_depth", 0);
  }
  return batch;
}

void IntakeQueue::close() {
  {
    util::MutexLock lock(mu_);
    closed_ = true;
  }
  space_cv_.notify_all();
  data_cv_.notify_all();
}

bool IntakeQueue::closed() const {
  util::MutexLock lock(mu_);
  return closed_;
}

std::size_t IntakeQueue::depth() const {
  util::MutexLock lock(mu_);
  return q_.size();
}

bool IntakeQueue::saturated() const {
  util::MutexLock lock(mu_);
  return q_.size() >= capacity_;
}

}  // namespace chronus::service
