#include "service/service.hpp"

#include <algorithm>
#include <iterator>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/multi_flow.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "service/intake_queue.hpp"
#include "service/worker_pool.hpp"
#include "sim/chaos.hpp"
#include "sim/updaters.hpp"
#include "timenet/verifier.hpp"
#include "util/contracts.hpp"

namespace chronus::service {

void DegradationPolicy::validate() const {
  CHRONUS_EXPECTS(latency_slo >= 0, "latency_slo must be non-negative");
  const auto rung = [](std::size_t enter, std::size_t exit, const char* msg) {
    CHRONUS_EXPECTS(enter == 0 || exit < enter, msg);
  };
  rung(greedy_enter, greedy_exit, "greedy_exit must be below greedy_enter");
  rung(defer_enter, defer_exit, "defer_exit must be below defer_enter");
  rung(shed_enter, shed_exit, "shed_exit must be below shed_enter");
  // Enter thresholds must be non-decreasing up the ladder wherever two
  // adjacent rungs are both enabled, else a depth could skip a rung's
  // window entirely and the ladder order would be meaningless.
  if (greedy_enter > 0 && defer_enter > 0) {
    CHRONUS_EXPECTS(greedy_enter <= defer_enter,
                    "defer_enter must be at or above greedy_enter");
  }
  if (defer_enter > 0 && shed_enter > 0) {
    CHRONUS_EXPECTS(defer_enter <= shed_enter,
                    "shed_enter must be at or above defer_enter");
  }
}

namespace {

int violation_count(const timenet::TransitionReport& rep) {
  return static_cast<int>(rep.congestion.size() + rep.loops.size() +
                          rep.blackholes.size());
}

net::UpdateInstance make_instance(const net::Graph& g,
                                  const UpdateRequest& req) {
  return net::UpdateInstance::from_paths(g, req.p_init, req.p_fin, req.demand);
}

// Thread-safety note (DESIGN.md §12): the Plan/Exec result slots below are
// deliberately *unguarded*. Exactly one worker writes a given slot, and
// the dispatcher reads it only after WorkerPool::wait_idle() — a barrier
// hand-off stronger than any per-slot mutex. Clang's capability analysis
// cannot express barrier ownership transfer, so the contract lives here
// and in the chronus_analyzer lock-discipline pass (which verifies the
// dispatcher itself holds no lock across the blocking wait_idle call).

/// Worker-side planning outcome; one slot per admitted single or group.
struct PlanResult {
  bool feasible = false;
  timenet::UpdateSchedule schedule;  ///< singles
  core::MultiFlowResult joint;       ///< groups
  bool verified = false;             ///< plan re-check under the reservation
  int violations = 0;
  std::string message;
};

/// Worker-side execution outcome; one slot per admitted request.
struct ExecResult {
  bool ran = false;
  bool completed = false;
  bool verified = false;
  int violations = 0;
  sim::SimTime duration = 0;
  int retries = 0;
  std::uint64_t faults = 0;  ///< chaos faults injected during this run
  std::string message;
};

/// Plans one request alone against its reservation-restricted graph.
void plan_single_job(const net::Graph& restricted, const UpdateRequest& req,
                     const core::GreedyOptions& gopts, PlanResult* out) {
  try {
    const net::UpdateInstance inst = make_instance(restricted, req);
    core::ScheduleResult res = core::greedy_schedule(inst, gopts);
    if (!res.feasible()) {
      out->message = res.message.empty() ? "unschedulable" : res.message;
      return;
    }
    // The greedy guard already checked each step; re-verify the complete
    // plan under the reservation capacities so the record carries an
    // end-to-end verdict independent of the scheduler.
    const timenet::TransitionReport rep =
        timenet::verify_transition(inst, res.schedule);
    out->feasible = true;
    out->schedule = std::move(res.schedule);
    out->verified = rep.ok();
    out->violations = violation_count(rep);
  } catch (const std::exception& e) {
    out->message = e.what();
  }
}

/// Plans a conflict group jointly under the group reservation.
void plan_group_job(const net::Graph& group_graph,
                    const std::vector<const UpdateRequest*>& members,
                    PlanResult* out) {
  try {
    std::vector<net::UpdateInstance> flows;
    flows.reserve(members.size());
    for (const UpdateRequest* r : members) {
      flows.push_back(make_instance(group_graph, *r));
    }
    out->joint = core::schedule_flows_jointly(flows);
    if (!out->joint.feasible()) {
      out->message =
          out->joint.message.empty() ? "joint plan infeasible" : out->joint.message;
      return;
    }
    std::vector<timenet::FlowTransition> transitions;
    transitions.reserve(flows.size());
    for (std::size_t k = 0; k < flows.size(); ++k) {
      timenet::FlowTransition ft;
      ft.instance = &flows[k];
      ft.schedule = &out->joint.schedules[k];
      transitions.push_back(ft);
    }
    const timenet::TransitionReport rep =
        timenet::verify_transitions(transitions);
    out->feasible = true;
    out->verified = rep.ok();
    out->violations = violation_count(rep);
  } catch (const std::exception& e) {
    out->message = e.what();
  }
}

/// Executes one planned schedule in a private simulation of the *original*
/// network: own event queue, controller and RNG stream derived from
/// (service seed, request id), so the outcome is independent of which
/// worker runs it. `admitted_at` is the service-time admission instant the
/// chaos scenario (if any) is compiled against: the campaign's phases are
/// translated into the private simulation's time base and max-merged into
/// the always-on fault floor, and the injector stream is derived from
/// (service seed, scenario seed, request id) — never from the worker.
void exec_job(const net::Graph& base, const UpdateRequest& req,
              const timenet::UpdateSchedule& schedule,
              const ServiceOptions& opts, sim::SimTime admitted_at,
              ExecResult* out) {
  try {
    const net::UpdateInstance inst = make_instance(base, req);
    sim::Network net(inst.graph(), opts.step_unit, opts.bps_per_unit);
    sim::EventQueue eq;
    util::Rng parent(opts.seed);
    util::Rng rng = parent.fork(req.id);
    sim::Controller ctrl(eq, net, rng, opts.channel);

    sim::FaultModel faults = opts.faults;
    if (opts.chaos != nullptr) {
      // The private simulation spans the dispatch lead plus the schedule,
      // with slack for retries; phases overlapping that service-time window
      // become forced-outage windows and merged rates.
      const sim::SimTime span =
          opts.dispatch_lead + (schedule.step_span() + 4) * opts.step_unit;
      opts.chaos->apply_at(admitted_at, span, faults);
    }
    std::optional<sim::FaultInjector> injector;
    if (faults.enabled()) {
      const std::uint64_t scenario_seed =
          opts.chaos != nullptr ? opts.chaos->seed : 0;
      injector.emplace(std::move(faults),
                       opts.seed ^ (scenario_seed * 0x2545F4914F6CDD1DULL) ^
                           (0x9E3779B97F4A7C15ULL * (req.id + 0x5EEDULL)));
      ctrl.attach_fault_injector(&*injector);
    }

    sim::SimFlowSpec spec;
    spec.name = req.name.empty() ? "r" + std::to_string(req.id) : req.name;
    spec.rate_bps = req.demand.value() * opts.bps_per_unit;
    sim::install_initial_rules(ctrl, inst, spec);

    sim::ResilientExecutor executor(
        ctrl, opts.retry, opts.seed ^ (0x9E3779B97F4A7C15ULL * (req.id + 1)));
    const sim::UpdateRunReport rep = executor.run_timed(
        inst, spec, schedule, opts.dispatch_lead, opts.step_unit);
    out->ran = true;
    out->completed = rep.completed;
    out->verified = rep.verified && rep.verification.ok();
    out->violations = violation_count(rep.verification);
    out->duration = rep.result.finish;
    out->retries = rep.retries;
    out->faults = rep.faults.injected();
  } catch (const std::exception& e) {
    out->message = e.what();
  }
}

struct Pending {
  std::size_t req_idx = 0;  ///< into the arrival-sorted request vector
  Footprint footprint;
  int defers = 0;
  int joint_cooldown = 0;  ///< rounds until the next joint-batch attempt
};

struct SingleJob {
  std::size_t pend_idx = 0;
  net::Graph graph;  ///< reservation-restricted planning graph
  PlanResult plan;
  ExecResult exec;
};

struct GroupJob {
  JointGroup group;
  net::Graph graph;  ///< group-reservation planning graph
  PlanResult plan;
  std::vector<ExecResult> execs;  ///< one per member
};

}  // namespace

UpdateService::UpdateService(net::Graph base, ServiceOptions opts)
    : base_(std::move(base)), opts_(opts) {
  if (opts_.epoch < 1) throw std::invalid_argument("epoch must be positive");
  if (opts_.step_unit < 1) {
    throw std::invalid_argument("step_unit must be positive");
  }
  opts_.degradation.validate();
  opts_.faults.validate();
  if (opts_.chaos != nullptr) opts_.chaos->validate();
}

ServiceReport UpdateService::run_intake(IntakeQueue& intake) {
  std::vector<UpdateRequest> requests;
  for (;;) {
    std::vector<UpdateRequest> batch = intake.wait_batch();
    if (batch.empty()) break;  // closed and drained
    requests.insert(requests.end(), std::make_move_iterator(batch.begin()),
                    std::make_move_iterator(batch.end()));
  }
  return run(std::move(requests));
}

ServiceReport UpdateService::run(std::vector<UpdateRequest> requests) {
  CHRONUS_SPAN("service.run");
  obs::add("service.requests", requests.size());
  std::sort(requests.begin(), requests.end(),
            [](const UpdateRequest& a, const UpdateRequest& b) {
              return a.arrival != b.arrival ? a.arrival < b.arrival
                                            : a.id < b.id;
            });

  // Records are kept in ascending request-id order (the canonical order of
  // the report and its digest).
  ServiceReport report;
  report.records.resize(requests.size());
  std::map<std::uint64_t, std::size_t> record_of;
  {
    std::vector<std::uint64_t> ids;
    ids.reserve(requests.size());
    for (const UpdateRequest& r : requests) ids.push_back(r.id);
    std::sort(ids.begin(), ids.end());
    if (std::adjacent_find(ids.begin(), ids.end()) != ids.end()) {
      throw std::invalid_argument("request ids must be unique");
    }
    for (std::size_t i = 0; i < ids.size(); ++i) record_of.emplace(ids[i], i);
  }
  const auto record = [&](const UpdateRequest& r) -> RequestRecord& {
    return report.records[record_of.at(r.id)];
  };

  const sim::SimTime epoch = opts_.epoch;
  const auto quantize_up = [epoch](sim::SimTime t) {
    return ((t + epoch - 1) / epoch) * epoch;
  };

  AdmissionController admission(base_, opts_.admission);
  // The greedy-only rung plans through the same controller with joint
  // batching disabled — the cheapest way to keep admitting under pressure.
  AdmissionPolicy greedy_policy = opts_.admission;
  greedy_policy.allow_joint = false;
  AdmissionController greedy_admission(base_, greedy_policy);
  CapacityLedger ledger(base_);
  WorkerPool pool(opts_.workers);

  const DegradationPolicy& ladder = opts_.degradation;
  DegradationMode health = DegradationMode::kFull;
  const auto exit_depth = [&ladder](DegradationMode m) -> std::size_t {
    switch (m) {
      case DegradationMode::kGreedyOnly:
        return ladder.greedy_exit;
      case DegradationMode::kDefer:
        return ladder.defer_exit;
      case DegradationMode::kShed:
        return ladder.shed_exit;
      case DegradationMode::kFull:
        break;
    }
    return 0;
  };

  std::vector<Pending> pending;
  // In-flight reservations keyed by (release instant, admission sequence):
  // completions fold back in deterministic order.
  std::map<std::pair<sim::SimTime, std::uint64_t>, Footprint> inflight;
  std::uint64_t admit_seq = 0;
  std::size_t next_arrival = 0;
  sim::SimTime now =
      requests.empty() ? 0 : quantize_up(requests.front().arrival);

  while (next_arrival < requests.size() || !pending.empty() ||
         !inflight.empty()) {
    obs::add("service.epochs");
    // 1. Fold due completions back into the ledger.
    while (!inflight.empty() && inflight.begin()->first.first <= now) {
      ledger.release(inflight.begin()->second);
      inflight.erase(inflight.begin());
    }

    // 2. Ingest arrivals up to this boundary.
    while (next_arrival < requests.size() &&
           requests[next_arrival].arrival <= now) {
      const UpdateRequest& r = requests[next_arrival];
      RequestRecord& rec = record(r);
      rec.id = r.id;
      rec.arrival = r.arrival;
      try {
        Pending p;
        p.req_idx = next_arrival;
        p.footprint = transition_footprint(base_, r.p_init, r.p_fin, r.demand);
        pending.push_back(std::move(p));
      } catch (const std::exception& e) {
        rec.status = RequestStatus::kRejectedInfeasible;
        rec.completed = now;
        rec.message = e.what();
      }
      ++next_arrival;
    }

    // 2b. The degradation ladder. Everything below reads only the queue
    // depth and the virtual clock, so a degraded run replays bit-
    // identically; with the default (disabled) policy none of it runs.
    const auto set_health = [&](DegradationMode m) {
      if (m == health) return;
      health = m;
      report.health_log.emplace_back(now, m);
      obs::add("service.health_transitions");
      obs::gauge_set("service.health_state", static_cast<std::int64_t>(m));
    };

    // Watchdog: cancel requests still queued past the latency SLO instead
    // of planning them hopelessly late.
    if (ladder.latency_slo > 0 && !pending.empty()) {
      std::vector<Pending> fresh;
      fresh.reserve(pending.size());
      for (Pending& p : pending) {
        const UpdateRequest& r = requests[p.req_idx];
        if (now - r.arrival > ladder.latency_slo) {
          RequestRecord& rec = record(r);
          rec.status = RequestStatus::kWatchdogTimeout;
          rec.completed = now;
          rec.defers = p.defers;
          rec.degradation = health;
          rec.message = "queued past the latency SLO";
          obs::add("service.watchdog_fires");
        } else {
          fresh.push_back(std::move(p));
        }
      }
      pending = std::move(fresh);
    }

    // Walk the ladder on the post-watchdog queue depth: escalate straight
    // to the highest tripped rung, de-escalate one rung per epoch once the
    // depth reaches the current rung's exit threshold.
    if (ladder.enabled()) {
      const std::size_t depth = pending.size();
      DegradationMode tripped = DegradationMode::kFull;
      if (ladder.greedy_enter > 0 && depth >= ladder.greedy_enter) {
        tripped = DegradationMode::kGreedyOnly;
      }
      if (ladder.defer_enter > 0 && depth >= ladder.defer_enter) {
        tripped = DegradationMode::kDefer;
      }
      if (ladder.shed_enter > 0 && depth >= ladder.shed_enter) {
        tripped = DegradationMode::kShed;
      }
      if (tripped > health) {
        set_health(tripped);
      } else if (health > DegradationMode::kFull &&
                 depth <= exit_depth(health)) {
        set_health(
            static_cast<DegradationMode>(static_cast<int>(health) - 1));
      }
      if (health != DegradationMode::kFull) obs::add("service.degraded_epochs");
    }

    // Shed rung: reject the lowest-priority, youngest tail of the queue
    // outright until the depth is back at shed_exit.
    if (health == DegradationMode::kShed && pending.size() > ladder.shed_exit) {
      std::sort(pending.begin(), pending.end(),
                [&](const Pending& a, const Pending& b) {
                  const UpdateRequest& ra = requests[a.req_idx];
                  const UpdateRequest& rb = requests[b.req_idx];
                  // Keep-first order: high priority, then oldest (lowest id).
                  return ra.priority != rb.priority ? ra.priority > rb.priority
                                                    : ra.id < rb.id;
                });
      for (std::size_t i = ladder.shed_exit; i < pending.size(); ++i) {
        const UpdateRequest& r = requests[pending[i].req_idx];
        RequestRecord& rec = record(r);
        rec.status = RequestStatus::kShedOverload;
        rec.completed = now;
        rec.defers = pending[i].defers;
        rec.degradation = DegradationMode::kShed;
        rec.message = "shed under overload";
        obs::add("service.shed");
      }
      pending.resize(ladder.shed_exit);
    }

    // Defer and shed pause admission — but only while the backlog can
    // still drain through in-flight completions or future arrivals can
    // still deepen it. Once neither holds, holding the queue would starve
    // it forever, so the effective mode falls back to greedy-only.
    DegradationMode effective = health;
    if (effective >= DegradationMode::kDefer && inflight.empty() &&
        next_arrival >= requests.size()) {
      effective = DegradationMode::kGreedyOnly;
    }

    // 3. One admission round over the queue, in service order.
    if (!pending.empty() && effective < DegradationMode::kDefer) {
      std::sort(pending.begin(), pending.end(),
                [&](const Pending& a, const Pending& b) {
                  const UpdateRequest& ra = requests[a.req_idx];
                  const UpdateRequest& rb = requests[b.req_idx];
                  return ra.priority != rb.priority
                             ? ra.priority > rb.priority
                             : ra.id < rb.id;
                });
      std::vector<PendingRequest> view;
      view.reserve(pending.size());
      for (const Pending& p : pending) {
        view.push_back(
            {&requests[p.req_idx], p.footprint, p.defers, p.joint_cooldown});
      }
      AdmissionRound round = effective == DegradationMode::kGreedyOnly
                                 ? greedy_admission.decide(view, ledger, now)
                                 : admission.decide(view, ledger, now);
      ++report.admission_rounds;

      std::vector<char> resolved(pending.size(), 0);
      for (const auto& [idx, status] : round.rejected) {
        const UpdateRequest& r = requests[pending[idx].req_idx];
        RequestRecord& rec = record(r);
        rec.status = status;
        rec.completed = now;
        rec.defers = pending[idx].defers;
        rec.degradation = health;
        resolved[idx] = 1;
      }

      // 4. Fan the reserved work out to the pool: plan phase, then (for
      // feasible plans) execution phase, each ended by a barrier.
      std::vector<SingleJob> singles(round.singles.size());
      for (std::size_t s = 0; s < round.singles.size(); ++s) {
        singles[s].pend_idx = round.singles[s];
        singles[s].graph = ledger.restricted_graph(
            base_, pending[singles[s].pend_idx].footprint);
      }
      std::vector<GroupJob> groups(round.groups.size());
      for (std::size_t gi = 0; gi < round.groups.size(); ++gi) {
        groups[gi].group = std::move(round.groups[gi]);
        groups[gi].graph =
            ledger.restricted_graph(base_, groups[gi].group.reservation);
        groups[gi].execs.resize(groups[gi].group.members.size());
      }
      for (SingleJob& job : singles) {
        const UpdateRequest& r = requests[pending[job.pend_idx].req_idx];
        pool.submit([&job, &r, this] {
          plan_single_job(job.graph, r, opts_.greedy, &job.plan);
        });
      }
      for (GroupJob& job : groups) {
        pool.submit([&job, &requests, &pending] {
          std::vector<const UpdateRequest*> members;
          members.reserve(job.group.members.size());
          for (const std::size_t idx : job.group.members) {
            members.push_back(&requests[pending[idx].req_idx]);
          }
          plan_group_job(job.graph, members, &job.plan);
        });
      }
      pool.wait_idle();

      if (opts_.execute) {
        for (SingleJob& job : singles) {
          if (!job.plan.feasible) continue;
          const UpdateRequest& r = requests[pending[job.pend_idx].req_idx];
          pool.submit([&job, &r, now, this] {
            exec_job(base_, r, job.plan.schedule, opts_, now, &job.exec);
          });
        }
        for (GroupJob& job : groups) {
          if (!job.plan.feasible) continue;
          for (std::size_t m = 0; m < job.group.members.size(); ++m) {
            const UpdateRequest& r =
                requests[pending[job.group.members[m]].req_idx];
            pool.submit([&job, &r, m, now, this] {
              exec_job(base_, r, job.plan.joint.schedules[m], opts_, now,
                       &job.execs[m]);
            });
          }
        }
        pool.wait_idle();
      }

      // 5. Commit results in request order; all ledger and record
      // mutations happen here, on the dispatcher.
      const auto commit_member = [&](const UpdateRequest& r,
                                     const Pending& p, const PlanResult& plan,
                                     const ExecResult& exec,
                                     std::int64_t span, bool count_plan,
                                     bool joint) -> sim::SimTime {
        RequestRecord& rec = record(r);
        rec.admitted = now;
        rec.defers = p.defers;
        rec.joint = joint;
        rec.plan_span = span;
        rec.plan_verified = plan.verified;
        rec.degradation = health;
        if (count_plan) rec.violations += plan.violations;
        sim::SimTime duration = 0;
        if (opts_.execute) {
          if (exec.ran) {
            rec.status = exec.completed ? RequestStatus::kCompleted
                                        : RequestStatus::kFailed;
            rec.run_verified = exec.verified;
            rec.violations += exec.violations;
            rec.exec_duration = exec.duration;
            rec.exec_retries = exec.retries;
            rec.faults = exec.faults;
            if (exec.faults > 0) obs::add("service.faults_injected", exec.faults);
            rec.message = exec.message;
            duration = exec.duration;
          } else {
            rec.status = RequestStatus::kFailed;
            rec.message = exec.message.empty() ? "execution error"
                                               : exec.message;
            duration = opts_.dispatch_lead;
          }
        } else {
          rec.status = RequestStatus::kCompleted;
          rec.run_verified = plan.verified;
          duration = opts_.dispatch_lead + span * opts_.step_unit;
        }
        const sim::SimTime due = quantize_up(now + std::max<sim::SimTime>(
                                                       duration, 1));
        rec.completed = due;
        // Virtual (simulated) latency: a function of the deterministic
        // epoch dispatch alone, so it replays bit-identically across
        // worker counts — deliberately not a _wall_us metric.
        obs::observe("service.request_latency_us", due - r.arrival);
        return due;
      };

      for (SingleJob& job : singles) {
        const Pending& p = pending[job.pend_idx];
        const UpdateRequest& r = requests[p.req_idx];
        if (!job.plan.feasible) {
          ledger.release(p.footprint);
          record(r).message = job.plan.message;
          continue;  // stays pending, deferred below
        }
        const sim::SimTime due =
            commit_member(r, p, job.plan, job.exec,
                          job.plan.schedule.step_span(), /*count_plan=*/true,
                          /*joint=*/false);
        inflight.emplace(std::make_pair(due, admit_seq++), p.footprint);
        resolved[job.pend_idx] = 1;
      }

      for (GroupJob& job : groups) {
        if (!job.plan.feasible) {
          ledger.release(job.group.reservation);
          for (const std::size_t idx : job.group.members) {
            record(requests[pending[idx].req_idx]).message = job.plan.message;
            // Don't re-attempt the same doomed batch next epoch; its
            // members go back to the individual path for a while.
            pending[idx].joint_cooldown = opts_.admission.joint_after_defers;
          }
          continue;  // members stay pending
        }
        ++report.joint_batches;
        sim::SimTime group_due = 0;
        for (std::size_t m = 0; m < job.group.members.size(); ++m) {
          const Pending& p = pending[job.group.members[m]];
          const UpdateRequest& r = requests[p.req_idx];
          // Group-level plan violations are attributed to the first member
          // only, so the report-wide sum counts each event once.
          const sim::SimTime due = commit_member(
              r, p, job.plan, job.execs[m],
              job.plan.joint.schedules[m].step_span(),
              /*count_plan=*/m == 0, /*joint=*/true);
          RequestRecord& rec = record(r);
          rec.batch = report.joint_batches;
          group_due = std::max(group_due, due);
          resolved[job.group.members[m]] = 1;
        }
        // The group reservation is held until the last member releases.
        inflight.emplace(std::make_pair(group_due, admit_seq++),
                         job.group.reservation);
      }

      std::vector<Pending> survivors;
      survivors.reserve(pending.size());
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (resolved[i]) continue;
        Pending p = std::move(pending[i]);
        ++p.defers;  // spent one more round in the queue
        if (p.joint_cooldown > 0) --p.joint_cooldown;
        survivors.push_back(std::move(p));
      }
      pending = std::move(survivors);
    }

    // 6. Advance the virtual clock to the next epoch boundary with work.
    sim::SimTime next = std::numeric_limits<sim::SimTime>::max();
    if (!inflight.empty()) next = std::min(next, inflight.begin()->first.first);
    if (next_arrival < requests.size()) {
      next = std::min(next, quantize_up(requests[next_arrival].arrival));
    }
    if (!pending.empty()) next = std::min(next, now + epoch);
    if (next == std::numeric_limits<sim::SimTime>::max()) break;
    now = next;
  }

  if (!ledger.idle()) {
    throw std::logic_error("capacity ledger not idle after drain");
  }
  report.peak_utilization = ledger.peak_utilization();
  report.finalize();
  if (obs::registry() != nullptr) {
    std::uint64_t completed = 0, failed = 0, rejected = 0;
    for (const RequestRecord& rec : report.records) {
      switch (rec.status) {
        case RequestStatus::kCompleted:
          ++completed;
          break;
        case RequestStatus::kFailed:
          ++failed;
          break;
        default:
          ++rejected;
          break;
      }
    }
    obs::add("service.completed", completed);
    obs::add("service.failed", failed);
    obs::add("service.rejected", rejected);
    obs::add("service.joint_batches", report.joint_batches);
  }
  return report;
}

}  // namespace chronus::service
