#include "service/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/chaos.hpp"

namespace chronus::service {

ServiceTrace make_workload(const WorkloadOptions& opt) {
  if (opt.pairs < 1) throw std::invalid_argument("pairs must be >= 1");
  if (opt.requests < 0) throw std::invalid_argument("requests must be >= 0");
  if (opt.arrival_rate_hz <= 0.0) {
    throw std::invalid_argument("arrival_rate_hz must be positive");
  }
  if (opt.rescue_sites < 0) {
    throw std::invalid_argument("rescue_sites must be >= 0");
  }
  if (3 * opt.rescue_sites > opt.requests) {
    throw std::invalid_argument("rescue_sites need three requests each");
  }

  ServiceTrace trace;
  net::Graph& g = trace.graph;

  // Shared core rails: the contested links every conflicting request
  // transitions between.
  const net::NodeId a = g.add_node("A");
  const net::NodeId b = g.add_node("B");
  const net::NodeId c = g.add_node("C");
  const net::NodeId d = g.add_node("D");
  g.add_link(a, b, opt.core_capacity, 1);
  g.add_link(c, d, opt.core_capacity, 1);

  struct Pair {
    net::NodeId s, t;     // endpoints
    net::NodeId p, q;     // private rail 1
    net::NodeId r, u;     // private rail 2
  };
  std::vector<Pair> pairs;
  pairs.reserve(static_cast<std::size_t>(opt.pairs));
  for (int i = 0; i < opt.pairs; ++i) {
    const std::string k = std::to_string(i);
    Pair pr;
    pr.s = g.add_node("s" + k);
    pr.t = g.add_node("t" + k);
    pr.p = g.add_node("p" + k);
    pr.q = g.add_node("q" + k);
    pr.r = g.add_node("r" + k);
    pr.u = g.add_node("u" + k);
    g.add_link(pr.s, a, opt.edge_capacity, 1);
    g.add_link(b, pr.t, opt.edge_capacity, 1);
    g.add_link(pr.s, c, opt.edge_capacity, 1);
    g.add_link(d, pr.t, opt.edge_capacity, 1);
    g.add_link(pr.s, pr.p, opt.private_capacity, 1);
    g.add_link(pr.p, pr.q, opt.private_capacity, 1);
    g.add_link(pr.q, pr.t, opt.private_capacity, 1);
    g.add_link(pr.s, pr.r, opt.private_capacity, 1);
    g.add_link(pr.r, pr.u, opt.private_capacity, 1);
    g.add_link(pr.u, pr.t, opt.private_capacity, 1);
    pairs.push_back(pr);
  }

  util::Rng rng(opt.seed);
  std::vector<UpdateRequest> reqs;
  reqs.reserve(static_cast<std::size_t>(opt.requests));

  const int background = opt.requests - 3 * opt.rescue_sites;
  double clock_sec = 0.0;
  for (int i = 0; i < background; ++i) {
    // Chaos surges scale the instantaneous rate at the draw's own virtual
    // time; the uniform01 draw itself is unchanged, so a quiet (or absent)
    // scenario leaves the trace bit-identical.
    double rate_hz = opt.arrival_rate_hz;
    if (opt.chaos != nullptr) {
      rate_hz *= opt.chaos->arrival_multiplier_at(static_cast<sim::SimTime>(
          std::llround(clock_sec * static_cast<double>(sim::kSecond))));
    }
    clock_sec += -std::log(1.0 - rng.uniform01()) / rate_hz;

    UpdateRequest req;
    req.arrival = static_cast<sim::SimTime>(
        std::llround(clock_sec * static_cast<double>(sim::kSecond)));
    req.priority = opt.priorities > 1
                       ? static_cast<int>(rng.uniform_int(0, opt.priorities - 1))
                       : 0;

    const Pair& pr = pairs[rng.index(pairs.size())];
    const bool oversize =
        opt.oversize_prob > 0.0 && rng.chance(opt.oversize_prob);
    const bool core = oversize || rng.chance(opt.conflict_density);
    const bool swap = rng.chance(0.5);
    req.demand =
        oversize
            ? net::Demand{opt.core_capacity.value() + 1.0 + rng.uniform01()}
            : net::Demand{rng.uniform(opt.demand_min.value(), opt.demand_max.value())};
    net::Path one, two;
    if (core) {
      one = net::Path{pr.s, a, b, pr.t};
      two = net::Path{pr.s, c, d, pr.t};
    } else {
      one = net::Path{pr.s, pr.p, pr.q, pr.t};
      two = net::Path{pr.s, pr.r, pr.u, pr.t};
    }
    req.p_init = swap ? two : one;
    req.p_fin = swap ? one : two;
    reqs.push_back(std::move(req));
  }

  // Joint-rescue sites: a contested link sized for ~1.25 flows, an enterer
  // that grabs it, then a vacater and a second enterer arriving while the
  // first transition is still in flight. The second enterer stays blocked
  // until the admission controller batches it with the vacater.
  const double span_sec =
      static_cast<double>(opt.requests) / opt.arrival_rate_hz;
  for (int k = 0; k < opt.rescue_sites; ++k) {
    const std::string suffix = std::to_string(k);
    const net::NodeId e = g.add_node("e" + suffix);
    const net::NodeId f = g.add_node("f" + suffix);
    const net::NodeId m = g.add_node("m" + suffix);
    const net::NodeId n = g.add_node("n" + suffix);
    const net::NodeId x = g.add_node("x" + suffix);
    const net::NodeId y = g.add_node("y" + suffix);
    const net::NodeId z = g.add_node("z" + suffix);
    const net::Demand demand{
        rng.uniform(opt.demand_min.value(), opt.demand_max.value())};
    g.add_link(m, n, util::capacity_for(demand, 1.25), 1);  // contested link
    g.add_link(e, m, opt.edge_capacity, 1);
    g.add_link(n, f, opt.edge_capacity, 1);
    for (const net::NodeId alt : {x, y, z}) {
      g.add_link(e, alt, opt.edge_capacity, 1);
      g.add_link(alt, f, opt.edge_capacity, 1);
    }
    const double t0_sec =
        span_sec * static_cast<double>(k + 1) /
        static_cast<double>(opt.rescue_sites + 1);
    const int priority =
        opt.priorities > 1
            ? static_cast<int>(rng.uniform_int(0, opt.priorities - 1))
            : 0;
    const net::Path contested{e, m, n, f};
    const auto site_request = [&](double at_sec, const net::Path& init,
                                  const net::Path& fin) {
      UpdateRequest req;
      req.arrival = static_cast<sim::SimTime>(
          std::llround(at_sec * static_cast<double>(sim::kSecond)));
      req.priority = priority;
      req.demand = demand;
      req.p_init = init;
      req.p_fin = fin;
      reqs.push_back(std::move(req));
    };
    site_request(t0_sec, net::Path{e, x, f}, contested);         // enterer 1
    site_request(t0_sec + 0.15, contested, net::Path{e, y, f});  // vacater
    site_request(t0_sec + 0.20, net::Path{e, z, f}, contested);  // enterer 2
  }

  // Ids (and hence same-priority service order) follow arrival order.
  std::stable_sort(reqs.begin(), reqs.end(),
                   [](const UpdateRequest& lhs, const UpdateRequest& rhs) {
                     return lhs.arrival < rhs.arrival;
                   });
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].id = i;
    reqs[i].name = "r" + std::to_string(i);
    if (opt.deadline > 0) reqs[i].deadline = reqs[i].arrival + opt.deadline;
  }
  trace.requests = std::move(reqs);
  return trace;
}

}  // namespace chronus::service
