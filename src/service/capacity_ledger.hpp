// The capacity ledger: per-link headroom shared by every in-flight
// transition.
//
// Each admitted request reserves a *footprint* — demand units on every link
// of its old and new path, counted once per path occurrence, so a link on
// both paths holds 2d (the worst transient: an old-configuration and a
// new-configuration packet crossing it in the same window). Planning then
// runs against a graph whose footprint links carry exactly the reservation,
// and the verifier-guarded scheduler guarantees the flow's transient load
// never exceeds it. Because the ledger never lets the sum of reservations
// exceed a link's raw capacity, the per-flow guarantees add up: any set of
// concurrently executing plans is jointly congestion-free under the
// original capacities (the same argument as multi_flow's sequential
// composition, made concurrent).
//
// All operations are atomic all-or-nothing under one mutex: try_reserve
// either commits the whole footprint or leaves the ledger untouched, and
// release restores exactly what was reserved. The ledger refuses to
// over-commit or over-release by construction (checked invariants), which
// the concurrency tests hammer from many threads.
#pragma once

#include <map>
#include <vector>

#include "net/graph.hpp"
#include "net/path.hpp"
#include "util/thread_annotations.hpp"

namespace chronus::service {

/// Demand committed per link; the unit of reservation and release.
using Footprint = std::map<net::LinkId, net::Demand>;

/// The footprint of one old-path -> new-path transition: `demand` per
/// occurrence of a link on either path (shared links count twice). Throws
/// std::invalid_argument if a path uses a link absent from `g`.
Footprint transition_footprint(const net::Graph& g, const net::Path& p_init,
                               const net::Path& p_fin, net::Demand demand);

class CapacityLedger {
 public:
  explicit CapacityLedger(const net::Graph& g);

  std::size_t link_count() const { return capacity_.size(); }

  /// Raw capacity of a link (fixed at construction).
  net::Capacity capacity(net::LinkId id) const;

  /// Capacity currently committed to in-flight transitions.
  net::Demand committed(net::LinkId id) const CHRONUS_EXCLUDES(mu_);

  /// capacity - committed, never negative.
  net::Capacity headroom(net::LinkId id) const CHRONUS_EXCLUDES(mu_);

  /// True iff the whole footprint fits the current headroom (advisory: a
  /// concurrent reserve may invalidate it; use try_reserve to commit).
  bool fits(const Footprint& fp) const CHRONUS_EXCLUDES(mu_);

  /// Atomically commits the footprint; returns false (ledger unchanged)
  /// if any link lacks headroom. Negative reservations are a contract
  /// violation (always a caller bug).
  bool try_reserve(const Footprint& fp) CHRONUS_EXCLUDES(mu_);

  /// Returns the reserved amounts; throws std::logic_error if any entry
  /// would drive a link's commitment negative (a release that was never
  /// reserved — always a caller bug).
  void release(const Footprint& fp) CHRONUS_EXCLUDES(mu_);

  /// A copy of `g` whose footprint links carry exactly the reservation
  /// amount (the capacities a single admitted request may plan against);
  /// non-footprint links keep their raw capacity.
  net::Graph restricted_graph(const net::Graph& g, const Footprint& fp) const;

  /// Max over links of committed/capacity ever observed (watermark).
  double peak_utilization() const CHRONUS_EXCLUDES(mu_);

  /// True iff no capacity is committed anywhere (all releases balanced).
  bool idle() const CHRONUS_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  std::vector<net::Capacity> capacity_;  ///< immutable after construction
  std::vector<net::Demand> committed_ CHRONUS_GUARDED_BY(mu_);
  double peak_ CHRONUS_GUARDED_BY(mu_) = 0.0;
};

}  // namespace chronus::service
