#include "service/admission.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>

#include "net/path.hpp"
#include "obs/metrics.hpp"

namespace chronus::service {

namespace {

/// Flushes the round's outcome counts (admission.* in DESIGN.md §11) on
/// every exit path of decide(). All counts derive from the returned round,
/// so the metrics agree with the dispatcher's view by construction.
struct AdmissionTally {
  const AdmissionRound* round;

  ~AdmissionTally() {
    if (obs::registry() == nullptr) return;
    obs::add("admission.rounds");
    obs::add("admission.singles", round->singles.size());
    obs::add("admission.deferrals", round->deferred.size());
    obs::add("admission.joint_groups", round->groups.size());
    for (const auto& g : round->groups) {
      obs::add("admission.rescues", g.members.size());
    }
    for (const auto& [idx, status] : round->rejected) {
      (void)idx;
      switch (status) {
        case RequestStatus::kRejectedDeadline:
          obs::add("admission.reject_deadline");
          break;
        case RequestStatus::kRejectedInfeasible:
          obs::add("admission.reject_infeasible");
          break;
        case RequestStatus::kRejectedCapacity:
          obs::add("admission.reject_capacity");
          break;
        default:
          obs::add("admission.reject_other");
          break;
      }
    }
  }
};

/// Union-find over pending-queue indices, used to group conflicting
/// leftovers by shared footprint links.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);  // keep order
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

AdmissionController::AdmissionController(const net::Graph& base,
                                         AdmissionPolicy policy)
    : base_(&base), policy_(policy) {}

bool AdmissionController::statically_feasible(const Footprint& fp) const {
  for (const auto& [id, amount] : fp) {
    if (amount > base_->link(id).capacity + net::Demand{1e-9}) return false;
  }
  return true;
}

AdmissionRound AdmissionController::decide(
    const std::vector<PendingRequest>& pending, CapacityLedger& ledger,
    sim::SimTime now) const {
  AdmissionRound round;
  const AdmissionTally tally{&round};
  // Candidates that survived the reject filters, in service order, with a
  // flag saying whether their individual reservation succeeded.
  struct Candidate {
    std::size_t idx;
    bool reserved;
  };
  std::vector<Candidate> cands;

  for (std::size_t i = 0; i < pending.size(); ++i) {
    const PendingRequest& p = pending[i];
    if (p.request->deadline > 0 && now > p.request->deadline) {
      round.rejected.emplace_back(i, RequestStatus::kRejectedDeadline);
      continue;
    }
    if (!statically_feasible(p.footprint)) {
      round.rejected.emplace_back(i, RequestStatus::kRejectedInfeasible);
      continue;
    }
    if (p.defers >= policy_.max_defers) {
      round.rejected.emplace_back(i, RequestStatus::kRejectedCapacity);
      continue;
    }
    cands.push_back({i, ledger.try_reserve(p.footprint)});
  }

  // Only leftovers that have waited out joint_after_defers rounds (and any
  // cooldown from a previously failed batch) may pull their conflicting
  // singles into a batch.
  const auto rescuable = [&](const Candidate& c) {
    return !c.reserved &&
           pending[c.idx].defers >= policy_.joint_after_defers &&
           pending[c.idx].joint_cooldown == 0;
  };
  const bool any_rescuable =
      std::any_of(cands.begin(), cands.end(), rescuable);
  if (!policy_.allow_joint || !any_rescuable) {
    for (const Candidate& c : cands) {
      (c.reserved ? round.singles : round.deferred).push_back(c.idx);
    }
    return round;
  }

  // Connect candidates that share footprint links — leftovers *and* the
  // singles they conflict with. A leftover's unavoidable load exceeds the
  // current headroom, so it can never be rescued by headroom scraps alone;
  // what can rescue it is a conflicting same-round neighbour whose
  // transition vacates the contested link. Pooling the neighbours'
  // reservations and planning the component jointly lets
  // schedule_flows_jointly order the vacater ahead of the enterer inside
  // one window.
  DisjointSets sets(cands.size());
  std::map<net::LinkId, std::size_t> first_user;
  for (std::size_t j = 0; j < cands.size(); ++j) {
    for (const auto& [link, _] : pending[cands[j].idx].footprint) {
      const auto [it, inserted] = first_user.emplace(link, j);
      if (!inserted) sets.unite(it->second, j);
    }
  }
  std::map<std::size_t, std::vector<std::size_t>> comps;  // root -> positions
  for (std::size_t j = 0; j < cands.size(); ++j) {
    comps[sets.find(j)].push_back(j);
  }

  const auto keep_individual = [&](const std::vector<std::size_t>& members) {
    for (const std::size_t j : members) {
      (cands[j].reserved ? round.singles : round.deferred)
          .push_back(cands[j].idx);
    }
  };

  for (const auto& [_, members] : comps) {
    const bool has_rescuable =
        std::any_of(members.begin(), members.end(),
                    [&](std::size_t j) { return rescuable(cands[j]); });
    // Components without an overdue leftover plan alone; singleton
    // leftovers have nobody to batch with and wait for in-flight releases;
    // oversized components fall back to individual treatment rather than
    // guessing a sub-batch.
    if (!has_rescuable || members.size() < 2 ||
        members.size() > policy_.max_joint_batch) {
      keep_individual(members);
      continue;
    }
    // Pool the member singles' reservations back into the headroom, then
    // reserve min(combined footprint, headroom) per touched link. The joint
    // plan is verified under exactly these capacities, so whatever
    // interleaving the scheduler finds is bounded by the reservation.
    for (const std::size_t j : members) {
      if (cands[j].reserved) ledger.release(pending[cands[j].idx].footprint);
    }
    Footprint combined;
    for (const std::size_t j : members) {
      for (const auto& [link, amount] : pending[cands[j].idx].footprint) {
        combined[link] += amount;
      }
    }
    Footprint reservation;
    bool starved = false;
    for (const auto& [link, amount] : combined) {
      const net::Capacity room = ledger.headroom(link);
      if (room <= net::Capacity{1e-9}) {
        starved = true;
        break;
      }
      reservation[link] = std::min(amount, room.as_demand());
    }
    // No joint plan can need less than the members' combined loads in the
    // shared start and end states, so a reservation that cannot carry those
    // is doomed before planning — typically because the blocking in-flight
    // release has not happened yet. Skip the attempt (and the cooldown it
    // would arm) and retry when capacity has turned over.
    if (!starved) {
      Footprint start, end;  // group-wide loads in the two boundary states
      for (const std::size_t j : members) {
        const UpdateRequest& r = *pending[cands[j].idx].request;
        for (const net::LinkId l : net::path_links(*base_, r.p_init)) {
          start[l] += r.demand;
        }
        for (const net::LinkId l : net::path_links(*base_, r.p_fin)) {
          end[l] += r.demand;
        }
      }
      for (const Footprint* state : {&start, &end}) {
        for (const auto& [link, need] : *state) {
          if (need > reservation[link] + net::Demand{1e-9}) {
            starved = true;
            break;
          }
        }
        if (starved) break;
      }
    }
    if (starved || !ledger.try_reserve(reservation)) {
      // Put the singles back exactly as they were and defer the leftovers.
      for (const std::size_t j : members) {
        if (cands[j].reserved &&
            !ledger.try_reserve(pending[cands[j].idx].footprint)) {
          throw std::logic_error("admission: cannot restore reservation");
        }
      }
      keep_individual(members);
      continue;
    }
    JointGroup group;
    group.reservation = std::move(reservation);
    for (const std::size_t j : members) group.members.push_back(cands[j].idx);
    round.groups.push_back(std::move(group));
  }
  return round;
}

}  // namespace chronus::service
