#include "service/worker_pool.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace chronus::service {

WorkerPool::WorkerPool(int workers) {
  const int n = workers < 1 ? 1 : workers;
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const util::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  // join() past the notified stop flag cannot throw in practice (the
  // threads are joinable by construction); the try keeps the implicitly
  // noexcept destructor honest under bugprone-exception-escape.
  try {
    for (std::thread& t : threads_) t.join();
  } catch (...) {  // chronus-analyzer: allow(swallowed-catch) a failed
    // join leaves nothing to report to — the process is tearing the pool
    // down and must not terminate from a destructor.
  }
}

void WorkerPool::submit(std::function<void()> job) {
  std::size_t depth;
  {
    const util::MutexLock lock(mu_);
    jobs_.push_back(std::move(job));
    depth = jobs_.size();
  }
  obs::add("workerpool.jobs");
  obs::gauge_set("workerpool.queue_depth",
                 static_cast<std::int64_t>(depth));
  work_cv_.notify_one();
}

void WorkerPool::wait_idle() {
  const util::MutexLock lock(mu_);
  // Explicit wait loop (not the predicate overload): the thread-safety
  // analysis cannot attach REQUIRES to a lambda portably, and the loop
  // form lets it verify the guarded reads happen with mu_ held.
  while (!(jobs_.empty() && active_ == 0)) idle_cv_.wait(mu_);
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      const util::MutexLock lock(mu_);
      while (!stop_ && jobs_.empty()) work_cv_.wait(mu_);
      if (jobs_.empty()) return;  // stop_ set and queue drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++active_;
      obs::gauge_set("workerpool.queue_depth",
                     static_cast<std::int64_t>(jobs_.size()));
    }
    {
      // Per-job wall time lands in span.workerpool.job_wall_us; worker
      // threads carry no enclosing span, so the path never nests.
      CHRONUS_SPAN("workerpool.job");
      job();
    }
    {
      const util::MutexLock lock(mu_);
      --active_;
      if (jobs_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace chronus::service
