#include "service/worker_pool.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace chronus::service {

WorkerPool::WorkerPool(int workers) {
  const int n = workers < 1 ? 1 : workers;
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::submit(std::function<void()> job) {
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(std::move(job));
    depth = jobs_.size();
  }
  obs::add("workerpool.jobs");
  obs::gauge_set("workerpool.queue_depth",
                 static_cast<std::int64_t>(depth));
  work_cv_.notify_one();
}

void WorkerPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return jobs_.empty() && active_ == 0; });
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ set and queue drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++active_;
      obs::gauge_set("workerpool.queue_depth",
                     static_cast<std::int64_t>(jobs_.size()));
    }
    {
      // Per-job wall time lands in span.workerpool.job_wall_us; worker
      // threads carry no enclosing span, so the path never nests.
      CHRONUS_SPAN("workerpool.job");
      job();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (jobs_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace chronus::service
