// The request/response vocabulary of the online update service.
//
// The offline planners take one pre-assembled instance (or flow set); the
// service instead receives a *stream* of UpdateRequests — "move flow f from
// p_init to p_fin, demand d, before this deadline" — arriving over virtual
// time, and answers each with a RequestRecord describing what happened to
// it: admitted (alone or in a joint batch), deferred-then-admitted,
// rejected by the admission controller, or failed in execution. A
// ServiceReport aggregates the per-request records into the service-level
// metrics (throughput, latency percentiles, rejection breakdown).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/path.hpp"
#include "sim/sim_time.hpp"

namespace chronus::service {

/// One reroute request: transition a flow of `demand` units from `p_init`
/// to `p_fin` on the service's shared base graph.
struct UpdateRequest {
  std::uint64_t id = 0;
  std::string name;        ///< flow label; defaults to "r<id>" when empty
  net::Path p_init;
  net::Path p_fin;
  net::Demand demand{1.0};
  sim::SimTime arrival = 0;   ///< virtual arrival instant (microseconds)
  sim::SimTime deadline = 0;  ///< absolute virtual deadline; 0 = none
  int priority = 0;           ///< higher is served first within a round
};

enum class RequestStatus {
  kPending,             ///< not yet decided (only seen mid-run)
  kCompleted,           ///< planned, executed, commitments released
  kRejectedInfeasible,  ///< demand exceeds a link's raw capacity
  kRejectedDeadline,    ///< deadline passed while queued
  kRejectedCapacity,    ///< gave up after max_defers admission rounds
  kFailed,              ///< admitted but planning/execution failed
  kShedOverload,        ///< shed by the degradation ladder under overload
  kWatchdogTimeout,     ///< planning cancelled past the latency SLO
};

const char* to_string(RequestStatus s);

/// The graceful-degradation ladder's health states, escalating with
/// dispatcher-queue pressure: full planning (joint batching + execution)
/// -> greedy-only (joint batching disabled) -> defer (no admissions while
/// the backlog can still drain through completions or keeps growing) ->
/// shed (excess queue entries rejected outright). The dispatcher walks the
/// ladder on queue-depth thresholds with hysteresis
/// (service::DegradationPolicy) and records the mode each request was
/// decided under.
enum class DegradationMode {
  kFull = 0,
  kGreedyOnly = 1,
  kDefer = 2,
  kShed = 3,
};

const char* to_string(DegradationMode m);

/// Everything the service learned about one request.
struct RequestRecord {
  std::uint64_t id = 0;
  RequestStatus status = RequestStatus::kPending;

  sim::SimTime arrival = 0;
  sim::SimTime admitted = 0;    ///< admission round that reserved capacity
  sim::SimTime completed = 0;   ///< virtual completion (release) instant
  int defers = 0;               ///< admission rounds spent waiting

  bool joint = false;           ///< planned via schedule_flows_jointly
  std::uint64_t batch = 0;      ///< joint batch id (joint records only)

  std::int64_t plan_span = 0;       ///< schedule steps of the plan
  sim::SimTime exec_duration = 0;   ///< simulated execution wall time
  int exec_retries = 0;             ///< resilient-executor interventions
  std::uint64_t faults = 0;         ///< faults injected during execution

  /// Health state the dispatcher was in when this request was decided
  /// (admitted, shed or watchdog-cancelled).
  DegradationMode degradation = DegradationMode::kFull;

  /// Re-verification verdicts: the plan under the ledger-restricted
  /// capacities (the reservation bound) and the achieved activations under
  /// the original capacities.
  bool plan_verified = false;
  bool run_verified = false;
  int violations = 0;  ///< total verifier events across both checks

  std::string message;

  sim::SimTime latency() const { return completed - arrival; }
  sim::SimTime wait() const { return admitted - arrival; }
  bool accepted() const {
    return status == RequestStatus::kCompleted ||
           status == RequestStatus::kFailed;
  }
};

/// Service-level outcome of one trace run.
struct ServiceReport {
  std::vector<RequestRecord> records;  ///< one per request, by request id

  sim::SimTime makespan = 0;     ///< virtual time until the last release
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t rejected_infeasible = 0;
  std::size_t rejected_deadline = 0;
  std::size_t rejected_capacity = 0;
  std::size_t joint_batches = 0;
  std::size_t admission_rounds = 0;
  std::size_t shed = 0;                ///< requests shed under overload
  std::size_t watchdog_cancelled = 0;  ///< planning cancelled past the SLO
  std::uint64_t faults_injected = 0;   ///< chaos faults across all records
  int violations = 0;            ///< verifier events across all records
  double peak_utilization = 0.0; ///< max over links of committed/capacity

  /// Every degradation-ladder transition the dispatcher took, in epoch
  /// order — the campaign's health trajectory. Empty for a run that never
  /// left full planning, so clean runs digest identically to the
  /// pre-ladder format.
  std::vector<std::pair<sim::SimTime, DegradationMode>> health_log;

  std::size_t total() const { return records.size(); }
  std::size_t rejected() const {
    return rejected_infeasible + rejected_deadline + rejected_capacity +
           shed + watchdog_cancelled;
  }
  double rejection_rate() const {
    return records.empty()
               ? 0.0
               : static_cast<double>(rejected()) /
                     static_cast<double>(records.size());
  }
  /// Completed requests per virtual second.
  double throughput_hz() const;
  /// Mean / percentile completion latency (microseconds) over completed
  /// requests; 0 when none completed. `p` is in [0, 100] (95 = p95).
  double mean_latency() const;
  double latency_percentile(double p) const;

  /// Aggregates the per-record fields above; call once after the records
  /// are final.
  void finalize();

  /// Human-readable summary table plus one line per rejected request.
  std::string to_string() const;

  /// Canonical one-line digest of every record, for determinism checks:
  /// two runs are considered identical iff their digests match.
  std::string digest() const;
};

}  // namespace chronus::service
