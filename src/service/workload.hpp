// Deterministic arrival-process driver for the online update service.
//
// make_workload builds a reroute workload over a two-rail core topology:
// every source/destination pair can route through the shared core rails
// (A->B old, C->D new) or through its own private rails. Each generated
// request reroutes one pair's flow between two of its rails; with
// probability `conflict_density` the request contests the shared core, so
// the knob directly controls how often independent requests collide on the
// ledger (and hence how much admission deferral and joint batching the
// service performs). Inter-arrival times are exponential with the given
// rate. Everything is drawn from util::Rng, so a (options, seed) pair
// always yields the identical trace — the property the determinism tests
// and the bench sweeps rely on.
#pragma once

#include <cstdint>

#include "service/service.hpp"
#include "util/rng.hpp"

namespace chronus::service {

struct WorkloadOptions {
  int requests = 200;
  double arrival_rate_hz = 40.0;  ///< mean arrivals per virtual second
  int pairs = 8;                  ///< distinct src/dst pairs
  /// Probability a request routes over the shared core rails instead of
  /// its pair-private rails.
  double conflict_density = 0.5;
  net::Demand demand_min{0.5};
  net::Demand demand_max{1.5};
  /// Relative deadline added to each arrival; 0 disables deadlines.
  sim::SimTime deadline = 60 * sim::kSecond;
  int priorities = 3;  ///< priorities drawn uniformly from [0, priorities)
  /// Probability of an oversized request (demand above the core capacity;
  /// the admission controller must reject it as statically infeasible).
  double oversize_prob = 0.0;

  net::Capacity core_capacity{4.0};     ///< shared rails (contested links)
  net::Capacity private_capacity{2.0};  ///< per-pair rails
  net::Capacity edge_capacity{64.0};    ///< access links (not a bottleneck)

  /// Number of joint-rescue sites. Each site is a private contested link
  /// sized for ~1.25 flows and a trio of requests: an enterer that takes
  /// the link first, then — while it is still in flight — a vacater and a
  /// second enterer. The second enterer cannot fit until the vacater
  /// leaves, which is exactly the conflict the admission controller
  /// resolves with a joint batch (vacate before enter in one window). Each
  /// site consumes three slots of `requests`.
  int rescue_sites = 0;

  /// Optional chaos scenario whose arrival surges compress the background
  /// inter-arrival draws (sim/chaos.hpp). The multiplier scales the rate
  /// at each draw's current virtual time without consuming extra
  /// randomness, so a surging trace is still a pure function of (options,
  /// seed) and a quiet scenario yields the identical trace as none at all.
  /// Not owned; null = no campaign.
  const sim::ChaosScenario* chaos = nullptr;

  std::uint64_t seed = 1;
};

/// The generated topology plus request stream.
ServiceTrace make_workload(const WorkloadOptions& opt);

}  // namespace chronus::service
