// Simple directed paths and the path-delay function phi(p) used throughout
// the tree algorithm (Algorithm 1) and the schedulers.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "net/graph.hpp"

namespace chronus::net {

/// A sequence of switches v_0, ..., v_k. A Path object is only a node
/// sequence; validity against a concrete graph is checked by the free
/// functions below so that paths can be constructed before their links.
class Path {
 public:
  Path() = default;
  explicit Path(std::vector<NodeId> nodes);
  Path(std::initializer_list<NodeId> nodes);

  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  NodeId operator[](std::size_t i) const { return nodes_[i]; }
  NodeId front() const { return nodes_.front(); }
  NodeId back() const { return nodes_.back(); }
  const std::vector<NodeId>& nodes() const { return nodes_; }

  auto begin() const { return nodes_.begin(); }
  auto end() const { return nodes_.end(); }

  bool contains(NodeId v) const;

  /// Index of v in the path, or npos.
  std::size_t index_of(NodeId v) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Successor of v on this path; kInvalidNode if v is last or absent.
  NodeId next_hop(NodeId v) const;

  /// Predecessor of v on this path; kInvalidNode if v is first or absent.
  NodeId prev_hop(NodeId v) const;

  /// No repeated node?
  bool is_simple() const;

  /// Suffix starting at v (inclusive); empty path if v absent.
  Path suffix_from(NodeId v) const;

  bool operator==(const Path& other) const = default;

 private:
  std::vector<NodeId> nodes_;
};

/// True iff every consecutive pair is a link of g.
bool path_exists_in(const Graph& g, const Path& p);

/// Sum of link delays phi(p); throws if a link is missing.
Delay path_delay(const Graph& g, const Path& p);

/// Link ids along the path; throws if a link is missing.
std::vector<LinkId> path_links(const Graph& g, const Path& p);

/// Minimum capacity along the path; throws on missing link or empty path.
Capacity path_min_capacity(const Graph& g, const Path& p);

/// "v1 -> v2 -> v3" for diagnostics.
std::string to_string(const Graph& g, const Path& p);

}  // namespace chronus::net
