#include "net/instance.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace chronus::net {

UpdateInstance UpdateInstance::from_paths(Graph g, Path p_init, Path p_fin,
                                          Demand demand) {
  if (p_init.size() < 2 || p_fin.size() < 2) {
    throw std::invalid_argument("paths need at least two nodes");
  }
  if (p_init.front() != p_fin.front() || p_init.back() != p_fin.back()) {
    throw std::invalid_argument("paths must share source and destination");
  }
  if (!p_init.is_simple() || !p_fin.is_simple()) {
    throw std::invalid_argument("paths must be simple");
  }
  if (!path_exists_in(g, p_init) || !path_exists_in(g, p_fin)) {
    throw std::invalid_argument("path links missing in graph");
  }
  if (demand <= Demand{}) {
    throw std::invalid_argument("demand must be positive");
  }

  UpdateInstance inst;
  inst.graph_ = std::move(g);
  inst.demand_ = demand;
  inst.p_init_ = std::move(p_init);
  inst.p_fin_ = std::move(p_fin);
  for (std::size_t i = 0; i + 1 < inst.p_init_.size(); ++i) {
    inst.old_next_[inst.p_init_[i]] = inst.p_init_[i + 1];
  }
  for (std::size_t i = 0; i + 1 < inst.p_fin_.size(); ++i) {
    inst.new_next_[inst.p_fin_[i]] = inst.p_fin_[i + 1];
  }
  // Switches only on the old path keep their rule in the final
  // configuration by default.
  for (const auto& [v, nxt] : inst.old_next_) {
    if (!inst.new_next_.count(v)) inst.new_next_[v] = nxt;
  }
  return inst;
}

std::optional<NodeId> UpdateInstance::old_next(NodeId v) const {
  const auto it = old_next_.find(v);
  if (it == old_next_.end()) return std::nullopt;
  return it->second;
}

std::optional<NodeId> UpdateInstance::new_next(NodeId v) const {
  const auto it = new_next_.find(v);
  if (it == new_next_.end()) return std::nullopt;
  return it->second;
}

void UpdateInstance::set_new_next(NodeId v, NodeId next) {
  if (!graph_.has_link(v, next)) {
    throw std::invalid_argument("redirect rule over missing link");
  }
  new_next_[v] = next;
}

bool UpdateInstance::needs_update(NodeId v) const {
  const auto nn = new_next(v);
  if (!nn) return false;
  const auto on = old_next(v);
  return !on || *on != *nn;
}

std::vector<NodeId> UpdateInstance::switches_to_update() const {
  std::set<NodeId> ids;
  for (const auto& [v, _] : new_next_) {
    if (needs_update(v)) ids.insert(v);
  }
  return {ids.begin(), ids.end()};
}

UpdateInstance UpdateInstance::with_graph(Graph g) const {
  if (g.node_count() != graph_.node_count() ||
      g.link_count() != graph_.link_count()) {
    throw std::invalid_argument("with_graph: graph layout mismatch");
  }
  UpdateInstance copy = *this;
  copy.graph_ = std::move(g);
  return copy;
}

std::vector<NodeId> UpdateInstance::touched_nodes() const {
  std::set<NodeId> ids;
  for (NodeId v : p_init_) ids.insert(v);
  for (NodeId v : p_fin_) ids.insert(v);
  return {ids.begin(), ids.end()};
}

}  // namespace chronus::net
