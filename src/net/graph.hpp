// Directed network graph with per-link capacity and transmission delay —
// the model G = (V, E) of the paper (§II.B, Table I).
//
// Nodes are switches; each link <u,v> has a capacity C_{u,v} (in demand
// units, e.g. Mbps) and an integral transmission delay sigma_{u,v} (in
// abstract time units for the algorithms, microseconds in the simulator).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/strong_types.hpp"

namespace chronus::net {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;
using Delay = std::int64_t;
// Unit-safe quantities (src/util/strong_types.hpp): construction is
// explicit and cross-axis arithmetic is restricted to the physically
// meaningful operations, so mixing a capacity into a demand (or either
// into a time) is a compile error.
using Capacity = util::Capacity;
using Demand = util::Demand;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr LinkId kInvalidLink = static_cast<LinkId>(-1);

struct Link {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Capacity capacity{};
  Delay delay = 1;
};

class Graph {
 public:
  Graph() = default;

  /// Adds a switch; `name` is for diagnostics ("v1", "v2", ...).
  NodeId add_node(std::string name = "");

  /// Adds n unnamed switches and returns the id of the first.
  NodeId add_nodes(std::size_t n);

  /// Adds a directed link. Requires valid endpoints, capacity > 0,
  /// delay >= 1 and no parallel duplicate (throws std::invalid_argument).
  LinkId add_link(NodeId u, NodeId v, Capacity capacity, Delay delay);

  std::size_t node_count() const { return node_names_.size(); }
  std::size_t link_count() const { return links_.size(); }

  const Link& link(LinkId id) const;
  Link& mutable_link(LinkId id);

  /// Link id of <u,v>, if it exists.
  std::optional<LinkId> find_link(NodeId u, NodeId v) const;

  bool has_link(NodeId u, NodeId v) const { return find_link(u, v).has_value(); }

  /// Outgoing / incoming link ids of a node.
  std::span<const LinkId> out_links(NodeId u) const;
  std::span<const LinkId> in_links(NodeId v) const;

  const std::string& name(NodeId v) const;
  void set_name(NodeId v, std::string name);

  /// Capacity / delay of <u,v>; throws if the link does not exist.
  Capacity capacity(NodeId u, NodeId v) const;
  Delay delay(NodeId u, NodeId v) const;

  /// Largest link delay in the graph (1 if no links).
  Delay max_delay() const;

 private:
  void check_node(NodeId v) const;

  std::vector<std::string> node_names_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_;
  std::vector<std::vector<LinkId>> in_;
};

}  // namespace chronus::net
