#include "net/generators.hpp"

#include <algorithm>
#include <stdexcept>

namespace chronus::net {

UpdateInstance fig1_instance() {
  Graph g;
  for (int i = 1; i <= 6; ++i) g.add_node("v" + std::to_string(i));
  const NodeId v1 = 0, v2 = 1, v3 = 2, v4 = 3, v5 = 4, v6 = 5;
  // Solid (initial) path links.
  g.add_link(v1, v2, Capacity{1.0}, 1);
  g.add_link(v2, v3, Capacity{1.0}, 1);
  g.add_link(v3, v4, Capacity{1.0}, 1);
  g.add_link(v4, v5, Capacity{1.0}, 1);
  g.add_link(v5, v6, Capacity{1.0}, 1);
  // Dashed (final) links.
  g.add_link(v1, v4, Capacity{1.0}, 1);
  g.add_link(v4, v3, Capacity{1.0}, 1);
  g.add_link(v3, v2, Capacity{1.0}, 1);
  g.add_link(v2, v6, Capacity{1.0}, 1);
  g.add_link(v5, v2, Capacity{1.0}, 1);  // redirect rule for in-flight old traffic

  auto inst = UpdateInstance::from_paths(std::move(g), Path{v1, v2, v3, v4, v5, v6},
                                         Path{v1, v4, v3, v2, v6}, Demand{1.0});
  inst.set_new_next(v5, v2);
  return inst;
}

Graph line_topology(std::size_t n, Capacity capacity, Delay delay) {
  if (n < 2) throw std::invalid_argument("line needs >= 2 nodes");
  Graph g;
  g.add_nodes(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_link(v, v + 1, capacity, delay);
  return g;
}

UpdateInstance random_instance(const RandomInstanceOptions& opt,
                               util::Rng& rng) {
  if (opt.n < 4) throw std::invalid_argument("random instance needs >= 4 switches");
  if (opt.delay_min < 1 || opt.delay_max < opt.delay_min) {
    throw std::invalid_argument("bad delay range");
  }

  Graph g;
  g.add_nodes(opt.n);
  const NodeId src = 0;
  const NodeId dst = static_cast<NodeId>(opt.n - 1);

  auto rand_delay = [&] {
    return rng.uniform_int(opt.delay_min, opt.delay_max);
  };
  auto rand_capacity = [&] {
    // Tight links admit only the flow itself; slack links admit old and new
    // flow simultaneously, like SWAN's slack assumption on a per-link basis.
    return rng.chance(opt.slack_prob) ? util::capacity_for(opt.demand, 2.0)
                                      : util::capacity_for(opt.demand);
  };

  // Initial path: the fixed line.
  std::vector<NodeId> init_nodes;
  for (NodeId v = 0; v < opt.n; ++v) init_nodes.push_back(v);
  for (NodeId v = 0; v + 1 < opt.n; ++v) {
    g.add_link(v, v + 1, rand_capacity(), rand_delay());
  }

  // Final path: random subset of intermediate switches in random order.
  std::vector<NodeId> pool;
  for (NodeId v = 1; v + 1 < opt.n; ++v) pool.push_back(v);
  rng.shuffle(pool);
  std::size_t keep = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (rng.chance(opt.detour_frac)) pool[keep++] = pool[i];
  }
  pool.resize(keep);

  std::vector<NodeId> fin_nodes;
  fin_nodes.push_back(src);
  fin_nodes.insert(fin_nodes.end(), pool.begin(), pool.end());
  fin_nodes.push_back(dst);

  for (std::size_t i = 0; i + 1 < fin_nodes.size(); ++i) {
    if (!g.has_link(fin_nodes[i], fin_nodes[i + 1])) {
      g.add_link(fin_nodes[i], fin_nodes[i + 1], rand_capacity(), rand_delay());
    }
  }

  return UpdateInstance::from_paths(std::move(g), Path(std::move(init_nodes)),
                                    Path(std::move(fin_nodes)), opt.demand);
}

Graph wan_topology(Capacity capacity) {
  // Abilene-shaped backbone: 11 PoPs, bidirectional links.
  Graph g;
  const char* names[] = {"SEA", "SNV", "LAX", "SLC", "DEN", "KSC",
                         "HOU", "CHI", "IND", "ATL", "NYC"};
  for (const char* n : names) g.add_node(n);
  const std::pair<int, int> edges[] = {
      {0, 1}, {0, 4},  {1, 2}, {1, 3}, {2, 6}, {3, 4}, {4, 5},
      {5, 6}, {5, 8},  {6, 9}, {7, 8}, {7, 10}, {8, 9}, {9, 10},
  };
  int i = 0;
  for (const auto& [a, b] : edges) {
    const Delay d = 1 + (i++ % 3);
    g.add_link(static_cast<NodeId>(a), static_cast<NodeId>(b), capacity, d);
    g.add_link(static_cast<NodeId>(b), static_cast<NodeId>(a), capacity, d);
  }
  return g;
}

}  // namespace chronus::net
