#include "net/path.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_set>

namespace chronus::net {

Path::Path(std::vector<NodeId> nodes) : nodes_(std::move(nodes)) {}

Path::Path(std::initializer_list<NodeId> nodes) : nodes_(nodes) {}

bool Path::contains(NodeId v) const {
  return std::find(nodes_.begin(), nodes_.end(), v) != nodes_.end();
}

std::size_t Path::index_of(NodeId v) const {
  const auto it = std::find(nodes_.begin(), nodes_.end(), v);
  return it == nodes_.end() ? npos : static_cast<std::size_t>(it - nodes_.begin());
}

NodeId Path::next_hop(NodeId v) const {
  const auto i = index_of(v);
  if (i == npos || i + 1 >= nodes_.size()) return kInvalidNode;
  return nodes_[i + 1];
}

NodeId Path::prev_hop(NodeId v) const {
  const auto i = index_of(v);
  if (i == npos || i == 0) return kInvalidNode;
  return nodes_[i - 1];
}

bool Path::is_simple() const {
  std::unordered_set<NodeId> seen;
  for (NodeId v : nodes_) {
    if (!seen.insert(v).second) return false;
  }
  return true;
}

Path Path::suffix_from(NodeId v) const {
  const auto i = index_of(v);
  if (i == npos) return Path{};
  return Path(std::vector<NodeId>(nodes_.begin() + static_cast<std::ptrdiff_t>(i),
                                  nodes_.end()));
}

bool path_exists_in(const Graph& g, const Path& p) {
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    if (!g.has_link(p[i], p[i + 1])) return false;
  }
  return true;
}

Delay path_delay(const Graph& g, const Path& p) {
  Delay d = 0;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) d += g.delay(p[i], p[i + 1]);
  return d;
}

std::vector<LinkId> path_links(const Graph& g, const Path& p) {
  std::vector<LinkId> ids;
  ids.reserve(p.size() > 0 ? p.size() - 1 : 0);
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const auto id = g.find_link(p[i], p[i + 1]);
    if (!id) throw std::invalid_argument("path link missing in graph");
    ids.push_back(*id);
  }
  return ids;
}

Capacity path_min_capacity(const Graph& g, const Path& p) {
  if (p.size() < 2) throw std::invalid_argument("path has no links");
  Capacity c = std::numeric_limits<Capacity>::max();
  for (const LinkId id : path_links(g, p)) c = std::min(c, g.link(id).capacity);
  return c;
}

std::string to_string(const Graph& g, const Path& p) {
  std::string out;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i) out += " -> ";
    out += g.name(p[i]);
  }
  return out;
}

}  // namespace chronus::net
