// A network-update instance: the input of MUTP (§II.B).
//
// An instance carries the graph, the dynamic flow's demand d, the initial
// path p_init (solid line) and the final path p_fin (dashed line), both from
// the common source to the common destination. Internally routing is kept
// as two (partial) next-hop functions so that, as in the paper's Fig. 1,
// switches that lie only on the old path can still receive a redirect rule
// in the final configuration (v5 -> v2 in the paper's example).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "net/graph.hpp"
#include "net/path.hpp"

namespace chronus::net {

class UpdateInstance {
 public:
  /// Builds an instance from the two paths. Both must be simple, share
  /// source and destination, have >= 2 nodes and exist in `g`.
  /// Switches only on p_init keep their old rule (no update needed) unless
  /// redirects are added afterwards via `set_new_next`.
  static UpdateInstance from_paths(Graph g, Path p_init, Path p_fin,
                                   Demand demand);

  const Graph& graph() const { return graph_; }
  Graph& mutable_graph() { return graph_; }
  Demand demand() const { return demand_; }
  const Path& p_init() const { return p_init_; }
  const Path& p_fin() const { return p_fin_; }

  NodeId source() const { return p_init_.front(); }
  NodeId destination() const { return p_init_.back(); }

  /// Old / new next hop of v; nullopt if v has no rule in that config.
  std::optional<NodeId> old_next(NodeId v) const;
  std::optional<NodeId> new_next(NodeId v) const;

  /// Installs (or overrides) a final-configuration rule for v. The link
  /// <v, next> must exist. Used for paper-style redirect rules on switches
  /// that lie only on the old path.
  void set_new_next(NodeId v, NodeId next);

  /// True iff v's rule changes between the two configurations (v has a new
  /// rule different from its old rule, or a new rule and no old rule).
  bool needs_update(NodeId v) const;

  /// All switches with needs_update(), in ascending id order. This is the
  /// set V of to-be-updated switches in Algorithm 2.
  std::vector<NodeId> switches_to_update() const;

  /// Nodes appearing on either path, ascending.
  std::vector<NodeId> touched_nodes() const;

  /// A copy of this instance over a structurally identical graph (same node
  /// and link ids; capacities/delays may differ). Used by the multi-flow
  /// scheduler to present reduced capacities to one flow's scheduler.
  UpdateInstance with_graph(Graph g) const;

 private:
  UpdateInstance() = default;

  Graph graph_;
  Demand demand_{1.0};
  Path p_init_;
  Path p_fin_;
  std::unordered_map<NodeId, NodeId> old_next_;
  std::unordered_map<NodeId, NodeId> new_next_;
};

}  // namespace chronus::net
