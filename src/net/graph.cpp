#include "net/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace chronus::net {

NodeId Graph::add_node(std::string name) {
  const auto id = static_cast<NodeId>(node_names_.size());
  if (name.empty()) name = "v" + std::to_string(id + 1);
  node_names_.push_back(std::move(name));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

NodeId Graph::add_nodes(std::size_t n) {
  const auto first = static_cast<NodeId>(node_names_.size());
  for (std::size_t i = 0; i < n; ++i) add_node();
  return first;
}

LinkId Graph::add_link(NodeId u, NodeId v, Capacity cap, Delay delay) {
  check_node(u);
  check_node(v);
  if (u == v) throw std::invalid_argument("self-loop link");
  if (cap <= Capacity{}) throw std::invalid_argument("link capacity must be positive");
  if (delay < 1) throw std::invalid_argument("link delay must be >= 1");
  if (has_link(u, v)) throw std::invalid_argument("duplicate link");
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{u, v, cap, delay});
  out_[u].push_back(id);
  in_[v].push_back(id);
  return id;
}

const Link& Graph::link(LinkId id) const {
  if (id >= links_.size()) throw std::out_of_range("bad link id");
  return links_[id];
}

Link& Graph::mutable_link(LinkId id) {
  if (id >= links_.size()) throw std::out_of_range("bad link id");
  return links_[id];
}

std::optional<LinkId> Graph::find_link(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  for (LinkId id : out_[u]) {
    if (links_[id].dst == v) return id;
  }
  return std::nullopt;
}

std::span<const LinkId> Graph::out_links(NodeId u) const {
  check_node(u);
  return out_[u];
}

std::span<const LinkId> Graph::in_links(NodeId v) const {
  check_node(v);
  return in_[v];
}

const std::string& Graph::name(NodeId v) const {
  check_node(v);
  return node_names_[v];
}

void Graph::set_name(NodeId v, std::string name) {
  check_node(v);
  node_names_[v] = std::move(name);
}

Capacity Graph::capacity(NodeId u, NodeId v) const {
  const auto id = find_link(u, v);
  if (!id) throw std::invalid_argument("no such link");
  return links_[*id].capacity;
}

Delay Graph::delay(NodeId u, NodeId v) const {
  const auto id = find_link(u, v);
  if (!id) throw std::invalid_argument("no such link");
  return links_[*id].delay;
}

Delay Graph::max_delay() const {
  Delay d = 1;
  for (const Link& l : links_) d = std::max(d, l.delay);
  return d;
}

void Graph::check_node(NodeId v) const {
  if (v >= node_names_.size()) throw std::out_of_range("bad node id");
}

}  // namespace chronus::net
