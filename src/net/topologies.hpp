// Structured and random topologies beyond the paper's line-based workload,
// plus reroute-instance generation over arbitrary graphs (old route =
// delay-shortest path, new route = random deviation), for the examples and
// the extension benchmarks.
#pragma once

#include <optional>
#include <vector>

#include "net/instance.hpp"
#include "util/rng.hpp"

namespace chronus::net {

/// k-ary fat-tree data-center fabric (k even): k^2/4 core switches, k pods
/// of k/2 aggregation and k/2 edge switches. All links bidirectional with
/// the given capacity; delays 1 (edge-agg) and 2 (agg-core).
struct FatTree {
  Graph graph;
  std::vector<NodeId> core;
  std::vector<std::vector<NodeId>> aggregation;  // per pod
  std::vector<std::vector<NodeId>> edge;         // per pod
};
FatTree fat_tree(int k, Capacity capacity);

/// Waxman random graph: n nodes placed uniformly in the unit square; a
/// bidirectional link between u and v with probability
/// alpha * exp(-dist(u,v) / (beta * sqrt(2))). Delays scale with distance
/// (1..max_delay); capacities alternate tight/slack like the paper's
/// generator. Guaranteed connected (a random spanning tree is added).
struct WaxmanOptions {
  std::size_t n = 20;
  double alpha = 0.7;
  double beta = 0.25;
  Capacity capacity{2.0};
  Delay max_delay = 3;
};
Graph waxman(const WaxmanOptions& opt, util::Rng& rng);

/// w x h grid, bidirectional links.
Graph grid(std::size_t width, std::size_t height, Capacity capacity,
           Delay delay);

/// Delay-shortest path from src to dst (Dijkstra); nullopt if unreachable.
std::optional<Path> shortest_path(const Graph& g, NodeId src, NodeId dst);

struct RerouteOptions {
  /// Probability that a random-walk step deviates from the shortest path.
  double deviation = 0.6;
  /// Hard cap on the new path's node count (0: graph size).
  std::size_t max_len = 0;
  /// How many sampling attempts before giving up.
  int attempts = 64;
};

/// A reroute instance over an arbitrary graph: p_init is the shortest
/// path from src to dst; p_fin is sampled by a loop-erased random walk
/// biased along shortest paths. Returns nullopt when no distinct simple
/// final path could be sampled (e.g. src->dst is a bridge).
std::optional<UpdateInstance> random_reroute(const Graph& g, NodeId src,
                                             NodeId dst, Demand demand,
                                             util::Rng& rng,
                                             const RerouteOptions& opt = {});

}  // namespace chronus::net
