// Topology and update-instance generators.
//
// * fig1_instance() is the paper's running example (Fig. 1/2/5): six unit-
//   capacity, unit-delay switches, p_init = v1..v6, p_fin = v1,v4,v3,v2,v6
//   and the redirect rule v5 -> v2 in the final configuration.
// * random_instance() reproduces the §V.B workload: a fixed initial routing
//   path over n switches and a randomly routed final path, with randomized
//   link capacities (tight = d or slack >= 2d) and integral delays.
#pragma once

#include <cstdint>

#include "net/instance.hpp"
#include "util/rng.hpp"

namespace chronus::net {

/// The paper's Fig. 1 example instance. Unit demand, capacity and delay.
/// Node ids are 0..5 named "v1".."v6".
UpdateInstance fig1_instance();

/// A line p_init over n nodes; every link with the given capacity/delay.
Graph line_topology(std::size_t n, Capacity capacity, Delay delay);

struct RandomInstanceOptions {
  std::size_t n = 10;           ///< number of switches (>= 4)
  Demand demand{1.0};           ///< dynamic-flow demand d
  double slack_prob = 0.3;      ///< P[link capacity >= 2d] (else exactly d)
  Delay delay_min = 1;          ///< uniform integral link delays
  Delay delay_max = 3;
  double detour_frac = 0.5;     ///< expected fraction of switches on p_fin
};

/// Initial path is the fixed line v0 -> ... -> v_{n-1}; the final path
/// visits a random subset of the switches in random order ("random
/// routing"). Links needed by p_fin are added with random capacity/delay.
UpdateInstance random_instance(const RandomInstanceOptions& opt,
                               util::Rng& rng);

/// A small WAN-like topology (11 PoPs, Abilene-shaped) for the example
/// programs; capacities in `capacity` units and delays in [1, 3].
Graph wan_topology(Capacity capacity);

}  // namespace chronus::net
