#include "net/topologies.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace chronus::net {

namespace {

void add_duplex(Graph& g, NodeId u, NodeId v, Capacity cap, Delay delay) {
  g.add_link(u, v, cap, delay);
  g.add_link(v, u, cap, delay);
}

}  // namespace

FatTree fat_tree(int k, Capacity capacity) {
  if (k < 2 || k % 2 != 0) throw std::invalid_argument("fat-tree k must be even");
  FatTree ft;
  const int half = k / 2;
  for (int i = 0; i < half * half; ++i) {
    ft.core.push_back(ft.graph.add_node("core" + std::to_string(i)));
  }
  ft.aggregation.resize(static_cast<std::size_t>(k));
  ft.edge.resize(static_cast<std::size_t>(k));
  for (int p = 0; p < k; ++p) {
    for (int i = 0; i < half; ++i) {
      ft.aggregation[p].push_back(ft.graph.add_node(
          "agg" + std::to_string(p) + "_" + std::to_string(i)));
      ft.edge[p].push_back(ft.graph.add_node(
          "edge" + std::to_string(p) + "_" + std::to_string(i)));
    }
    // Pod mesh: every edge switch to every aggregation switch.
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        add_duplex(ft.graph, ft.edge[p][e], ft.aggregation[p][a], capacity, 1);
      }
    }
    // Aggregation a connects to cores [a*half, (a+1)*half).
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        add_duplex(ft.graph, ft.aggregation[p][a], ft.core[a * half + c],
                   capacity, 2);
      }
    }
  }
  return ft;
}

Graph waxman(const WaxmanOptions& opt, util::Rng& rng) {
  if (opt.n < 2) throw std::invalid_argument("waxman needs >= 2 nodes");
  Graph g;
  g.add_nodes(opt.n);
  std::vector<std::pair<double, double>> pos(opt.n);
  for (auto& [x, y] : pos) {
    x = rng.uniform01();
    y = rng.uniform01();
  }
  const double scale = opt.beta * std::sqrt(2.0);
  auto dist = [&](NodeId u, NodeId v) {
    const double dx = pos[u].first - pos[v].first;
    const double dy = pos[u].second - pos[v].second;
    return std::sqrt(dx * dx + dy * dy);
  };
  auto link_delay = [&](double dv) {
    return std::max<Delay>(
        1, static_cast<Delay>(std::lround(dv / std::sqrt(2.0) *
                                          static_cast<double>(opt.max_delay))));
  };
  auto link_cap = [&] {
    return rng.chance(0.5) ? opt.capacity : opt.capacity / 2.0;
  };
  for (NodeId u = 0; u < opt.n; ++u) {
    for (NodeId v = u + 1; v < opt.n; ++v) {
      const double dv = dist(u, v);
      if (rng.chance(opt.alpha * std::exp(-dv / scale))) {
        add_duplex(g, u, v, link_cap(), link_delay(dv));
      }
    }
  }
  // Connectivity backstop: thread a random spanning chain through any
  // nodes that ended up isolated from node 0.
  std::vector<NodeId> order;
  for (NodeId v = 0; v < opt.n; ++v) order.push_back(v);
  rng.shuffle(order);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    if (!g.has_link(order[i], order[i + 1])) {
      add_duplex(g, order[i], order[i + 1], link_cap(),
                 link_delay(dist(order[i], order[i + 1])));
    }
  }
  return g;
}

Graph grid(std::size_t width, std::size_t height, Capacity capacity,
           Delay delay) {
  if (width < 1 || height < 1) throw std::invalid_argument("empty grid");
  Graph g;
  g.add_nodes(width * height);
  const auto at = [&](std::size_t x, std::size_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (x + 1 < width) add_duplex(g, at(x, y), at(x + 1, y), capacity, delay);
      if (y + 1 < height) add_duplex(g, at(x, y), at(x, y + 1), capacity, delay);
    }
  }
  return g;
}

std::optional<Path> shortest_path(const Graph& g, NodeId src, NodeId dst) {
  constexpr Delay kInf = std::numeric_limits<Delay>::max();
  std::vector<Delay> dist(g.node_count(), kInf);
  std::vector<NodeId> prev(g.node_count(), kInvalidNode);
  using Item = std::pair<Delay, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[src] = 0;
  heap.emplace(0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (const LinkId id : g.out_links(u)) {
      const Link& l = g.link(id);
      const Delay nd = d + l.delay;
      if (nd < dist[l.dst]) {
        dist[l.dst] = nd;
        prev[l.dst] = u;
        heap.emplace(nd, l.dst);
      }
    }
  }
  if (dist[dst] == kInf) return std::nullopt;
  std::vector<NodeId> nodes;
  for (NodeId at = dst; at != kInvalidNode; at = prev[at]) {
    nodes.push_back(at);
    if (at == src) break;
  }
  std::reverse(nodes.begin(), nodes.end());
  if (nodes.front() != src) return std::nullopt;
  return Path(std::move(nodes));
}

std::optional<UpdateInstance> random_reroute(const Graph& g, NodeId src,
                                             NodeId dst, Demand demand,
                                             util::Rng& rng,
                                             const RerouteOptions& opt) {
  const auto init = shortest_path(g, src, dst);
  if (!init || init->size() < 2) return std::nullopt;
  const std::size_t max_len = opt.max_len ? opt.max_len : g.node_count();

  for (int attempt = 0; attempt < opt.attempts; ++attempt) {
    // Loop-erased random walk, biased towards the destination: with
    // probability 1 - deviation follow the next hop of a shortest path,
    // otherwise take a random outgoing link.
    std::vector<NodeId> walk{src};
    std::unordered_map<NodeId, std::size_t> seen{{src, 0}};
    NodeId at = src;
    bool ok = false;
    for (std::size_t step = 0; step < max_len * 4; ++step) {
      NodeId next = kInvalidNode;
      if (!rng.chance(opt.deviation)) {
        const auto sp = shortest_path(g, at, dst);
        if (sp && sp->size() >= 2) next = (*sp)[1];
      }
      if (next == kInvalidNode) {
        const auto out = g.out_links(at);
        if (out.empty()) break;
        next = g.link(out[rng.index(out.size())]).dst;
      }
      const auto it = seen.find(next);
      if (it != seen.end()) {
        // Loop erasure: cut the walk back to the first visit.
        for (std::size_t i = it->second + 1; i < walk.size(); ++i) {
          seen.erase(walk[i]);
        }
        walk.resize(it->second + 1);
        at = next;
        continue;
      }
      walk.push_back(next);
      seen.emplace(next, walk.size() - 1);
      at = next;
      if (next == dst) {
        ok = true;
        break;
      }
      if (walk.size() > max_len) break;
    }
    if (!ok) continue;
    Path fin{std::vector<NodeId>(walk.begin(), walk.end())};
    if (fin == *init) continue;  // must actually reroute something
    return UpdateInstance::from_paths(g, *init, std::move(fin), demand);
  }
  return std::nullopt;
}

}  // namespace chronus::net
