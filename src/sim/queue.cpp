#include "sim/queue.hpp"

#include <algorithm>
#include <tuple>
#include <vector>

namespace chronus::sim {

QueueStats analyze_queue(const SimLink& link, double buffer_bytes,
                         SimTime t_begin, SimTime t_end) {
  QueueStats stats;
  // Value segments (from, to, offered_bps) covering [t_begin, t_end).
  std::vector<std::tuple<SimTime, SimTime, double>> segments;
  SimTime cursor = t_begin;
  double value = link.offered_bps.at(t_begin);
  for (const auto& [t, v] : link.offered_bps.breakpoints()) {
    if (t <= t_begin) {
      value = v;
      continue;
    }
    if (t >= t_end) break;
    segments.emplace_back(cursor, t, value);
    cursor = t;
    value = v;
  }
  segments.emplace_back(cursor, t_end, value);

  const double cap = link.capacity_bps;
  double queue = 0.0;  // bytes
  for (const auto& [from, to, offered] : segments) {
    SimTime at = from;
    double net_bps = offered - cap;  // queue growth rate (in bits/s)
    while (at < to) {
      const double span_s = static_cast<double>(to - at) / kSecond;
      if (net_bps > 0) {
        // Filling. Time until the buffer limit is hit, if within segment.
        const double to_full_s = (buffer_bytes - queue) * 8.0 / net_bps;
        if (queue < buffer_bytes && to_full_s > span_s) {
          queue += net_bps * span_s / 8.0;
          stats.backlogged_time += to - at;
          at = to;
        } else {
          const SimTime fill =
              queue < buffer_bytes
                  ? static_cast<SimTime>(to_full_s * kSecond)
                  : 0;
          stats.backlogged_time += std::min<SimTime>(to - at, fill);
          queue = buffer_bytes;
          const SimTime rest = to - at - fill;
          if (rest > 0) {
            // Buffer pegged: the excess rate is lost.
            stats.dropped_bytes +=
                net_bps * static_cast<double>(rest) / kSecond / 8.0;
            stats.dropping_time += rest;
            stats.backlogged_time += rest;
          }
          at = to;
        }
      } else if (queue > 0.0) {
        // Draining. Time until empty, if within segment.
        const double to_empty_s = queue * 8.0 / -net_bps;
        if (net_bps == 0.0 || to_empty_s > span_s) {
          queue += net_bps * span_s / 8.0;
          stats.backlogged_time += to - at;
          at = to;
        } else {
          const auto drain = static_cast<SimTime>(to_empty_s * kSecond);
          stats.backlogged_time += drain;
          queue = 0.0;
          at += std::max<SimTime>(drain, 1);
        }
      } else {
        at = to;  // idle or exactly at capacity with no backlog
      }
      stats.peak_queue_bytes = std::max(stats.peak_queue_bytes, queue);
    }
  }
  return stats;
}

}  // namespace chronus::sim
