// Control-plane fault injection (the Time4 failure modes the paper's
// executor assumes away): per-switch FlowMod drops, duplication, reordering
// beyond the per-switch FIFO, rule-install rejection, straggler multipliers
// on control latency, transient switch unresponsiveness windows, and
// per-switch clock drift on top of the controller's per-mod sync error.
//
// The injector owns its own RNG stream, so enabling faults never perturbs
// the controller's latency/sync-error draws: a faulted run and a clean run
// from the same seed sample identical control latencies, and a FaultModel
// with every knob at zero makes the injector a no-op that draws nothing —
// the property the bit-identical zero-fault tests rely on.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/sim_time.hpp"
#include "sim/switch.hpp"
#include "util/rng.hpp"

namespace chronus::sim {

struct FaultModel {
  /// Probability a FlowMod is lost in the control channel (never reaches
  /// the switch; the per-switch FIFO is unaffected, and a later barrier
  /// does NOT wait for it — the realistic silent-loss mode).
  double drop_rate = 0.0;
  /// Per-switch overrides of drop_rate.
  std::map<SwitchId, double> per_switch_drop;

  /// Probability a FlowMod is delivered twice (second copy applies at the
  /// same instant; exercises idempotency and log growth).
  double duplicate_rate = 0.0;

  /// Probability a FlowMod escapes the per-switch FIFO: it applies at its
  /// raw arrival instant even if an earlier-sent mod is still queued.
  double reorder_rate = 0.0;

  /// Probability the switch receives a FlowMod but refuses to install it
  /// (table full / OFPT_ERROR); the mod consumes its FIFO slot and the
  /// controller learns of the failure after the error round-trips.
  double reject_rate = 0.0;
  /// Deterministic variant for tests: reject the first N mods delivered to
  /// a switch, then behave normally. Consumed before reject_rate is drawn.
  std::map<SwitchId, int> reject_first_n;

  /// Probability a control message is a Dionysus-style straggler: its
  /// one-way latency is multiplied by straggler_multiplier.
  double straggler_rate = 0.0;
  double straggler_multiplier = 10.0;

  /// Probability a command finds the switch entering a transient
  /// unresponsiveness window (control connection flap / busy CPU): every
  /// message arriving inside the window is delayed to the window's end.
  double unresponsive_rate = 0.0;
  SimTime unresponsive_duration = 0;
  /// Deterministic outage windows for tests/benchmarks: messages arriving
  /// at switch `sw` during [from, until) are delayed to `until`.
  std::map<SwitchId, std::pair<SimTime, SimTime>> forced_outage;

  /// Per-switch constant clock offset (microseconds, drawn once per switch
  /// from N(0, stddev)) added to every timed execution instant on top of
  /// the controller's per-mod sync_error_stddev — models a switch whose
  /// Time4 clock has drifted between synchronization rounds.
  SimTime clock_drift_stddev = 0;

  /// True iff any knob is set; a disabled model injects nothing and the
  /// injector draws no randomness.
  bool enabled() const;

  /// Contract validation: every rate is a probability in [0,1], durations
  /// and multipliers are non-negative, reject_first_n counts are
  /// non-negative and forced_outage windows are well-ordered (from <
  /// until). Throws util::ContractViolation on a malformed model; called
  /// by the FaultInjector constructor so malformed models can no longer be
  /// silently accepted.
  void validate() const;
};

/// Counters of everything injected; snapshot/diff these to account for the
/// faults a single run experienced.
struct FaultStats {
  std::uint64_t mods_seen = 0;
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t rejections = 0;
  std::uint64_t stragglers = 0;
  std::uint64_t unresponsive_windows = 0;  ///< windows opened
  std::uint64_t unresponsive_delays = 0;   ///< messages delayed by a window

  std::uint64_t injected() const {
    return drops + duplicates + reorders + rejections + stragglers +
           unresponsive_delays;
  }
  /// Counter-wise difference (this - earlier snapshot).
  FaultStats operator-(const FaultStats& base) const;
  std::string to_string() const;
};

/// Stateful fault source attached to a Controller. All decisions are drawn
/// from a dedicated RNG stream seeded at construction, so runs are
/// reproducible and independent of the control-channel latency stream.
class FaultInjector {
 public:
  /// Per-FlowMod verdict.
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    bool reorder = false;
    bool reject = false;
    bool straggler = false;
  };

  explicit FaultInjector(FaultModel model, std::uint64_t seed = 0xFA017);

  bool enabled() const { return model_.enabled(); }
  const FaultModel& model() const { return model_; }
  const FaultStats& stats() const { return stats_; }

  /// Draws the fate of one FlowMod addressed to `sw`.
  Decision on_flow_mod(SwitchId sw);

  /// Applies unresponsiveness windows (forced and random) to a message
  /// arriving at `sw` at `arrival`; returns the possibly-delayed arrival.
  SimTime shape_arrival(SwitchId sw, SimTime arrival);

  /// Straggler treatment for non-FlowMod control legs (barrier request /
  /// reply): returns `latency`, multiplied if this leg straggles.
  SimTime shape_latency(SimTime latency);

  /// The switch's constant clock drift, drawn on first use.
  SimTime clock_drift(SwitchId sw);

 private:
  FaultModel model_;
  util::Rng rng_;
  FaultStats stats_;
  std::map<SwitchId, SimTime> drift_;
  std::map<SwitchId, SimTime> unresponsive_until_;
  std::map<SwitchId, int> rejects_left_;
};

}  // namespace chronus::sim
