#include "sim/resilient_executor.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace chronus::sim {

namespace {

/// Flushes a run's fallback-ladder counters (executor.* in DESIGN.md §11)
/// when the public run method returns, whichever exit path it takes. The
/// report outlives the tally (both are locals in the run method, report
/// declared first), so the destructor reads the final values.
struct RunTally {
  const UpdateRunReport* rep;

  ~RunTally() {
    if (obs::registry() == nullptr) return;
    obs::add("executor.runs");
    obs::add("executor.retries", static_cast<std::uint64_t>(rep->retries));
    obs::add("executor.recalls", static_cast<std::uint64_t>(rep->recalls));
    obs::add("executor.replans", static_cast<std::uint64_t>(rep->replans));
    obs::add("executor.barrier_rounds",
             static_cast<std::uint64_t>(rep->barrier_rounds));
    obs::add("executor.late_activations",
             static_cast<std::uint64_t>(rep->late_activations));
    if (rep->completed) obs::add("executor.completed");
    if (rep->rolled_back) obs::add("executor.rolled_back");
    switch (rep->fallback) {
      case UpdateRunReport::Fallback::kReplan:
        obs::add("executor.fallback_replan");
        break;
      case UpdateRunReport::Fallback::kTwoPhase:
        obs::add("executor.fallback_two_phase");
        break;
      case UpdateRunReport::Fallback::kRollback:
        obs::add("executor.fallback_rollback");
        break;
      case UpdateRunReport::Fallback::kNone:
        break;
    }
  }
};

/// The network state the controller believes in after a partial update:
/// the path new injections actually follow (updated switches forward with
/// their new rule, the rest with the old one), paired with the still-wanted
/// final path. Returns nullopt if the partial state loops or blackholes —
/// then no re-plan is possible and the ladder falls through.
std::optional<net::UpdateInstance> residual_instance(
    const net::UpdateInstance& inst, const std::set<net::NodeId>& updated) {
  std::vector<net::NodeId> cur;
  std::set<net::NodeId> seen;
  net::NodeId at = inst.source();
  const std::size_t limit = inst.graph().node_count() + 1;
  for (;;) {
    if (!seen.insert(at).second || cur.size() > limit) return std::nullopt;
    cur.push_back(at);
    if (at == inst.destination()) break;
    const auto next =
        updated.count(at) ? inst.new_next(at) : inst.old_next(at);
    if (!next) return std::nullopt;
    at = *next;
  }
  try {
    net::UpdateInstance r = net::UpdateInstance::from_paths(
        inst.graph(), net::Path(cur), inst.p_fin(), inst.demand());
    // Carry over redirect rules for switches that still await their update
    // (paper-style redirects live outside p_fin).
    for (const net::NodeId v : inst.switches_to_update()) {
      if (updated.count(v)) continue;
      if (const auto nn = inst.new_next(v)) r.set_new_next(v, *nn);
    }
    return r;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

FlowMod add_mod(const FlowEntry& entry) {
  FlowMod mod;
  mod.type = FlowModType::kAdd;
  mod.entry = entry;
  return mod;
}

}  // namespace

ResilientExecutor::ResilientExecutor(Controller& ctrl, RetryPolicy policy,
                                     std::uint64_t jitter_seed)
    : ctrl_(&ctrl), policy_(policy), jitter_(jitter_seed) {}

FaultStats ResilientExecutor::fault_snapshot() const {
  const FaultInjector* inj = ctrl_->fault_injector();
  return inj != nullptr ? inj->stats() : FaultStats{};
}

void ResilientExecutor::note(UpdateRunReport& rep, std::string msg) const {
  rep.events.push_back(std::move(msg));
}

SimTime ResilientExecutor::backoff(UpdateRunReport& rep, int attempt) {
  double b = static_cast<double>(policy_.base_backoff);
  for (int i = 0; i < attempt; ++i) b *= policy_.backoff_multiplier;
  b = std::min(b, static_cast<double>(policy_.max_backoff));
  SimTime wait = std::max<SimTime>(1, static_cast<SimTime>(b));
  if (policy_.jitter > 0) {
    wait += static_cast<SimTime>(jitter_.uniform(0.0, policy_.jitter * b));
  }
  ctrl_->advance_clock(ctrl_->clock() + wait);
  rep.backoff_waits.push_back(wait);
  return wait;
}

SimTime ResilientExecutor::drain_time(const net::UpdateInstance& inst,
                                      SimTime step_unit) const {
  if (policy_.drain_margin > 0) return policy_.drain_margin;
  const auto& g = inst.graph();
  const SimTime bound =
      static_cast<SimTime>(g.node_count() + 2) * g.max_delay();
  return bound * std::max<SimTime>(1, step_unit);
}

FlowEntry ResilientExecutor::new_rule_entry(const net::UpdateInstance& inst,
                                            const SimFlowSpec& spec,
                                            net::NodeId v) const {
  const auto next = inst.new_next(v);
  return make_forwarding_entry(
      spec, ctrl_->network().port_towards(static_cast<SwitchId>(v),
                                          static_cast<SwitchId>(*next)));
}

bool ResilientExecutor::rule_active(SwitchId sw, const FlowEntry& entry) const {
  const auto action = ctrl_->active_action(sw, entry.match, entry.priority);
  return action.has_value() && *action == entry.action;
}

bool ResilientExecutor::ensure_entry(UpdateRunReport& rep, SwitchId sw,
                                     const FlowEntry& entry) {
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      backoff(rep, attempt - 1);
      ++rep.retries;
    }
    ctrl_->issue_flow_mod(sw, add_mod(entry));
    ctrl_->advance_clock(ctrl_->barrier(sw));
    ++rep.barrier_rounds;
    if (rule_active(sw, entry)) return true;
  }
  return false;
}

bool ResilientExecutor::ensure_absent(UpdateRunReport& rep, SwitchId sw,
                                      const Match& match, int priority) {
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (!ctrl_->active_action(sw, match, priority).has_value()) return true;
    if (attempt > 0) {
      backoff(rep, attempt - 1);
      ++rep.retries;
    }
    FlowMod mod;
    mod.type = FlowModType::kDeleteStrict;
    mod.entry.priority = priority;
    mod.entry.match = match;
    ctrl_->issue_flow_mod(sw, mod);
    ctrl_->advance_clock(ctrl_->barrier(sw));
    ++rep.barrier_rounds;
  }
  return !ctrl_->active_action(sw, match, priority).has_value();
}

ResilientExecutor::TimedOutcome ResilientExecutor::execute_timed_once(
    const net::UpdateInstance& inst, const SimFlowSpec& spec,
    const timenet::UpdateSchedule& schedule, SimTime t0, SimTime step_unit,
    UpdateRunReport& rep) {
  TimedOutcome out;
  std::vector<PlannedMod> planned;
  SimTime finish = ctrl_->clock();

  // Phase A — dispatch every Time4 bundle ahead of t0 (the seed dispatch
  // order, so a fault-free run draws identically).
  for (const auto& [step, switches] : schedule.by_time()) {
    const SimTime exec_at = t0 + step.count() * step_unit;
    for (const net::NodeId v : switches) {
      PlannedMod p;
      p.v = v;
      p.step = step;
      p.entry = new_rule_entry(inst, spec, v);
      p.id = ctrl_->issue_timed_flow_mod(static_cast<SwitchId>(v),
                                         add_mod(p.entry), exec_at);
      const ModRecord& rec = ctrl_->record(p.id);
      if (rec.applied != kNever) finish = std::max(finish, rec.applied);
      planned.push_back(std::move(p));
    }
  }

  // Phase B — bundle-receipt confirmation. A bundle whose record shows a
  // fault kept it from being at its switch ahead of the execution instant
  // is recalled (bundle discard) and re-sent. Only fault-flagged records
  // are touched: a fault-free run never intervenes here.
  for (int round = 0;; ++round) {
    std::vector<PlannedMod*> broken;
    for (PlannedMod& p : planned) {
      const ModRecord& rec = ctrl_->record(p.id);
      const SimTime exec_at = t0 + p.step.count() * step_unit;
      const bool undelivered = rec.dropped || rec.cancelled;
      const bool late = rec.faulted() && !rec.rejected &&
                        rec.arrival != kNever && rec.arrival > exec_at;
      if (undelivered || late) broken.push_back(&p);
    }
    if (broken.empty()) break;
    if (round + 1 >= policy_.max_attempts) {
      std::ostringstream os;
      os << "bundle confirmation exhausted for " << broken.size()
         << " switch(es) after " << policy_.max_attempts
         << " sends; recalling the schedule";
      note(rep, os.str());
      for (PlannedMod& p : planned) {
        const ModRecord& rec = ctrl_->record(p.id);
        if (rec.applied != kNever && !rec.cancelled && !rec.rejected &&
            ctrl_->cancel_mod(p.id)) {
          ++rep.recalls;
        }
      }
      // Whatever could not be recalled fires regardless: wait it out and
      // take stock with a barrier sweep.
      SimTime horizon = ctrl_->clock();
      std::set<SwitchId> touched;
      for (const PlannedMod& p : planned) {
        const ModRecord& rec = ctrl_->record(p.id);
        if (rec.applied != kNever && !rec.cancelled) {
          horizon = std::max(horizon, rec.applied);
        }
        touched.insert(static_cast<SwitchId>(p.v));
      }
      ctrl_->advance_clock(horizon);
      for (const SwitchId sw : touched) {
        ctrl_->advance_clock(ctrl_->barrier(sw));
        ++rep.barrier_rounds;
      }
      for (const PlannedMod& p : planned) {
        if (rule_active(static_cast<SwitchId>(p.v), p.entry)) {
          out.updated.insert(p.v);
        }
      }
      out.finish = ctrl_->clock();
      return out;
    }
    for (PlannedMod* p : broken) {
      const ModRecord& rec = ctrl_->record(p->id);
      if (rec.applied != kNever && !rec.cancelled && !rec.rejected &&
          ctrl_->cancel_mod(p->id)) {
        ++rep.recalls;
      }
      ++rep.retries;
      const SimTime exec_at = t0 + p->step.count() * step_unit;
      p->id = ctrl_->issue_timed_flow_mod(static_cast<SwitchId>(p->v),
                                          add_mod(p->entry), exec_at);
      const ModRecord& fresh = ctrl_->record(p->id);
      if (fresh.applied != kNever) finish = std::max(finish, fresh.applied);
    }
  }

  // Phase C — barrier confirmation per step (Algorithm 5 lines 6-9), plus
  // a ledger check against the step deadline: missing or rejected rules
  // are retried with backoff; exhaustion pauses the schedule at the last
  // confirmed consistent step and hands the partial state to the ladder.
  std::map<timenet::TimePoint, std::vector<PlannedMod*>> steps;
  for (PlannedMod& p : planned) steps[p.step].push_back(&p);
  for (auto& [step, mods] : steps) {
    const SimTime deadline = t0 + (step.count() + 1) * step_unit;
    ctrl_->advance_clock(deadline);
    for (PlannedMod* p : mods) {
      finish = std::max(finish, ctrl_->barrier(static_cast<SwitchId>(p->v)));
      ++rep.barrier_rounds;
    }
    for (PlannedMod* p : mods) {
      const SwitchId sw = static_cast<SwitchId>(p->v);
      int attempts = 1;  // the timed send
      while (!rule_active(sw, p->entry)) {
        if (attempts >= policy_.max_attempts) {
          std::ostringstream os;
          os << "step " << step << ": switch " << p->v << " still missing its"
             << " rule after " << attempts << " sends — pausing schedule";
          note(rep, os.str());
          for (const PlannedMod& q : planned) {
            if (rule_active(static_cast<SwitchId>(q.v), q.entry)) {
              out.updated.insert(q.v);
            }
          }
          out.finish = ctrl_->clock();
          return out;
        }
        backoff(rep, attempts - 1);
        ++rep.retries;
        ++attempts;
        ctrl_->issue_flow_mod(sw, add_mod(p->entry));
        const SimTime done = ctrl_->barrier(sw);
        ++rep.barrier_rounds;
        ctrl_->advance_clock(done);
        finish = std::max(finish, done);
      }
      const SimTime act = ctrl_->activation_time(sw, p->entry);
      if (act != kNever && act > deadline) {
        ++rep.late_activations;
        rep.max_lateness = std::max(rep.max_lateness, act - deadline);
      }
      out.updated.insert(p->v);
    }
    ++rep.steps_confirmed;
  }
  ctrl_->advance_clock(finish);
  out.complete = true;
  out.finish = finish;
  return out;
}

void ResilientExecutor::finalize_applied(const net::UpdateInstance& inst,
                                         const SimFlowSpec& spec,
                                         UpdateRunReport& rep) const {
  for (const net::NodeId v : inst.switches_to_update()) {
    const FlowEntry e = new_rule_entry(inst, spec, v);
    const SimTime act =
        ctrl_->activation_time(static_cast<SwitchId>(v), e);
    if (act != kNever) rep.result.applied[static_cast<SwitchId>(v)] = act;
  }
}

void ResilientExecutor::verify_timed_run(const net::UpdateInstance& inst,
                                         SimTime step_unit,
                                         UpdateRunReport& rep) const {
  std::map<net::NodeId, std::int64_t> acts;
  for (const auto& [sw, t] : rep.result.applied) acts[sw] = t;
  const timenet::UpdateSchedule achieved =
      timenet::schedule_from_activations(acts, step_unit);
  rep.verification = timenet::verify_transition(inst, achieved);
  rep.verified = true;
}

void ResilientExecutor::recover(const net::UpdateInstance& inst,
                                const SimFlowSpec& spec, SimTime step_unit,
                                std::set<net::NodeId> updated,
                                UpdateRunReport& rep) {
  while (rep.replans < policy_.max_replans) {
    const auto residual = residual_instance(inst, updated);
    if (!residual) {
      note(rep, "partial state loops or blackholes — re-plan impossible");
      break;
    }
    if (residual->switches_to_update().empty()) {
      note(rep, "partial state already equals the target — nothing to re-plan");
      rep.completed = true;
      rep.result.finish = ctrl_->clock();
      finalize_applied(inst, spec, rep);
      verify_timed_run(inst, step_unit, rep);
      return;
    }
    const core::ScheduleResult plan = core::greedy_schedule(*residual);
    if (plan.status == core::ScheduleStatus::kInfeasible) {
      note(rep, "suffix re-plan infeasible: " + plan.message);
      break;
    }
    ++rep.replans;
    if (rep.fallback == UpdateRunReport::Fallback::kNone) {
      rep.fallback = UpdateRunReport::Fallback::kReplan;
    }
    {
      std::ostringstream os;
      os << "re-planned " << residual->switches_to_update().size()
         << " pending switch(es) from the applied state (re-plan #"
         << rep.replans << ")";
      note(rep, os.str());
    }
    // Let in-flight traffic of the aborted attempt drain before the new
    // plan's premise (initial config == current config) holds.
    ctrl_->advance_clock(ctrl_->clock() + drain_time(inst, step_unit));
    const SimTime t0 = ctrl_->clock() + policy_.dispatch_lead;
    const TimedOutcome out =
        execute_timed_once(*residual, spec, plan.schedule, t0, step_unit, rep);
    updated.insert(out.updated.begin(), out.updated.end());
    if (out.complete) {
      rep.completed = true;
      rep.result.finish = out.finish;
      finalize_applied(inst, spec, rep);
      verify_timed_run(inst, step_unit, rep);
      return;
    }
  }
  if (policy_.allow_two_phase_fallback &&
      two_phase_overlay(inst, spec, step_unit, updated, rep)) {
    rep.fallback = UpdateRunReport::Fallback::kTwoPhase;
    rep.completed = true;
    return;
  }
  rollback(inst, spec, step_unit, updated, rep);
}

bool ResilientExecutor::two_phase_overlay(const net::UpdateInstance& inst,
                                          const SimFlowSpec& spec,
                                          SimTime step_unit,
                                          const std::set<net::NodeId>& updated,
                                          UpdateRunReport& rep) {
  Network& net = ctrl_->network();
  const net::Path& fin = inst.p_fin();
  note(rep, "falling back to a two-phase (versioned) overlay of p_fin");

  // Phase 1 — install the versioned generation above the tag-agnostic
  // rules (tagged packets prefer it; untagged in-flight traffic is blind
  // to it).
  std::vector<std::pair<SwitchId, FlowEntry>> overlay;
  for (std::size_t i = 1; i + 1 < fin.size(); ++i) {
    overlay.emplace_back(
        static_cast<SwitchId>(fin[i]),
        make_forwarding_entry(spec, net.port_towards(fin[i], fin[i + 1]),
                              kNewVersion, /*priority_delta=*/5));
  }
  overlay.emplace_back(
      static_cast<SwitchId>(fin.back()),
      make_forwarding_entry(spec, kHostPort, kNewVersion, 5));

  const auto undo_overlay = [&](std::size_t upto) {
    for (std::size_t k = 0; k < upto; ++k) {
      ensure_absent(rep, overlay[k].first, overlay[k].second.match,
                    overlay[k].second.priority);
    }
  };
  for (std::size_t k = 0; k < overlay.size(); ++k) {
    if (!ensure_entry(rep, overlay[k].first, overlay[k].second)) {
      note(rep, "overlay install unconfirmed — undoing two-phase fallback");
      undo_overlay(k);
      return false;
    }
  }

  // Phase 2 — flip the ingress onto the new version.
  const FlowEntry stamp = make_stamping_entry(
      spec, kNewVersion, net.port_towards(fin.front(), fin[1]));
  const SwitchId ingress = static_cast<SwitchId>(fin.front());
  if (!ensure_entry(rep, ingress, stamp)) {
    note(rep, "ingress flip unconfirmed — undoing two-phase fallback");
    undo_overlay(overlay.size());
    return false;
  }
  rep.result.flip_time = ctrl_->activation_time(ingress, stamp);
  rep.result.applied[ingress] = rep.result.flip_time;
  for (const auto& [sw, e] : overlay) {
    rep.result.applied[sw] = ctrl_->activation_time(sw, e);
  }

  // Phase 3 — drain the untagged generation, then garbage-collect its
  // tag-agnostic rules (best-effort; leftovers are shadowed anyway).
  ctrl_->advance_clock(rep.result.flip_time + drain_time(inst, step_unit));
  Match old_match;
  old_match.dst_prefix = spec.dst_prefix;
  std::set<net::NodeId> holders(inst.p_init().begin(), inst.p_init().end());
  for (const net::NodeId v : inst.switches_to_update()) holders.insert(v);
  for (const net::NodeId v : holders) {
    if (!ensure_absent(rep, static_cast<SwitchId>(v), old_match,
                       spec.rule_priority)) {
      note(rep, "tag-agnostic rule on switch " + std::to_string(v) +
                    " not collected (shadowed, left behind)");
    }
  }
  rep.result.finish = ctrl_->clock();

  // Consistency monitor: the timed prefix (old -> partial state), then the
  // per-packet flip from that partial state onto p_fin.
  rep.verification = timenet::TransitionReport{};
  if (!updated.empty()) {
    std::map<net::NodeId, std::int64_t> acts;
    for (const net::NodeId v : updated) {
      const SimTime act = ctrl_->activation_time(
          static_cast<SwitchId>(v), new_rule_entry(inst, spec, v));
      if (act != kNever) acts[v] = act;
    }
    rep.verification.merge(timenet::verify_transition(
        inst, timenet::schedule_from_activations(acts, step_unit)));
  }
  const auto residual = residual_instance(inst, updated);
  const net::UpdateInstance& pre_flip = residual ? *residual : inst;
  timenet::UpdateSchedule empty;
  timenet::FlowTransition ft;
  ft.instance = &pre_flip;
  ft.schedule = &empty;
  ft.per_packet_flip = timenet::TimePoint{0};
  rep.verification.merge(timenet::verify_transitions({ft}, {}));
  rep.verified = true;
  return true;
}

void ResilientExecutor::rollback(const net::UpdateInstance& inst,
                                 const SimFlowSpec& spec, SimTime step_unit,
                                 const std::set<net::NodeId>& updated,
                                 UpdateRunReport& rep) {
  note(rep, "rolling back to the initial configuration");
  rep.fallback = UpdateRunReport::Fallback::kRollback;
  rep.rolled_back = true;
  Network& net = ctrl_->network();

  // Forward activations must be captured before the revert overwrites the
  // ledger's notion of "currently active since".
  std::map<net::NodeId, std::int64_t> forward_acts;
  for (const net::NodeId v : updated) {
    const SimTime act = ctrl_->activation_time(static_cast<SwitchId>(v),
                                               new_rule_entry(inst, spec, v));
    if (act != kNever) forward_acts[v] = act;
  }
  const auto pre_rollback = residual_instance(inst, updated);

  // R1 — restore old rules, source-side first, so new injections leave the
  // half-updated tail as early as possible.
  bool ok = true;
  std::vector<net::NodeId> order(updated.begin(), updated.end());
  const net::Path& init = inst.p_init();
  std::stable_sort(order.begin(), order.end(),
                   [&](net::NodeId a, net::NodeId b) {
                     return init.index_of(a) < init.index_of(b);
                   });
  std::map<net::NodeId, std::int64_t> revert_acts;
  std::vector<net::NodeId> orphans;
  for (const net::NodeId v : order) {
    if (const auto on = inst.old_next(v)) {
      const FlowEntry e =
          make_forwarding_entry(spec, net.port_towards(v, *on));
      if (ensure_entry(rep, static_cast<SwitchId>(v), e)) {
        revert_acts[v] = ctrl_->activation_time(static_cast<SwitchId>(v), e);
      } else {
        ok = false;
        note(rep, "rollback could not restore switch " + std::to_string(v));
      }
    } else {
      orphans.push_back(v);
    }
  }

  // R2 — drain, then delete new rules with no old-configuration owner.
  ctrl_->advance_clock(ctrl_->clock() + drain_time(inst, step_unit));
  for (const net::NodeId v : orphans) {
    const FlowEntry e = new_rule_entry(inst, spec, v);
    if (!ensure_absent(rep, static_cast<SwitchId>(v), e.match, e.priority)) {
      ok = false;
      note(rep, "rollback could not delete orphan rule on switch " +
                    std::to_string(v));
    }
  }
  rep.rollback_clean = ok;
  rep.completed = false;
  rep.result.finish = ctrl_->clock();
  rep.result.note += rep.result.note.empty() ? "rolled back" : "; rolled back";

  // Consistency monitor: the forward partial transition, then the revert
  // from the partial state back onto p_init.
  rep.verification = timenet::TransitionReport{};
  if (!forward_acts.empty()) {
    rep.verification.merge(timenet::verify_transition(
        inst, timenet::schedule_from_activations(forward_acts, step_unit)));
  }
  if (pre_rollback && !revert_acts.empty()) {
    try {
      const net::UpdateInstance revert = net::UpdateInstance::from_paths(
          inst.graph(), pre_rollback->p_init(), inst.p_init(),
          inst.demand());
      rep.verification.merge(timenet::verify_transition(
          revert, timenet::schedule_from_activations(revert_acts, step_unit)));
    } catch (const std::exception&) {
      note(rep, "revert transition not verifiable (degenerate paths)");
    }
  }
  rep.verified = true;
}

UpdateRunReport ResilientExecutor::run_timed(
    const net::UpdateInstance& inst, const SimFlowSpec& spec,
    const timenet::UpdateSchedule& schedule, SimTime t0, SimTime step_unit) {
  CHRONUS_SPAN("executor.run_timed");
  UpdateRunReport rep;
  const RunTally tally{&rep};
  const FaultStats before = fault_snapshot();
  rep.result.start = ctrl_->clock();
  const TimedOutcome out =
      execute_timed_once(inst, spec, schedule, t0, step_unit, rep);
  if (out.complete) {
    rep.completed = true;
    rep.result.finish = out.finish;
    finalize_applied(inst, spec, rep);
    verify_timed_run(inst, step_unit, rep);
  } else {
    recover(inst, spec, step_unit, out.updated, rep);
    rep.result.finish = std::max(rep.result.finish, ctrl_->clock());
  }
  rep.faults = fault_snapshot() - before;
  return rep;
}

UpdateRunReport ResilientExecutor::run_chronus(const net::UpdateInstance& inst,
                                               const SimFlowSpec& spec,
                                               SimTime t0, SimTime step_unit,
                                               const core::GreedyOptions& gopts) {
  const core::ScheduleResult plan = core::greedy_schedule(inst, gopts);
  if (plan.status == core::ScheduleStatus::kInfeasible) {
    obs::add("executor.plan_infeasible");
    UpdateRunReport rep;
    rep.result.start = ctrl_->clock();
    rep.result.plan_status = plan.status;
    rep.result.note = "greedy scheduler: " + plan.message;
    rep.result.finish = ctrl_->clock();
    return rep;
  }
  UpdateRunReport rep = run_timed(inst, spec, plan.schedule, t0, step_unit);
  rep.result.plan_status = plan.status;
  return rep;
}

UpdateRunReport ResilientExecutor::run_or(const net::UpdateInstance& inst,
                                          const SimFlowSpec& spec, SimTime t0,
                                          SimTime step_unit,
                                          const opt::OrderOptions& plan_opts) {
  CHRONUS_SPAN("executor.run_or");
  UpdateRunReport rep;
  const RunTally tally{&rep};
  const FaultStats before = fault_snapshot();
  ctrl_->advance_clock(t0);
  rep.result.start = ctrl_->clock();

  const opt::OrderResult plan = opt::solve_order_replacement(inst, plan_opts);
  if (!plan.feasible) {
    rep.result.plan_status = core::ScheduleStatus::kInfeasible;
    rep.result.note = "OR planner: " + plan.message;
    rep.result.finish = ctrl_->clock();
    rep.faults = fault_snapshot() - before;
    return rep;
  }

  for (const auto& round : plan.rounds) {
    std::vector<std::pair<net::NodeId, FlowEntry>> sent;
    for (const net::NodeId v : round) {
      const FlowEntry e = new_rule_entry(inst, spec, v);
      rep.result.applied[static_cast<SwitchId>(v)] =
          ctrl_->send_flow_mod(static_cast<SwitchId>(v), add_mod(e));
      sent.emplace_back(v, e);
    }
    SimTime round_done = ctrl_->clock();
    for (const net::NodeId v : round) {
      round_done =
          std::max(round_done, ctrl_->barrier(static_cast<SwitchId>(v)));
      ++rep.barrier_rounds;
    }
    ctrl_->advance_clock(round_done);
    // Round confirmation: the seed executor trusts the barrier; the ledger
    // also catches mods the barrier cannot see (drops).
    for (const auto& [v, e] : sent) {
      if (rule_active(static_cast<SwitchId>(v), e)) continue;
      if (!ensure_entry(rep, static_cast<SwitchId>(v), e)) {
        note(rep, "round confirmation failed on switch " + std::to_string(v) +
                      " — entering recovery");
        std::set<net::NodeId> updated;
        for (const net::NodeId u : inst.switches_to_update()) {
          if (rule_active(static_cast<SwitchId>(u),
                          new_rule_entry(inst, spec, u))) {
            updated.insert(u);
          }
        }
        recover(inst, spec, step_unit, updated, rep);
        rep.result.finish = std::max(rep.result.finish, ctrl_->clock());
        rep.faults = fault_snapshot() - before;
        return rep;
      }
      rep.result.applied[static_cast<SwitchId>(v)] =
          ctrl_->activation_time(static_cast<SwitchId>(v), e);
    }
  }
  rep.result.finish = ctrl_->clock();
  rep.completed = true;
  finalize_applied(inst, spec, rep);
  verify_timed_run(inst, step_unit, rep);
  rep.faults = fault_snapshot() - before;
  return rep;
}

UpdateRunReport ResilientExecutor::run_two_phase(const net::UpdateInstance& inst,
                                                 const SimFlowSpec& spec,
                                                 SimTime t0,
                                                 SimTime drain_margin,
                                                 [[maybe_unused]] SimTime step_unit) {
  CHRONUS_SPAN("executor.run_two_phase");
  UpdateRunReport rep;
  const RunTally tally{&rep};
  const FaultStats before = fault_snapshot();
  ctrl_->advance_clock(t0);
  rep.result.start = ctrl_->clock();
  Network& net = ctrl_->network();
  const net::Path& fin = inst.p_fin();

  const auto fail_and_undo = [&](const std::vector<std::pair<SwitchId, FlowEntry>>&
                                     installed,
                                 const char* why) {
    note(rep, std::string(why) + " — removing the new generation");
    bool clean = true;
    for (const auto& [sw, e] : installed) {
      clean = ensure_absent(rep, sw, e.match, e.priority) && clean;
    }
    rep.rolled_back = true;
    rep.rollback_clean = clean;
    rep.fallback = UpdateRunReport::Fallback::kRollback;
    rep.completed = false;
    rep.result.finish = ctrl_->clock();
    rep.result.note = "two-phase aborted: old generation stays active";
    rep.verification =
        timenet::verify_transition(inst, timenet::UpdateSchedule{});
    rep.verified = true;
    rep.faults = fault_snapshot() - before;
    return rep;
  };

  // Phase 1 (seed order): install the new generation alongside the old.
  std::vector<std::pair<SwitchId, FlowEntry>> gen;
  SimTime installed = ctrl_->clock();
  for (std::size_t i = 0; i + 1 < fin.size(); ++i) {
    if (i == 0) continue;  // the ingress forwards via its stamping rule
    const FlowEntry e = make_forwarding_entry(
        spec, net.port_towards(fin[i], fin[i + 1]), kNewVersion);
    rep.result.applied[static_cast<SwitchId>(fin[i])] =
        ctrl_->send_flow_mod(static_cast<SwitchId>(fin[i]), add_mod(e));
    gen.emplace_back(static_cast<SwitchId>(fin[i]), e);
  }
  {
    const FlowEntry e = make_forwarding_entry(spec, kHostPort, kNewVersion);
    rep.result.applied[static_cast<SwitchId>(fin.back())] =
        ctrl_->send_flow_mod(static_cast<SwitchId>(fin.back()), add_mod(e));
    gen.emplace_back(static_cast<SwitchId>(fin.back()), e);
  }
  for (std::size_t i = 1; i < fin.size(); ++i) {
    installed =
        std::max(installed, ctrl_->barrier(static_cast<SwitchId>(fin[i])));
    ++rep.barrier_rounds;
  }
  ctrl_->advance_clock(installed);
  for (const auto& [sw, e] : gen) {
    if (rule_active(sw, e)) continue;
    if (!ensure_entry(rep, sw, e)) {
      return fail_and_undo(gen, "new-generation install unconfirmed");
    }
    rep.result.applied[sw] = ctrl_->activation_time(sw, e);
  }

  // Phase 2: flip the ingress stamping rule.
  const FlowEntry stamp = make_stamping_entry(
      spec, kNewVersion, net.port_towards(fin.front(), fin[1]));
  const SwitchId ingress = static_cast<SwitchId>(fin.front());
  rep.result.flip_time = ctrl_->send_flow_mod(ingress, add_mod(stamp));
  rep.result.applied[ingress] = rep.result.flip_time;
  ctrl_->advance_clock(ctrl_->barrier(ingress));
  ++rep.barrier_rounds;
  if (!rule_active(ingress, stamp)) {
    if (!ensure_entry(rep, ingress, stamp)) {
      // Un-flip is unnecessary: the old stamping rule was never replaced.
      return fail_and_undo(gen, "ingress flip unconfirmed");
    }
    rep.result.flip_time = ctrl_->activation_time(ingress, stamp);
    rep.result.applied[ingress] = rep.result.flip_time;
  }

  // Phase 3: drain, then garbage-collect the old generation.
  ctrl_->advance_clock(rep.result.flip_time + drain_margin);
  const net::Path& init = inst.p_init();
  SimTime cleaned = ctrl_->clock();
  FlowMod del;
  del.type = FlowModType::kDeleteStrict;
  del.entry = make_forwarding_entry(spec, kNoPort, kOldVersion);
  for (std::size_t i = 1; i < init.size(); ++i) {
    ctrl_->send_flow_mod(static_cast<SwitchId>(init[i]), del);
    cleaned =
        std::max(cleaned, ctrl_->barrier(static_cast<SwitchId>(init[i])));
    ++rep.barrier_rounds;
  }
  ctrl_->advance_clock(cleaned);
  for (std::size_t i = 1; i < init.size(); ++i) {
    if (!ensure_absent(rep, static_cast<SwitchId>(init[i]), del.entry.match,
                       del.entry.priority)) {
      note(rep, "old-generation rule on switch " + std::to_string(init[i]) +
                    " not collected (shadowed, left behind)");
    }
  }
  rep.result.finish = ctrl_->clock();
  rep.completed = true;

  // Consistency monitor: per-packet semantics, anchored at the flip.
  timenet::UpdateSchedule empty;
  timenet::FlowTransition ft;
  ft.instance = &inst;
  ft.schedule = &empty;
  ft.per_packet_flip = timenet::TimePoint{0};
  rep.verification = timenet::verify_transitions({ft}, {});
  rep.verified = true;
  rep.faults = fault_snapshot() - before;
  return rep;
}

}  // namespace chronus::sim
