#include "sim/switch.hpp"

#include <stdexcept>

namespace chronus::sim {

namespace {
void apply_to_table(FlowTable& table, const FlowMod& mod) {
  switch (mod.type) {
    case FlowModType::kAdd:
      table.add(mod.entry);
      break;
    case FlowModType::kModifyStrict:
      table.modify(mod.entry.match, mod.entry.priority, mod.entry.action);
      break;
    case FlowModType::kDeleteStrict:
      table.remove(mod.entry.match, mod.entry.priority);
      break;
  }
}
}  // namespace

void SimSwitch::apply(SimTime at, const FlowMod& mod) {
  if (!log_.empty() && at < log_.back().at) {
    throw std::logic_error("FlowMod applied out of order");
  }
  log_.push_back(LogEntry{at, mod});
  apply_to_table(table_, mod);
  peak_size_ = std::max(peak_size_, table_.size());
}

void SimSwitch::reject(SimTime at, const FlowMod& mod) {
  rejections_.push_back(LogEntry{at, mod});
}

FlowTable SimSwitch::table_at(SimTime t) const {
  FlowTable table;
  for (const LogEntry& e : log_) {
    if (e.at > t) break;
    apply_to_table(table, e.mod);
  }
  return table;
}

std::vector<std::pair<SimTime, FlowTable>> SimSwitch::snapshots() const {
  std::vector<std::pair<SimTime, FlowTable>> out;
  FlowTable table;
  for (const LogEntry& e : log_) {
    apply_to_table(table, e.mod);
    if (!out.empty() && out.back().first == e.at) {
      out.back().second = table;
    } else {
      out.emplace_back(e.at, table);
    }
  }
  return out;
}

std::vector<std::pair<SimTime, std::size_t>> SimSwitch::size_history() const {
  std::vector<std::pair<SimTime, std::size_t>> out;
  FlowTable table;
  for (const LogEntry& e : log_) {
    apply_to_table(table, e.mod);
    if (out.empty() || out.back().first != e.at) {
      out.emplace_back(e.at, table.size());
    } else {
      out.back().second = table.size();
    }
  }
  return out;
}

}  // namespace chronus::sim
