#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/contracts.hpp"

namespace chronus::sim {

bool FaultModel::enabled() const {
  if (drop_rate > 0 || duplicate_rate > 0 || reorder_rate > 0 ||
      reject_rate > 0 || straggler_rate > 0 || unresponsive_rate > 0 ||
      clock_drift_stddev > 0) {
    return true;
  }
  for (const auto& [_, p] : per_switch_drop) {
    if (p > 0) return true;
  }
  for (const auto& [_, n] : reject_first_n) {
    if (n > 0) return true;
  }
  return !forced_outage.empty();
}

void FaultModel::validate() const {
  const auto prob = [](double p) { return p >= 0.0 && p <= 1.0; };
  CHRONUS_EXPECTS(prob(drop_rate) && prob(duplicate_rate) &&
                      prob(reorder_rate) && prob(reject_rate) &&
                      prob(straggler_rate) && prob(unresponsive_rate),
                  "fault rates are probabilities in [0,1]");
  for (const auto& [sw, p] : per_switch_drop) {
    CHRONUS_EXPECTS(prob(p), "per_switch_drop[" + std::to_string(sw) +
                                 "] is a probability in [0,1]");
  }
  for (const auto& [sw, n] : reject_first_n) {
    CHRONUS_EXPECTS(n >= 0, "reject_first_n[" + std::to_string(sw) +
                                "] must be non-negative");
  }
  CHRONUS_EXPECTS(straggler_multiplier >= 0.0,
                  "straggler_multiplier must be non-negative");
  CHRONUS_EXPECTS(unresponsive_duration >= 0,
                  "unresponsive_duration must be non-negative");
  CHRONUS_EXPECTS(clock_drift_stddev >= 0,
                  "clock_drift_stddev must be non-negative");
  for (const auto& [sw, window] : forced_outage) {
    CHRONUS_EXPECTS(window.first >= 0 && window.first < window.second,
                    "forced_outage[" + std::to_string(sw) +
                        "] window must satisfy 0 <= from < until");
  }
}

FaultStats FaultStats::operator-(const FaultStats& base) const {
  FaultStats d;
  d.mods_seen = mods_seen - base.mods_seen;
  d.drops = drops - base.drops;
  d.duplicates = duplicates - base.duplicates;
  d.reorders = reorders - base.reorders;
  d.rejections = rejections - base.rejections;
  d.stragglers = stragglers - base.stragglers;
  d.unresponsive_windows = unresponsive_windows - base.unresponsive_windows;
  d.unresponsive_delays = unresponsive_delays - base.unresponsive_delays;
  return d;
}

std::string FaultStats::to_string() const {
  std::ostringstream os;
  os << mods_seen << " mods: " << drops << " dropped, " << rejections
     << " rejected, " << duplicates << " duplicated, " << reorders
     << " reordered, " << stragglers << " stragglers, "
     << unresponsive_delays << " delayed by " << unresponsive_windows
     << " outage windows";
  return os.str();
}

FaultInjector::FaultInjector(FaultModel model, std::uint64_t seed)
    : model_(std::move(model)), rng_(seed) {
  model_.validate();
  rejects_left_ = model_.reject_first_n;
}

FaultInjector::Decision FaultInjector::on_flow_mod(SwitchId sw) {
  Decision d;
  if (!enabled()) return d;
  ++stats_.mods_seen;

  double drop_p = model_.drop_rate;
  if (const auto it = model_.per_switch_drop.find(sw);
      it != model_.per_switch_drop.end()) {
    drop_p = it->second;
  }
  if (drop_p > 0 && rng_.chance(drop_p)) {
    d.drop = true;
    ++stats_.drops;
    return d;  // a lost mod can suffer no further fate
  }

  if (const auto it = rejects_left_.find(sw);
      it != rejects_left_.end() && it->second > 0) {
    --it->second;
    d.reject = true;
    ++stats_.rejections;
  } else if (model_.reject_rate > 0 && rng_.chance(model_.reject_rate)) {
    d.reject = true;
    ++stats_.rejections;
  }
  if (model_.duplicate_rate > 0 && rng_.chance(model_.duplicate_rate)) {
    d.duplicate = true;
    ++stats_.duplicates;
  }
  if (model_.reorder_rate > 0 && rng_.chance(model_.reorder_rate)) {
    d.reorder = true;
    ++stats_.reorders;
  }
  if (model_.straggler_rate > 0 && rng_.chance(model_.straggler_rate)) {
    d.straggler = true;
    ++stats_.stragglers;
  }
  return d;
}

SimTime FaultInjector::shape_arrival(SwitchId sw, SimTime arrival) {
  if (!enabled()) return arrival;
  SimTime shaped = arrival;
  if (const auto it = model_.forced_outage.find(sw);
      it != model_.forced_outage.end()) {
    const auto& [from, until] = it->second;
    if (arrival >= from && arrival < until) shaped = until;
  }
  if (model_.unresponsive_rate > 0 && model_.unresponsive_duration > 0) {
    SimTime& until = unresponsive_until_[sw];
    if (arrival < until) {
      shaped = std::max(shaped, until);
    } else if (rng_.chance(model_.unresponsive_rate)) {
      until = arrival + model_.unresponsive_duration;
      ++stats_.unresponsive_windows;
    }
  }
  if (shaped != arrival) ++stats_.unresponsive_delays;
  return shaped;
}

SimTime FaultInjector::shape_latency(SimTime latency) {
  if (!enabled() || model_.straggler_rate <= 0) return latency;
  if (!rng_.chance(model_.straggler_rate)) return latency;
  ++stats_.stragglers;
  const double stretched =
      static_cast<double>(latency) * model_.straggler_multiplier;
  return std::max<SimTime>(latency, static_cast<SimTime>(stretched));
}

SimTime FaultInjector::clock_drift(SwitchId sw) {
  if (model_.clock_drift_stddev <= 0) return 0;
  const auto it = drift_.find(sw);
  if (it != drift_.end()) return it->second;
  const SimTime drift = static_cast<SimTime>(std::llround(
      rng_.normal(0.0, static_cast<double>(model_.clock_drift_stddev))));
  drift_[sw] = drift;
  return drift;
}

}  // namespace chronus::sim
