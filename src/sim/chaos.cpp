#include "sim/chaos.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace chronus::sim {

namespace {

bool is_probability(double p) { return p >= 0.0 && p <= 1.0; }

void merge_window(FaultModel& m, SwitchId sw, SimTime from, SimTime until) {
  if (until <= from) return;
  const auto it = m.forced_outage.find(sw);
  if (it == m.forced_outage.end()) {
    m.forced_outage.emplace(sw, std::make_pair(from, until));
  } else {
    // One window per switch in FaultModel: overlapping sources merge to
    // their hull (conservative — the switch is at least this unreachable).
    it->second.first = std::min(it->second.first, from);
    it->second.second = std::max(it->second.second, until);
  }
}

/// Translates a service-time window [from, until) into the private
/// simulation base (admission instant = 0), clipped to [0, span).
void merge_service_window(FaultModel& m, SwitchId sw, SimTime from,
                          SimTime until, SimTime now, SimTime span) {
  const SimTime lo = std::max<SimTime>(from - now, 0);
  const SimTime hi = std::min<SimTime>(until - now, span);
  merge_window(m, sw, lo, hi);
}

}  // namespace

bool ChaosPhase::quiet() const {
  return drop_rate == 0.0 && duplicate_rate == 0.0 && reorder_rate == 0.0 &&
         reject_rate == 0.0 && straggler_rate == 0.0 &&
         unresponsive_rate == 0.0 && skew_begin == 0 && skew_end == 0 &&
         arrival_surge == 1.0 && flaps.empty() && outages.empty();
}

SimTime ChaosScenario::horizon() const {
  SimTime h = 0;
  for (const ChaosPhase& p : phases) h = std::max(h, p.until);
  return h;
}

bool ChaosScenario::quiet() const {
  if (base.enabled()) return false;
  return std::all_of(phases.begin(), phases.end(),
                     [](const ChaosPhase& p) { return p.quiet(); });
}

void ChaosScenario::validate() const {
  base.validate();
  for (const ChaosPhase& p : phases) {
    CHRONUS_EXPECTS(p.from >= 0 && p.from < p.until,
                    "phase '" + p.name + "': window must satisfy 0 <= from < until");
    CHRONUS_EXPECTS(is_probability(p.drop_rate) &&
                        is_probability(p.duplicate_rate) &&
                        is_probability(p.reorder_rate) &&
                        is_probability(p.reject_rate) &&
                        is_probability(p.straggler_rate) &&
                        is_probability(p.unresponsive_rate),
                    "phase '" + p.name + "': rates are probabilities in [0,1]");
    CHRONUS_EXPECTS(p.straggler_multiplier >= 0.0 &&
                        p.unresponsive_duration >= 0,
                    "phase '" + p.name + "': multipliers/durations are non-negative");
    CHRONUS_EXPECTS(p.skew_begin >= 0 && p.skew_end >= 0,
                    "phase '" + p.name + "': skew stddevs are non-negative");
    CHRONUS_EXPECTS(p.arrival_surge > 0.0,
                    "phase '" + p.name + "': arrival_surge must be positive");
    for (const FlapSpec& fl : p.flaps) {
      CHRONUS_EXPECTS(fl.period > 0 && fl.down > 0 && fl.down <= fl.period,
                      "phase '" + p.name +
                          "': flap needs period > 0 and 0 < down <= period");
      CHRONUS_EXPECTS(fl.offset >= 0,
                      "phase '" + p.name + "': flap offset is non-negative");
    }
    for (const OutageSpec& o : p.outages) {
      CHRONUS_EXPECTS(o.from >= 0 && o.from < o.until,
                      "phase '" + p.name + "': outage window must be well-ordered");
    }
  }
}

double ChaosScenario::arrival_multiplier_at(SimTime t) const {
  double mult = 1.0;
  for (const ChaosPhase& p : phases) {
    if (p.active_at(t)) mult *= p.arrival_surge;
  }
  return mult;
}

void ChaosScenario::apply_at(SimTime now, SimTime span, FaultModel& m) const {
  // The always-on base floor first: rates max-merge like a permanently
  // active phase; its outage windows are service-time windows and get the
  // same translation into the private-simulation base as phase outages.
  m.drop_rate = std::max(m.drop_rate, base.drop_rate);
  m.duplicate_rate = std::max(m.duplicate_rate, base.duplicate_rate);
  m.reorder_rate = std::max(m.reorder_rate, base.reorder_rate);
  m.reject_rate = std::max(m.reject_rate, base.reject_rate);
  m.straggler_rate = std::max(m.straggler_rate, base.straggler_rate);
  if (base.straggler_rate > 0.0) {
    m.straggler_multiplier =
        std::max(m.straggler_multiplier, base.straggler_multiplier);
  }
  m.unresponsive_rate = std::max(m.unresponsive_rate, base.unresponsive_rate);
  m.unresponsive_duration =
      std::max(m.unresponsive_duration, base.unresponsive_duration);
  m.clock_drift_stddev =
      std::max(m.clock_drift_stddev, base.clock_drift_stddev);
  for (const auto& [sw, p] : base.per_switch_drop) {
    double& slot = m.per_switch_drop[sw];
    slot = std::max(slot, p);
  }
  for (const auto& [sw, n] : base.reject_first_n) {
    int& slot = m.reject_first_n[sw];
    slot = std::max(slot, n);
  }
  for (const auto& [sw, window] : base.forced_outage) {
    if (window.second > now && window.first < now + span) {
      merge_service_window(m, sw, window.first, window.second, now, span);
    }
  }

  for (const ChaosPhase& p : phases) {
    if (p.active_at(now)) {
      m.drop_rate = std::max(m.drop_rate, p.drop_rate);
      m.duplicate_rate = std::max(m.duplicate_rate, p.duplicate_rate);
      m.reorder_rate = std::max(m.reorder_rate, p.reorder_rate);
      m.reject_rate = std::max(m.reject_rate, p.reject_rate);
      m.straggler_rate = std::max(m.straggler_rate, p.straggler_rate);
      if (p.straggler_multiplier > 0.0) {
        m.straggler_multiplier =
            std::max(m.straggler_multiplier, p.straggler_multiplier);
      }
      m.unresponsive_rate = std::max(m.unresponsive_rate, p.unresponsive_rate);
      m.unresponsive_duration =
          std::max(m.unresponsive_duration, p.unresponsive_duration);
      if (p.skew_begin > 0 || p.skew_end > 0) {
        // Linear ramp across the phase, evaluated at the admission instant
        // (integer arithmetic: exact and replay-stable).
        const SimTime width = p.until - p.from;
        const SimTime skew =
            p.skew_begin +
            ((p.skew_end - p.skew_begin) * (now - p.from)) / width;
        m.clock_drift_stddev = std::max(m.clock_drift_stddev, skew);
      }
    }

    // Flaps and outages are windows, not rates: a request admitted before
    // the phase whose execution runs into it must still see them, so they
    // are compiled from the span overlap, not from active_at(now).
    if (p.until <= now || span <= 0) continue;
    for (const OutageSpec& o : p.outages) {
      if (o.until > now && o.from < now + span) {
        merge_service_window(m, o.sw, o.from, o.until, now, span);
      }
    }
    for (const FlapSpec& fl : p.flaps) {
      // First down window whose end lies after `now`: cycles start at
      // phase.from + offset and repeat every `period`.
      const SimTime cycle0 = p.from + fl.offset;
      SimTime start = cycle0;
      if (now > cycle0) {
        const SimTime k = (now - cycle0) / fl.period;
        start = cycle0 + k * fl.period;
        if (start + fl.down <= now) start += fl.period;
      }
      const SimTime end = std::min(start + fl.down, p.until);
      if (start >= p.until || end <= now || start >= now + span) continue;
      merge_service_window(m, fl.sw, start, end, now, span);
    }
  }
}

FaultModel ChaosScenario::fault_model_at(SimTime now, SimTime span) const {
  FaultModel m;
  apply_at(now, span, m);
  return m;
}

}  // namespace chronus::sim
