#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace chronus::sim {

EventId EventQueue::schedule_at(SimTime at, Callback cb) {
  if (at < now_) throw std::invalid_argument("scheduling into the past");
  const EventId id = next_id_++;
  events_.push(Event{at, id, std::move(cb)});
  live_.insert(id);
  return id;
}

EventId EventQueue::schedule_in(SimTime delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventQueue::cancel(EventId id) {
  if (live_.erase(id) == 0) return false;  // unknown, already ran, cancelled
  cancelled_.insert(id);
  return true;
}

void EventQueue::pop_cancelled() const {
  while (!events_.empty() && cancelled_.count(events_.top().id)) {
    cancelled_.erase(events_.top().id);
    events_.pop();
  }
}

SimTime EventQueue::next_event_time() const {
  pop_cancelled();
  return events_.empty() ? kNoEvent : events_.top().at;
}

std::size_t EventQueue::run(SimTime until) {
  std::size_t executed = 0;
  for (;;) {
    pop_cancelled();
    if (events_.empty() || events_.top().at > until) break;
    // priority_queue::top is const; move via const_cast is UB — copy the
    // callback out through a temporary instead.
    Event ev = events_.top();
    events_.pop();
    live_.erase(ev.id);
    now_ = ev.at;
    ev.cb();
    ++executed;
  }
  // Remaining events are strictly later than `until`; time passed anyway.
  if (until != INT64_MAX && now_ < until) now_ = until;
  return executed;
}

}  // namespace chronus::sim
