#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace chronus::sim {

void EventQueue::schedule_at(SimTime at, Callback cb) {
  if (at < now_) throw std::invalid_argument("scheduling into the past");
  events_.push(Event{at, seq_++, std::move(cb)});
}

void EventQueue::schedule_in(SimTime delay, Callback cb) {
  schedule_at(now_ + delay, std::move(cb));
}

std::size_t EventQueue::run(SimTime until) {
  std::size_t executed = 0;
  while (!events_.empty() && events_.top().at <= until) {
    // priority_queue::top is const; move via const_cast is UB — copy the
    // callback out through a temporary instead.
    Event ev = events_.top();
    events_.pop();
    now_ = ev.at;
    ev.cb();
    ++executed;
  }
  // Remaining events are strictly later than `until`; time passed anyway.
  if (until != INT64_MAX && now_ < until) now_ = until;
  return executed;
}

}  // namespace chronus::sim
