#include "sim/traffic.hpp"

#include <algorithm>
#include <set>

namespace chronus::sim {

namespace {

/// Per-switch snapshot index for fast table_at lookups.
class TableOracle {
 public:
  explicit TableOracle(const Network& net) {
    snaps_.reserve(net.switch_count());
    for (SwitchId s = 0; s < net.switch_count(); ++s) {
      snaps_.push_back(net.sw(s).snapshots());
    }
  }

  /// Table of switch s at time t; nullptr when no rule was ever installed.
  const FlowTable* at(SwitchId s, SimTime t) const {
    const auto& snaps = snaps_[s];
    // Last snapshot with time <= t.
    auto it = std::upper_bound(
        snaps.begin(), snaps.end(), t,
        [](SimTime x, const auto& snap) { return x < snap.first; });
    if (it == snaps.begin()) return nullptr;
    return &std::prev(it)->second;
  }

 private:
  std::vector<std::vector<std::pair<SimTime, FlowTable>>> snaps_;
};

}  // namespace

TrafficReport trace_traffic(Network& net, const std::vector<TrafficFlow>& flows,
                            const TraceOptions& opts) {
  TrafficReport report;
  for (net::LinkId id = 0; id < net.link_count(); ++id) {
    net.link(id).offered_bps = util::StepFunction{};
  }
  const TableOracle oracle(net);

  for (const TrafficFlow& flow : flows) {
    // Loops/drops repeat for every class while the faulty rules persist;
    // report each (switch) once per flow to keep reports readable.
    std::set<SwitchId> loop_seen;
    std::set<SwitchId> drop_seen;

    for (SimTime tau = opts.t_begin; tau < opts.t_end; tau += opts.quantum) {
      PacketHeader hdr = flow.header;
      SwitchId at = flow.ingress;
      SimTime now = tau;
      std::set<SwitchId> visited{at};

      for (int hop = 0; hop < opts.hop_limit; ++hop) {
        const FlowTable* table = oracle.at(at, now);
        const FlowEntry* entry = table ? table->lookup(hdr) : nullptr;
        if (!entry || entry->action.type == ActionType::kDrop) {
          if (drop_seen.insert(at).second) {
            report.drops.push_back(TrafficDropEvent{flow.name, tau, at});
          }
          break;
        }
        if (entry->action.type == ActionType::kSetVlanAndOutput) {
          hdr.vlan = entry->action.set_vlan;
        }
        if (entry->action.out_port == kHostPort) break;  // delivered
        const auto link_id = net.link_on_port(at, entry->action.out_port);
        if (!link_id) {
          if (drop_seen.insert(at).second) {
            report.drops.push_back(TrafficDropEvent{flow.name, tau, at});
          }
          break;
        }
        SimLink& link = net.link(*link_id);
        link.offered_bps.add(now, now + opts.quantum, flow.rate_bps);
        now += link.delay;
        at = link.dst;
        hdr.in_port = link.dst_port;
        if (!visited.insert(at).second) {
          if (loop_seen.insert(at).second) {
            report.loops.push_back(TrafficLoopEvent{flow.name, tau, at});
          }
          break;  // looping fluid is dropped after the first revisit
        }
      }
    }
  }

  // Congestion: contiguous intervals where offered exceeds capacity.
  for (net::LinkId id = 0; id < net.link_count(); ++id) {
    SimLink& link = net.link(id);
    link.offered_bps.normalize();
    const double cap = link.capacity_bps * (1.0 + 1e-9);

    // Value segments (from, to, value) covering [t_begin, t_end).
    std::vector<std::tuple<SimTime, SimTime, double>> segments;
    SimTime cursor = opts.t_begin;
    double value = link.offered_bps.at(opts.t_begin);
    for (const auto& [t, v] : link.offered_bps.breakpoints()) {
      if (t <= opts.t_begin) {
        value = v;
        continue;
      }
      if (t >= opts.t_end) break;
      segments.emplace_back(cursor, t, value);
      cursor = t;
      value = v;
    }
    segments.emplace_back(cursor, opts.t_end, value);

    bool in_event = false;
    LinkCongestionEvent open;
    for (const auto& [from, to, v] : segments) {
      if (v > cap) {
        if (!in_event) {
          open = LinkCongestionEvent{id, from, to, v};
          in_event = true;
        } else {
          open.to = to;
          open.peak_bps = std::max(open.peak_bps, v);
        }
      } else if (in_event) {
        report.congestion.push_back(open);
        in_event = false;
      }
    }
    if (in_event) report.congestion.push_back(open);
  }
  return report;
}

std::vector<double> bandwidth_series(const Network& net, net::LinkId link,
                                     SimTime t_begin, SimTime t_end,
                                     SimTime interval) {
  std::vector<double> out;
  const auto& f = net.link(link).offered_bps;
  for (SimTime t = t_begin; t + interval <= t_end; t += interval) {
    out.push_back(f.integral(t, t + interval) / static_cast<double>(interval));
  }
  return out;
}

}  // namespace chronus::sim
