// The fluid data plane: traces injection classes of each traffic aggregate
// through the switches' time-resolved flow tables and accumulates per-link
// offered load, transient loops and drops.
//
// A class is the fluid injected during one quantum [tau, tau+q). It samples
// every switch's table at its own arrival time (reconstructed from the
// switch's FlowMod log), so in-flight traffic keeps following the rules it
// saw — the asynchrony that makes naive updates unsafe. VLAN stamping
// actions rewrite the class's header on the way (two-phase versioning).
#pragma once

#include <string>
#include <vector>

#include "sim/network.hpp"

namespace chronus::sim {

struct TrafficFlow {
  std::string name;
  PacketHeader header;     ///< as injected by the host (in_port set to host)
  SwitchId ingress = 0;
  double rate_bps = 0.0;
};

struct TrafficLoopEvent {
  std::string flow;
  SimTime injected = 0;
  SwitchId at = 0;  ///< switch revisited
};

struct TrafficDropEvent {
  std::string flow;
  SimTime injected = 0;
  SwitchId at = 0;  ///< switch with no matching rule (or drop action)
};

struct LinkCongestionEvent {
  net::LinkId link = net::kInvalidLink;
  SimTime from = 0;
  SimTime to = 0;       ///< interval with offered > capacity
  double peak_bps = 0.0;
};

struct TrafficReport {
  std::vector<TrafficLoopEvent> loops;
  std::vector<TrafficDropEvent> drops;
  std::vector<LinkCongestionEvent> congestion;

  bool clean() const {
    return loops.empty() && drops.empty() && congestion.empty();
  }
};

struct TraceOptions {
  SimTime t_begin = 0;
  SimTime t_end = 0;
  SimTime quantum = kMillisecond;  ///< injection-class granularity
  int hop_limit = 64;
};

/// Traces all flows over [t_begin, t_end), filling every link's offered_bps
/// and returning the violations found. Resets previously traced loads.
TrafficReport trace_traffic(Network& net, const std::vector<TrafficFlow>& flows,
                            const TraceOptions& opts);

/// Windowed bandwidth series for one link: the value at index k is the
/// average offered load (bit/s) during [t_begin + k*interval, .. +interval),
/// i.e., what the Floodlight statistics module computes from byte-counter
/// differences.
std::vector<double> bandwidth_series(const Network& net, net::LinkId link,
                                     SimTime t_begin, SimTime t_end,
                                     SimTime interval);

}  // namespace chronus::sim
