#include "sim/updaters.hpp"

#include <algorithm>
#include <limits>

#include "util/contracts.hpp"

namespace chronus::sim {

FlowEntry make_forwarding_entry(const SimFlowSpec& spec, PortId out_port,
                                VlanTag match_vlan, int priority_delta) {
  FlowEntry e;
  e.priority = spec.rule_priority + priority_delta;
  e.match.dst_prefix = spec.dst_prefix;
  e.match.vlan = match_vlan;
  e.action = Action::output(out_port);
  return e;
}

FlowEntry make_stamping_entry(const SimFlowSpec& spec, VlanTag stamp,
                              PortId out_port) {
  FlowEntry e;
  e.priority = spec.rule_priority + 10;
  e.match.in_port = kHostPort;
  e.match.dst_prefix = spec.dst_prefix;
  e.action = Action::set_vlan_output(stamp, out_port);
  return e;
}

namespace {

FlowEntry forwarding_entry(const SimFlowSpec& spec, PortId out_port,
                           VlanTag match_vlan = kNoVlan) {
  return make_forwarding_entry(spec, out_port, match_vlan);
}

FlowEntry stamping_entry(const SimFlowSpec& spec, VlanTag stamp,
                         PortId out_port) {
  return make_stamping_entry(spec, stamp, out_port);
}

}  // namespace

void install_initial_rules(Controller& ctrl, const net::UpdateInstance& inst,
                           const SimFlowSpec& spec, bool versioned) {
  Network& net = ctrl.network();
  const net::Path& p = inst.p_init();
  const VlanTag transit_vlan = versioned ? kOldVersion : kNoVlan;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const PortId port = net.port_towards(p[i], p[i + 1]);
    if (versioned && i == 0) {
      ctrl.install_now(p[i], stamping_entry(spec, kOldVersion, port));
    } else {
      ctrl.install_now(p[i], forwarding_entry(spec, port, transit_vlan));
    }
  }
  ctrl.install_now(p.back(), forwarding_entry(spec, kHostPort, transit_vlan));
}

UpdateRunResult run_timed_schedule(Controller& ctrl,
                                   const net::UpdateInstance& inst,
                                   const SimFlowSpec& spec,
                                   const timenet::UpdateSchedule& schedule,
                                   SimTime t0, SimTime step_unit,
                                   bool confirm_with_barriers) {
  UpdateRunResult run;
  run.start = ctrl.clock();
  Network& net = ctrl.network();
  // Time4: all timed bundles are dispatched ahead of t0 and fire at their
  // scheduled instants (subject to clock-sync error).
  SimTime finish = ctrl.clock();
  timenet::TimePoint prev_step{std::numeric_limits<std::int64_t>::min()};
  for (const auto& [step, switches] : schedule.by_time()) {
    // by_time() walks ascending; the wall-clock instants we program into
    // the switches must follow the same order or Time4 semantics break.
    CHRONUS_INVARIANT(step > prev_step,
                      "timed bundles must be dispatched in schedule order");
    prev_step = step;
    const SimTime exec_at = t0 + step.count() * step_unit;
    for (const net::NodeId v : switches) {
      const auto next = inst.new_next(v);
      FlowMod mod;
      mod.type = FlowModType::kAdd;  // replaces the action in place
      mod.entry = forwarding_entry(spec, net.port_towards(v, *next));
      const SimTime applied = ctrl.send_timed_flow_mod(v, mod, exec_at);
      run.applied[v] = applied;
      finish = std::max(finish, applied);
    }
  }
  // Barrier confirmation per step (Algorithm 5 lines 6-9). Skipped when a
  // caller dispatches several flows' bundles first and confirms later —
  // barriers advance the controller clock, which would delay the next
  // flow's dispatch past its own execution instants.
  if (confirm_with_barriers) {
    for (const auto& [step, switches] : schedule.by_time()) {
      ctrl.advance_clock(t0 + (step.count() + 1) * step_unit);
      for (const net::NodeId v : switches) {
        finish = std::max(finish, ctrl.barrier(v));
      }
    }
    ctrl.advance_clock(finish);
  }
  run.finish = finish;
  return run;
}

UpdateRunResult run_chronus_update(Controller& ctrl,
                                   const net::UpdateInstance& inst,
                                   const SimFlowSpec& spec, SimTime t0,
                                   SimTime step_unit,
                                   const core::GreedyOptions& gopts) {
  const core::ScheduleResult plan = core::greedy_schedule(inst, gopts);
  if (plan.status == core::ScheduleStatus::kInfeasible) {
    UpdateRunResult run;
    run.start = ctrl.clock();
    run.plan_status = plan.status;
    run.note = "greedy scheduler: " + plan.message;
    run.finish = ctrl.clock();
    return run;
  }
  UpdateRunResult run =
      run_timed_schedule(ctrl, inst, spec, plan.schedule, t0, step_unit);
  run.plan_status = plan.status;
  return run;
}

UpdateRunResult run_or_update(Controller& ctrl, const net::UpdateInstance& inst,
                              const SimFlowSpec& spec, SimTime t0,
                              const opt::OrderOptions& plan_opts) {
  UpdateRunResult run;
  ctrl.advance_clock(t0);
  run.start = ctrl.clock();

  const opt::OrderResult plan = opt::solve_order_replacement(inst, plan_opts);
  if (!plan.feasible) {
    run.plan_status = core::ScheduleStatus::kInfeasible;
    run.note = "OR planner: " + plan.message;
    run.finish = ctrl.clock();
    return run;
  }

  Network& net = ctrl.network();
  for (const auto& round : plan.rounds) {
    for (const net::NodeId v : round) {
      const auto next = inst.new_next(v);
      FlowMod mod;
      mod.type = FlowModType::kAdd;
      mod.entry = forwarding_entry(spec, net.port_towards(v, *next));
      run.applied[v] = ctrl.send_flow_mod(v, mod);
    }
    SimTime round_done = ctrl.clock();
    for (const net::NodeId v : round) {
      round_done = std::max(round_done, ctrl.barrier(v));
    }
    ctrl.advance_clock(round_done);
  }
  run.finish = ctrl.clock();
  return run;
}

UpdateRunResult run_two_phase_update(Controller& ctrl,
                                     const net::UpdateInstance& inst,
                                     const SimFlowSpec& spec, SimTime t0,
                                     SimTime drain_margin) {
  UpdateRunResult run;
  ctrl.advance_clock(t0);
  run.start = ctrl.clock();
  Network& net = ctrl.network();
  const net::Path& fin = inst.p_fin();

  // Phase 1: install the new generation alongside the old one.
  SimTime installed = ctrl.clock();
  for (std::size_t i = 0; i + 1 < fin.size(); ++i) {
    if (i == 0) continue;  // the ingress forwards via its stamping rule
    const PortId port = net.port_towards(fin[i], fin[i + 1]);
    FlowMod mod;
    mod.type = FlowModType::kAdd;
    mod.entry = forwarding_entry(spec, port, kNewVersion);
    run.applied[fin[i]] = ctrl.send_flow_mod(fin[i], mod);
  }
  {
    FlowMod mod;
    mod.type = FlowModType::kAdd;
    mod.entry = forwarding_entry(spec, kHostPort, kNewVersion);
    run.applied[fin.back()] = ctrl.send_flow_mod(fin.back(), mod);
  }
  for (std::size_t i = 1; i < fin.size(); ++i) {
    installed = std::max(installed, ctrl.barrier(fin[i]));
  }
  ctrl.advance_clock(installed);

  // Phase 2: flip the ingress stamping rule; packets stamped from now on
  // carry the new version and follow the new path end to end.
  {
    const PortId port = net.port_towards(fin.front(), fin[1]);
    FlowMod mod;
    mod.type = FlowModType::kAdd;
    mod.entry = stamping_entry(spec, kNewVersion, port);
    run.flip_time = ctrl.send_flow_mod(fin.front(), mod);
    run.applied[fin.front()] = run.flip_time;
    ctrl.advance_clock(ctrl.barrier(fin.front()));
  }

  // Phase 3: after the drain margin, garbage-collect the old generation.
  ctrl.advance_clock(run.flip_time + drain_margin);
  const net::Path& init = inst.p_init();
  SimTime cleaned = ctrl.clock();
  for (std::size_t i = 1; i < init.size(); ++i) {
    FlowMod mod;
    mod.type = FlowModType::kDeleteStrict;
    mod.entry = forwarding_entry(spec, kNoPort, kOldVersion);
    ctrl.send_flow_mod(init[i], mod);
    cleaned = std::max(cleaned, ctrl.barrier(init[i]));
  }
  ctrl.advance_clock(cleaned);
  run.finish = ctrl.clock();
  return run;
}

}  // namespace chronus::sim
