#include "sim/network.hpp"

#include <stdexcept>

namespace chronus::sim {

Network::Network(const net::Graph& g, SimTime delay_unit, double bps_per_unit)
    : graph_(&g) {
  if (delay_unit <= 0) throw std::invalid_argument("delay_unit must be > 0");
  switches_.reserve(g.node_count());
  for (net::NodeId v = 0; v < g.node_count(); ++v) {
    switches_.emplace_back(v, g.name(v));
  }
  links_.resize(g.link_count());
  // Port numbering: port k on switch u is its k-th outgoing link; ingress
  // ports continue after the egress ports.
  std::vector<PortId> next_port(g.node_count(), 0);
  for (net::LinkId id = 0; id < g.link_count(); ++id) {
    const net::Link& l = g.link(id);
    SimLink& sl = links_[id];
    sl.id = id;
    sl.src = l.src;
    sl.dst = l.dst;
    sl.delay = l.delay * delay_unit;
    sl.capacity_bps = l.capacity.value() * bps_per_unit;
    sl.src_port = next_port[l.src]++;
    by_port_[{sl.src, sl.src_port}] = id;
  }
  for (net::LinkId id = 0; id < g.link_count(); ++id) {
    SimLink& sl = links_[id];
    sl.dst_port = next_port[sl.dst]++;
  }
}

SimSwitch& Network::sw(SwitchId id) {
  if (id >= switches_.size()) throw std::out_of_range("bad switch id");
  return switches_[id];
}

const SimSwitch& Network::sw(SwitchId id) const {
  if (id >= switches_.size()) throw std::out_of_range("bad switch id");
  return switches_[id];
}

SimLink& Network::link(net::LinkId id) {
  if (id >= links_.size()) throw std::out_of_range("bad link id");
  return links_[id];
}

const SimLink& Network::link(net::LinkId id) const {
  if (id >= links_.size()) throw std::out_of_range("bad link id");
  return links_[id];
}

std::optional<net::LinkId> Network::link_between(SwitchId u, SwitchId v) const {
  return graph_->find_link(u, v);
}

std::optional<net::LinkId> Network::link_on_port(SwitchId u, PortId port) const {
  const auto it = by_port_.find({u, port});
  if (it == by_port_.end()) return std::nullopt;
  return it->second;
}

PortId Network::port_towards(SwitchId u, SwitchId v) const {
  const auto id = link_between(u, v);
  if (!id) throw std::invalid_argument("no link between switches");
  return links_[*id].src_port;
}

}  // namespace chronus::sim
