// The chaos soak engine: declarative failure campaigns against the online
// update service.
//
// A ChaosScenario is a seeded script of timed *phases* — windows of service
// virtual time during which fault knobs are raised: FlowMod drop/duplicate/
// reorder/reject storms, rule-install tail-latency (straggler) storms,
// per-switch clock-skew ramps, periodic link/switch flaps, forced outage
// windows and arrival-rate surges. The engine *compiles* the scenario,
// epoch by epoch, into the two artefacts the rest of the tree already
// understands:
//
//  * a FaultModel for each request's private execution simulation
//    (fault_model_at / apply_at) — the service attaches a FaultInjector
//    built from it, seeded from (service seed, scenario seed, request id);
//  * an arrival-rate multiplier for the workload generator
//    (arrival_multiplier_at) — surges compress inter-arrival draws without
//    changing them, so a surging trace is still a pure function of
//    (options, seed).
//
// Determinism contract: a scenario holds no state and draws no randomness
// of its own — compilation is pure arithmetic on virtual time, and all
// randomness stays in the per-request injector streams derived from the
// campaign seed. Hence one (trace seed, scenario) pair fully determines a
// campaign, any failure replays bit-identically, and a scenario whose
// every knob is zero (quiet()) compiles to disabled FaultModels and unit
// multipliers everywhere — a quiet campaign is bit-identical to a clean
// `serve` run of the same trace (tests/chaos_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/faults.hpp"
#include "sim/sim_time.hpp"
#include "sim/switch.hpp"

namespace chronus::sim {

/// A periodic control-plane flap of one switch: starting at the owning
/// phase's `from` (shifted by `offset`), the switch is unreachable for the
/// leading `down` microseconds of every `period`-long cycle, for as long
/// as the phase lasts.
struct FlapSpec {
  SwitchId sw = 0;
  SimTime period = 0;  ///< full cycle length (> 0)
  SimTime down = 0;    ///< leading down window per cycle (0 < down <= period)
  SimTime offset = 0;  ///< shift of the first cycle past the phase start
};

/// One absolute outage window: messages to `sw` during [from, until) — in
/// service virtual time — are delayed to the window's end.
struct OutageSpec {
  SwitchId sw = 0;
  SimTime from = 0;
  SimTime until = 0;
};

/// One timed phase of a campaign. Rate knobs are *floors* merged into the
/// compiled FaultModel by max while the phase is active; zero keeps
/// whatever the base model (or an overlapping phase) already set.
struct ChaosPhase {
  std::string name = "phase";
  SimTime from = 0;   ///< phase window [from, until) in service time
  SimTime until = 0;

  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  double reorder_rate = 0.0;
  double reject_rate = 0.0;
  double straggler_rate = 0.0;
  double straggler_multiplier = 0.0;  ///< 0 keeps the model's multiplier
  double unresponsive_rate = 0.0;
  SimTime unresponsive_duration = 0;

  /// Clock-skew ramp: the per-switch drift stddev interpolates linearly
  /// from skew_begin at `from` to skew_end at `until` — the honest Time4
  /// model of clocks drifting between synchronization rounds.
  SimTime skew_begin = 0;
  SimTime skew_end = 0;

  /// Arrival-rate multiplier while active (1 = no surge). Overlapping
  /// surges multiply, so stacked phases compound the pressure.
  double arrival_surge = 1.0;

  std::vector<FlapSpec> flaps;
  std::vector<OutageSpec> outages;

  bool active_at(SimTime t) const { return t >= from && t < until; }
  /// True iff the phase perturbs nothing (all knobs at rest).
  bool quiet() const;
};

/// A complete campaign script. Immutable once validated; shared by pointer
/// across the workload generator, the service dispatcher and the soak
/// driver.
struct ChaosScenario {
  std::string name = "scenario";
  /// Campaign stream id, XORed into every per-request injector seed so two
  /// scenarios over the same trace draw independent fault streams.
  std::uint64_t seed = 0;
  /// Always-on fault floor beneath the phases.
  FaultModel base;
  std::vector<ChaosPhase> phases;

  /// End of the last phase (0 when the scenario has no phases).
  SimTime horizon() const;

  /// True iff base and every phase are at rest — the campaign that must be
  /// bit-identical to a clean run.
  bool quiet() const;

  /// Contract validation (rates in [0,1], well-ordered windows, positive
  /// periods); throws util::ContractViolation on a malformed script.
  void validate() const;

  /// Product of the arrival surges active at service time `t` (1 when
  /// none are).
  double arrival_multiplier_at(SimTime t) const;

  /// Merges the faults in effect for a private execution admitted at
  /// service time `now` into `m` — the always-on `base` floor plus the
  /// active phases. Rates are max-merged; flap and outage windows (from
  /// `base` as well as phases) overlapping [now, now + span) are
  /// translated into the private simulation's time base (admission = 0)
  /// and recorded as forced_outage windows. FaultModel carries one window
  /// per switch, so overlapping sources on the same switch merge to their
  /// hull, and a flap contributes its first down window inside the span.
  void apply_at(SimTime now, SimTime span, FaultModel& m) const;

  /// Convenience: base merged with the phases via apply_at.
  FaultModel fault_model_at(SimTime now, SimTime span) const;
};

}  // namespace chronus::sim
