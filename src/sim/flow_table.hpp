// OpenFlow-style flow tables: priority-ordered entries matching on ingress
// port, source/destination prefix and VLAN tag (the paper's "LAN ID" used
// by two-phase versioning), with output / set-tag / drop actions and byte
// counters — the structure of Table II.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace chronus::sim {

using PortId = std::uint32_t;
inline constexpr PortId kNoPort = static_cast<PortId>(-1);
/// The local delivery port (host attached to the switch).
inline constexpr PortId kHostPort = static_cast<PortId>(-2);

using VlanTag = std::int32_t;
inline constexpr VlanTag kNoVlan = -1;

/// Packet header fields relevant to matching.
struct PacketHeader {
  PortId in_port = kNoPort;
  std::string src;   ///< e.g. "10.0.0.1"
  std::string dst;
  VlanTag vlan = kNoVlan;
};

/// Match fields; empty string / kNoPort / kNoVlan are wildcards. Prefixes
/// match when the packet field starts with the rule field (exact-match
/// rules simply use the full string, per the paper's exact-match remark).
struct Match {
  PortId in_port = kNoPort;
  std::string src_prefix;
  std::string dst_prefix;
  VlanTag vlan = kNoVlan;

  bool matches(const PacketHeader& pkt) const;
  bool operator==(const Match&) const = default;
};

enum class ActionType { kOutput, kSetVlanAndOutput, kDrop };

struct Action {
  ActionType type = ActionType::kDrop;
  PortId out_port = kNoPort;
  VlanTag set_vlan = kNoVlan;

  static Action output(PortId port) {
    return Action{ActionType::kOutput, port, kNoVlan};
  }
  static Action set_vlan_output(VlanTag tag, PortId port) {
    return Action{ActionType::kSetVlanAndOutput, port, tag};
  }
  static Action drop() { return Action{}; }

  bool operator==(const Action&) const = default;
};

struct FlowEntry {
  int priority = 0;
  Match match;
  Action action;
  std::uint64_t byte_count = 0;

  std::string to_string() const;
};

/// A switch's flow table. Lookup returns the highest-priority matching
/// entry (ties broken by insertion order, oldest first, like OVS).
class FlowTable {
 public:
  /// Inserts an entry; replaces an existing entry with identical match and
  /// priority (OpenFlow ADD semantics). Returns true if it replaced.
  bool add(FlowEntry entry);

  /// Modifies the action of entries with identical match and priority
  /// (OpenFlow MODIFY_STRICT). Returns the number of entries modified.
  std::size_t modify(const Match& match, int priority, const Action& action);

  /// Deletes entries with identical match and priority (DELETE_STRICT).
  std::size_t remove(const Match& match, int priority);

  /// Highest-priority match, if any.
  const FlowEntry* lookup(const PacketHeader& pkt) const;
  FlowEntry* lookup(const PacketHeader& pkt);

  std::size_t size() const { return entries_.size(); }
  const std::vector<FlowEntry>& entries() const { return entries_; }

 private:
  std::vector<FlowEntry> entries_;
};

}  // namespace chronus::sim
