// The controller: the Floodlight substitute. It issues FlowMods over a
// control channel with log-normally distributed latency (parameterized to
// the Dionysus rule-install measurements the paper samples from), supports
// Time4-style *timed* FlowMods executed at a scheduled instant subject to
// microsecond-scale clock-synchronization error, and implements OpenFlow
// barriers (a BarrierReply is sent once all earlier mods on that switch
// have been applied).
//
// The controller owns a logical clock (`clock`): the time at which it
// issues its next command. Updaters advance it as they orchestrate rounds;
// switch-side effects are scheduled on the shared event queue.
#pragma once

#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace chronus::sim {

struct ControlChannelModel {
  /// Median one-way control latency (FlowMod issue -> switch applies).
  SimTime latency_median = 50 * kMillisecond;
  /// Log-normal sigma; ~0.8 gives the heavy tail seen in Dionysus data.
  double latency_sigma = 0.8;
  /// Stddev of the Time4 scheduled-execution error (clock sync quality).
  SimTime sync_error_stddev = 1;  // microseconds
};

class Controller {
 public:
  Controller(EventQueue& eq, Network& net, util::Rng& rng,
             ControlChannelModel model = {});

  /// The controller's logical clock; commands are issued at this time.
  SimTime clock() const { return clock_; }
  void advance_clock(SimTime to);

  /// Installs an entry immediately at the current clock (initial network
  /// configuration; no control latency).
  void install_now(SwitchId sw, FlowEntry entry);

  /// Sends an asynchronous FlowMod; it is applied after the control
  /// latency (in FIFO order per switch). Returns the apply time.
  SimTime send_flow_mod(SwitchId sw, FlowMod mod);

  /// Sends a timed FlowMod executing at `execute_at` (plus clock error);
  /// if the mod arrives after `execute_at` it executes on arrival.
  SimTime send_timed_flow_mod(SwitchId sw, FlowMod mod, SimTime execute_at);

  /// Barrier: the time at which the BarrierReply for `sw` reaches the
  /// controller (after every mod sent so far has been applied).
  SimTime barrier(SwitchId sw);

  /// Runs the event queue until all scheduled switch effects are applied.
  void flush();

  Network& network() { return *net_; }

 private:
  SimTime sample_latency();
  SimTime apply_at(SwitchId sw, SimTime at, FlowMod mod);

  EventQueue* eq_;
  Network* net_;
  util::Rng* rng_;
  ControlChannelModel model_;
  SimTime clock_ = 0;
  std::vector<SimTime> last_apply_;  // per switch: latest scheduled apply
};

}  // namespace chronus::sim
