// The controller: the Floodlight substitute. It issues FlowMods over a
// control channel with log-normally distributed latency (parameterized to
// the Dionysus rule-install measurements the paper samples from), supports
// Time4-style *timed* FlowMods executed at a scheduled instant subject to
// microsecond-scale clock-synchronization error, and implements OpenFlow
// barriers (a BarrierReply is sent once all earlier mods on that switch
// have been applied).
//
// The controller owns a logical clock (`clock`): the time at which it
// issues its next command. Updaters advance it as they orchestrate rounds;
// switch-side effects are scheduled on the shared event queue.
//
// FIFO assumption: each switch applies the mods it *receives* in arrival
// order — the controller tracks the latest scheduled apply per switch
// (`last_apply_`) and never schedules an earlier one, mirroring the
// in-order OpenFlow control channel (TCP) plus in-order switch processing.
// Only the fault injector's reorder fault may break this, by letting a mod
// apply at its raw arrival instant ahead of queued predecessors.
//
// An optional FaultInjector (attach_fault_injector) subjects the control
// path to drops, duplication, reordering, rejections, stragglers,
// unresponsiveness windows and per-switch clock drift. Every issued mod
// leaves a ModRecord; records are the controller's dead-reckoned view
// (flow-stats polling / bundle-commit ACKs / OFPT_ERROR round-trips) that
// the resilient executor reads to detect missing rules — a barrier alone
// cannot reveal a *dropped* mod, which never reaches the switch.
#pragma once

#include <optional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace chronus::sim {

struct ControlChannelModel {
  /// Median one-way control latency (FlowMod issue -> switch applies).
  SimTime latency_median = 50 * kMillisecond;
  /// Log-normal sigma; ~0.8 gives the heavy tail seen in Dionysus data.
  double latency_sigma = 0.8;
  /// Stddev of the Time4 scheduled-execution error (clock sync quality).
  SimTime sync_error_stddev = 1;  // microseconds
};

using ModId = std::size_t;
inline constexpr SimTime kNever = -1;

/// The controller's ledger entry for one issued FlowMod.
struct ModRecord {
  SwitchId sw = 0;
  FlowMod mod;
  SimTime issued = 0;               ///< controller clock at send
  SimTime requested_exec = kNever;  ///< timed mods: the scheduled instant
  SimTime arrival = kNever;         ///< control-channel arrival at switch
  SimTime applied = kNever;         ///< apply instant; kNever if never applied
  bool dropped = false;    ///< lost in the control channel
  bool rejected = false;   ///< switch refused the install (error returned)
  bool duplicated = false;
  bool reordered = false;  ///< escaped the per-switch FIFO
  bool straggler = false;  ///< latency was multiplied
  bool delayed = false;    ///< pushed back by an unresponsiveness window
  bool cancelled = false;  ///< recalled before execution (bundle discard)
  EventId event = kInvalidEvent;            ///< pending apply event
  EventId duplicate_event = kInvalidEvent;  ///< second copy, if duplicated

  /// True iff any fault touched this mod (zero-fault runs never intervene
  /// on mods for which this is false — the bit-identical guarantee).
  bool faulted() const {
    return dropped || rejected || duplicated || reordered || straggler ||
           delayed;
  }
  /// True iff the mod reached the switch and mutated the table.
  bool installed() const {
    return applied != kNever && !rejected && !cancelled;
  }
};

class Controller {
 public:
  Controller(EventQueue& eq, Network& net, util::Rng& rng,
             ControlChannelModel model = {});

  /// The controller's logical clock; commands are issued at this time.
  SimTime clock() const { return clock_; }
  void advance_clock(SimTime to);

  /// Attaches (or detaches, with nullptr) a fault injector. A disabled
  /// injector — every FaultModel knob zero — leaves every code path and
  /// every RNG draw identical to the fault-free controller.
  void attach_fault_injector(FaultInjector* injector) { faults_ = injector; }
  FaultInjector* fault_injector() { return faults_; }

  /// Installs an entry immediately at the current clock (initial network
  /// configuration; no control latency, never faulted).
  void install_now(SwitchId sw, FlowEntry entry);

  /// Sends an asynchronous FlowMod; it is applied after the control
  /// latency (in FIFO order per switch). Returns the apply time.
  SimTime send_flow_mod(SwitchId sw, FlowMod mod);

  /// Sends a timed FlowMod executing at `execute_at` (plus clock error);
  /// if the mod arrives after `execute_at` it executes on arrival.
  SimTime send_timed_flow_mod(SwitchId sw, FlowMod mod, SimTime execute_at);

  /// Record-returning variants of the send calls, for callers that need to
  /// track delivery (the resilient executor).
  ModId issue_flow_mod(SwitchId sw, FlowMod mod);
  ModId issue_timed_flow_mod(SwitchId sw, FlowMod mod, SimTime execute_at);

  /// Attempts to recall a not-yet-executed mod (OpenFlow bundle discard):
  /// a cancel message races the scheduled execution over the control
  /// channel and wins only if it arrives first. Returns true on success.
  bool cancel_mod(ModId id);

  std::size_t mod_count() const { return mods_.size(); }
  const ModRecord& record(ModId id) const { return mods_.at(id); }
  const std::vector<ModRecord>& mod_log() const { return mods_; }

  /// Dead-reckoned table state: the action the controller believes is
  /// installed at `sw` for (match, priority), i.e. the outcome of the
  /// last delivered mod on that entry; nullopt if absent or deleted.
  std::optional<Action> active_action(SwitchId sw, const Match& match,
                                      int priority) const;

  /// Earliest instant `entry`'s action became (and stayed, per records)
  /// installed at `sw`; kNever if it is not currently installed.
  SimTime activation_time(SwitchId sw, const FlowEntry& entry) const;

  /// Barrier: the time at which the BarrierReply for `sw` reaches the
  /// controller (after every mod *received by the switch* so far has been
  /// applied — a dropped mod is invisible to the barrier).
  SimTime barrier(SwitchId sw);

  /// Runs the event queue until all scheduled switch effects are applied.
  void flush();

  Network& network() { return *net_; }

 private:
  SimTime sample_latency();
  ModId issue(SwitchId sw, FlowMod mod, SimTime execute_at, bool timed);
  void check_switch(SwitchId sw) const;

  EventQueue* eq_;
  Network* net_;
  util::Rng* rng_;
  ControlChannelModel model_;
  FaultInjector* faults_ = nullptr;
  SimTime clock_ = 0;
  std::vector<SimTime> last_apply_;  // per switch: latest scheduled apply
  std::vector<ModRecord> mods_;
};

}  // namespace chronus::sim
