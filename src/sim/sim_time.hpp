// Simulator time base: signed 64-bit microseconds. Microsecond resolution
// matches the Time4-style scheduling accuracy the paper builds on ("the
// updates can be scheduled accurately on the order of one microsecond").
#pragma once

#include <cstdint>

namespace chronus::sim {

using SimTime = std::int64_t;  // microseconds

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1000 * 1000;

}  // namespace chronus::sim
