// A simulated OpenFlow switch: a flow table mutated by FlowMods over
// simulation time, with the full modification log retained so the data
// plane tracer can reconstruct the table at any instant (table_at) —
// in-flight packets must see the rules of their own arrival time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/flow_table.hpp"
#include "sim/sim_time.hpp"

namespace chronus::sim {

using SwitchId = std::uint32_t;

enum class FlowModType { kAdd, kModifyStrict, kDeleteStrict };

struct FlowMod {
  FlowModType type = FlowModType::kAdd;
  FlowEntry entry;  // match+priority identify the target; action applies
};

class SimSwitch {
 public:
  SimSwitch(SwitchId id, std::string name) : id_(id), name_(std::move(name)) {}

  SwitchId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Applies a FlowMod at simulation time `at`. Times must be non-
  /// decreasing across calls (the event queue guarantees this).
  void apply(SimTime at, const FlowMod& mod);

  /// Records a FlowMod the switch received but refused to install
  /// (fault-injected OFPT_ERROR: table full, bad table id, ...). The flow
  /// table is untouched; only the rejection log grows.
  void reject(SimTime at, const FlowMod& mod);

  /// Current (latest) table.
  const FlowTable& table() const { return table_; }

  /// Table as it stood at time `t` (entries applied at exactly `t` are
  /// visible — a rule scheduled for T takes effect at T).
  FlowTable table_at(SimTime t) const;

  /// Largest table size ever reached (rule-space peak, Fig. 9).
  std::size_t peak_table_size() const { return peak_size_; }

  /// Number of FlowMods applied.
  std::size_t mods_applied() const { return log_.size(); }

  /// Number of FlowMods refused (fault injection).
  std::size_t mods_rejected() const { return rejections_.size(); }

  /// All (time, size) points where the table size changed.
  std::vector<std::pair<SimTime, std::size_t>> size_history() const;

  /// Table snapshots after every FlowMod, oldest first (snapshot i is the
  /// table from log time i until the next mod). The tracer binary-searches
  /// these instead of replaying the log per lookup.
  std::vector<std::pair<SimTime, FlowTable>> snapshots() const;

 private:
  struct LogEntry {
    SimTime at;
    FlowMod mod;
  };

  SwitchId id_;
  std::string name_;
  FlowTable table_;
  std::vector<LogEntry> log_;
  std::vector<LogEntry> rejections_;
  std::size_t peak_size_ = 0;
};

}  // namespace chronus::sim
