// Discrete-event core: a time-ordered queue of callbacks. Ties are broken
// by insertion order so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/sim_time.hpp"

namespace chronus::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `at` (>= now()).
  void schedule_at(SimTime at, Callback cb);

  /// Schedules `cb` `delay` after now().
  void schedule_in(SimTime delay, Callback cb);

  SimTime now() const { return now_; }
  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }

  /// Runs events until the queue is empty or `until` is passed; returns the
  /// number of events executed. Events exactly at `until` still run.
  std::size_t run(SimTime until = INT64_MAX);

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace chronus::sim
