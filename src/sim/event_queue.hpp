// Discrete-event core: a time-ordered queue of callbacks. Ties are broken
// by insertion order so runs are fully deterministic. Events can be
// cancelled before they run (Time4 scheduled bundles support discard; the
// resilient executor recalls not-yet-executed timed FlowMods through this).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/sim_time.hpp"

namespace chronus::sim {

/// Handle identifying a scheduled event; valid until the event runs or is
/// cancelled.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = static_cast<EventId>(-1);

/// Sentinel returned by next_event_time() on an empty queue.
inline constexpr SimTime kNoEvent = -1;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `at` (>= now()); returns its handle.
  EventId schedule_at(SimTime at, Callback cb);

  /// Schedules `cb` `delay` after now().
  EventId schedule_in(SimTime delay, Callback cb);

  /// Cancels a pending event. Returns true if the event was still pending
  /// (it will not run); false if it already ran, was already cancelled, or
  /// the id is unknown.
  bool cancel(EventId id);

  SimTime now() const { return now_; }
  bool empty() const { return pending() == 0; }
  std::size_t pending() const { return live_.size(); }

  /// Time of the earliest pending event, or kNoEvent if none.
  SimTime next_event_time() const;

  /// Runs events until the queue is empty or `until` is passed; returns the
  /// number of events executed. Events exactly at `until` still run.
  std::size_t run(SimTime until = INT64_MAX);

 private:
  struct Event {
    SimTime at;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.id > b.id;
    }
  };

  void pop_cancelled() const;

  // mutable: lazily discarding cancelled heads from const observers.
  mutable std::priority_queue<Event, std::vector<Event>, Later> events_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> live_;  ///< scheduled, not yet run or cancelled
  SimTime now_ = 0;
  EventId next_id_ = 0;
};

}  // namespace chronus::sim
