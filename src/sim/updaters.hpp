// The three update mechanisms of the paper's evaluation, driven end-to-end
// through the simulated control plane:
//
//  * run_chronus_update — Algorithm 5: plan with the greedy scheduler, then
//    walk the time steps issuing Time4 timed FlowMods followed by barrier
//    request/reply rounds, one step per `step_unit` of wall time.
//  * run_or_update — order replacement: per round, asynchronous FlowMods
//    (log-normal activation latencies), barrier-gated between rounds.
//  * run_two_phase_update — two-phase commit with VLAN versioning: install
//    the new generation, flip the ingress stamping rule, drain, delete.
//
// Initial rule installation follows Table II: per-flow transit rules plus
// host entries at the edge switches; the two-phase variant versions every
// transit rule with a VLAN tag and stamps at the ingress.
#pragma once

#include <map>
#include <string>

#include "core/greedy_scheduler.hpp"
#include "net/instance.hpp"
#include "opt/order_bnb.hpp"
#include "sim/controller.hpp"

namespace chronus::sim {

/// How a dynamic flow appears in the data plane.
struct SimFlowSpec {
  std::string name = "f0";
  std::string src_prefix = "10.0.1.";
  std::string dst_prefix = "10.0.2.";
  double rate_bps = 0.0;
  int rule_priority = 10;
};

inline constexpr VlanTag kOldVersion = 1;
inline constexpr VlanTag kNewVersion = 2;

/// The per-flow transit rule of Table II: match the flow's destination
/// prefix (and optionally a version tag), forward out of `out_port`.
FlowEntry make_forwarding_entry(const SimFlowSpec& spec, PortId out_port,
                                VlanTag match_vlan = kNoVlan,
                                int priority_delta = 0);

/// The ingress stamping rule of the two-phase scheme: match host-port
/// ingress traffic for the flow, stamp `stamp` and forward out `out_port`.
FlowEntry make_stamping_entry(const SimFlowSpec& spec, VlanTag stamp,
                              PortId out_port);

/// Installs the initial routing of `spec` along inst.p_init() at the
/// controller's current clock. With `versioned` set, transit rules match
/// kOldVersion and the ingress stamps it (two-phase style); otherwise
/// rules are tag-agnostic (Chronus/OR style).
void install_initial_rules(Controller& ctrl, const net::UpdateInstance& inst,
                           const SimFlowSpec& spec, bool versioned = false);

struct UpdateRunResult {
  /// Actual rule activation instants per switch (microseconds).
  std::map<SwitchId, SimTime> applied;
  SimTime start = 0;
  SimTime finish = 0;  ///< last barrier reply / cleanup done
  /// Two-phase only: the instant the ingress stamping rule flipped.
  SimTime flip_time = 0;
  core::ScheduleStatus plan_status = core::ScheduleStatus::kFeasible;
  std::string note;
};

/// Algorithm 5. `t0` is the wall time of schedule step 0; consecutive steps
/// are `step_unit` apart (the paper sleeps one time unit between steps).
UpdateRunResult run_chronus_update(Controller& ctrl,
                                   const net::UpdateInstance& inst,
                                   const SimFlowSpec& spec, SimTime t0,
                                   SimTime step_unit,
                                   const core::GreedyOptions& gopts = {});

/// Executes a precomputed timed schedule (Time4 bundles + barriers) for one
/// flow. Multi-flow plans (core::schedule_flows_jointly) are executed by
/// calling this once per flow with the same t0/step_unit, so the flows'
/// schedules share one wall-clock axis.
UpdateRunResult run_timed_schedule(Controller& ctrl,
                                   const net::UpdateInstance& inst,
                                   const SimFlowSpec& spec,
                                   const timenet::UpdateSchedule& schedule,
                                   SimTime t0, SimTime step_unit,
                                   bool confirm_with_barriers = true);

/// Order replacement: plans with opt::solve_order_replacement, then issues
/// each round asynchronously, gated by barriers.
UpdateRunResult run_or_update(Controller& ctrl, const net::UpdateInstance& inst,
                              const SimFlowSpec& spec, SimTime t0,
                              const opt::OrderOptions& plan_opts = {});

/// Two-phase with VLAN versioning. Requires install_initial_rules(...,
/// versioned=true). `drain_margin` is waited after the flip before the old
/// generation is deleted.
UpdateRunResult run_two_phase_update(Controller& ctrl,
                                     const net::UpdateInstance& inst,
                                     const SimFlowSpec& spec, SimTime t0,
                                     SimTime drain_margin);

}  // namespace chronus::sim
