// Fluid queue analysis for links: the paper notes that OR's ~600 Mbps
// counter readings on a 500 Mbps link "can be beyond the buffer size and
// result in traffic loss". Given a link's traced offered-load function,
// this computes the drain-rate-limited queue occupancy against a finite
// buffer and the bytes lost to overflow.
#pragma once

#include "sim/network.hpp"

namespace chronus::sim {

struct QueueStats {
  double peak_queue_bytes = 0.0;
  double dropped_bytes = 0.0;
  /// Total time the queue was non-empty (extra latency for the traffic).
  SimTime backlogged_time = 0;
  /// Time the queue sat at the buffer limit (actively dropping).
  SimTime dropping_time = 0;
};

/// Replays offered load through a drain-at-capacity queue with
/// `buffer_bytes` of space over [t_begin, t_end).
QueueStats analyze_queue(const SimLink& link, double buffer_bytes,
                         SimTime t_begin, SimTime t_end);

}  // namespace chronus::sim
