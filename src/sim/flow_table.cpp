#include "sim/flow_table.hpp"

#include <algorithm>
#include <sstream>

namespace chronus::sim {

namespace {
bool prefix_matches(const std::string& prefix, const std::string& field) {
  return prefix.empty() || field.rfind(prefix, 0) == 0;
}
}  // namespace

bool Match::matches(const PacketHeader& pkt) const {
  if (in_port != kNoPort && in_port != pkt.in_port) return false;
  if (vlan != kNoVlan && vlan != pkt.vlan) return false;
  return prefix_matches(src_prefix, pkt.src) && prefix_matches(dst_prefix, pkt.dst);
}

std::string FlowEntry::to_string() const {
  std::ostringstream os;
  os << "prio=" << priority;
  if (match.in_port != kNoPort) os << " in_port=" << match.in_port;
  if (!match.src_prefix.empty()) os << " src=" << match.src_prefix;
  if (!match.dst_prefix.empty()) os << " dst=" << match.dst_prefix;
  if (match.vlan != kNoVlan) os << " vlan=" << match.vlan;
  os << " ->";
  switch (action.type) {
    case ActionType::kOutput:
      if (action.out_port == kHostPort) {
        os << " output:host";
      } else {
        os << " output:" << action.out_port;
      }
      break;
    case ActionType::kSetVlanAndOutput:
      os << " set_vlan:" << action.set_vlan << ",output:" << action.out_port;
      break;
    case ActionType::kDrop:
      os << " drop";
      break;
  }
  return os.str();
}

bool FlowTable::add(FlowEntry entry) {
  for (FlowEntry& e : entries_) {
    if (e.priority == entry.priority && e.match == entry.match) {
      e.action = entry.action;
      return true;
    }
  }
  entries_.push_back(std::move(entry));
  return false;
}

std::size_t FlowTable::modify(const Match& match, int priority,
                              const Action& action) {
  std::size_t n = 0;
  for (FlowEntry& e : entries_) {
    if (e.priority == priority && e.match == match) {
      e.action = action;
      ++n;
    }
  }
  return n;
}

std::size_t FlowTable::remove(const Match& match, int priority) {
  const auto old_size = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const FlowEntry& e) {
                                  return e.priority == priority &&
                                         e.match == match;
                                }),
                 entries_.end());
  return old_size - entries_.size();
}

const FlowEntry* FlowTable::lookup(const PacketHeader& pkt) const {
  const FlowEntry* best = nullptr;
  for (const FlowEntry& e : entries_) {
    if (!e.match.matches(pkt)) continue;
    if (!best || e.priority > best->priority) best = &e;
  }
  return best;
}

FlowEntry* FlowTable::lookup(const PacketHeader& pkt) {
  return const_cast<FlowEntry*>(
      static_cast<const FlowTable*>(this)->lookup(pkt));
}

}  // namespace chronus::sim
