// A self-healing wrapper around the paper's update executors (Alg. 5, OR,
// two-phase). The seed executors fire-and-forget: a dropped or rejected
// FlowMod silently leaves the data plane inconsistent. The ResilientExecutor
// drives the same mechanisms defensively:
//
//  * Bundle-receipt confirmation (Time4 bundles ACK on commit): timed mods
//    that a fault kept from reaching their switch ahead of the execution
//    instant are recalled (bundle discard) and re-sent before t0.
//  * Per-step deadlines: after each step's barrier round the dead-reckoned
//    mod ledger is checked; missing or rejected rules are retried with
//    exponential backoff + jitter, up to RetryPolicy::max_attempts sends.
//  * Graceful degradation ladder, on retry exhaustion:
//      1. pause at the last confirmed consistent step, wait for in-flight
//         traffic to drain, re-plan the remaining suffix with the greedy
//         scheduler from the *actual applied state*, and execute it;
//      2. fall back to a two-phase (VLAN-versioned) overlay of the final
//         path — per-packet consistent regardless of timing;
//      3. roll back to the initial configuration (restore old rules
//         upstream-first, drain, delete orphaned new rules).
//  * Runtime consistency monitor: every run replays the achieved
//    activation instants through timenet::verifier and reports transient
//    congestion/loop/blackhole violations in the UpdateRunReport, along
//    with every injected fault, retry, backoff wait and fallback taken.
//
// Determinism contract: with every FaultModel knob at zero (or no injector
// attached), each run_* method issues exactly the same control messages,
// draws exactly the same RNG values and returns exactly the same
// UpdateRunResult as the corresponding seed executor — the executor only
// ever intervenes on mods whose ledger record carries a fault flag.
//
// Thread-safety contract (DESIGN.md §12): a ResilientExecutor is
// *thread-confined*, not thread-safe — it holds no mutex because it owns
// no shared state: the controller, event queue and RNG stream it drives
// are private to the service worker that constructed it (exec_job builds
// one per request). Concurrency enters one layer up, at the capacity
// ledger and worker pool, whose lock contracts are compiler-enforced via
// util/thread_annotations.hpp. Do not share one executor across threads;
// construct one per confined simulation instead.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "sim/faults.hpp"
#include "sim/updaters.hpp"
#include "timenet/verifier.hpp"

namespace chronus::sim {

struct RetryPolicy {
  /// Total sends of one rule within one phase (first send + retries).
  int max_attempts = 3;
  /// Exponential backoff before each retry, with uniform jitter on top.
  SimTime base_backoff = 50 * kMillisecond;
  double backoff_multiplier = 2.0;
  SimTime max_backoff = 2 * kSecond;
  double jitter = 0.2;  ///< jitter fraction of the current backoff
  /// Suffix re-plans attempted before falling further down the ladder.
  int max_replans = 2;
  bool allow_two_phase_fallback = true;
  /// Wall-clock wait for in-flight traffic to drain before a re-plan or a
  /// rollback delete phase; 0 = auto (trajectory bound x step_unit).
  SimTime drain_margin = 0;
  /// Lead time between dispatching a re-planned schedule and its t0.
  SimTime dispatch_lead = 2 * kSecond;
};

struct UpdateRunReport {
  enum class Fallback { kNone, kReplan, kTwoPhase, kRollback };

  UpdateRunResult result;

  /// Faults the control plane injected during this run (snapshot diff of
  /// the attached injector; all-zero without one).
  FaultStats faults;

  int retries = 0;            ///< FlowMods re-sent beyond the first attempt
  int recalls = 0;            ///< timed bundles successfully cancelled
  int barrier_rounds = 0;     ///< barrier request/reply round-trips
  int late_activations = 0;   ///< rules active only after their deadline
  SimTime max_lateness = 0;
  std::vector<SimTime> backoff_waits;
  int replans = 0;
  int steps_confirmed = 0;
  Fallback fallback = Fallback::kNone;

  /// True iff the final configuration is fully installed (or, for a
  /// rollback, nothing is claimed: completed stays false).
  bool completed = false;
  bool rolled_back = false;
  /// Rollback only: every touched switch verifiably restored.
  bool rollback_clean = false;

  /// Post-hoc replay of the achieved activation instants through the exact
  /// time-extended verifier.
  bool verified = false;
  timenet::TransitionReport verification;

  /// Human-readable trace of every intervention.
  std::vector<std::string> events;

  SimTime total_backoff() const {
    SimTime t = 0;
    for (const SimTime w : backoff_waits) t += w;
    return t;
  }
};

class ResilientExecutor {
 public:
  explicit ResilientExecutor(Controller& ctrl, RetryPolicy policy = {},
                             std::uint64_t jitter_seed = 0x7E57ED);

  /// Algorithm 5 with recovery: plan with the greedy scheduler, execute
  /// with confirmation, retries and the fallback ladder.
  UpdateRunReport run_chronus(const net::UpdateInstance& inst,
                              const SimFlowSpec& spec, SimTime t0,
                              SimTime step_unit,
                              const core::GreedyOptions& gopts = {});

  /// Executes a precomputed timed schedule with recovery.
  UpdateRunReport run_timed(const net::UpdateInstance& inst,
                            const SimFlowSpec& spec,
                            const timenet::UpdateSchedule& schedule,
                            SimTime t0, SimTime step_unit);

  /// Order replacement with per-round confirmation and the same ladder.
  /// `step_unit` anchors verification quantization and re-plan execution.
  UpdateRunReport run_or(const net::UpdateInstance& inst,
                         const SimFlowSpec& spec, SimTime t0,
                         SimTime step_unit,
                         const opt::OrderOptions& plan_opts = {});

  /// Two-phase with per-phase confirmation; rolls the overlay back if the
  /// install or flip cannot be confirmed. Requires versioned initial rules
  /// (install_initial_rules(..., versioned=true)).
  UpdateRunReport run_two_phase(const net::UpdateInstance& inst,
                                const SimFlowSpec& spec, SimTime t0,
                                SimTime drain_margin, SimTime step_unit);

  const RetryPolicy& policy() const { return policy_; }

 private:
  struct PlannedMod {
    net::NodeId v = net::kInvalidNode;
    timenet::TimePoint step{};
    FlowEntry entry;
    ModId id = 0;
  };
  struct TimedOutcome {
    bool complete = false;
    std::set<net::NodeId> updated;  ///< new rule verifiably active
    SimTime finish = 0;
  };

  FaultStats fault_snapshot() const;
  void note(UpdateRunReport& rep, std::string msg) const;
  SimTime backoff(UpdateRunReport& rep, int attempt);
  SimTime drain_time(const net::UpdateInstance& inst, SimTime step_unit) const;

  FlowEntry new_rule_entry(const net::UpdateInstance& inst,
                           const SimFlowSpec& spec, net::NodeId v) const;
  bool rule_active(SwitchId sw, const FlowEntry& entry) const;

  /// Sends `entry` to `sw` and confirms via barrier + ledger, retrying
  /// with backoff; returns true once the rule is verifiably installed.
  bool ensure_entry(UpdateRunReport& rep, SwitchId sw, const FlowEntry& entry);
  /// Deletes (match, priority) from `sw` and confirms; best-effort.
  bool ensure_absent(UpdateRunReport& rep, SwitchId sw, const Match& match,
                     int priority);

  TimedOutcome execute_timed_once(const net::UpdateInstance& inst,
                                  const SimFlowSpec& spec,
                                  const timenet::UpdateSchedule& schedule,
                                  SimTime t0, SimTime step_unit,
                                  UpdateRunReport& rep);

  /// The degradation ladder, entered with the stalled partial state.
  void recover(const net::UpdateInstance& inst, const SimFlowSpec& spec,
               SimTime step_unit, std::set<net::NodeId> updated,
               UpdateRunReport& rep);

  bool two_phase_overlay(const net::UpdateInstance& inst,
                         const SimFlowSpec& spec, SimTime step_unit,
                         const std::set<net::NodeId>& updated,
                         UpdateRunReport& rep);
  void rollback(const net::UpdateInstance& inst, const SimFlowSpec& spec,
                SimTime step_unit, const std::set<net::NodeId>& updated,
                UpdateRunReport& rep);

  void finalize_applied(const net::UpdateInstance& inst,
                        const SimFlowSpec& spec, UpdateRunReport& rep) const;
  void verify_timed_run(const net::UpdateInstance& inst, SimTime step_unit,
                        UpdateRunReport& rep) const;

  Controller* ctrl_;
  RetryPolicy policy_;
  util::Rng jitter_;
};

}  // namespace chronus::sim
