#include "sim/controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace chronus::sim {

Controller::Controller(EventQueue& eq, Network& net, util::Rng& rng,
                       ControlChannelModel model)
    : eq_(&eq), net_(&net), rng_(&rng), model_(model),
      last_apply_(net.switch_count(), 0) {}

void Controller::advance_clock(SimTime to) {
  clock_ = std::max(clock_, to);
}

SimTime Controller::sample_latency() {
  const double median = static_cast<double>(model_.latency_median);
  const double latency = rng_->log_normal(std::log(median), model_.latency_sigma);
  return std::max<SimTime>(1, static_cast<SimTime>(latency));
}

SimTime Controller::apply_at(SwitchId sw, SimTime at, FlowMod mod) {
  // Per-switch FIFO: a switch applies mods in the order they arrive.
  at = std::max(at, last_apply_[sw]);
  last_apply_[sw] = at;
  SimSwitch* target = &net_->sw(sw);
  eq_->schedule_at(at, [target, at, mod = std::move(mod)] {
    target->apply(at, mod);
  });
  return at;
}

void Controller::install_now(SwitchId sw, FlowEntry entry) {
  FlowMod mod;
  mod.type = FlowModType::kAdd;
  mod.entry = std::move(entry);
  apply_at(sw, clock_, std::move(mod));
}

SimTime Controller::send_flow_mod(SwitchId sw, FlowMod mod) {
  return apply_at(sw, clock_ + sample_latency(), std::move(mod));
}

SimTime Controller::send_timed_flow_mod(SwitchId sw, FlowMod mod,
                                        SimTime execute_at) {
  const SimTime arrival = clock_ + sample_latency();
  SimTime exec = execute_at;
  if (model_.sync_error_stddev > 0) {
    exec += static_cast<SimTime>(std::llround(
        rng_->normal(0.0, static_cast<double>(model_.sync_error_stddev))));
  }
  return apply_at(sw, std::max(arrival, exec), std::move(mod));
}

SimTime Controller::barrier(SwitchId sw) {
  const SimTime request_arrives = clock_ + sample_latency();
  const SimTime done = std::max(request_arrives, last_apply_[sw]);
  return done + sample_latency();
}

void Controller::flush() {
  eq_->run();
  clock_ = std::max(clock_, eq_->now());
}

}  // namespace chronus::sim
