#include "sim/controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace chronus::sim {

Controller::Controller(EventQueue& eq, Network& net, util::Rng& rng,
                       ControlChannelModel model)
    : eq_(&eq), net_(&net), rng_(&rng), model_(model),
      last_apply_(net.switch_count(), 0) {}

void Controller::advance_clock(SimTime to) {
  clock_ = std::max(clock_, to);
}

void Controller::check_switch(SwitchId sw) const {
  if (sw >= last_apply_.size()) {
    throw std::out_of_range("Controller: SwitchId " + std::to_string(sw) +
                            " out of range (network has " +
                            std::to_string(last_apply_.size()) + " switches)");
  }
}

SimTime Controller::sample_latency() {
  const double median = static_cast<double>(model_.latency_median);
  const double latency = rng_->log_normal(std::log(median), model_.latency_sigma);
  return std::max<SimTime>(1, static_cast<SimTime>(latency));
}

void Controller::install_now(SwitchId sw, FlowEntry entry) {
  check_switch(sw);
  FlowMod mod;
  mod.type = FlowModType::kAdd;
  mod.entry = std::move(entry);
  const SimTime at = std::max(clock_, last_apply_[sw]);
  last_apply_[sw] = at;
  ModRecord rec;
  rec.sw = sw;
  rec.mod = mod;
  rec.issued = clock_;
  rec.arrival = at;
  rec.applied = at;
  SimSwitch* target = &net_->sw(sw);
  rec.event = eq_->schedule_at(at, [target, at, mod = std::move(mod)] {
    target->apply(at, mod);
  });
  mods_.push_back(std::move(rec));
}

ModId Controller::issue(SwitchId sw, FlowMod mod, SimTime execute_at,
                        bool timed) {
  check_switch(sw);
  ModRecord rec;
  rec.sw = sw;
  rec.issued = clock_;
  rec.requested_exec = timed ? execute_at : kNever;

  // The main RNG draws (latency, then sync error for timed mods) happen in
  // exactly the seed order; the injector draws only from its own stream.
  SimTime latency = sample_latency();
  FaultInjector::Decision d;
  const bool injecting = faults_ != nullptr && faults_->enabled();
  if (injecting) {
    d = faults_->on_flow_mod(sw);
    if (d.straggler) {
      rec.straggler = true;
      const double stretched = static_cast<double>(latency) *
                               faults_->model().straggler_multiplier;
      latency = std::max(latency, static_cast<SimTime>(stretched));
    }
  }
  SimTime arrival = clock_ + latency;
  if (injecting) {
    const SimTime shaped = faults_->shape_arrival(sw, arrival);
    rec.delayed = shaped != arrival;
    arrival = shaped;
  }
  rec.arrival = arrival;
  rec.mod = mod;

  if (d.drop) {
    rec.dropped = true;
    rec.arrival = kNever;  // the switch never sees it
    mods_.push_back(std::move(rec));
    return mods_.size() - 1;
  }

  SimTime base = arrival;
  if (timed) {
    SimTime exec = execute_at;
    if (model_.sync_error_stddev > 0) {
      exec += static_cast<SimTime>(std::llround(
          rng_->normal(0.0, static_cast<double>(model_.sync_error_stddev))));
    }
    if (injecting) exec += faults_->clock_drift(sw);
    base = std::max(arrival, exec);
  }

  SimTime at;
  if (d.reorder) {
    // Escapes the per-switch FIFO: applies at its own instant even if
    // earlier-sent mods are still queued behind it.
    rec.reordered = true;
    at = base;
    last_apply_[sw] = std::max(last_apply_[sw], at);
  } else {
    at = std::max(base, last_apply_[sw]);
    last_apply_[sw] = at;
  }
  rec.applied = at;

  SimSwitch* target = &net_->sw(sw);
  if (d.reject) {
    rec.rejected = true;
    rec.event = eq_->schedule_at(at, [target, at, m = std::move(mod)] {
      target->reject(at, m);
    });
  } else {
    rec.event = eq_->schedule_at(at, [target, at, m = mod] {
      target->apply(at, m);
    });
    if (d.duplicate) {
      rec.duplicated = true;
      rec.duplicate_event =
          eq_->schedule_at(at, [target, at, m = std::move(mod)] {
            target->apply(at, m);
          });
    }
  }
  mods_.push_back(std::move(rec));
  return mods_.size() - 1;
}

ModId Controller::issue_flow_mod(SwitchId sw, FlowMod mod) {
  return issue(sw, std::move(mod), kNever, /*timed=*/false);
}

ModId Controller::issue_timed_flow_mod(SwitchId sw, FlowMod mod,
                                       SimTime execute_at) {
  return issue(sw, std::move(mod), execute_at, /*timed=*/true);
}

SimTime Controller::send_flow_mod(SwitchId sw, FlowMod mod) {
  const ModRecord& rec = mods_[issue_flow_mod(sw, std::move(mod))];
  return rec.applied != kNever ? rec.applied : rec.issued;
}

SimTime Controller::send_timed_flow_mod(SwitchId sw, FlowMod mod,
                                        SimTime execute_at) {
  const ModRecord& rec =
      mods_[issue_timed_flow_mod(sw, std::move(mod), execute_at)];
  return rec.applied != kNever ? rec.applied : std::max(rec.issued, execute_at);
}

bool Controller::cancel_mod(ModId id) {
  ModRecord& rec = mods_.at(id);
  if (rec.dropped || rec.cancelled || rec.applied == kNever) return false;
  // The recall message races the scheduled execution over the control
  // channel; it wins only if it reaches the switch first.
  const SimTime recall_arrives = clock_ + sample_latency();
  if (recall_arrives >= rec.applied) return false;
  if (!eq_->cancel(rec.event)) return false;  // already executed
  if (rec.duplicate_event != kInvalidEvent) {
    eq_->cancel(rec.duplicate_event);
  }
  rec.cancelled = true;
  // Release the FIFO slot: the switch will never apply this mod, so later
  // mods (a re-sent copy in particular) and barriers must not be clamped
  // behind its apply instant.
  if (last_apply_[rec.sw] == rec.applied) {
    SimTime latest = 0;
    for (const ModRecord& r : mods_) {
      if (r.sw == rec.sw && !r.cancelled && r.applied != kNever) {
        latest = std::max(latest, r.applied);
      }
    }
    last_apply_[rec.sw] = latest;
  }
  return true;
}

std::optional<Action> Controller::active_action(SwitchId sw, const Match& match,
                                                int priority) const {
  // Latest delivered mod on the entry wins; ties on apply time resolve by
  // issue order, matching the event queue's deterministic tie-break.
  const ModRecord* best = nullptr;
  for (const ModRecord& rec : mods_) {
    if (rec.sw != sw || !rec.installed()) continue;
    if (rec.mod.entry.priority != priority || !(rec.mod.entry.match == match)) {
      continue;
    }
    if (best == nullptr || rec.applied >= best->applied) best = &rec;
  }
  if (best == nullptr || best->mod.type == FlowModType::kDeleteStrict) {
    return std::nullopt;
  }
  return best->mod.entry.action;
}

SimTime Controller::activation_time(SwitchId sw, const FlowEntry& entry) const {
  // Replay the delivered mods on (match, priority) in apply order and find
  // when the entry's action last became — and stayed — installed.
  std::vector<const ModRecord*> hits;
  for (const ModRecord& rec : mods_) {
    if (rec.sw != sw || !rec.installed()) continue;
    if (rec.mod.entry.priority != entry.priority ||
        !(rec.mod.entry.match == entry.match)) {
      continue;
    }
    hits.push_back(&rec);
  }
  std::stable_sort(hits.begin(), hits.end(),
                   [](const ModRecord* a, const ModRecord* b) {
                     return a->applied < b->applied;
                   });
  bool active = false;
  SimTime since = kNever;
  for (const ModRecord* rec : hits) {
    const bool installs = rec->mod.type != FlowModType::kDeleteStrict &&
                          rec->mod.entry.action == entry.action;
    if (installs && !active) since = rec->applied;
    if (!installs) since = kNever;
    active = installs;
  }
  return active ? since : kNever;
}

SimTime Controller::barrier(SwitchId sw) {
  check_switch(sw);
  const bool injecting = faults_ != nullptr && faults_->enabled();
  SimTime request_latency = sample_latency();
  if (injecting) request_latency = faults_->shape_latency(request_latency);
  SimTime request_arrives = clock_ + request_latency;
  if (injecting) request_arrives = faults_->shape_arrival(sw, request_arrives);
  const SimTime done = std::max(request_arrives, last_apply_[sw]);
  SimTime reply_latency = sample_latency();
  if (injecting) reply_latency = faults_->shape_latency(reply_latency);
  return done + reply_latency;
}

void Controller::flush() {
  eq_->run();
  clock_ = std::max(clock_, eq_->now());
}

}  // namespace chronus::sim
