// The simulated network: switches plus links with propagation delay,
// capacity and byte counters, built from a net::Graph. Link delays in the
// abstract graph are scaled by `delay_unit` into microseconds; capacities
// by `bps_per_unit` into bits per second.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/graph.hpp"
#include "sim/switch.hpp"
#include "util/step_function.hpp"

namespace chronus::sim {

struct SimLink {
  net::LinkId id = net::kInvalidLink;
  SwitchId src = 0;
  SwitchId dst = 0;
  PortId src_port = kNoPort;  ///< egress port on src
  PortId dst_port = kNoPort;  ///< ingress port on dst
  SimTime delay = 0;          ///< microseconds
  // chronus-lint: allow(raw-unit) physical bit/s rate, not an abstract Capacity
  double capacity_bps = 0.0;

  /// Offered load in bit/s over time, filled in by the traffic tracer. The
  /// paper's byte counters integrate this (buffers absorb transients, so a
  /// counter difference can exceed capacity — exactly Fig. 6's 600 Mbps
  /// reading on a 500 Mbps link).
  util::StepFunction offered_bps;

  /// Bytes forwarded in [0, t) according to the traced offered load.
  double bytes_until(SimTime t) const {
    return offered_bps.integral(0, t) / 8.0 / kSecond;
  }
};

class Network {
 public:
  /// Builds switches and links mirroring `g`. Node/link ids are preserved.
  Network(const net::Graph& g, SimTime delay_unit, double bps_per_unit);

  std::size_t switch_count() const { return switches_.size(); }
  SimSwitch& sw(SwitchId id);
  const SimSwitch& sw(SwitchId id) const;

  std::size_t link_count() const { return links_.size(); }
  SimLink& link(net::LinkId id);
  const SimLink& link(net::LinkId id) const;

  /// The link leaving `u` towards `v`, if present.
  std::optional<net::LinkId> link_between(SwitchId u, SwitchId v) const;

  /// The link leaving `u` through egress port `port`, if present.
  std::optional<net::LinkId> link_on_port(SwitchId u, PortId port) const;

  /// Egress port on u towards v; throws if absent.
  PortId port_towards(SwitchId u, SwitchId v) const;

  const net::Graph& graph() const { return *graph_; }

 private:
  const net::Graph* graph_;
  std::vector<SimSwitch> switches_;
  std::vector<SimLink> links_;
  std::map<std::pair<SwitchId, PortId>, net::LinkId> by_port_;
};

}  // namespace chronus::sim
