// Per-request bump allocation for the planner hot paths.
//
// Chronus plans on the critical path between a request arriving and its
// scheduled install instant: every `G_T` build, path enumeration and B&B
// probe allocates a burst of short-lived nodes/edges/states whose
// lifetimes all end together when the request's plan is emitted. A
// general-purpose heap pays per-object malloc/free plus cache-hostile
// scatter for that pattern; an arena pays one pointer bump per object and
// one `reset()` per request.
//
// Design (DESIGN.md §16):
//
//   * `Arena` owns a chain of geometrically growing slabs ("chunks").
//     Chunk bases are aligned to `kMaxAlign` (64) and every allocation is
//     rounded up to `kMinAlign` (8) granules, so ASan poisoning — which
//     tracks shadow memory at 8-byte granularity — can fence allocations
//     exactly.
//   * `reset()` keeps the chunks and rewinds the cursor. Replaying the
//     same allocation sequence after a reset returns the same addresses
//     (asserted in tests/arena_test.cpp), which is what makes per-request
//     reuse free. Under AddressSanitizer, reset() re-poisons every chunk,
//     so a stale pointer into the previous request traps immediately.
//   * Stats (`ArenaStats`) are plain integers derived from the allocation
//     sequence only — no wall clock, no addresses — so callers can export
//     them as deterministic counters through MetricsRegistry::logical().
//     util sits below obs in the layering DAG (tools/layering.toml), so
//     the arena itself never touches the registry; owners in timenet/opt
//     flush `stats()` through obs::add at the end of a request.
//   * Thread confinement is part of the contract, not an afterthought: an
//     Arena is a Clang thread-safety capability, its raw mutating API
//     requires the capability, and `ArenaScope` is the scoped way to
//     claim it. The `ArenaAllocator` adapter is the blessed doorway for
//     std containers and is exempt from the analysis (the scope that owns
//     the container owns the confinement); a second live ArenaScope on
//     the same arena is a cheap-contract violation at runtime.
//
// The runtime backing switch (`CHRONUS_ARENA`, default on; `off`/`0`/
// `heap` select the legacy heap code paths) lives here too so every hot
// layer keys off one decision point, and tests/benches can flip it
// in-process with `ScopedArenaBacking`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "util/contracts.hpp"
#include "util/thread_annotations.hpp"

// AddressSanitizer manual poisoning: feature-detect on both GCC
// (__SANITIZE_ADDRESS__) and Clang (__has_feature). When ASan is absent
// the poison calls compile to nothing.
// clang-format off
#if defined(__SANITIZE_ADDRESS__)
#  define CHRONUS_ARENA_ASAN 1
#elif defined(__has_feature)
#  if __has_feature(address_sanitizer)
#    define CHRONUS_ARENA_ASAN 1
#  endif
#endif
#ifndef CHRONUS_ARENA_ASAN
#  define CHRONUS_ARENA_ASAN 0
#endif
#if CHRONUS_ARENA_ASAN
extern "C" {
void __asan_poison_memory_region(void const volatile* addr, std::size_t n);
void __asan_unpoison_memory_region(void const volatile* addr, std::size_t n);
}
#endif
// clang-format on

namespace chronus::util {

/// Which backing the hot paths should use this process (or this scope).
enum class ArenaBacking : int {
  kArena = 0,  ///< bump-allocated rewrite (default)
  kHeap = 1,   ///< legacy per-object heap paths (escape hatch)
};

namespace arena_detail {
/// In-process override installed by ScopedArenaBacking; -1 means "none".
inline int g_backing_override = -1;

inline ArenaBacking env_backing() {
  // Computed once per process: the env var is the operator-facing escape
  // hatch (CHRONUS_ARENA=off), the scoped override is the test-facing one.
  static const ArenaBacking cached = [] {
    const char* raw = std::getenv("CHRONUS_ARENA");
    if (raw == nullptr) return ArenaBacking::kArena;
    std::string v(raw);
    for (char& c : v) {
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    }
    if (v == "off" || v == "0" || v == "heap" || v == "false" || v == "no") {
      return ArenaBacking::kHeap;
    }
    return ArenaBacking::kArena;
  }();
  return cached;
}
}  // namespace arena_detail

/// The backing the hot layers should select right now. Reads the scoped
/// override first, then the (cached) CHRONUS_ARENA environment variable.
inline ArenaBacking arena_backing() noexcept {
  const int ov = arena_detail::g_backing_override;
  if (ov >= 0) return static_cast<ArenaBacking>(ov);
  return arena_detail::env_backing();
}

/// True when the arena-backed code paths are selected.
inline bool arena_enabled() noexcept {
  return arena_backing() == ArenaBacking::kArena;
}

/// RAII in-process backing override for tests and benches. Not
/// thread-safe: install before spawning workers (the service snapshot of
/// the flag happens on the submitting thread), exactly like the
/// CHRONUS_METRICS veto.
class ScopedArenaBacking {
 public:
  explicit ScopedArenaBacking(ArenaBacking b) noexcept
      : prev_(arena_detail::g_backing_override) {
    arena_detail::g_backing_override = static_cast<int>(b);
  }
  ~ScopedArenaBacking() { arena_detail::g_backing_override = prev_; }

  ScopedArenaBacking(const ScopedArenaBacking&) = delete;
  ScopedArenaBacking& operator=(const ScopedArenaBacking&) = delete;

 private:
  int prev_;
};

/// Deterministic allocation accounting: pure functions of the allocation
/// sequence (sizes and order), never of addresses or time, so they can be
/// exported as logical() metric counters and replayed bit-identically.
struct ArenaStats {
  std::uint64_t bytes_requested = 0;  ///< granule-rounded bytes handed out
  std::uint64_t allocs = 0;           ///< allocate() calls
  std::uint64_t chunks = 0;           ///< slabs opened over the lifetime
  std::uint64_t resets = 0;           ///< reset() calls
  std::uint64_t high_water = 0;       ///< max live bytes between resets
};

/// A thread-confined bump allocator over geometrically growing slabs.
class CHRONUS_CAPABILITY("arena") Arena {
 public:
  /// Granule size: every allocation is rounded up to a multiple of this,
  /// matching ASan's 8-byte shadow granularity so poisoned fences land
  /// exactly on allocation boundaries.
  static constexpr std::size_t kMinAlign = 8;
  /// Chunk bases are aligned this strongly, which caps the alignment an
  /// allocation may request (enough for every over-aligned SIMD/cacheline
  /// type the hot paths use).
  static constexpr std::size_t kMaxAlign = 64;
  /// First slab size; subsequent slabs double.
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{64} * 1024;

  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes)
      : first_chunk_bytes_(round_up(
            first_chunk_bytes == 0 ? kMinAlign : first_chunk_bytes,
            kMinAlign)) {}

  ~Arena() {
    for (Chunk& c : chunks_) {
#if CHRONUS_ARENA_ASAN
      __asan_unpoison_memory_region(c.data, c.cap);
#endif
      ::operator delete(c.data, std::align_val_t{kMaxAlign});
    }
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` with alignment `align` (power of two,
  /// <= kMaxAlign). Never returns nullptr; throws std::bad_alloc only if
  /// the underlying slab allocation fails.
  void* allocate(std::size_t bytes, std::size_t align) CHRONUS_REQUIRES(this) {
    CHRONUS_EXPECTS(align > 0 && (align & (align - 1)) == 0,
                    "arena alignment must be a power of two");
    CHRONUS_EXPECTS(align <= kMaxAlign, "arena alignment capped at 64");
    const std::size_t a = align < kMinAlign ? kMinAlign : align;
    const std::size_t need = round_up(bytes == 0 ? 1 : bytes, kMinAlign);

    offset_ = round_up(offset_, a);
    while (cur_ >= chunks_.size() || offset_ + need > chunks_[cur_].cap) {
      if (cur_ + 1 < chunks_.size()) {
        // A later, already-opened slab may fit (e.g. an oversized slab
        // opened before a reset); advance into it — this keeps replayed
        // allocation sequences walking the same slabs after reset().
        ++cur_;
        offset_ = 0;
        continue;
      }
      open_chunk(need);
      offset_ = 0;
    }

    unsigned char* p = chunks_[cur_].data + offset_;
    offset_ += need;
#if CHRONUS_ARENA_ASAN
    __asan_unpoison_memory_region(p, need);
#endif
    live_ += need;
    stats_.bytes_requested += need;
    ++stats_.allocs;
    if (live_ > stats_.high_water) stats_.high_water = live_;
    return p;
  }

  /// Typed convenience over allocate(): `n` default-constructible slots.
  template <typename T>
  T* allocate_array(std::size_t n) CHRONUS_REQUIRES(this) {
    static_assert(alignof(T) <= kMaxAlign);
    CHRONUS_EXPECTS(n <= std::numeric_limits<std::size_t>::max() / sizeof(T));
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Return an allocation to the arena. Bump allocators cannot reuse the
  /// space before reset(); under ASan the region is re-poisoned so stale
  /// reads of grown-away container buffers trap immediately.
  void deallocate(void* p, std::size_t bytes) noexcept {
#if CHRONUS_ARENA_ASAN
    if (p != nullptr) {
      __asan_poison_memory_region(p, round_up(bytes == 0 ? 1 : bytes,
                                              kMinAlign));
    }
#else
    (void)p;
    (void)bytes;
#endif
  }

  /// Rewind the cursor to empty, keeping the slabs for reuse. Replaying
  /// the same allocation sequence afterwards returns identical addresses.
  void reset() CHRONUS_REQUIRES(this) {
#if CHRONUS_ARENA_ASAN
    for (Chunk& c : chunks_) __asan_poison_memory_region(c.data, c.cap);
#endif
    cur_ = 0;
    offset_ = 0;
    live_ = 0;
    ++stats_.resets;
  }

  const ArenaStats& stats() const noexcept { return stats_; }

  /// Bytes currently handed out since the last reset.
  std::size_t live_bytes() const noexcept { return live_; }

  // Capability plumbing for ArenaScope. The runtime part is a cheap
  // contract that catches a second concurrent claim of the same arena
  // from within one thread of execution; the compile-time part is the
  // Clang capability the raw API requires.
  void acquire() CHRONUS_ACQUIRE() {
    CHRONUS_EXPECTS(!engaged_, "arena is thread-confined: already claimed");
    engaged_ = true;
  }
  void release() CHRONUS_RELEASE() { engaged_ = false; }

 private:
  struct Chunk {
    unsigned char* data = nullptr;
    std::size_t cap = 0;
  };

  static constexpr std::size_t round_up(std::size_t v,
                                        std::size_t a) noexcept {
    return (v + (a - 1)) & ~(a - 1);
  }

  void open_chunk(std::size_t need) {
    std::size_t cap =
        chunks_.empty() ? first_chunk_bytes_ : chunks_.back().cap * 2;
    if (cap < need) cap = round_up(need, kMinAlign);
    auto* data = static_cast<unsigned char*>(
        ::operator new(cap, std::align_val_t{kMaxAlign}));
#if CHRONUS_ARENA_ASAN
    __asan_poison_memory_region(data, cap);
#endif
    chunks_.push_back(Chunk{data, cap});
    cur_ = chunks_.size() - 1;
    ++stats_.chunks;
  }

  std::size_t first_chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;     ///< index of the slab the cursor is in
  std::size_t offset_ = 0;  ///< bump offset within chunks_[cur_]
  std::size_t live_ = 0;
  bool engaged_ = false;
  ArenaStats stats_;
};

/// Scoped claim of an arena's thread-confinement capability. Library code
/// that calls the raw Arena API does so inside one of these; on Clang a
/// missing scope is a -Wthread-safety error, and at runtime a nested
/// claim is a cheap-contract violation.
class CHRONUS_SCOPED_CAPABILITY ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) CHRONUS_ACQUIRE(arena) : arena_(arena) {
    arena_.acquire();
  }
  ~ArenaScope() CHRONUS_RELEASE() { arena_.release(); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
};

/// C++17 allocator adapter so std containers can live in an arena. The
/// adapter is the sanctioned doorway through the arena's confinement
/// capability: the ArenaScope (or owning object) that created the
/// container is responsible for keeping it thread-confined, so the
/// allocator's calls are exempt from the static analysis.
///
/// A default-constructed adapter (no arena) falls back to the global
/// heap — it exists so moved-from containers and container machinery
/// that default-constructs allocators stay well-defined; hot-path code
/// always passes an arena explicitly.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept  // NOLINT(runtime/explicit)
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) CHRONUS_NO_THREAD_SAFETY_ANALYSIS {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    const std::size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(bytes, alignof(T)));
    }
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      return static_cast<T*>(
          ::operator new(bytes, std::align_val_t{alignof(T)}));
    } else {
      return static_cast<T*>(::operator new(bytes));
    }
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (arena_ != nullptr) {
      arena_->deallocate(p, n * sizeof(T));
      return;
    }
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      ::operator delete(p, std::align_val_t{alignof(T)});
    } else {
      ::operator delete(p);
    }
  }

  Arena* arena() const noexcept { return arena_; }

  friend bool operator==(const ArenaAllocator& a,
                         const ArenaAllocator& b) noexcept {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a,
                         const ArenaAllocator& b) noexcept {
    return !(a == b);
  }

 private:
  template <typename U>
  friend class ArenaAllocator;

  Arena* arena_ = nullptr;
};

/// Shorthand for the common container shapes in the hot paths.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;
using ArenaString =
    std::basic_string<char, std::char_traits<char>, ArenaAllocator<char>>;

}  // namespace chronus::util
