#include "util/step_function.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace chronus::util {

StepFunction::StepFunction(double initial) : initial_(initial) {}

double StepFunction::at(Time t) const {
  auto it = steps_.upper_bound(t);
  if (it == steps_.begin()) return initial_;
  return std::prev(it)->second;
}

void StepFunction::add(Time from, Time to, double delta) {
  if (from >= to) throw std::invalid_argument("StepFunction::add: empty interval");
  if (delta == 0.0) return;
  // Ensure breakpoints exist at `from` and `to`, carrying the prior value.
  const double at_from = at(from);
  const double at_to = at(to);
  steps_[from] = at_from;  // may overwrite with identical value
  steps_[to] = at_to;
  auto it = steps_.find(from);
  const auto end = steps_.find(to);
  for (; it != end; ++it) it->second += delta;
}

void StepFunction::add_from(Time from, double delta) {
  if (delta == 0.0) return;
  const double at_from = at(from);
  steps_[from] = at_from;
  for (auto it = steps_.find(from); it != steps_.end(); ++it) it->second += delta;
}

double StepFunction::max_over(Time from, Time to) const {
  if (from >= to) throw std::invalid_argument("StepFunction::max_over: empty interval");
  double best = at(from);
  for (auto it = steps_.upper_bound(from); it != steps_.end() && it->first < to; ++it) {
    best = std::max(best, it->second);
  }
  return best;
}

double StepFunction::integral(Time from, Time to) const {
  if (from > to) throw std::invalid_argument("StepFunction::integral: from > to");
  if (from == to) return 0.0;
  double acc = 0.0;
  Time cursor = from;
  double value = at(from);
  for (auto it = steps_.upper_bound(from); it != steps_.end() && it->first < to; ++it) {
    acc += value * static_cast<double>(it->first - cursor);
    cursor = it->first;
    value = it->second;
  }
  acc += value * static_cast<double>(to - cursor);
  return acc;
}

StepFunction::Time StepFunction::first_time_above(Time from, Time to,
                                                  double threshold) const {
  if (from >= to) return to;
  if (at(from) > threshold) return from;
  for (auto it = steps_.upper_bound(from); it != steps_.end() && it->first < to; ++it) {
    if (it->second > threshold) return it->first;
  }
  return to;
}

std::vector<std::pair<StepFunction::Time, double>> StepFunction::breakpoints() const {
  return {steps_.begin(), steps_.end()};
}

void StepFunction::normalize(double eps) {
  double prev = initial_;
  for (auto it = steps_.begin(); it != steps_.end();) {
    if (std::abs(it->second - prev) <= eps) {
      it = steps_.erase(it);
    } else {
      prev = it->second;
      ++it;
    }
  }
}

}  // namespace chronus::util
