#include "util/cli.hpp"

#include <stdexcept>

namespace chronus::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --flag, got: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

bool Cli::has(const std::string& name) const {
  used_[name] = true;
  return values_.count(name) > 0;
}

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  used_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto s = get(name, "");
  return s.empty() ? fallback : std::stoll(s);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto s = get(name, "");
  return s.empty() ? fallback : std::stod(s);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto s = get(name, "");
  if (s.empty()) return fallback;
  return s == "true" || s == "1" || s == "yes";
}

std::vector<std::string> Cli::unused() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : values_) {
    if (!used_.count(k)) out.push_back(k);
  }
  return out;
}

}  // namespace chronus::util
