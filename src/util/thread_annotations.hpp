// Compiler-enforced lock contracts: Clang thread-safety-analysis attribute
// wrappers plus the annotated synchronisation vocabulary the concurrent
// modules are written in.
//
// The macros expand to Clang `capability` attributes when the compiler
// supports them (`-Wthread-safety`, turned into an error through
// chronus_strict on Clang builds) and to nothing elsewhere, so GCC builds
// compile the exact same code with zero overhead and zero syntax drift.
//
// Library code does not take `std::mutex` directly: libstdc++'s mutex is
// not capability-annotated, so Clang's analysis cannot see its lock() and
// unlock() and every annotated member would false-positive. Instead the
// concurrent classes (obs::MetricsRegistry, service::CapacityLedger,
// service::WorkerPool) hold a `util::Mutex` and scope their critical
// sections with `util::MutexLock`; condition waits go through
// `util::CondVar`, whose wait() is annotated CHRONUS_REQUIRES(mu) so a
// wait outside the critical section is a compile error on Clang.
//
// Conventions (enforced by `-Wthread-safety -Werror` on Clang and spelled
// out in DESIGN.md §12):
//
//   * every member written under a mutex carries CHRONUS_GUARDED_BY(mu_);
//   * a member function that takes the lock itself is annotated
//     CHRONUS_EXCLUDES(mu_) (calling it with the lock held deadlocks);
//   * a private helper that expects the caller to hold the lock is
//     annotated CHRONUS_REQUIRES(mu_) and never locks;
//   * data handed to worker threads by ownership transfer (the service's
//     plan/exec result slots, synchronized by the WorkerPool::wait_idle
//     barrier) is documented at the declaration instead — barrier
//     hand-off is outside what the static analysis can express.
#pragma once

#include <condition_variable>
#include <mutex>

// clang-format off
#if defined(__clang__) && defined(__has_attribute)
#  if __has_attribute(capability)
#    define CHRONUS_THREAD_ANNOTATION(x) __attribute__((x))
#  endif
#endif
#ifndef CHRONUS_THREAD_ANNOTATION
#  define CHRONUS_THREAD_ANNOTATION(x)  // not Clang: annotations vanish
#endif

#define CHRONUS_CAPABILITY(x) CHRONUS_THREAD_ANNOTATION(capability(x))
#define CHRONUS_SCOPED_CAPABILITY CHRONUS_THREAD_ANNOTATION(scoped_lockable)
#define CHRONUS_GUARDED_BY(x) CHRONUS_THREAD_ANNOTATION(guarded_by(x))
#define CHRONUS_PT_GUARDED_BY(x) CHRONUS_THREAD_ANNOTATION(pt_guarded_by(x))
#define CHRONUS_ACQUIRED_BEFORE(...) \
  CHRONUS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CHRONUS_ACQUIRED_AFTER(...) \
  CHRONUS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define CHRONUS_REQUIRES(...) \
  CHRONUS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CHRONUS_ACQUIRE(...) \
  CHRONUS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CHRONUS_RELEASE(...) \
  CHRONUS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CHRONUS_TRY_ACQUIRE(...) \
  CHRONUS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define CHRONUS_EXCLUDES(...) \
  CHRONUS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define CHRONUS_ASSERT_CAPABILITY(x) \
  CHRONUS_THREAD_ANNOTATION(assert_capability(x))
#define CHRONUS_RETURN_CAPABILITY(x) \
  CHRONUS_THREAD_ANNOTATION(lock_returned(x))
#define CHRONUS_NO_THREAD_SAFETY_ANALYSIS \
  CHRONUS_THREAD_ANNOTATION(no_thread_safety_analysis)
// clang-format on

namespace chronus::util {

/// A std::mutex the thread-safety analysis can see. Same cost, same
/// semantics; the annotations are compile-time only.
class CHRONUS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CHRONUS_ACQUIRE() { mu_.lock(); }
  void unlock() CHRONUS_RELEASE() { mu_.unlock(); }
  bool try_lock() CHRONUS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII critical section over util::Mutex — the annotated stand-in for
/// std::lock_guard. chronus_analyzer's lock-discipline pass recognises it
/// alongside the std guards.
class CHRONUS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CHRONUS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CHRONUS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to util::Mutex. wait() requires the caller to
/// hold the mutex (a compile error otherwise on Clang); the capability is
/// held again when wait returns, exactly like std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// No predicate overload on purpose: a predicate lambda cannot carry
  /// REQUIRES portably, so waits are written as explicit loops —
  /// `while (!cond) cv.wait(mu);` — which the analysis verifies directly.
  void wait(Mutex& mu) CHRONUS_REQUIRES(mu) {
    std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);
    cv_.wait(relock);
    relock.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace chronus::util
