// Piecewise-constant functions of (integer) time.
//
// StepFunction is the workhorse of the data-plane model: per-link load
// x_{u,v}(t) as flow segments come and go, and per-link byte counters as the
// integral of the rate function. Keys are int64 time units (microseconds in
// the simulator, abstract steps in the algorithms); values are doubles.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace chronus::util {

class StepFunction {
 public:
  using Time = std::int64_t;

  /// Creates f(t) == initial for all t.
  explicit StepFunction(double initial = 0.0);

  /// f(t) += delta for t in [from, to). Requires from < to.
  void add(Time from, Time to, double delta);

  /// f(t) += delta for all t >= from.
  void add_from(Time from, double delta);

  /// Value at time t.
  double at(Time t) const;

  /// Maximum over [from, to). Requires from < to.
  double max_over(Time from, Time to) const;

  /// Integral over [from, to). Requires from <= to.
  double integral(Time from, Time to) const;

  /// Earliest t in [from, to) with f(t) > threshold, or nullopt-like
  /// sentinel `to` when the function never exceeds the threshold.
  Time first_time_above(Time from, Time to, double threshold) const;

  /// Breakpoints as (time, new value) pairs, plus the initial value.
  /// The function equals initial_value() before the first breakpoint.
  std::vector<std::pair<Time, double>> breakpoints() const;
  double initial_value() const { return initial_; }

  /// Removes breakpoints that do not change the value (within eps).
  void normalize(double eps = 1e-12);

 private:
  double initial_;
  // Maps breakpoint time -> value from that time onward.
  std::map<Time, double> steps_;
};

}  // namespace chronus::util
