#include "util/table.hpp"

#include <algorithm>
#include <sstream>

namespace chronus::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << cell << std::string(widths[c] - cell.size(), ' ');
      if (c + 1 < widths.size()) os << "  ";
    }
    os << '\n';
    return os.str();
  };
  std::ostringstream os;
  os << render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) os << render_row(row);
  return os.str();
}

std::string bar(double value, double max_value, int width) {
  if (max_value <= 0.0 || value <= 0.0) return "";
  const int n = std::min<int>(
      width, static_cast<int>(value / max_value * width + 0.5));
  return std::string(static_cast<std::size_t>(std::max(n, 0)), '#');
}

std::string bar_chart(const std::vector<std::pair<std::string, double>>& series,
                      int width) {
  double maxv = 0.0;
  std::size_t label_w = 0;
  for (const auto& [label, v] : series) {
    maxv = std::max(maxv, v);
    label_w = std::max(label_w, label.size());
  }
  std::ostringstream os;
  for (const auto& [label, v] : series) {
    os << label << std::string(label_w - label.size(), ' ') << "  ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%10.2f", v);
    os << buf << "  |" << bar(v, maxv, width) << '\n';
  }
  return os.str();
}

}  // namespace chronus::util
