// Minimal command-line flag parser for bench and example binaries.
// Supports --name=value and --name value; unknown flags are an error so
// typos in experiment sweeps fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace chronus::util {

class Cli {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Flags seen but never queried; used to reject typos at end of setup.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace chronus::util
