// Summary statistics used by the benchmark harness: mean/stddev/percentiles,
// box-plot five-number summaries (Fig. 9) and empirical CDFs (Fig. 11).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace chronus::util {

/// Five-number summary plus mean, as shown in the paper's box plots.
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t count = 0;
};

/// Accumulates samples; all queries are over the samples seen so far.
class Summary {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const;
  double mean() const;
  double stddev() const;  ///< sample standard deviation (n-1 denominator)
  double min() const;
  double max() const;

  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;

  BoxStats box() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Empirical CDF over a sample set.
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  /// P[X <= x].
  double at(double x) const;

  /// Smallest sample v with P[X <= v] >= q, q in (0, 1].
  double quantile(double q) const;

  /// Evaluation points for plotting: (value, cumulative fraction) pairs.
  std::vector<std::pair<double, double>> points() const;

  std::size_t count() const { return samples_.size(); }

 private:
  std::vector<double> samples_;  // sorted
};

/// Mean of a vector; returns 0 for empty input.
double mean_of(const std::vector<double>& xs);

/// Formats a double with fixed precision; helper for report tables.
std::string fmt(double x, int precision = 2);

}  // namespace chronus::util
