// Wall-clock stopwatch and deadline used by the branch-and-bound solvers
// (Fig. 10 reproduces the paper's 600 s timeout behaviour at smaller scale).
#pragma once

#include <chrono>

namespace chronus::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A deadline; `expired()` is cheap enough for inner search loops.
class Deadline {
 public:
  /// seconds <= 0 means "no deadline".
  explicit Deadline(double seconds)
      : enabled_(seconds > 0),
        end_(Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(
                                    seconds > 0 ? seconds : 0))) {}

  bool expired() const { return enabled_ && Clock::now() >= end_; }

 private:
  using Clock = std::chrono::steady_clock;
  bool enabled_;
  Clock::time_point end_;
};

}  // namespace chronus::util
