#include "util/rng.hpp"

#include <cmath>

namespace chronus::util {

std::uint64_t split_mix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = split_mix64(sm);
  // All-zero state is the one invalid state for xoshiro; seed==0 with
  // SplitMix cannot produce it, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t r = next();
  while (r >= limit) r = next();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) { return uniform01() < p; }

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u = 0.0;
  while (u == 0.0) u = uniform01();
  const double v = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * 3.14159265358979323846 * v;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::log_normal(double log_median, double sigma) {
  return std::exp(normal(log_median, sigma));
}

std::size_t Rng::index(std::size_t n) {
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::fork(std::uint64_t k) {
  // Mix the child index into fresh state drawn from this generator.
  std::uint64_t base = next() ^ (0x632be59bd9b4e019ULL * (k + 1));
  return Rng(base);
}

}  // namespace chronus::util
