// ASCII report rendering for the benchmark harness: aligned tables and
// simple inline bar/series plots, so each bench binary prints the rows and
// series of the paper figure it regenerates.
#pragma once

#include <string>
#include <vector>

namespace chronus::util {

/// Column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with a header separator; missing cells print empty.
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Horizontal ASCII bar scaled so that `max_value` spans `width` chars.
std::string bar(double value, double max_value, int width = 40);

/// Renders a labelled series as "label  value  <bar>" lines.
std::string bar_chart(const std::vector<std::pair<std::string, double>>& series,
                      int width = 40);

}  // namespace chronus::util
