// The contract framework of the invariant firewall.
//
// Chronus' correctness rests on invariants that are cheap to state and
// expensive to rediscover after a silent break: demands and capacities are
// never negative, every TimeExtendedNetwork access stays inside
// [t_begin, t_end], ledger releases balance reserves, schedules grow
// monotonically. These macros make the invariants executable at three
// build levels selected by the CHRONUS_CONTRACTS CMake option:
//
//   off    (CHRONUS_CONTRACT_LEVEL 0) — every macro compiles to nothing;
//          for benchmarking the raw algorithm cost.
//   cheap  (CHRONUS_CONTRACT_LEVEL 1, the default) — O(1) pre/post/
//          invariant checks are active; audit checks compile to nothing.
//   audit  (CHRONUS_CONTRACT_LEVEL 2) — additionally runs the expensive
//          CHRONUS_AUDIT_* checks (full-structure scans); the sanitizer
//          presets build at this level.
//
// A violated contract throws chronus::util::ContractViolation (a
// std::logic_error) carrying the expression, the kind of contract and the
// source location, so tests can assert on violations without death tests
// and services can fail one request instead of the whole process.
#pragma once

#include <stdexcept>
#include <string>

#ifndef CHRONUS_CONTRACT_LEVEL
#define CHRONUS_CONTRACT_LEVEL 1
#endif

namespace chronus::util {

class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file,
                    long line, const std::string& note)
      : std::logic_error(format(kind, expr, file, line, note)),
        kind_(kind),
        expr_(expr),
        file_(file),
        line_(line) {}

  const char* kind() const { return kind_; }   ///< "precondition", ...
  const char* expr() const { return expr_; }   ///< the failed expression
  const char* file() const { return file_; }
  long line() const { return line_; }

 private:
  static std::string format(const char* kind, const char* expr,
                            const char* file, long line,
                            const std::string& note) {
    std::string out;
    out += kind;
    out += " violated: ";
    out += expr;
    out += " [";
    out += file;
    out += ":";
    out += std::to_string(line);
    out += "]";
    if (!note.empty()) {
      out += " — ";
      out += note;
    }
    return out;
  }

  const char* kind_;
  const char* expr_;
  const char* file_;
  long line_;
};

[[noreturn]] inline void contract_failed(const char* kind, const char* expr,
                                         const char* file, long line,
                                         const std::string& note = {}) {
  throw ContractViolation(kind, expr, file, line, note);
}

/// Level active in this translation unit (0 off, 1 cheap, 2 audit).
inline constexpr int contract_level() { return CHRONUS_CONTRACT_LEVEL; }

}  // namespace chronus::util

// The macros take an optional trailing message: CHRONUS_EXPECTS(x > 0) or
// CHRONUS_EXPECTS(x > 0, "x is the demand and must be positive"). The
// message expression is only evaluated on failure.
#define CHRONUS_CONTRACT_IMPL_(kind, ...)                                     \
  CHRONUS_CONTRACT_SELECT_(__VA_ARGS__, CHRONUS_CONTRACT_MSG_,                \
                           CHRONUS_CONTRACT_NOMSG_)(kind, __VA_ARGS__)
#define CHRONUS_CONTRACT_SELECT_(a, b, which, ...) which
#define CHRONUS_CONTRACT_NOMSG_(kind, cond)                                   \
  do {                                                                        \
    if (!(cond))                                                              \
      ::chronus::util::contract_failed(kind, #cond, __FILE__, __LINE__);      \
  } while (false)
#define CHRONUS_CONTRACT_MSG_(kind, cond, msg)                                \
  do {                                                                        \
    if (!(cond))                                                              \
      ::chronus::util::contract_failed(kind, #cond, __FILE__, __LINE__,       \
                                       (msg));                                \
  } while (false)
#define CHRONUS_CONTRACT_OFF_(...)                                            \
  do {                                                                        \
  } while (false)

#if CHRONUS_CONTRACT_LEVEL >= 1
/// Precondition on a public API's arguments / observable state.
#define CHRONUS_EXPECTS(...) CHRONUS_CONTRACT_IMPL_("precondition", __VA_ARGS__)
/// Postcondition before returning from a public API.
#define CHRONUS_ENSURES(...) CHRONUS_CONTRACT_IMPL_("postcondition", __VA_ARGS__)
/// Internal consistency that must hold between operations.
#define CHRONUS_INVARIANT(...) CHRONUS_CONTRACT_IMPL_("invariant", __VA_ARGS__)
#else
#define CHRONUS_EXPECTS(...) CHRONUS_CONTRACT_OFF_(__VA_ARGS__)
#define CHRONUS_ENSURES(...) CHRONUS_CONTRACT_OFF_(__VA_ARGS__)
#define CHRONUS_INVARIANT(...) CHRONUS_CONTRACT_OFF_(__VA_ARGS__)
#endif

#if CHRONUS_CONTRACT_LEVEL >= 2
/// Expensive (super-constant) variants, active only under audit builds:
/// whole-schedule monotonicity scans, full ledger balance recomputation.
#define CHRONUS_AUDIT_EXPECTS(...) \
  CHRONUS_CONTRACT_IMPL_("audit precondition", __VA_ARGS__)
#define CHRONUS_AUDIT_ENSURES(...) \
  CHRONUS_CONTRACT_IMPL_("audit postcondition", __VA_ARGS__)
#define CHRONUS_AUDIT_INVARIANT(...) \
  CHRONUS_CONTRACT_IMPL_("audit invariant", __VA_ARGS__)
#else
#define CHRONUS_AUDIT_EXPECTS(...) CHRONUS_CONTRACT_OFF_(__VA_ARGS__)
#define CHRONUS_AUDIT_ENSURES(...) CHRONUS_CONTRACT_OFF_(__VA_ARGS__)
#define CHRONUS_AUDIT_INVARIANT(...) CHRONUS_CONTRACT_OFF_(__VA_ARGS__)
#endif
