// Deterministic random-number generation for reproducible experiments.
//
// All randomness in the repository flows through util::Rng so that every
// test, example and benchmark run is exactly reproducible from a seed.
// The engine is xoshiro256** seeded via SplitMix64, which has far better
// statistical behaviour than std::minstd and is cheaper than std::mt19937.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace chronus::util {

/// Counter-based seed expander; used to derive stream seeds.
std::uint64_t split_mix64(std::uint64_t& state);

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator, so it can be
/// plugged into <random> distributions as well.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Standard normal via Box-Muller.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal: exp(N(log_median, sigma)). Median of the result is
  /// exp(log_median); used for control-plane rule-install latencies.
  double log_normal(double log_median, double sigma);

  /// Uniformly selects an index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derives an independent child generator; stream `k` of this seed.
  Rng fork(std::uint64_t k);

 private:
  std::array<std::uint64_t, 4> s_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace chronus::util
