// Unit-safe strong types for the quantities Chronus reasons about.
//
// The paper's invariants mix three incompatible axes — schedule time
// (integral steps / link-delay units), traffic demand (flow units) and
// link capacity (the budget demands are charged against). Raw `double` and
// `std::int64_t` aliases let the axes interconvert silently, so a slot
// index can masquerade as a time step and a capacity can be added to a
// demand without any diagnostic. These wrappers make each axis a distinct
// type with explicit construction and only the physically meaningful
// operations:
//
//   TimeStep  — a *point* on the abstract schedule grid. Durations are
//               plain std::int64_t: point ± duration -> point,
//               point - point -> duration. point + point does not compile.
//   Demand    — flow volume. Closed under +/-, scalable by dimensionless
//               factors; Demand/Demand -> double (a ratio).
//   Capacity  — a link's budget. Closed under +/-, and chargeable:
//               Capacity - Demand -> Capacity (remaining headroom).
//               Demands compare against capacities (load <= cap), but a
//               capacity never implicitly becomes a demand or vice versa.
//
// Everything is constexpr and the representation is exactly the raw value
// (no tag bytes), so the types cost nothing at runtime; `.count()` /
// `.value()` are the audited escape hatches to the representation.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace chronus::util {

// ---------------------------------------------------------------------------
// TimeStep: integral time point on the schedule grid.

class TimeStep {
 public:
  using rep = std::int64_t;

  constexpr TimeStep() = default;
  constexpr explicit TimeStep(rep v) : v_(v) {}

  /// The underlying step index (durations and raw arithmetic).
  constexpr rep count() const { return v_; }

  constexpr auto operator<=>(const TimeStep&) const = default;

  constexpr TimeStep& operator+=(rep d) {
    v_ += d;
    return *this;
  }
  constexpr TimeStep& operator-=(rep d) {
    v_ -= d;
    return *this;
  }
  constexpr TimeStep& operator++() {
    ++v_;
    return *this;
  }
  constexpr TimeStep operator++(int) {
    TimeStep old = *this;
    ++v_;
    return old;
  }
  constexpr TimeStep& operator--() {
    --v_;
    return *this;
  }
  constexpr TimeStep operator--(int) {
    TimeStep old = *this;
    --v_;
    return old;
  }

 private:
  rep v_ = 0;
};

constexpr TimeStep operator+(TimeStep t, TimeStep::rep d) {
  return TimeStep{t.count() + d};
}
constexpr TimeStep operator+(TimeStep::rep d, TimeStep t) {
  return TimeStep{d + t.count()};
}
constexpr TimeStep operator-(TimeStep t, TimeStep::rep d) {
  return TimeStep{t.count() - d};
}
/// Point minus point is a duration in steps.
constexpr TimeStep::rep operator-(TimeStep a, TimeStep b) {
  return a.count() - b.count();
}

inline std::ostream& operator<<(std::ostream& os, TimeStep t) {
  return os << t.count();
}

// ---------------------------------------------------------------------------
// Demand: flow volume in demand units.

class Demand {
 public:
  constexpr Demand() = default;
  constexpr explicit Demand(double v) : v_(v) {}

  constexpr double value() const { return v_; }

  constexpr auto operator<=>(const Demand&) const = default;

  constexpr Demand operator-() const { return Demand{-v_}; }
  constexpr Demand& operator+=(Demand o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Demand& operator-=(Demand o) {
    v_ -= o.v_;
    return *this;
  }
  constexpr Demand& operator*=(double s) {
    v_ *= s;
    return *this;
  }

 private:
  double v_ = 0.0;
};

constexpr Demand operator+(Demand a, Demand b) {
  return Demand{a.value() + b.value()};
}
constexpr Demand operator-(Demand a, Demand b) {
  return Demand{a.value() - b.value()};
}
constexpr Demand operator*(Demand d, double s) { return Demand{d.value() * s}; }
constexpr Demand operator*(double s, Demand d) { return Demand{s * d.value()}; }
constexpr Demand operator/(Demand d, double s) { return Demand{d.value() / s}; }
/// Ratio of two demands is dimensionless.
constexpr double operator/(Demand a, Demand b) { return a.value() / b.value(); }

inline std::ostream& operator<<(std::ostream& os, Demand d) {
  return os << d.value();
}

// ---------------------------------------------------------------------------
// Capacity: a link's budget, chargeable by demands.

class Capacity {
 public:
  constexpr Capacity() = default;
  constexpr explicit Capacity(double v) : v_(v) {}

  constexpr double value() const { return v_; }

  /// The largest demand this budget can absorb (an explicit, audited
  /// crossing between the axes — e.g. ledger headroom handed to a planner).
  constexpr Demand as_demand() const { return Demand{v_}; }

  constexpr auto operator<=>(const Capacity&) const = default;

  constexpr Capacity& operator+=(Capacity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Capacity& operator-=(Capacity o) {
    v_ -= o.v_;
    return *this;
  }
  constexpr Capacity& operator-=(Demand d) {
    v_ -= d.value();
    return *this;
  }
  constexpr Capacity& operator+=(Demand d) {
    v_ += d.value();
    return *this;
  }

 private:
  double v_ = 0.0;
};

constexpr Capacity operator+(Capacity a, Capacity b) {
  return Capacity{a.value() + b.value()};
}
constexpr Capacity operator-(Capacity a, Capacity b) {
  return Capacity{a.value() - b.value()};
}
/// Charging / refunding a demand against a budget stays a budget.
constexpr Capacity operator-(Capacity c, Demand d) {
  return Capacity{c.value() - d.value()};
}
constexpr Capacity operator+(Capacity c, Demand d) {
  return Capacity{c.value() + d.value()};
}
constexpr Capacity operator*(Capacity c, double s) {
  return Capacity{c.value() * s};
}
constexpr Capacity operator*(double s, Capacity c) {
  return Capacity{s * c.value()};
}
constexpr Capacity operator/(Capacity c, double s) {
  return Capacity{c.value() / s};
}
/// Ratio of two capacities is dimensionless.
constexpr double operator/(Capacity a, Capacity b) {
  return a.value() / b.value();
}
/// Utilization: committed demand over capacity.
constexpr double operator/(Demand d, Capacity c) {
  return d.value() / c.value();
}

// Loads compare against budgets (the congestion-freedom check), in both
// spellings; the mixed comparison never constructs a temporary of the
// other axis.
constexpr bool operator<(Demand d, Capacity c) { return d.value() < c.value(); }
constexpr bool operator<=(Demand d, Capacity c) {
  return d.value() <= c.value();
}
constexpr bool operator>(Demand d, Capacity c) { return d.value() > c.value(); }
constexpr bool operator>=(Demand d, Capacity c) {
  return d.value() >= c.value();
}
constexpr bool operator<(Capacity c, Demand d) { return c.value() < d.value(); }
constexpr bool operator<=(Capacity c, Demand d) {
  return c.value() <= d.value();
}
constexpr bool operator>(Capacity c, Demand d) { return c.value() > d.value(); }
constexpr bool operator>=(Capacity c, Demand d) {
  return c.value() >= d.value();
}

inline std::ostream& operator<<(std::ostream& os, Capacity c) {
  return os << c.value();
}

/// Sizing a budget from a demand (topology generators and workloads): a
/// capacity that holds `flows` concurrent flows of demand `d`. Like
/// Capacity::as_demand, an explicit, greppable crossing between the axes.
constexpr Capacity capacity_for(Demand d, double flows = 1.0) {
  return Capacity{d.value() * flows};
}

}  // namespace chronus::util

template <>
struct std::hash<chronus::util::TimeStep> {
  std::size_t operator()(chronus::util::TimeStep t) const noexcept {
    return std::hash<std::int64_t>{}(t.count());
  }
};

// Without these specializations the primary std::numeric_limits template
// matches and silently yields a value-initialized (zero) bound from
// min()/max() instead of an extreme one. Forward the representations'
// limits.
template <>
struct std::numeric_limits<chronus::util::TimeStep> {
  static constexpr bool is_specialized = true;
  static constexpr chronus::util::TimeStep min() noexcept {
    return chronus::util::TimeStep{std::numeric_limits<std::int64_t>::min()};
  }
  static constexpr chronus::util::TimeStep max() noexcept {
    return chronus::util::TimeStep{std::numeric_limits<std::int64_t>::max()};
  }
  static constexpr chronus::util::TimeStep lowest() noexcept { return min(); }
};

template <>
struct std::numeric_limits<chronus::util::Demand> {
  static constexpr bool is_specialized = true;
  static constexpr chronus::util::Demand min() noexcept {
    return chronus::util::Demand{std::numeric_limits<double>::min()};
  }
  static constexpr chronus::util::Demand max() noexcept {
    return chronus::util::Demand{std::numeric_limits<double>::max()};
  }
  static constexpr chronus::util::Demand lowest() noexcept {
    return chronus::util::Demand{std::numeric_limits<double>::lowest()};
  }
};

template <>
struct std::numeric_limits<chronus::util::Capacity> {
  static constexpr bool is_specialized = true;
  static constexpr chronus::util::Capacity min() noexcept {
    return chronus::util::Capacity{std::numeric_limits<double>::min()};
  }
  static constexpr chronus::util::Capacity max() noexcept {
    return chronus::util::Capacity{std::numeric_limits<double>::max()};
  }
  static constexpr chronus::util::Capacity lowest() noexcept {
    return chronus::util::Capacity{std::numeric_limits<double>::lowest()};
  }
};
