#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/contracts.hpp"

namespace chronus::util {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void Summary::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_valid_ = false;
}

double Summary::sum() const {
  double s = 0.0;
  for (double x : samples_) s += x;
  return s;
}

double Summary::mean() const {
  return samples_.empty() ? 0.0 : sum() / static_cast<double>(count());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::min() const {
  CHRONUS_EXPECTS(!samples_.empty(), "Summary::min on empty set");
  ensure_sorted();
  return sorted_.front();
}

double Summary::max() const {
  CHRONUS_EXPECTS(!samples_.empty(), "Summary::max on empty set");
  ensure_sorted();
  return sorted_.back();
}

double Summary::percentile(double p) const {
  CHRONUS_EXPECTS(!samples_.empty(), "Summary::percentile on empty set");
  CHRONUS_EXPECTS(p >= 0.0 && p <= 100.0, "percentile out of [0, 100]");
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

BoxStats Summary::box() const {
  BoxStats b;
  if (samples_.empty()) return b;
  b.min = min();
  b.q1 = percentile(25);
  b.median = percentile(50);
  b.q3 = percentile(75);
  b.max = max();
  b.mean = mean();
  b.count = count();
  return b;
}

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end());
}

double Cdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Cdf::quantile on empty set");
  if (q <= 0.0 || q > 1.0) throw std::invalid_argument("quantile out of range");
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size()))) - 1;
  return samples_[std::min(rank, samples_.size() - 1)];
}

std::vector<std::pair<double, double>> Cdf::points() const {
  std::vector<std::pair<double, double>> pts;
  pts.reserve(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    pts.emplace_back(samples_[i],
                     static_cast<double>(i + 1) / static_cast<double>(samples_.size()));
  }
  return pts;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

std::string fmt(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, x);
  return buf;
}

}  // namespace chronus::util
