// Machine-readable benchmark output: one JSON document per run, with the
// run's parameters under "meta" and one object per result row under
// "rows". Bench harnesses keep their human-readable tables on stdout and
// mirror the rows here when --json=<path> is given, so successive PRs can
// diff bench trajectories (BENCH_*.json) instead of scraping tables.
//
//   util::JsonWriter out("ext_service.json", "ext_service");
//   out.meta("seed", 1);
//   out.begin_row();
//   out.field("rate_hz", 40.0);
//   out.field("mode", "joint");
//   out.end_row();
//   // closed (and flushed) on destruction
#pragma once

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>

namespace chronus::util {

class JsonWriter {
 public:
  /// Opens `path` and emits the document prologue; throws
  /// std::runtime_error if the file cannot be created.
  JsonWriter(const std::string& path, const std::string& bench);

  /// Writes the document to an already-open stream (e.g. an
  /// std::ostringstream in tests). The stream must outlive the writer.
  JsonWriter(std::ostream& out, const std::string& bench);

  /// Closes the document; safe if rows were never written.
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  /// Run parameters; only valid before the first begin_row().
  void meta(const std::string& key, double value);
  void meta(const std::string& key, std::int64_t value);
  void meta(const std::string& key, const std::string& value);

  void begin_row();
  void field(const std::string& key, double value);
  void field(const std::string& key, std::int64_t value);
  void field(const std::string& key, std::uint64_t value);
  void field(const std::string& key, bool value);
  void field(const std::string& key, const std::string& value);
  void end_row();

 private:
  void meta_key(const std::string& key);
  void field_key(const std::string& key);
  void write_number(double value);

  std::ofstream file_;   // owned sink for the path constructor
  std::ostream* out_;    // the active sink (== &file_ or caller's stream)
  bool meta_open_ = false;   // inside the "meta" object
  bool rows_open_ = false;   // "rows" array started
  bool in_row_ = false;
  bool first_meta_ = true;
  bool first_row_ = true;
  bool first_field_ = true;
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

}  // namespace chronus::util
