#include "util/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace chronus::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(const std::string& path, const std::string& bench)
    : file_(path), out_(&file_) {
  if (!file_) throw std::runtime_error("cannot create " + path);
  *out_ << "{\"bench\":\"" << json_escape(bench) << "\"";
}

JsonWriter::JsonWriter(std::ostream& out, const std::string& bench)
    : out_(&out) {
  *out_ << "{\"bench\":\"" << json_escape(bench) << "\"";
}

JsonWriter::~JsonWriter() {
  if (in_row_) end_row();
  if (meta_open_) *out_ << "}";
  if (rows_open_) {
    *out_ << "\n]";
  } else {
    *out_ << ",\"rows\":[]";
  }
  *out_ << "}\n";
}

void JsonWriter::meta_key(const std::string& key) {
  if (rows_open_) {
    throw std::logic_error("meta() after the first row");
  }
  if (!meta_open_) {
    *out_ << ",\"meta\":{";
    meta_open_ = true;
  }
  if (!first_meta_) *out_ << ",";
  first_meta_ = false;
  *out_ << "\"" << json_escape(key) << "\":";
}

void JsonWriter::write_number(double value) {
  if (std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", value);
    *out_ << buf;
  } else {
    *out_ << "null";
  }
}

void JsonWriter::meta(const std::string& key, double value) {
  meta_key(key);
  write_number(value);
}

void JsonWriter::meta(const std::string& key, std::int64_t value) {
  meta_key(key);
  *out_ << value;
}

void JsonWriter::meta(const std::string& key, const std::string& value) {
  meta_key(key);
  *out_ << "\"" << json_escape(value) << "\"";
}

void JsonWriter::begin_row() {
  if (in_row_) throw std::logic_error("begin_row() inside a row");
  if (meta_open_) {
    *out_ << "}";
    meta_open_ = false;
  }
  if (!rows_open_) {
    *out_ << ",\"rows\":[";
    rows_open_ = true;
  }
  *out_ << (first_row_ ? "\n" : ",\n") << "{";
  first_row_ = false;
  in_row_ = true;
  first_field_ = true;
}

void JsonWriter::field_key(const std::string& key) {
  if (!in_row_) throw std::logic_error("field() outside a row");
  if (!first_field_) *out_ << ",";
  first_field_ = false;
  *out_ << "\"" << json_escape(key) << "\":";
}

void JsonWriter::field(const std::string& key, double value) {
  field_key(key);
  write_number(value);
}

void JsonWriter::field(const std::string& key, std::int64_t value) {
  field_key(key);
  *out_ << value;
}

void JsonWriter::field(const std::string& key, std::uint64_t value) {
  field_key(key);
  *out_ << value;
}

void JsonWriter::field(const std::string& key, bool value) {
  field_key(key);
  *out_ << (value ? "true" : "false");
}

void JsonWriter::field(const std::string& key, const std::string& value) {
  field_key(key);
  *out_ << "\"" << json_escape(value) << "\"";
}

void JsonWriter::end_row() {
  if (!in_row_) throw std::logic_error("end_row() outside a row");
  *out_ << "}";
  in_row_ = false;
}

}  // namespace chronus::util
