// TP: the two-phase update baseline (Reitblatt et al., SIGCOMM'12), with
// VLAN-tag ("LAN ID") versioning as in the paper's §V.A implementation.
//
// Phase 1 installs the new-version rules (matching the new tag) alongside
// the old rules; packets are still stamped with the old tag and follow the
// old path. Phase 2 flips the ingress stamping rule; from then on every new
// packet carries the new tag and follows the new path wholly, while
// in-flight old-tagged packets drain over the old path. Finally the old
// rules are garbage-collected.
//
// Per-packet consistency holds by construction, but (a) the flow table must
// hold both rule generations during the transition — the space overhead
// Fig. 9 measures — and (b) old-path drain traffic and new-path traffic can
// still meet on links the two paths share.
#pragma once

#include <cstdint>
#include <vector>

#include "net/instance.hpp"
#include "timenet/schedule.hpp"

namespace chronus::baselines {

struct TwoPhaseOptions {
  /// Number of traffic aggregates (host-pair flows) riding the two paths;
  /// each needs one forwarding rule per switch and per version.
  int flows = 10;
  /// Per-host entries at the source/destination switch (Table II shows one
  /// entry per host); 0 selects the automatic default = number of switches.
  int hosts = 0;
};

struct TwoPhaseReport {
  // --- flow-table occupancy (entries present at once) ---
  std::size_t table_rules_steady = 0;  ///< before/after the transition
  std::size_t table_rules_peak = 0;    ///< during phase 1/2 coexistence

  // --- rule operations performed by the update itself (the Fig. 9
  //     "number of rules" metric: rules the controller must install,
  //     modify or delete to carry out the transition) ---
  std::size_t rules_touched_tp = 0;       ///< two-phase
  std::size_t rules_touched_chronus = 0;  ///< action-modify-in-place

  /// Links both paths share whose capacity cannot hold old-drain plus new
  /// traffic at once; on them TP can still congest transiently.
  std::vector<net::LinkId> vulnerable_links;

  /// The flip schedule realized on the algorithm time axis: every switch
  /// "activates" its new version at the ingress flip instant (per-packet
  /// versioning makes the data plane behave as if all switches flipped
  /// atomically for new packets), which the exact verifier can replay.
  timenet::UpdateSchedule as_schedule;
  timenet::TimePoint flip_time{};
};

TwoPhaseReport two_phase_update(const net::UpdateInstance& inst,
                                const TwoPhaseOptions& opts = {});

}  // namespace chronus::baselines
