// Execution of order-replacement (OR) update plans.
//
// The planner (opt::solve_order_replacement) emits rounds; the data plane is
// asynchronous, so within a round every rule replacement takes effect after
// an unpredictable control-plane latency — the paper emulates this by
// sleeping "a random number from the data of [Dionysus]" between the
// FlowMod and its activation. This module realizes a plan into concrete
// per-switch activation times (integral, in the same unit as link delays)
// so the exact verifier can measure the transient congestion and loops the
// OR baseline produces (Figs. 6-8).
#pragma once

#include <cstdint>

#include "net/instance.hpp"
#include "opt/order_bnb.hpp"
#include "timenet/schedule.hpp"
#include "util/rng.hpp"

namespace chronus::baselines {

struct OrExecutionOptions {
  /// Rule activation latency within a round is uniform in [0, max_latency]
  /// time units; 0 selects the automatic default 3 * max link delay
  /// (control-plane latencies dominate propagation delays in practice).
  std::int64_t max_latency = 0;
};

struct OrExecution {
  /// Per-switch activation times on the algorithm time axis; rounds are
  /// separated by barriers (round r+1 starts after every activation of
  /// round r has taken effect).
  timenet::UpdateSchedule realized;
  /// Barrier times: start time of each round.
  std::vector<timenet::TimePoint> round_starts;
};

/// Samples one asynchronous realization of `plan`.
OrExecution execute_order_replacement(const net::UpdateInstance& inst,
                                      const opt::OrderResult& plan,
                                      util::Rng& rng,
                                      const OrExecutionOptions& opts = {});

/// Convenience: plan with the B&B solver, then realize. Returns the plan's
/// rounds via the out-parameter when non-null.
OrExecution plan_and_execute_order_replacement(
    const net::UpdateInstance& inst, util::Rng& rng,
    const OrExecutionOptions& exec_opts = {},
    const opt::OrderOptions& plan_opts = {},
    opt::OrderResult* plan_out = nullptr);

}  // namespace chronus::baselines
