#include "baselines/dionysus.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "opt/order_bnb.hpp"

namespace chronus::baselines {

DionysusExecution dionysus_execute(const net::UpdateInstance& inst,
                                   util::Rng& rng,
                                   const DionysusOptions& opts) {
  DionysusExecution exec;
  const net::Graph& g = inst.graph();
  const std::int64_t max_latency =
      opts.max_latency > 0 ? opts.max_latency : 3 * g.max_delay();
  const std::int64_t stall_limit =
      opts.stall_limit > 0 ? opts.stall_limit : max_latency + 2;

  // Capacity ledger: the old path carries the flow, everything else free.
  std::map<net::LinkId, net::Capacity> free_cap;
  for (net::LinkId id = 0; id < g.link_count(); ++id) {
    free_cap[id] = g.link(id).capacity;
  }
  for (const net::LinkId id : net::path_links(g, inst.p_init())) {
    free_cap[id] -= inst.demand();
  }

  std::set<net::NodeId> pending;
  for (const net::NodeId v : inst.switches_to_update()) pending.insert(v);
  std::set<net::NodeId> in_flight;  // issued, not yet confirmed
  std::set<net::NodeId> completed;
  std::map<timenet::TimePoint, std::vector<net::NodeId>> completions;

  constexpr double kEps = 1e-9;
  timenet::TimePoint t{};
  std::int64_t stall = 0;
  while (!pending.empty() || !in_flight.empty()) {
    bool progressed = false;

    // Confirmations: the switch applied the rule; Dionysus now considers
    // the old out-link's capacity free (in-flight drain notwithstanding —
    // that is its blind spot relative to timed updates).
    const auto done = completions.find(t);
    if (done != completions.end()) {
      for (const net::NodeId v : done->second) {
        in_flight.erase(v);
        completed.insert(v);
        const auto on = inst.old_next(v);
        const auto nn = inst.new_next(v);
        if (on && nn && *on != *nn) {
          free_cap[*g.find_link(v, *on)] += inst.demand();
        }
        progressed = true;
      }
      completions.erase(done);
    }

    // Issue every operation whose capacity is available and whose rule
    // replacement cannot loop no matter how the in-flight ones interleave.
    for (auto it = pending.begin(); it != pending.end();) {
      const net::NodeId v = *it;
      const auto nn = inst.new_next(v);
      const auto on = inst.old_next(v);
      const net::LinkId target = *g.find_link(v, *nn);
      const bool needs_capacity = !on || *on != *nn;
      if (needs_capacity && free_cap[target] + net::Demand{kEps} < inst.demand()) {
        ++it;
        continue;
      }
      std::set<net::NodeId> round = in_flight;
      round.insert(v);
      if (!opt::round_is_loop_safe(inst, completed, round)) {
        ++it;
        continue;
      }
      free_cap[target] -= inst.demand();
      const timenet::TimePoint issue_at = t;
      const timenet::TimePoint done_at =
          t + rng.uniform_int(1, max_latency);
      exec.issued.set(v, issue_at);
      exec.realized.set(v, done_at);
      completions[done_at].push_back(v);
      in_flight.insert(v);
      it = pending.erase(it);
      progressed = true;
    }

    ++t;
    // While confirmations are outstanding, one arrives within max_latency;
    // a genuine deadlock is only declared with nothing in flight.
    stall = progressed || !in_flight.empty() ? 0 : stall + 1;
    if (stall > stall_limit) {
      exec.message = "capacity deadlock: " + std::to_string(pending.size()) +
                     " operations cannot acquire their links";
      return exec;
    }
  }
  exec.complete = true;
  return exec;
}

}  // namespace chronus::baselines
