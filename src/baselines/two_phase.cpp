#include "baselines/two_phase.hpp"

#include <set>

#include "timenet/verifier.hpp"

namespace chronus::baselines {

TwoPhaseReport two_phase_update(const net::UpdateInstance& inst,
                                const TwoPhaseOptions& opts) {
  TwoPhaseReport rep;
  const net::Graph& g = inst.graph();
  const std::size_t flows = static_cast<std::size_t>(opts.flows);
  const std::size_t hosts = opts.hosts > 0
                                ? static_cast<std::size_t>(opts.hosts)
                                : g.node_count();

  // Forwarding-rule-bearing switches (the destination only delivers).
  const std::size_t init_switches = inst.p_init().size() - 1;
  const std::size_t fin_switches = inst.p_fin().size() - 1;

  // Flow-table occupancy. Steady state: one rule per flow on the active
  // path plus the per-host entries at source and destination (Table II).
  rep.table_rules_steady = flows * init_switches + 2 * hosts;
  // During the transition both rule generations coexist, including both
  // versions of the per-host/stamping entries at the edge switches.
  rep.table_rules_peak =
      flows * (init_switches + fin_switches) + 4 * hosts;

  // Rule operations (the Fig. 9 metric). TP installs the new generation,
  // re-stamps the ingress entries and deletes the old generation; Chronus
  // only modifies the action of the switches whose next hop changes.
  rep.rules_touched_tp = flows * (init_switches + fin_switches) + 2 * hosts;
  rep.rules_touched_chronus = flows * inst.switches_to_update().size();

  // Shared links on which drain (old-tag) and new-tag traffic can meet.
  std::set<net::LinkId> init_links;
  for (const net::LinkId id : net::path_links(g, inst.p_init())) {
    init_links.insert(id);
  }
  for (const net::LinkId id : net::path_links(g, inst.p_fin())) {
    if (!init_links.count(id)) continue;
    const net::Link& l = g.link(id);
    if (l.capacity + net::Demand{1e-9} < 2.0 * inst.demand()) {
      rep.vulnerable_links.push_back(id);
    }
  }

  rep.flip_time = timenet::TimePoint{};
  // All switches nominally flip at the ingress re-stamping instant; the
  // verifier interprets this per packet via per_packet_flip.
  for (const net::NodeId v : inst.touched_nodes()) {
    if (inst.new_next(v)) rep.as_schedule.set(v, rep.flip_time);
  }
  return rep;
}

}  // namespace chronus::baselines
