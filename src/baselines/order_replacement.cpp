#include "baselines/order_replacement.hpp"

#include <algorithm>

namespace chronus::baselines {

OrExecution execute_order_replacement(const net::UpdateInstance& inst,
                                      const opt::OrderResult& plan,
                                      util::Rng& rng,
                                      const OrExecutionOptions& opts) {
  OrExecution exec;
  const std::int64_t max_latency =
      opts.max_latency > 0 ? opts.max_latency : 3 * inst.graph().max_delay();

  timenet::TimePoint t{};
  for (const auto& round : plan.rounds) {
    exec.round_starts.push_back(t);
    timenet::TimePoint round_end = t;
    for (const net::NodeId v : round) {
      const timenet::TimePoint act = t + rng.uniform_int(0, max_latency);
      exec.realized.set(v, act);
      round_end = std::max(round_end, act);
    }
    // Barrier: the next round's FlowMods go out only after every switch of
    // this round confirmed its replacement.
    t = round_end + 1;
  }
  return exec;
}

OrExecution plan_and_execute_order_replacement(
    const net::UpdateInstance& inst, util::Rng& rng,
    const OrExecutionOptions& exec_opts, const opt::OrderOptions& plan_opts,
    opt::OrderResult* plan_out) {
  const opt::OrderResult plan = opt::solve_order_replacement(inst, plan_opts);
  if (plan_out) *plan_out = plan;
  return execute_order_replacement(inst, plan, rng, exec_opts);
}

}  // namespace chronus::baselines
