// Dionysus-style dynamic update scheduling (Jin et al., SIGCOMM'14),
// adapted to the paper's single-flow setting as a third comparison point
// between OR and Chronus.
//
// Dionysus builds a dependency graph between update operations and link
// capacity resources and schedules operations *dynamically*: an operation
// is issued as soon as the capacity it needs is free, and completing it
// (confirmed by the switch) releases the capacity it vacated. Unlike OR it
// is capacity-aware; unlike Chronus it trusts the control-plane
// confirmation as the moment capacity is free — it does not model the
// in-flight traffic that keeps draining over the old path for one
// propagation delay more. That blind spot is exactly the gap the paper's
// timed updates close, and the ext_dionysus bench quantifies it.
//
// Adaptation to per-switch path updates: the operation for switch v needs
// `demand` of free capacity on v's new out-link; completing it releases
// v's old out-link. Loop-freedom is enforced at issue time with the same
// union-graph test the OR planner uses (single-switch rounds). Rule
// latencies are sampled per operation, like the paper's OR emulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/instance.hpp"
#include "timenet/schedule.hpp"
#include "util/rng.hpp"

namespace chronus::baselines {

struct DionysusOptions {
  /// Rule activation latency, uniform in [1, max_latency] time units;
  /// 0 selects the automatic default 3 * max link delay.
  std::int64_t max_latency = 0;
  /// Give up when no operation can be issued for this many time units
  /// (capacity deadlock, e.g. a no-headroom swap).
  std::int64_t stall_limit = 0;
};

struct DionysusExecution {
  bool complete = false;  ///< every switch updated
  /// Switch activation instants (issue + sampled latency).
  timenet::UpdateSchedule realized;
  /// Issue instants per switch, for inspecting the dynamic order.
  timenet::UpdateSchedule issued;
  std::string message;
};

/// Runs one dynamic execution. Deterministic given the RNG state.
DionysusExecution dionysus_execute(const net::UpdateInstance& inst,
                                   util::Rng& rng,
                                   const DionysusOptions& opts = {});

}  // namespace chronus::baselines
