// The exact transition verifier: replays a timed update schedule in the
// time-extended network and reports every violation of the congestion-free
// condition (Definition 3, constraint (3a)) and the loop-free condition
// (Definition 2). It is the ground truth against which the greedy scheduler,
// the OPT branch-and-bound, and the baselines are evaluated (Figs. 7 and 8).
//
// Congestion is checked per time-extended link: the load on
// <u(t), v(t+sigma)> is demand times the number of injection classes that
// enter the physical link <u,v> during [t, t+1); the condition requires this
// never to exceed C_{u,v}.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/instance.hpp"
#include "timenet/schedule.hpp"
#include "timenet/trajectory.hpp"

namespace chronus::timenet {

struct CongestionEvent {
  net::LinkId link = net::kInvalidLink;
  TimePoint enter_time{};  ///< departure step of the time-extended link
  net::Demand load{};
  net::Capacity capacity{};
};

struct LoopEvent {
  TimePoint injected{};
  net::NodeId node = net::kInvalidNode;  ///< switch visited twice
};

struct BlackholeEvent {
  TimePoint injected{};
  net::NodeId node = net::kInvalidNode;
};

struct TransitionReport {
  std::vector<CongestionEvent> congestion;
  std::vector<LoopEvent> loops;
  std::vector<BlackholeEvent> blackholes;

  /// Set when the verification hit its deadline before completing; the
  /// report is then a partial under-approximation and ok() is unreliable.
  bool aborted = false;

  /// Folds another report's events into this one (used by the runtime
  /// consistency monitor to compose per-phase verifications).
  void merge(const TransitionReport& other);

  bool congestion_free() const { return congestion.empty(); }
  bool loop_free() const { return loops.empty(); }
  bool blackhole_free() const { return blackholes.empty(); }
  bool ok() const {
    return congestion_free() && loop_free() && blackhole_free();
  }

  /// Distinct congested time-extended links (the Fig. 8 metric).
  std::size_t congested_link_count() const { return congestion.size(); }

  std::string to_string(const net::Graph& g) const;
};

struct VerifyOptions {
  /// Extra slack multiplier on the traced injection window; raise only for
  /// debugging, the default window already covers all transitional classes.
  int window_slack = 0;
  /// Stop after the first violation of each kind (cheaper for search).
  bool first_violation_only = false;
  /// Wall-clock budget in seconds; <= 0 disables. On expiry the report is
  /// returned with `aborted` set (Fig. 10 runs the exact methods under a
  /// deadline, like the paper's 600 s timeout).
  double deadline_sec = 0;
};

/// Verifies a single-flow transition. A schedule entry for a switch not in
/// the instance is ignored; switches without an entry keep their old rule.
TransitionReport verify_transition(const net::UpdateInstance& inst,
                                   const UpdateSchedule& sched,
                                   const VerifyOptions& opts = {});

/// Verifies several flows sharing one graph; per-link loads add up across
/// flows. Each flow is an (instance, schedule) pair over the same graph
/// object (the graph of flows[0] is used for capacities).
struct FlowTransition {
  const net::UpdateInstance* instance = nullptr;
  const UpdateSchedule* schedule = nullptr;
  /// Two-phase semantics: rules selected by the class's stamped version
  /// (see FlowView::per_packet_flip); `schedule` is ignored when set.
  std::optional<TimePoint> per_packet_flip;
};
TransitionReport verify_transitions(const std::vector<FlowTransition>& flows,
                                    const VerifyOptions& opts = {});

/// Load per time-extended link for one flow (diagnostics and Fig. 2-style
/// renderings): maps (link, enter-step) -> load.
std::map<std::pair<net::LinkId, TimePoint>, net::Demand> link_loads(
    const net::UpdateInstance& inst, const UpdateSchedule& sched);

/// Quantizes *achieved* activation instants (arbitrary integral wall-clock
/// units, e.g. microseconds) onto the abstract schedule grid: offsets are
/// taken relative to the earliest activation and rounded to the nearest
/// multiple of `step_unit`. This is how the runtime consistency monitor
/// replays what the control plane actually did — late or retried
/// activations land on later steps and surface as verifier violations.
UpdateSchedule schedule_from_activations(
    const std::map<net::NodeId, std::int64_t>& activation_times,
    std::int64_t step_unit);

}  // namespace chronus::timenet
