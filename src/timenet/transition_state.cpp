#include "timenet/transition_state.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/contracts.hpp"

namespace chronus::timenet {

namespace {
constexpr double kEps = 1e-9;
// "Since forever": the tail of a flow that was never updated.
constexpr TimePoint kAlways{std::numeric_limits<TimePoint::rep>::min() / 4};
}  // namespace

TransitionState::TransitionState(const net::UpdateInstance& inst)
    : TransitionState(std::vector<const net::UpdateInstance*>{&inst}) {}

TransitionState::TransitionState(
    std::vector<const net::UpdateInstance*> flows) {
  if (flows.empty()) throw std::invalid_argument("no flows");
  graph_ = &flows.front()->graph();
  for (const auto* inst : flows) {
    if (inst->graph().node_count() != graph_->node_count() ||
        inst->graph().link_count() != graph_->link_count()) {
      throw std::invalid_argument("flows must share one graph layout");
    }
  }
  d_ = static_cast<std::int64_t>(graph_->node_count() + 2) *
       graph_->max_delay();
  flows_.resize(flows.size());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    FlowState& fs = flows_[f];
    fs.inst = flows[f];
    // Unscheduled flows are one steady stream on their old path; the
    // tail's start is "always" so its load applies at every entry step.
    fs.steady_shape = trace_class(*fs.inst, fs.sched, TimePoint{0});
    fs.steady_from = kAlways;
    for (std::size_t i = 0; i + 1 < fs.steady_shape.hops.size(); ++i) {
      const auto link = graph_->find_link(fs.steady_shape.hops[i].node,
                                          fs.steady_shape.hops[i + 1].node);
      fs.steady_entry[*link] = kAlways;
    }
  }
}

bool TransitionState::initial_state_valid() const {
  std::map<net::LinkId, net::Demand> static_load;
  for (const FlowState& fs : flows_) {
    for (const net::LinkId id :
         net::path_links(*graph_, fs.inst->p_init())) {
      static_load[id] += fs.inst->demand();
    }
  }
  for (const auto& [id, x] : static_load) {
    if (x > graph_->link(id).capacity + net::Demand{kEps}) return false;
  }
  return true;
}

void TransitionState::add_loads(const Trace& trace, net::Demand demand,
                                double sign) {
  for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
    const auto link =
        graph_->find_link(trace.hops[i].node, trace.hops[i + 1].node);
    load_[*link][trace.hops[i].arrival] += sign * demand;
  }
}

net::Demand TransitionState::steady_load(net::LinkId link,
                                          TimePoint entry) const {
  net::Demand x{};
  for (const FlowState& fs : flows_) {
    const auto it = fs.steady_entry.find(link);
    if (it != fs.steady_entry.end() && entry >= it->second) {
      x += fs.inst->demand();
    }
  }
  return x;
}

bool TransitionState::retrace(std::size_t flow, TimePoint tau,
                              UndoRecord& record,
                              std::vector<LoadKey>* touched) {
  FlowState& fs = flows_[flow];
  std::optional<Trace> prev;
  const auto it = fs.traces.find(tau);
  if (it != fs.traces.end()) {
    prev = std::move(it->second);
    add_loads(*prev, fs.inst->demand(), -1.0);
  }
  Trace trace = trace_class(*fs.inst, fs.sched, tau);
  const bool bad = trace.looped() || trace.end == TraceEnd::kBlackhole;

  for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
    const auto link =
        graph_->find_link(trace.hops[i].node, trace.hops[i + 1].node);
    load_[*link][trace.hops[i].arrival] += fs.inst->demand();
    if (touched) touched->emplace_back(*link, trace.hops[i].arrival);
  }
  record.replaced.emplace_back(flow, tau, std::move(prev));
  fs.traces[tau] = std::move(trace);
  return bad;
}

bool TransitionState::refresh_steady(std::size_t flow) {
  FlowState& fs = flows_[flow];
  fs.steady_from = fs.sched.last_time();
  fs.steady_shape = trace_class(*fs.inst, fs.sched, fs.steady_from);
  fs.steady_entry.clear();
  bool bad = fs.steady_shape.looped() ||
             fs.steady_shape.end == TraceEnd::kBlackhole;
  for (std::size_t i = 0; i + 1 < fs.steady_shape.hops.size(); ++i) {
    const auto link = graph_->find_link(fs.steady_shape.hops[i].node,
                                        fs.steady_shape.hops[i + 1].node);
    fs.steady_entry[*link] = fs.steady_shape.hops[i].arrival;
  }
  if (bad) return false;

  for (const auto& [link, start] : fs.steady_entry) {
    const net::Capacity cap = graph_->link(link).capacity;
    // Tail-vs-tail: every tail containing this link enters it once per
    // step from its start on, so from max(starts) onward they all share
    // the link forever.
    net::Demand tails{};
    for (const FlowState& other : flows_) {
      if (other.steady_entry.count(link)) tails += other.inst->demand();
    }
    if (tails > cap + net::Demand{kEps}) return false;
    // Tail-vs-transitional: any traced load at or past the tail's start
    // collides with it (plus any other tail active there).
    const auto lit = load_.find(link);
    if (lit == load_.end()) continue;
    for (auto e = lit->second.lower_bound(start); e != lit->second.end(); ++e) {
      if (e->second + steady_load(link, e->first) > cap + net::Demand{kEps}) {
        return false;
      }
    }
  }
  return true;
}

void TransitionState::rollback(UndoRecord& rec) {
  for (auto r = rec.replaced.rbegin(); r != rec.replaced.rend(); ++r) {
    auto& [flow, tau, prev] = *r;
    FlowState& fs = flows_[flow];
    add_loads(fs.traces.at(tau), fs.inst->demand(), -1.0);
    if (prev) {
      add_loads(*prev, fs.inst->demand(), 1.0);
      fs.traces[tau] = std::move(*prev);
    } else {
      fs.traces.erase(tau);
    }
  }
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    flows_[f].lo = rec.prev_lo[f];
    flows_[f].hi = rec.prev_hi[f];
  }
  if (rec.prev_steady_shape) {
    FlowState& fs = flows_[rec.flow];
    fs.steady_from = rec.prev_steady_from;
    fs.steady_shape = std::move(*rec.prev_steady_shape);
    fs.steady_entry.clear();
    for (std::size_t i = 0; i + 1 < fs.steady_shape.hops.size(); ++i) {
      const auto link = graph_->find_link(fs.steady_shape.hops[i].node,
                                          fs.steady_shape.hops[i + 1].node);
      const TimePoint at = rec.prev_steady_from == kAlways
                               ? kAlways
                               : fs.steady_shape.hops[i].arrival;
      fs.steady_entry[*link] = at;
    }
  }
}

void TransitionState::extend_windows_down(TimePoint want_lo) {
  UndoRecord* host = undo_stack_.empty() ? &base_ : &undo_stack_.back();
  if (host->prev_lo.empty()) {
    // The base record never rolls back; give it window placeholders.
    host->prev_lo.assign(flows_.size(), TimePoint{});
    host->prev_hi.assign(flows_.size(), TimePoint{-1});
  }
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    FlowState& fs = flows_[f];
    if (fs.sched.empty()) continue;  // pure tail, nothing transitional
    if (fs.hi < fs.lo) continue;     // window set when first scheduled
    for (TimePoint tau = want_lo; tau < fs.lo; ++tau) {
      retrace(f, tau, *host, nullptr);
    }
    fs.lo = std::min(fs.lo, want_lo);
  }
}

bool TransitionState::try_update(std::size_t flow, net::NodeId v,
                                 TimePoint t) {
  CHRONUS_EXPECTS(flow < flows_.size(), "try_update on unknown flow index");
  FlowState& fs = flows_.at(flow);
  CHRONUS_EXPECTS(v < fs.inst->graph().node_count(),
                  "try_update on a node outside the flow's graph");
  if (fs.sched.contains(v)) {
    throw std::logic_error("switch already scheduled for this flow");
  }

  // Global earliest schedule time (including the candidate): every
  // scheduled flow's transitional window must reach 2d below it so that
  // all cross-flow collisions in the evaluation region are counted.
  TimePoint global_first = t;
  for (const FlowState& g : flows_) {
    if (!g.sched.empty()) {
      global_first = std::min(global_first, g.sched.first_time());
    }
  }
  extend_windows_down(global_first - 2 * d_);

  UndoRecord rec;
  rec.flow = flow;
  rec.v = v;
  for (const FlowState& g : flows_) {
    rec.prev_lo.push_back(g.lo);
    rec.prev_hi.push_back(g.hi);
  }
  rec.prev_steady_shape = fs.steady_shape;
  rec.prev_steady_from = fs.steady_from;

  const bool was_empty = fs.hi < fs.lo;
  fs.sched.set(v, t);
  if (was_empty) fs.lo = global_first - 2 * d_;  // first update: open it
  const TimePoint new_top = fs.sched.last_time() - 1;
  const TimePoint old_hi = was_empty ? fs.lo - 1 : fs.hi;

  bool bad = false;
  std::vector<LoadKey> touched;

  // Classes that left the analytic steady tail (a later update time makes
  // them transitional) are materialized under the new schedule.
  for (TimePoint tau = old_hi + 1; tau <= new_top && !bad; ++tau) {
    bad = retrace(flow, tau, rec, &touched);
  }
  fs.hi = std::max(old_hi, new_top);

  // Transitional classes the candidate can affect: those whose current
  // trajectory visits v at or after t (v's rule change is invisible to
  // every other class — rules are per flow).
  const TimePoint from = std::max(fs.lo, t - d_);
  for (TimePoint tau = from; tau <= old_hi && !bad; ++tau) {
    const auto it = fs.traces.find(tau);
    if (it == fs.traces.end()) continue;
    bool visits = false;
    for (const TraceHop& hop : it->second.hops) {
      if (hop.node == v && hop.arrival >= t) {
        visits = true;
        break;
      }
    }
    if (visits) bad = retrace(flow, tau, rec, &touched);
  }

  // The flow's steady tail under its new final configuration, and that
  // tail's collisions with transitional loads and other tails.
  if (!bad) bad = !refresh_steady(flow);

  // Capacity on every touched key, including every tail's share — judged
  // only now, after *all* affected classes moved (a class leaving a link
  // can compensate for another arriving on it).
  if (!bad) {
    for (const auto& [link, entry] : touched) {
      const net::Demand x = load_[link][entry] + steady_load(link, entry);
      if (x > graph_->link(link).capacity + net::Demand{kEps}) {
        bad = true;
        break;
      }
    }
  }

  if (bad) {
    rollback(rec);
    fs.sched.erase(v);
    return false;
  }
  undo_stack_.push_back(std::move(rec));
  return true;
}

void TransitionState::undo() {
  if (undo_stack_.empty()) throw std::logic_error("nothing to undo");
  UndoRecord rec = std::move(undo_stack_.back());
  undo_stack_.pop_back();
  rollback(rec);
  flows_[rec.flow].sched.erase(rec.v);
}

}  // namespace chronus::timenet
