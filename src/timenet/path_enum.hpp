// Loop-free path enumeration in the time-extended network — the set P(f)
// of the paper's program (3): "The path set P(f) is pre-computed such that
// all paths are loop-free ... The resulting path set P(f) are the input in
// our formulation."
//
// A timed path for an injection class starting at v(t0) is a sequence of
// time-extended links <u(t), w(t + sigma_uw)> ending at the destination; it
// is loop-free when no switch appears twice (Definition 2). Every
// trajectory a schedule can induce for that class is a member of this set,
// which the tests use to validate the scheduler output against the ILP's
// own input space.
#pragma once

#include <cstddef>
#include <vector>

#include "net/graph.hpp"
#include "timenet/time_extended.hpp"

namespace chronus::timenet {

/// One timed path: the visited time-extended nodes, source first.
using TimedPath = std::vector<TimedNode>;

struct EnumerateOptions {
  /// Stop after this many paths (the set grows exponentially).
  std::size_t max_paths = 10000;
  /// Ignore paths arriving at the destination after this time.
  TimePoint t_end{};
};

/// All loop-free timed paths from src(t0) to dst, arrivals <= opts.t_end.
std::vector<TimedPath> enumerate_timed_paths(const net::Graph& g,
                                             net::NodeId src, TimePoint t0,
                                             net::NodeId dst,
                                             const EnumerateOptions& opts);

/// True iff `path` occurs in `set` (exact node-and-time match).
bool contains_path(const std::vector<TimedPath>& set, const TimedPath& path);

}  // namespace chronus::timenet
