// Incremental transition verification, single- or multi-flow.
//
// The guarded greedy scheduler and the OPT branch-and-bound ask thousands
// of times per instance: "does scheduling one more switch update keep the
// transition congestion- and loop-free?". Re-verifying the whole
// time-extended network for each probe is O(window * hops); this class
// maintains the verifier's state and updates only what a probe can affect,
// giving the same verdict orders of magnitude faster.
//
// State representation (per flow):
//  * transitional classes — injected in [lo, steady_from): traced
//    individually; their per-(link, entry-step) loads are summed across
//    flows in load_;
//  * the steady tail — every class injected at or after steady_from
//    (= the flow's latest scheduled update) sees only final rules, so all
//    of them share one trajectory shape; they are represented by that
//    single shape plus, per link, the first entry step (one class enters
//    each shape link every step from there on);
//  * classes before lo are pure-old steady state; with a valid initial
//    configuration (see initial_state_valid) they collide with nothing
//    that is not already accounted for.
//
// The maintained invariant: the current schedules are jointly congestion-
// and loop-free at every moment in time. try_update() extends a flow's
// schedule only when the invariant is preserved; undo() rolls back the
// most recent successful try_update (LIFO, for branch-and-bound
// backtracking). Rules are per flow, so a probe re-traces only the probed
// flow's classes; the shared load map catches cross-flow collisions.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/instance.hpp"
#include "timenet/schedule.hpp"
#include "timenet/trajectory.hpp"

namespace chronus::timenet {

class TransitionState {
 public:
  /// Single-flow state (the common case).
  explicit TransitionState(const net::UpdateInstance& inst);

  /// Multiple flows over one graph. All instances must be built over the
  /// same graph value (identical node and link ids); capacities are read
  /// from flows[0].
  explicit TransitionState(std::vector<const net::UpdateInstance*> flows);

  /// True iff the all-old steady state respects every link capacity (the
  /// combined static load of all flows). A false here means the *input*
  /// is invalid; try_update verdicts are then meaningless.
  bool initial_state_valid() const;

  /// Tries to schedule switch v's update (for the given flow) at time t on
  /// top of the current schedules. Returns true and applies it if the
  /// joint transition stays clean; otherwise leaves the state untouched
  /// and returns false.
  bool try_update(net::NodeId v, TimePoint t) { return try_update(0, v, t); }
  bool try_update(std::size_t flow, net::NodeId v, TimePoint t);

  /// Rolls back the most recent successful try_update. Undoing with no
  /// applied update throws std::logic_error.
  void undo();

  /// Number of updates currently applied (== depth of the undo stack).
  std::size_t depth() const { return undo_stack_.size(); }

  std::size_t flow_count() const { return flows_.size(); }
  const UpdateSchedule& schedule(std::size_t flow = 0) const {
    return flows_.at(flow).sched;
  }

 private:
  using LoadKey = std::pair<net::LinkId, TimePoint>;

  struct FlowState {
    const net::UpdateInstance* inst = nullptr;
    UpdateSchedule sched;
    std::map<TimePoint, Trace> traces;  // transitional classes
    TimePoint lo{};
    TimePoint hi{-1};  // traced range [lo, hi]; empty when hi < lo
    // Steady tail: trajectory of every class injected >= steady_from.
    Trace steady_shape;
    std::map<net::LinkId, TimePoint> steady_entry;
    TimePoint steady_from{};
  };

  struct UndoRecord {
    std::size_t flow = 0;
    net::NodeId v = net::kInvalidNode;
    // (flow, tau, previous trace or nullopt) for every class replaced or
    // newly created by this step, in application order.
    std::vector<std::tuple<std::size_t, TimePoint, std::optional<Trace>>>
        replaced;
    // Per-flow window and steady-tail state before this step.
    std::vector<TimePoint> prev_lo;
    std::vector<TimePoint> prev_hi;
    std::optional<Trace> prev_steady_shape;
    TimePoint prev_steady_from{};
  };

  /// (Re)traces transitional class tau of `flow` under its current
  /// schedule, maintaining load_. Reports loop/blackhole.
  bool retrace(std::size_t flow, TimePoint tau, UndoRecord& record,
               std::vector<LoadKey>* touched);

  void rollback(UndoRecord& rec);
  void add_loads(const Trace& trace, net::Demand demand, double sign);

  /// Combined steady-tail load of every flow on (link, entry-step).
  net::Demand steady_load(net::LinkId link, TimePoint entry) const;

  /// Recomputes `flow`'s steady tail; false when the tail loops,
  /// blackholes, or collides with traced loads or other tails.
  bool refresh_steady(std::size_t flow);

  /// Widens every flow's traced window to cover [want_lo, inf) classes
  /// down to want_lo, under the current schedules.
  void extend_windows_down(TimePoint want_lo);

  const net::Graph* graph_ = nullptr;
  std::int64_t d_ = 0;  // trajectory duration bound (in steps)

  std::vector<FlowState> flows_;
  // Per-link entry-step loads from transitional classes, all flows.
  std::map<net::LinkId, std::map<TimePoint, net::Demand>> load_;

  std::vector<UndoRecord> undo_stack_;
  UndoRecord base_;  // window extensions under empty schedules
};

}  // namespace chronus::timenet
