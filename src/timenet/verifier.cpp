#include "timenet/verifier.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/stopwatch.hpp"

namespace chronus::timenet {

namespace {

/// Per-call verifier tallies (verifier.* in DESIGN.md §11), flushed from
/// the destructor so every early return (abort, first-violation) still
/// reports what was done.
struct VerifyTally {
  std::uint64_t classes_traced = 0;
  std::uint64_t links_checked = 0;
  std::uint64_t violations = 0;
  bool aborted = false;

  ~VerifyTally() {
    if (obs::registry() == nullptr) return;
    obs::add("verifier.calls");
    obs::add("verifier.classes_traced", classes_traced);
    obs::add("verifier.links_checked", links_checked);
    obs::add("verifier.violations", violations);
    if (aborted) obs::add("verifier.aborted");
  }
};

/// Upper bound on the duration of any single trajectory.
std::int64_t trajectory_bound(const net::Graph& g) {
  return static_cast<std::int64_t>(g.node_count() + 2) * g.max_delay();
}

struct Window {
  TimePoint trace_begin{};  ///< first injected class
  TimePoint trace_end{};    ///< last injected class (inclusive)
  TimePoint eval_begin{};   ///< congestion evaluated for entries >= this
  TimePoint eval_end{};     ///< ... and <= this
};

Window make_window(const net::Graph& g,
                   const std::vector<FlowTransition>& flows) {
  TimePoint min_t{};
  TimePoint max_t{};
  bool any = false;
  for (const auto& f : flows) {
    for (const auto& [_, t] : f.schedule->entries()) {
      if (!any || t < min_t) min_t = t;
      if (!any || t > max_t) max_t = t;
      any = true;
    }
    if (f.per_packet_flip) {
      if (!any || *f.per_packet_flip < min_t) min_t = *f.per_packet_flip;
      if (!any || *f.per_packet_flip > max_t) max_t = *f.per_packet_flip;
      any = true;
    }
  }
  const std::int64_t d = trajectory_bound(g);
  Window w;
  w.eval_begin = min_t - d;
  w.eval_end = max_t + d;
  w.trace_begin = w.eval_begin - d;  // completes counts at eval_begin
  w.trace_end = w.eval_end;
  return w;
}

}  // namespace

TransitionReport verify_transitions(const std::vector<FlowTransition>& flows,
                                    const VerifyOptions& opts) {
  CHRONUS_SPAN("verifier.transitions");
  VerifyTally tally;
  TransitionReport report;
  if (flows.empty()) return report;
  const net::Graph& g = flows.front().instance->graph();

  Window w = make_window(g, flows);
  w.trace_begin -= opts.window_slack;
  w.trace_end += opts.window_slack;
  const util::Deadline deadline(opts.deadline_sec);

  // Per time-extended link loads, summed over flows.
  std::map<std::pair<net::LinkId, TimePoint>, net::Demand> load;
  std::set<net::NodeId> loop_nodes_seen;
  std::set<net::NodeId> blackhole_nodes_seen;

  for (const auto& f : flows) {
    FlowView view;
    view.graph = &g;
    view.instance = f.instance;
    view.schedule = f.schedule;
    view.demand = f.instance->demand();
    view.per_packet_flip = f.per_packet_flip;

    for (TimePoint tau = w.trace_begin; tau <= w.trace_end; ++tau) {
      if ((tau.count() & 0xff) == 0 && deadline.expired()) {
        report.aborted = true;
        tally.aborted = true;
        return report;
      }
      ++tally.classes_traced;
      const Trace trace = trace_class(view, tau);
      for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
        const auto link = g.find_link(trace.hops[i].node, trace.hops[i + 1].node);
        // trace_class only follows existing links.
        load[{*link, trace.hops[i].arrival}] += view.demand;
      }
      if (trace.looped()) {
        // Report each looping switch once; a persistent loop would
        // otherwise repeat for every class in the window.
        if (loop_nodes_seen.insert(trace.loop_node).second) {
          report.loops.push_back(LoopEvent{tau, trace.loop_node});
          ++tally.violations;
          if (opts.first_violation_only) return report;
        }
      }
      if (trace.end == TraceEnd::kBlackhole) {
        if (blackhole_nodes_seen.insert(trace.fault_node).second) {
          report.blackholes.push_back(BlackholeEvent{tau, trace.fault_node});
          ++tally.violations;
          if (opts.first_violation_only) return report;
        }
      }
    }
  }

  constexpr double kEps = 1e-9;
  for (const auto& [key, x] : load) {
    const auto& [link_id, enter] = key;
    if (enter < w.eval_begin || enter > w.eval_end) continue;
    ++tally.links_checked;
    const net::Capacity cap = g.link(link_id).capacity;
    if (x > cap + net::Demand{kEps}) {
      report.congestion.push_back(CongestionEvent{link_id, enter, x, cap});
      ++tally.violations;
      if (opts.first_violation_only) return report;
    }
  }
  return report;
}

TransitionReport verify_transition(const net::UpdateInstance& inst,
                                   const UpdateSchedule& sched,
                                   const VerifyOptions& opts) {
  FlowTransition ft;
  ft.instance = &inst;
  ft.schedule = &sched;
  return verify_transitions({ft}, opts);
}

std::map<std::pair<net::LinkId, TimePoint>, net::Demand> link_loads(
    const net::UpdateInstance& inst, const UpdateSchedule& sched) {
  const net::Graph& g = inst.graph();
  FlowTransition ft;
  ft.instance = &inst;
  ft.schedule = &sched;
  Window w = make_window(g, {ft});
  std::map<std::pair<net::LinkId, TimePoint>, net::Demand> load;
  FlowView view;
  view.graph = &g;
  view.instance = &inst;
  view.schedule = &sched;
  view.demand = inst.demand();
  for (TimePoint tau = w.trace_begin; tau <= w.trace_end; ++tau) {
    const Trace trace = trace_class(view, tau);
    for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
      const auto link = g.find_link(trace.hops[i].node, trace.hops[i + 1].node);
      load[{*link, trace.hops[i].arrival}] += view.demand;
    }
  }
  return load;
}

void TransitionReport::merge(const TransitionReport& other) {
  congestion.insert(congestion.end(), other.congestion.begin(),
                    other.congestion.end());
  loops.insert(loops.end(), other.loops.begin(), other.loops.end());
  blackholes.insert(blackholes.end(), other.blackholes.begin(),
                    other.blackholes.end());
  aborted = aborted || other.aborted;
}

UpdateSchedule schedule_from_activations(
    const std::map<net::NodeId, std::int64_t>& activation_times,
    std::int64_t step_unit) {
  UpdateSchedule sched;
  if (activation_times.empty() || step_unit <= 0) return sched;
  std::int64_t origin = activation_times.begin()->second;
  for (const auto& [_, t] : activation_times) origin = std::min(origin, t);
  for (const auto& [v, t] : activation_times) {
    const std::int64_t offset = t - origin;
    // llround of offset/step_unit without floating point drift.
    const std::int64_t step = (offset + step_unit / 2) / step_unit;
    sched.set(v, TimePoint{step});
  }
  return sched;
}

std::string TransitionReport::to_string(const net::Graph& g) const {
  std::ostringstream os;
  os << (ok() ? "OK" : "VIOLATIONS") << ": " << congestion.size()
     << " congested time-extended links, " << loops.size() << " loops, "
     << blackholes.size() << " blackholes\n";
  for (const auto& c : congestion) {
    const net::Link& l = g.link(c.link);
    os << "  congestion on " << g.name(l.src) << "->" << g.name(l.dst)
       << " entering at t=" << c.enter_time << ": load " << c.load << " > cap "
       << c.capacity << "\n";
  }
  for (const auto& e : loops) {
    os << "  loop through " << g.name(e.node) << " (class injected at t="
       << e.injected << ")\n";
  }
  for (const auto& e : blackholes) {
    os << "  blackhole at " << g.name(e.node) << " (class injected at t="
       << e.injected << ")\n";
  }
  return os.str();
}

}  // namespace chronus::timenet
