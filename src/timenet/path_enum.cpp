#include "timenet/path_enum.hpp"

#include <algorithm>
#include <set>

#include "obs/metrics.hpp"
#include "util/arena.hpp"

namespace chronus::timenet {

namespace {

// Heap backend (CHRONUS_ARENA=off escape hatch): the original recursion
// with a std::set visited filter — one tree-node allocation per edge step.
void dfs(const net::Graph& g, net::NodeId dst, const EnumerateOptions& opts,
         TimedPath& current, std::set<net::NodeId>& visited,
         std::vector<TimedPath>& out) {
  if (out.size() >= opts.max_paths) return;
  const TimedNode at = current.back();  // by value: push_back reallocates
  if (at.node == dst) {
    out.push_back(current);
    return;
  }
  for (const net::LinkId id : g.out_links(at.node)) {
    const net::Link& l = g.link(id);
    const TimePoint arrival = at.time + l.delay;
    if (arrival > opts.t_end) continue;
    if (visited.count(l.dst)) continue;  // Definition 2: no switch twice
    visited.insert(l.dst);
    current.push_back(TimedNode{l.dst, arrival});
    dfs(g, dst, opts, current, visited, out);
    current.pop_back();
    visited.erase(l.dst);
  }
}

// Arena backend: identical traversal, but the visited filter is a flat
// byte mask and the growing path lives in bump-allocated scratch — the
// per-step cost is two array writes instead of a red-black rebalance.
void dfs_arena(const net::Graph& g, net::NodeId dst,
               const EnumerateOptions& opts,
               util::ArenaVector<TimedNode>& current, unsigned char* visited,
               std::vector<TimedPath>& out) {
  if (out.size() >= opts.max_paths) return;
  const TimedNode at = current.back();
  if (at.node == dst) {
    out.emplace_back(current.begin(), current.end());
    return;
  }
  for (const net::LinkId id : g.out_links(at.node)) {
    const net::Link& l = g.link(id);
    const TimePoint arrival = at.time + l.delay;
    if (arrival > opts.t_end) continue;
    if (visited[l.dst] != 0) continue;  // Definition 2: no switch twice
    visited[l.dst] = 1;
    current.push_back(TimedNode{l.dst, arrival});
    dfs_arena(g, dst, opts, current, visited, out);
    current.pop_back();
    visited[l.dst] = 0;
  }
}

}  // namespace

std::vector<TimedPath> enumerate_timed_paths(const net::Graph& g,
                                             net::NodeId src, TimePoint t0,
                                             net::NodeId dst,
                                             const EnumerateOptions& opts) {
  // The result type is the public heap vocabulary in both modes; only the
  // enumeration scratch changes backing.
  // chronus-analyzer: allow(hot-alloc)
  std::vector<TimedPath> out;
  if (!util::arena_enabled()) {
    TimedPath current{TimedNode{src, t0}};
    // chronus-analyzer: allow(hot-alloc)
    std::set<net::NodeId> visited{src};
    dfs(g, dst, opts, current, visited, out);
    return out;
  }

  util::Arena arena;
  util::ArenaScope claim(arena);
  auto* visited = arena.allocate_array<unsigned char>(g.node_count());
  for (std::size_t v = 0; v < g.node_count(); ++v) visited[v] = 0;
  util::ArenaVector<TimedNode> current{
      util::ArenaAllocator<TimedNode>(&arena)};
  current.push_back(TimedNode{src, t0});
  visited[src] = 1;
  dfs_arena(g, dst, opts, current, visited, out);

  const util::ArenaStats& st = arena.stats();
  obs::add("arena.pathenum.bytes", st.bytes_requested);
  obs::add("arena.pathenum.allocs", st.allocs);
  obs::add("arena.pathenum.chunks", st.chunks);
  obs::add("arena.pathenum.high_water", st.high_water);
  return out;
}

bool contains_path(const std::vector<TimedPath>& set, const TimedPath& path) {
  return std::find(set.begin(), set.end(), path) != set.end();
}

}  // namespace chronus::timenet
