#include "timenet/path_enum.hpp"

#include <algorithm>
#include <set>

namespace chronus::timenet {

namespace {

void dfs(const net::Graph& g, net::NodeId dst, const EnumerateOptions& opts,
         TimedPath& current, std::set<net::NodeId>& visited,
         std::vector<TimedPath>& out) {
  if (out.size() >= opts.max_paths) return;
  const TimedNode at = current.back();  // by value: push_back reallocates
  if (at.node == dst) {
    out.push_back(current);
    return;
  }
  for (const net::LinkId id : g.out_links(at.node)) {
    const net::Link& l = g.link(id);
    const TimePoint arrival = at.time + l.delay;
    if (arrival > opts.t_end) continue;
    if (visited.count(l.dst)) continue;  // Definition 2: no switch twice
    visited.insert(l.dst);
    current.push_back(TimedNode{l.dst, arrival});
    dfs(g, dst, opts, current, visited, out);
    current.pop_back();
    visited.erase(l.dst);
  }
}

}  // namespace

std::vector<TimedPath> enumerate_timed_paths(const net::Graph& g,
                                             net::NodeId src, TimePoint t0,
                                             net::NodeId dst,
                                             const EnumerateOptions& opts) {
  std::vector<TimedPath> out;
  TimedPath current{TimedNode{src, t0}};
  std::set<net::NodeId> visited{src};
  dfs(g, dst, opts, current, visited, out);
  return out;
}

bool contains_path(const std::vector<TimedPath>& set, const TimedPath& path) {
  return std::find(set.begin(), set.end(), path) != set.end();
}

}  // namespace chronus::timenet
