#include "timenet/time_extended.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace chronus::timenet {

TimeExtendedNetwork::TimeExtendedNetwork(const net::Graph& g, TimePoint t_begin,
                                         TimePoint t_end,
                                         bool keep_boundary_links)
    : base_(&g),
      t_begin_(t_begin),
      t_end_(t_end),
      arena_mode_(util::arena_enabled()),
      from_node_(util::ArenaAllocator<net::NodeId>(&arena_)),
      to_node_(util::ArenaAllocator<net::NodeId>(&arena_)),
      from_time_(util::ArenaAllocator<TimePoint>(&arena_)),
      to_time_(util::ArenaAllocator<TimePoint>(&arena_)),
      cap_(util::ArenaAllocator<net::Capacity>(&arena_)),
      base_id_(util::ArenaAllocator<net::LinkId>(&arena_)),
      slot_off_(util::ArenaAllocator<std::uint32_t>(&arena_)),
      slot_links_(util::ArenaAllocator<std::uint32_t>(&arena_)) {
  if (t_begin > t_end) throw std::invalid_argument("empty time window");
  if (arena_mode_) {
    build_arena(g, keep_boundary_links);
    const util::ArenaStats& st = arena_.stats();
    obs::add("arena.gt.bytes", st.bytes_requested);
    obs::add("arena.gt.allocs", st.allocs);
    obs::add("arena.gt.chunks", st.chunks);
    obs::add("arena.gt.high_water", st.high_water);
  } else {
    build_heap(g, keep_boundary_links);
  }
}

void TimeExtendedNetwork::build_heap(const net::Graph& g,
                                     bool keep_boundary_links) {
  // The original per-push layout, kept verbatim as the CHRONUS_ARENA=off
  // escape hatch and as the reference the differential harness compares
  // the arena backend against.
  out_index_.resize(g.node_count() * time_steps());
  for (TimePoint t = t_begin_; t <= t_end_; ++t) {
    for (net::LinkId id = 0; id < g.link_count(); ++id) {
      const net::Link& l = g.link(id);
      const TimePoint head = t + l.delay;
      if (head > t_end_ && !keep_boundary_links) continue;
      TimedLink tl;
      tl.from = TimedNode{l.src, t};
      tl.to = TimedNode{l.dst, head};
      tl.capacity = l.capacity;
      tl.base_link = id;
      out_index_[slot(l.src, t)].push_back(
          static_cast<std::uint32_t>(links_.size()));
      links_.push_back(tl);
    }
  }
}

void TimeExtendedNetwork::build_arena(const net::Graph& g,
                                      bool keep_boundary_links) {
  util::ArenaScope claim(arena_);
  const std::size_t slots = g.node_count() * time_steps();

  // Counting pre-pass: total surviving links and per-slot out-degrees, so
  // every column and the CSR index are bump-allocated at exact size.
  slot_off_.assign(slots + 1, 0);
  std::size_t total = 0;
  for (TimePoint t = t_begin_; t <= t_end_; ++t) {
    for (net::LinkId id = 0; id < g.link_count(); ++id) {
      const net::Link& l = g.link(id);
      if (t + l.delay > t_end_ && !keep_boundary_links) continue;
      ++slot_off_[slot(l.src, t) + 1];
      ++total;
    }
  }
  for (std::size_t s = 0; s < slots; ++s) slot_off_[s + 1] += slot_off_[s];

  from_node_.reserve(total);
  to_node_.reserve(total);
  from_time_.reserve(total);
  to_time_.reserve(total);
  cap_.reserve(total);
  base_id_.reserve(total);
  slot_links_.resize(total);

  // Fill pass in the same (t, base_link) order as the heap backend, so
  // timed-link ids and per-slot orders match it bit for bit.
  util::ArenaVector<std::uint32_t> cursor(slot_off_.begin(),
                                          slot_off_.end() - 1,
                                          util::ArenaAllocator<std::uint32_t>(
                                              &arena_));
  for (TimePoint t = t_begin_; t <= t_end_; ++t) {
    for (net::LinkId id = 0; id < g.link_count(); ++id) {
      const net::Link& l = g.link(id);
      const TimePoint head = t + l.delay;
      if (head > t_end_ && !keep_boundary_links) continue;
      const auto k = static_cast<std::uint32_t>(from_node_.size());
      from_node_.push_back(l.src);
      to_node_.push_back(l.dst);
      from_time_.push_back(t);
      to_time_.push_back(head);
      cap_.push_back(l.capacity);
      base_id_.push_back(id);
      slot_links_[cursor[slot(l.src, t)]++] = k;
    }
  }
}

std::size_t TimeExtendedNetwork::node_copies() const {
  return base_->node_count() * time_steps();
}

std::size_t TimeExtendedNetwork::link_count() const {
  return arena_mode_ ? from_node_.size() : links_.size();
}

TimedLink TimeExtendedNetwork::link(std::size_t i) const {
  CHRONUS_EXPECTS(i < link_count(), "timed-link id out of range");
  if (!arena_mode_) return links_[i];
  TimedLink tl;
  tl.from = TimedNode{from_node_[i], from_time_[i]};
  tl.to = TimedNode{to_node_[i], to_time_[i]};
  tl.capacity = cap_[i];
  tl.base_link = base_id_[i];
  return tl;
}

std::vector<TimedLink> TimeExtendedNetwork::links() const {
  if (!arena_mode_) return links_;
  // chronus-analyzer: allow(hot-alloc) compat accessor, heap copy by contract
  std::vector<TimedLink> out;
  out.reserve(link_count());
  for (std::size_t i = 0; i < link_count(); ++i) out.push_back(link(i));
  return out;
}

std::size_t TimeExtendedNetwork::slot(net::NodeId v, TimePoint t) const {
  // Public accessors filter out-of-window queries before reaching here, so
  // a violation means an internal indexing bug, not caller misuse.
  CHRONUS_EXPECTS(t >= t_begin_ && t <= t_end_,
                  "time-extended slot outside [t_begin, t_end]");
  CHRONUS_EXPECTS(v < base_->node_count(),
                  "time-extended slot for unknown node");
  return static_cast<std::size_t>(t - t_begin_) * base_->node_count() + v;
}

std::vector<TimedLink> TimeExtendedNetwork::out_links(net::NodeId v,
                                                      TimePoint t) const {
  // chronus-analyzer: allow(hot-alloc) compat accessor, heap copy by contract
  std::vector<TimedLink> out;
  if (t < t_begin_ || t > t_end_ || v >= base_->node_count()) return out;
  const std::size_t s = slot(v, t);
  if (!arena_mode_) {
    for (const auto idx : out_index_[s]) out.push_back(links_[idx]);
    return out;
  }
  out.reserve(slot_off_[s + 1] - slot_off_[s]);
  for (std::uint32_t i = slot_off_[s]; i < slot_off_[s + 1]; ++i) {
    out.push_back(link(slot_links_[i]));
  }
  return out;
}

std::optional<TimedLink> TimeExtendedNetwork::link_at(net::NodeId u,
                                                      net::NodeId v,
                                                      TimePoint t) const {
  for (const TimedLink& l : out_links(u, t)) {
    if (l.to.node == v) return l;
  }
  return std::nullopt;
}

std::string TimeExtendedNetwork::to_string(const TimedLink& l) const {
  return base_->name(l.from.node) + "(t" + std::to_string(l.from.time.count()) +
         ") -> " + base_->name(l.to.node) + "(t" + std::to_string(l.to.time.count()) +
         ")";
}

}  // namespace chronus::timenet
