#include "timenet/time_extended.hpp"

#include <stdexcept>

#include "util/contracts.hpp"

namespace chronus::timenet {

TimeExtendedNetwork::TimeExtendedNetwork(const net::Graph& g, TimePoint t_begin,
                                         TimePoint t_end,
                                         bool keep_boundary_links)
    : base_(&g), t_begin_(t_begin), t_end_(t_end) {
  if (t_begin > t_end) throw std::invalid_argument("empty time window");
  out_index_.resize(g.node_count() * time_steps());
  for (TimePoint t = t_begin_; t <= t_end_; ++t) {
    for (net::LinkId id = 0; id < g.link_count(); ++id) {
      const net::Link& l = g.link(id);
      const TimePoint head = t + l.delay;
      if (head > t_end_ && !keep_boundary_links) continue;
      TimedLink tl;
      tl.from = TimedNode{l.src, t};
      tl.to = TimedNode{l.dst, head};
      tl.capacity = l.capacity;
      tl.base_link = id;
      out_index_[slot(l.src, t)].push_back(
          static_cast<std::uint32_t>(links_.size()));
      links_.push_back(tl);
    }
  }
}

std::size_t TimeExtendedNetwork::node_copies() const {
  return base_->node_count() * time_steps();
}

std::size_t TimeExtendedNetwork::slot(net::NodeId v, TimePoint t) const {
  // Public accessors filter out-of-window queries before reaching here, so
  // a violation means an internal indexing bug, not caller misuse.
  CHRONUS_EXPECTS(t >= t_begin_ && t <= t_end_,
                  "time-extended slot outside [t_begin, t_end]");
  CHRONUS_EXPECTS(v < base_->node_count(),
                  "time-extended slot for unknown node");
  return static_cast<std::size_t>(t - t_begin_) * base_->node_count() + v;
}

std::vector<TimedLink> TimeExtendedNetwork::out_links(net::NodeId v,
                                                      TimePoint t) const {
  std::vector<TimedLink> out;
  if (t < t_begin_ || t > t_end_ || v >= base_->node_count()) return out;
  for (const auto idx : out_index_[slot(v, t)]) out.push_back(links_[idx]);
  return out;
}

std::optional<TimedLink> TimeExtendedNetwork::link_at(net::NodeId u,
                                                      net::NodeId v,
                                                      TimePoint t) const {
  for (const TimedLink& l : out_links(u, t)) {
    if (l.to.node == v) return l;
  }
  return std::nullopt;
}

std::string TimeExtendedNetwork::to_string(const TimedLink& l) const {
  return base_->name(l.from.node) + "(t" + std::to_string(l.from.time.count()) +
         ") -> " + base_->name(l.to.node) + "(t" + std::to_string(l.to.time.count()) +
         ")";
}

}  // namespace chronus::timenet
