// The time-extended network G_T (Definition 4): one copy v(t) of every
// switch for every time step t in T, and for each link <u,v> with delay
// sigma a link <u(t), v(t+sigma)> with the original capacity.
//
// The schedulers themselves work on compact per-time structures, but the
// explicit expansion is exposed for tests, exposition (Fig. 2/5) and the
// OPT formulation, matching the paper's model one-to-one.
//
// Two storage backends sit behind one API (DESIGN.md §16):
//
//   * arena (default): structure-of-arrays columns for the timed links
//     (endpoints, times, capacities, base ids) plus a CSR out-index
//     (per-slot offsets into one flat id array), all bump-allocated from
//     a per-network util::Arena sized in a counting pre-pass — one slab
//     walk instead of one heap allocation per slot.
//   * heap (CHRONUS_ARENA=off): the original array-of-structs layout with
//     a vector-of-vectors out-index, kept verbatim as the escape hatch.
//
// Both backends expose bit-identical link ids, orders and contents
// (asserted by tests/planner_differential_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/graph.hpp"
#include "timenet/schedule.hpp"
#include "util/arena.hpp"

namespace chronus::timenet {

struct TimedNode {
  net::NodeId node = net::kInvalidNode;
  TimePoint time{};
  bool operator==(const TimedNode&) const = default;
};

struct TimedLink {
  TimedNode from;
  TimedNode to;
  net::Capacity capacity{};
  net::LinkId base_link = net::kInvalidLink;
};

class TimeExtendedNetwork {
 public:
  /// Expands `g` over the inclusive time window [t_begin, t_end]. Links
  /// whose head would fall outside the window are kept (they model flow
  /// leaving the window) only when `keep_boundary_links` is set.
  TimeExtendedNetwork(const net::Graph& g, TimePoint t_begin, TimePoint t_end,
                      bool keep_boundary_links = false);

  // The arena backend hands out addresses inside the owned arena, so the
  // network is pinned: neither backend is copyable or movable.
  TimeExtendedNetwork(const TimeExtendedNetwork&) = delete;
  TimeExtendedNetwork& operator=(const TimeExtendedNetwork&) = delete;

  TimePoint t_begin() const { return t_begin_; }
  TimePoint t_end() const { return t_end_; }
  std::size_t time_steps() const {
    return static_cast<std::size_t>(t_end_ - t_begin_ + 1);
  }

  /// Number of node copies = node_count * time_steps.
  std::size_t node_copies() const;

  /// Number of timed links in the expansion.
  std::size_t link_count() const;

  /// The timed link with id `i` (ids are stable across both backends:
  /// ascending (t, base_link) construction order).
  TimedLink link(std::size_t i) const;

  /// All timed links in id order, materialized.
  std::vector<TimedLink> links() const;

  /// Outgoing timed links of v(t); empty if t outside the window.
  std::vector<TimedLink> out_links(net::NodeId v, TimePoint t) const;

  /// The timed link for base link <u,v> departing at t, if inside window.
  std::optional<TimedLink> link_at(net::NodeId u, net::NodeId v,
                                   TimePoint t) const;

  const net::Graph& base() const { return *base_; }

  /// "v1(t0) -> v2(t1)" for diagnostics.
  std::string to_string(const TimedLink& l) const;

 private:
  void build_heap(const net::Graph& g, bool keep_boundary_links);
  void build_arena(const net::Graph& g, bool keep_boundary_links);

  const net::Graph* base_;
  TimePoint t_begin_;
  TimePoint t_end_;
  bool arena_mode_;

  // Heap backend (escape hatch): AoS links + per-slot index vectors.
  std::vector<TimedLink> links_;
  std::vector<std::vector<std::uint32_t>> out_index_;

  // Arena backend: SoA columns + CSR out-index, all inside arena_.
  util::Arena arena_;
  util::ArenaVector<net::NodeId> from_node_;
  util::ArenaVector<net::NodeId> to_node_;
  util::ArenaVector<TimePoint> from_time_;
  util::ArenaVector<TimePoint> to_time_;
  util::ArenaVector<net::Capacity> cap_;
  util::ArenaVector<net::LinkId> base_id_;
  util::ArenaVector<std::uint32_t> slot_off_;    // slots + 1 CSR offsets
  util::ArenaVector<std::uint32_t> slot_links_;  // flat timed-link ids

  std::size_t slot(net::NodeId v, TimePoint t) const;
};

}  // namespace chronus::timenet
