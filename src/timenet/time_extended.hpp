// The time-extended network G_T (Definition 4): one copy v(t) of every
// switch for every time step t in T, and for each link <u,v> with delay
// sigma a link <u(t), v(t+sigma)> with the original capacity.
//
// The schedulers themselves work on compact per-time structures, but the
// explicit expansion is exposed for tests, exposition (Fig. 2/5) and the
// OPT formulation, matching the paper's model one-to-one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/graph.hpp"
#include "timenet/schedule.hpp"

namespace chronus::timenet {

struct TimedNode {
  net::NodeId node = net::kInvalidNode;
  TimePoint time{};
  bool operator==(const TimedNode&) const = default;
};

struct TimedLink {
  TimedNode from;
  TimedNode to;
  net::Capacity capacity{};
  net::LinkId base_link = net::kInvalidLink;
};

class TimeExtendedNetwork {
 public:
  /// Expands `g` over the inclusive time window [t_begin, t_end]. Links
  /// whose head would fall outside the window are kept (they model flow
  /// leaving the window) only when `keep_boundary_links` is set.
  TimeExtendedNetwork(const net::Graph& g, TimePoint t_begin, TimePoint t_end,
                      bool keep_boundary_links = false);

  TimePoint t_begin() const { return t_begin_; }
  TimePoint t_end() const { return t_end_; }
  std::size_t time_steps() const {
    return static_cast<std::size_t>(t_end_ - t_begin_ + 1);
  }

  /// Number of node copies = node_count * time_steps.
  std::size_t node_copies() const;

  const std::vector<TimedLink>& links() const { return links_; }

  /// Outgoing timed links of v(t); empty if t outside the window.
  std::vector<TimedLink> out_links(net::NodeId v, TimePoint t) const;

  /// The timed link for base link <u,v> departing at t, if inside window.
  std::optional<TimedLink> link_at(net::NodeId u, net::NodeId v,
                                   TimePoint t) const;

  const net::Graph& base() const { return *base_; }

  /// "v1(t0) -> v2(t1)" for diagnostics.
  std::string to_string(const TimedLink& l) const;

 private:
  const net::Graph* base_;
  TimePoint t_begin_;
  TimePoint t_end_;
  std::vector<TimedLink> links_;
  // links_ indexed per (node, time) for out_links lookups.
  std::vector<std::vector<std::uint32_t>> out_index_;
  std::size_t slot(net::NodeId v, TimePoint t) const;
};

}  // namespace chronus::timenet
