#include "timenet/trajectory.hpp"

#include <unordered_set>

namespace chronus::timenet {

std::optional<net::NodeId> FlowView::rule_at(net::NodeId v, TimePoint t,
                                             TimePoint injected) const {
  if (per_packet_flip) {
    if (injected >= *per_packet_flip) return instance->new_next(v);
    return instance->old_next(v);
  }
  const auto update_time = schedule->at(v);
  if (update_time && t >= *update_time) return instance->new_next(v);
  return instance->old_next(v);
}

Trace trace_class(const FlowView& flow, TimePoint injected, int hop_limit) {
  const net::Graph& g = *flow.graph;
  if (hop_limit <= 0) hop_limit = static_cast<int>(g.node_count()) + 2;

  Trace trace;
  trace.injected = injected;

  net::NodeId at = flow.instance->source();
  TimePoint now = injected;
  const net::NodeId dst = flow.instance->destination();
  std::unordered_set<net::NodeId> visited;

  trace.hops.push_back(TraceHop{at, now});
  visited.insert(at);

  for (int hop = 0; hop < hop_limit; ++hop) {
    if (at == dst) {
      trace.end = TraceEnd::kDelivered;
      return trace;
    }
    const auto next = flow.rule_at(at, now, injected);
    if (!next) {
      trace.end = TraceEnd::kBlackhole;
      trace.fault_node = at;
      return trace;
    }
    const auto link = g.find_link(at, *next);
    if (!link) {
      // A rule over a non-existent link is a blackhole in the data plane.
      trace.end = TraceEnd::kBlackhole;
      trace.fault_node = at;
      return trace;
    }
    now += g.link(*link).delay;
    at = *next;
    trace.hops.push_back(TraceHop{at, now});
    if (!visited.insert(at).second &&
        trace.loop_node == net::kInvalidNode) {
      trace.loop_node = at;  // record, but keep flowing
    }
  }
  trace.end = TraceEnd::kHopLimit;
  trace.fault_node = at;
  if (trace.loop_node == net::kInvalidNode) trace.loop_node = at;
  return trace;
}

Trace trace_class(const net::UpdateInstance& inst, const UpdateSchedule& sched,
                  TimePoint injected, int hop_limit) {
  FlowView flow;
  flow.graph = &inst.graph();
  flow.instance = &inst;
  flow.schedule = &sched;
  flow.demand = inst.demand();
  return trace_class(flow, injected, hop_limit);
}

std::string to_string(const net::Graph& g, const Trace& trace) {
  std::string out;
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    if (i) out += " -> ";
    out += g.name(trace.hops[i].node) + "@" + std::to_string(trace.hops[i].arrival.count());
  }
  switch (trace.end) {
    case TraceEnd::kDelivered: out += " [delivered]"; break;
    case TraceEnd::kBlackhole: out += " [BLACKHOLE at " + g.name(trace.fault_node) + "]"; break;
    case TraceEnd::kHopLimit: out += " [hop limit]"; break;
  }
  if (trace.loop_node != net::kInvalidNode) {
    out += " [LOOP at " + g.name(trace.loop_node) + "]";
  }
  return out;
}

}  // namespace chronus::timenet
