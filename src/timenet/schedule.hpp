// Timed update schedules: the output of MUTP solvers — a time point t_j for
// every switch v_i that must be updated ({v_i, t_j} in the paper's
// Algorithm 2). Times are in the same integral unit as link delays.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/graph.hpp"
#include "util/contracts.hpp"

namespace chronus::timenet {

// A point on the abstract schedule grid (unit-safe; durations are plain
// std::int64_t step counts — see src/util/strong_types.hpp).
using TimePoint = util::TimeStep;

class UpdateSchedule {
 public:
  UpdateSchedule() = default;

  /// Assigns (or reassigns) the update time of a switch.
  void set(net::NodeId v, TimePoint t) { times_[v] = t; }

  void erase(net::NodeId v) { times_.erase(v); }

  /// Update time of v; nullopt means v is never updated (keeps old rule).
  std::optional<TimePoint> at(net::NodeId v) const {
    const auto it = times_.find(v);
    if (it == times_.end()) return std::nullopt;
    return it->second;
  }

  bool contains(net::NodeId v) const { return times_.count(v) > 0; }
  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }

  /// Earliest / latest update times; require a non-empty schedule.
  TimePoint first_time() const;
  TimePoint last_time() const;

  /// last_time - first_time + 1 == |T|, the number of update steps the
  /// objective of program (3) minimizes; 0 for an empty schedule.
  std::int64_t step_span() const;

  /// Switches grouped by update time, ascending (Algorithm 5 walks this).
  std::vector<std::pair<TimePoint, std::vector<net::NodeId>>> by_time() const;

  const std::map<net::NodeId, TimePoint>& entries() const { return times_; }

  bool operator==(const UpdateSchedule& other) const = default;

 private:
  std::map<net::NodeId, TimePoint> times_;
};

inline TimePoint UpdateSchedule::first_time() const {
  CHRONUS_EXPECTS(!times_.empty(),
                  "first_time() requires a non-empty schedule");
  TimePoint best{};
  bool first = true;
  for (const auto& [_, t] : times_) {
    if (first || t < best) best = t;
    first = false;
  }
  return best;
}

inline TimePoint UpdateSchedule::last_time() const {
  CHRONUS_EXPECTS(!times_.empty(),
                  "last_time() requires a non-empty schedule");
  TimePoint best{};
  bool first = true;
  for (const auto& [_, t] : times_) {
    if (first || t > best) best = t;
    first = false;
  }
  return best;
}

inline std::int64_t UpdateSchedule::step_span() const {
  if (times_.empty()) return 0;
  return last_time() - first_time() + 1;
}

inline std::vector<std::pair<TimePoint, std::vector<net::NodeId>>>
UpdateSchedule::by_time() const {
  std::map<TimePoint, std::vector<net::NodeId>> grouped;
  for (const auto& [v, t] : times_) grouped[t].push_back(v);
  return {grouped.begin(), grouped.end()};
}

}  // namespace chronus::timenet
