// Packet-trajectory tracing under a timed update schedule.
//
// The dynamic-flow semantics of the paper (Definition 1) is made concrete by
// tracing *injection classes*: the fluid injected at the source during the
// unit interval [tau, tau+1) samples, at every switch it reaches, the rule
// installed at its own arrival time. A switch v scheduled at T(v) forwards
// with the old rule strictly before T(v) and with the new rule from T(v) on.
//
// The trace of a class yields the occupied time-extended links
// <u(t), v(t+sigma)> — exactly the variables of program (3) — and detects
// violations of the loop-free condition (Definition 2: no switch is visited
// twice by the same unit of flow).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/instance.hpp"
#include "timenet/schedule.hpp"

namespace chronus::timenet {

enum class TraceEnd {
  kDelivered,  ///< reached the destination
  kBlackhole,  ///< reached a switch with no rule for the flow
  kHopLimit,   ///< exceeded the hop budget (a persistent forwarding loop)
};

struct TraceHop {
  net::NodeId node = net::kInvalidNode;
  TimePoint arrival{};  ///< time the class reaches `node`
};

struct Trace {
  TimePoint injected{};
  std::vector<TraceHop> hops;  ///< first hop is the source at `injected`
  TraceEnd end = TraceEnd::kDelivered;
  net::NodeId fault_node = net::kInvalidNode;  ///< blackhole/hop-limit switch

  /// First switch visited twice, if any (Definition 2 violation). A class
  /// that revisits a switch keeps flowing — transient loops in Fig. 1 exit
  /// via v2 -> v6 and are precisely what congests that link — so a trace
  /// can be both looped and delivered.
  net::NodeId loop_node = net::kInvalidNode;

  bool delivered() const { return end == TraceEnd::kDelivered; }
  bool looped() const {
    return loop_node != net::kInvalidNode || end == TraceEnd::kHopLimit;
  }
};

/// A flow's routing state during a transition, decoupled from
/// net::UpdateInstance so that multi-flow extensions can reuse the tracer.
struct FlowView {
  const net::Graph* graph = nullptr;
  const net::UpdateInstance* instance = nullptr;  ///< rule source
  const UpdateSchedule* schedule = nullptr;
  net::Demand demand{1.0};

  /// Two-phase (per-packet versioned) semantics: when set, a class uses the
  /// old rules everywhere iff it was injected before the flip and the new
  /// rules everywhere otherwise — the stamped tag, not the arrival time,
  /// selects the rule generation. `schedule` is ignored in this mode.
  std::optional<TimePoint> per_packet_flip;

  /// Rule of switch v for a class injected at `injected` arriving at time
  /// t: new rule from T(v) on (timed mode) or from the tag flip on
  /// (per-packet mode), old rule before.
  std::optional<net::NodeId> rule_at(net::NodeId v, TimePoint t,
                                     TimePoint injected) const;
};

/// Traces the class injected at `injected`. `hop_limit` defaults to
/// node_count + 2 (a simple trajectory can never be longer).
Trace trace_class(const FlowView& flow, TimePoint injected, int hop_limit = 0);

/// Convenience wrapper building the FlowView from an instance.
Trace trace_class(const net::UpdateInstance& inst, const UpdateSchedule& sched,
                  TimePoint injected, int hop_limit = 0);

/// Human-readable "v1@0 -> v2@1 -> ..." for diagnostics.
std::string to_string(const net::Graph& g, const Trace& trace);

}  // namespace chronus::timenet
