// Loopback convenience client: one connection, one request batch, one
// report — run_load with a single session. Used by the CLI and tests
// where the full multi-connection driver (rpc/load_driver.hpp) is
// overkill.
#pragma once

#include "rpc/load_driver.hpp"

namespace chronus::rpc {

class Client {
 public:
  Client(std::string host, std::uint16_t port, Codec codec = Codec::kBinary)
      : host_(std::move(host)), port_(port), codec_(codec) {}

  /// Submits `requests` over one connection and waits for every record
  /// plus the final report. `graph` must be the server's topology.
  LoadResult run(const net::Graph& graph,
                 const std::vector<service::UpdateRequest>& requests,
                 double timeout_seconds = 120.0) const {
    LoadOptions opts;
    opts.host = host_;
    opts.port = port_;
    opts.codec = codec_;
    opts.connections = 1;
    opts.timeout_seconds = timeout_seconds;
    return run_load(graph, requests, opts);
  }

 private:
  std::string host_;
  std::uint16_t port_;
  Codec codec_;
};

}  // namespace chronus::rpc
