#include "rpc/codec.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/json_writer.hpp"

namespace chronus::rpc {

const char* to_string(Codec c) {
  return c == Codec::kBinary ? "binary" : "json";
}

bool sniff_codec(char first_byte, Codec* out) {
  if (first_byte == kBinaryMagic[0]) {
    *out = Codec::kBinary;
    return true;
  }
  if (first_byte == '{') {
    *out = Codec::kJson;
    return true;
  }
  return false;
}

namespace {

/// Wire-input violation during decode; caught at the Decoder boundary and
/// surfaced as Result::kError (never a ContractViolation — remote bytes
/// are input, not invariants).
struct DecodeError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

bool msg_type_from_tag(std::uint8_t tag, MsgType* out) {
  switch (tag) {
    case 0x01:
    case 0x02:
    case 0x03:
    case 0x81:
    case 0x82:
    case 0x83:
    case 0x84:
    case 0x85:
    case 0x86:
    case 0x87:
      *out = static_cast<MsgType>(tag);
      return true;
    default:
      return false;
  }
}

bool msg_type_from_name(const std::string& name, MsgType* out) {
  static const std::uint8_t kTags[] = {0x01, 0x02, 0x03, 0x81, 0x82,
                                       0x83, 0x84, 0x85, 0x86, 0x87};
  for (std::uint8_t tag : kTags) {
    auto t = static_cast<MsgType>(tag);
    if (name == to_string(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Binary bodies: little-endian fixed-width integers, u32-counted strings
// and vectors, doubles as their IEEE-754 bit pattern.

void put_u8(std::string& s, std::uint8_t v) {
  s.push_back(static_cast<char>(v));
}

void put_u32(std::string& s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    s.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void put_u64(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    s.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void put_i32(std::string& s, std::int32_t v) {
  put_u32(s, static_cast<std::uint32_t>(v));
}

void put_i64(std::string& s, std::int64_t v) {
  put_u64(s, static_cast<std::uint64_t>(v));
}

void put_f64(std::string& s, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(s, bits);
}

void put_bool(std::string& s, bool v) { put_u8(s, v ? 1 : 0); }

void put_str(std::string& s, const std::string& v) {
  if (v.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw DecodeError("string too long to encode");
  }
  put_u32(s, static_cast<std::uint32_t>(v.size()));
  s.append(v);
}

void put_names(std::string& s, const std::vector<std::string>& names) {
  if (names.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw DecodeError("vector too long to encode");
  }
  put_u32(s, static_cast<std::uint32_t>(names.size()));
  for (const std::string& n : names) put_str(s, n);
}

/// Bounds-checked reader over one frame body.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(
                                                          i)]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(
                                                          i)]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool boolean() {
    std::uint8_t v = u8();
    if (v > 1) throw DecodeError("bool byte out of range");
    return v == 1;
  }

  std::string str() {
    std::uint32_t n = u32();
    need(n);
    std::string v(data_ + pos_, n);
    pos_ += n;
    return v;
  }

  std::vector<std::string> names() {
    std::uint32_t n = u32();
    // Each element costs at least its 4-byte count; a count larger than
    // the remaining bytes can afford is hostile input, not a short read.
    if (n > remaining() / 4) throw DecodeError("vector count exceeds frame");
    std::vector<std::string> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(str());
    return v;
  }

  std::size_t remaining() const { return size_ - pos_; }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) throw DecodeError("frame body truncated");
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void encode_binary_body(std::string& body, const Message& m) {
  switch (m.type) {
    case MsgType::kHello:
    case MsgType::kHelloAck:
      put_u32(body, m.version);
      break;
    case MsgType::kSubmit: {
      const WireRequest& r = m.submit;
      put_u64(body, r.id);
      put_str(body, r.name);
      put_f64(body, r.demand.value());
      put_i64(body, r.arrival);
      put_i64(body, r.deadline);
      put_i32(body, r.priority);
      put_names(body, r.init);
      put_names(body, r.fin);
      break;
    }
    case MsgType::kDone:
      break;
    case MsgType::kAck:
    case MsgType::kDeferred:
      put_u64(body, m.id);
      break;
    case MsgType::kRejected:
      put_u64(body, m.id);
      put_str(body, m.text);
      break;
    case MsgType::kRecord: {
      const WireRecord& r = m.record;
      put_u64(body, r.id);
      put_str(body, r.status);
      put_i64(body, r.arrival);
      put_i64(body, r.admitted);
      put_i64(body, r.completed);
      put_i32(body, r.defers);
      put_bool(body, r.joint);
      put_u64(body, r.batch);
      put_i64(body, r.plan_span);
      put_i64(body, r.exec_duration);
      put_i32(body, r.retries);
      put_u64(body, r.faults);
      put_str(body, r.degradation);
      put_bool(body, r.plan_verified);
      put_bool(body, r.run_verified);
      put_i32(body, r.violations);
      put_str(body, r.message);
      break;
    }
    case MsgType::kReport:
      put_u64(body, m.report.requests);
      put_u64(body, m.report.records);
      put_str(body, m.report.digest);
      break;
    case MsgType::kError:
      put_str(body, m.text);
      break;
  }
}

Message decode_binary_body(MsgType type, Cursor& c) {
  Message m;
  m.type = type;
  switch (type) {
    case MsgType::kHello:
    case MsgType::kHelloAck:
      m.version = c.u32();
      break;
    case MsgType::kSubmit: {
      WireRequest& r = m.submit;
      r.id = c.u64();
      r.name = c.str();
      r.demand = net::Demand{c.f64()};
      r.arrival = c.i64();
      r.deadline = c.i64();
      r.priority = c.i32();
      r.init = c.names();
      r.fin = c.names();
      break;
    }
    case MsgType::kDone:
      break;
    case MsgType::kAck:
    case MsgType::kDeferred:
      m.id = c.u64();
      break;
    case MsgType::kRejected:
      m.id = c.u64();
      m.text = c.str();
      break;
    case MsgType::kRecord: {
      WireRecord& r = m.record;
      r.id = c.u64();
      r.status = c.str();
      r.arrival = c.i64();
      r.admitted = c.i64();
      r.completed = c.i64();
      r.defers = c.i32();
      r.joint = c.boolean();
      r.batch = c.u64();
      r.plan_span = c.i64();
      r.exec_duration = c.i64();
      r.retries = c.i32();
      r.faults = c.u64();
      r.degradation = c.str();
      r.plan_verified = c.boolean();
      r.run_verified = c.boolean();
      r.violations = c.i32();
      r.message = c.str();
      break;
    }
    case MsgType::kReport:
      m.report.requests = c.u64();
      m.report.records = c.u64();
      m.report.digest = c.str();
      break;
    case MsgType::kError:
      m.text = c.str();
      break;
  }
  if (c.remaining() != 0) throw DecodeError("trailing bytes in frame");
  return m;
}

// ---------------------------------------------------------------------------
// JSON lines. Encoding reuses util::json_escape; decoding is a minimal
// recursive-descent parser (objects, arrays, strings, numbers with exact
// int64 detection, true/false/null) — enough for this protocol, with no
// dependency beyond the standard library.

void append_double(std::string& s, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  s.append(buf);
}

void append_quoted(std::string& s, const std::string& v) {
  s.push_back('"');
  s.append(util::json_escape(v));
  s.push_back('"');
}

void append_key(std::string& s, const char* key) {
  if (s.back() != '{') s.push_back(',');
  s.push_back('"');
  s.append(key);
  s.append("\":");
}

void append_names(std::string& s, const std::vector<std::string>& names) {
  s.push_back('[');
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) s.push_back(',');
    append_quoted(s, names[i]);
  }
  s.push_back(']');
}

std::string encode_json_line(const Message& m) {
  std::string s = "{";
  append_key(s, "type");
  append_quoted(s, to_string(m.type));
  switch (m.type) {
    case MsgType::kHello:
    case MsgType::kHelloAck:
      append_key(s, "version");
      s.append(std::to_string(m.version));
      break;
    case MsgType::kSubmit: {
      const WireRequest& r = m.submit;
      append_key(s, "id");
      s.append(std::to_string(r.id));
      append_key(s, "name");
      append_quoted(s, r.name);
      append_key(s, "demand");
      append_double(s, r.demand.value());
      append_key(s, "arrival");
      s.append(std::to_string(r.arrival));
      append_key(s, "deadline");
      s.append(std::to_string(r.deadline));
      append_key(s, "priority");
      s.append(std::to_string(r.priority));
      append_key(s, "init");
      append_names(s, r.init);
      append_key(s, "fin");
      append_names(s, r.fin);
      break;
    }
    case MsgType::kDone:
      break;
    case MsgType::kAck:
    case MsgType::kDeferred:
      append_key(s, "id");
      s.append(std::to_string(m.id));
      break;
    case MsgType::kRejected:
      append_key(s, "id");
      s.append(std::to_string(m.id));
      append_key(s, "text");
      append_quoted(s, m.text);
      break;
    case MsgType::kRecord: {
      const WireRecord& r = m.record;
      append_key(s, "id");
      s.append(std::to_string(r.id));
      append_key(s, "status");
      append_quoted(s, r.status);
      append_key(s, "arrival");
      s.append(std::to_string(r.arrival));
      append_key(s, "admitted");
      s.append(std::to_string(r.admitted));
      append_key(s, "completed");
      s.append(std::to_string(r.completed));
      append_key(s, "defers");
      s.append(std::to_string(r.defers));
      append_key(s, "joint");
      s.append(r.joint ? "true" : "false");
      append_key(s, "batch");
      s.append(std::to_string(r.batch));
      append_key(s, "plan_span");
      s.append(std::to_string(r.plan_span));
      append_key(s, "exec_duration");
      s.append(std::to_string(r.exec_duration));
      append_key(s, "retries");
      s.append(std::to_string(r.retries));
      append_key(s, "faults");
      s.append(std::to_string(r.faults));
      append_key(s, "degradation");
      append_quoted(s, r.degradation);
      append_key(s, "plan_verified");
      s.append(r.plan_verified ? "true" : "false");
      append_key(s, "run_verified");
      s.append(r.run_verified ? "true" : "false");
      append_key(s, "violations");
      s.append(std::to_string(r.violations));
      append_key(s, "message");
      append_quoted(s, r.message);
      break;
    }
    case MsgType::kReport:
      append_key(s, "requests");
      s.append(std::to_string(m.report.requests));
      append_key(s, "records");
      s.append(std::to_string(m.report.records));
      append_key(s, "digest");
      append_quoted(s, m.report.digest);
      break;
    case MsgType::kError:
      append_key(s, "text");
      append_quoted(s, m.text);
      break;
  }
  s.append("}\n");
  return s;
}

struct JsonValue {
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray,
                    kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  std::int64_t i = 0;
  std::uint64_t u = 0;  // kUint: integers above int64 range (u64 ids)
  double d = 0.0;
  std::string s;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw DecodeError("trailing bytes after JSON");
    return v;
  }

 private:
  JsonValue parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) throw DecodeError("truncated JSON");
    char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string_value();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') return parse_null();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    throw DecodeError("unexpected character in JSON");
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      char c = take();
      if (c == '}') return v;
      if (c != ',') throw DecodeError("expected ',' or '}' in JSON object");
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(parse_value());
      skip_ws();
      char c = take();
      if (c == ']') return v;
      if (c != ',') throw DecodeError("expected ',' or ']' in JSON array");
    }
  }

  JsonValue parse_string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.s = parse_string();
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) throw DecodeError("unterminated JSON string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) throw DecodeError("unterminated JSON escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (text_.size() - pos_ < 4) throw DecodeError("bad \\u escape");
          std::uint32_t cp = 0;
          for (int k = 0; k < 4; ++k) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<std::uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<std::uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<std::uint32_t>(h - 'A' + 10);
            } else {
              throw DecodeError("bad \\u escape digit");
            }
          }
          // json_escape only emits \u00XX for control bytes; decode the
          // BMP code point as UTF-8 so round-trips are exact.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0u | (cp >> 6)));
            out.push_back(static_cast<char>(0x80u | (cp & 0x3fu)));
          } else {
            out.push_back(static_cast<char>(0xe0u | (cp >> 12)));
            out.push_back(static_cast<char>(0x80u | ((cp >> 6) & 0x3fu)));
            out.push_back(static_cast<char>(0x80u | (cp & 0x3fu)));
          }
          break;
        }
        default:
          throw DecodeError("unknown JSON escape");
      }
    }
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      v.b = true;
      pos_ += 4;
    } else if (text_.substr(pos_, 5) == "false") {
      v.b = false;
      pos_ += 5;
    } else {
      throw DecodeError("bad JSON literal");
    }
    return v;
  }

  JsonValue parse_null() {
    if (text_.substr(pos_, 4) != "null") throw DecodeError("bad JSON literal");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    bool integral = true;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    JsonValue v;
    errno = 0;
    if (integral) {
      char* end = nullptr;
      long long parsed = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        v.kind = JsonValue::Kind::kInt;
        v.i = static_cast<std::int64_t>(parsed);
        return v;
      }
      if (token[0] != '-') {
        // Above int64 but possibly still an exact u64 (binary ids use the
        // full range; the JSON codec must not round them through double).
        errno = 0;
        end = nullptr;
        unsigned long long uparsed = std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          v.kind = JsonValue::Kind::kUint;
          v.u = static_cast<std::uint64_t>(uparsed);
          return v;
        }
      }
      errno = 0;  // out-of-range integer: fall through to double
    }
    char* end = nullptr;
    double parsed = std::strtod(token.c_str(), &end);
    if (errno != 0 || end != token.c_str() + token.size()) {
      throw DecodeError("bad JSON number");
    }
    v.kind = JsonValue::Kind::kDouble;
    v.d = parsed;
    return v;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) throw DecodeError("truncated JSON");
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      throw DecodeError(std::string("expected '") + c + "' in JSON");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JsonValue* find(const JsonValue& obj, const char* key) {
  for (const auto& [k, v] : obj.obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string get_string(const JsonValue& obj, const char* key) {
  const JsonValue* v = find(obj, key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    throw DecodeError(std::string("missing string field '") + key + "'");
  }
  return v->s;
}

std::int64_t get_int(const JsonValue& obj, const char* key) {
  const JsonValue* v = find(obj, key);
  if (v == nullptr || v->kind != JsonValue::Kind::kInt) {
    throw DecodeError(std::string("missing integer field '") + key + "'");
  }
  return v->i;
}

std::uint64_t get_uint(const JsonValue& obj, const char* key) {
  const JsonValue* v = find(obj, key);
  if (v != nullptr && v->kind == JsonValue::Kind::kUint) return v->u;
  std::int64_t i = get_int(obj, key);
  if (i < 0) throw DecodeError(std::string("negative field '") + key + "'");
  return static_cast<std::uint64_t>(i);
}

std::int32_t get_int32(const JsonValue& obj, const char* key) {
  std::int64_t v = get_int(obj, key);
  if (v < std::numeric_limits<std::int32_t>::min() ||
      v > std::numeric_limits<std::int32_t>::max()) {
    throw DecodeError(std::string("field out of range '") + key + "'");
  }
  return static_cast<std::int32_t>(v);
}

double get_double(const JsonValue& obj, const char* key) {
  const JsonValue* v = find(obj, key);
  if (v == nullptr) {
    throw DecodeError(std::string("missing number field '") + key + "'");
  }
  if (v->kind == JsonValue::Kind::kDouble) return v->d;
  if (v->kind == JsonValue::Kind::kInt) return static_cast<double>(v->i);
  throw DecodeError(std::string("missing number field '") + key + "'");
}

bool get_bool(const JsonValue& obj, const char* key) {
  const JsonValue* v = find(obj, key);
  if (v == nullptr || v->kind != JsonValue::Kind::kBool) {
    throw DecodeError(std::string("missing bool field '") + key + "'");
  }
  return v->b;
}

std::vector<std::string> get_names(const JsonValue& obj, const char* key) {
  const JsonValue* v = find(obj, key);
  if (v == nullptr || v->kind != JsonValue::Kind::kArray) {
    throw DecodeError(std::string("missing array field '") + key + "'");
  }
  std::vector<std::string> names;
  names.reserve(v->arr.size());
  for (const JsonValue& e : v->arr) {
    if (e.kind != JsonValue::Kind::kString) {
      throw DecodeError(std::string("non-string element in '") + key + "'");
    }
    names.push_back(e.s);
  }
  return names;
}

Message decode_json_line(std::string_view line) {
  JsonParser parser(line);
  JsonValue doc = parser.parse_document();
  if (doc.kind != JsonValue::Kind::kObject) {
    throw DecodeError("JSON message must be an object");
  }
  std::string type_name = get_string(doc, "type");
  Message m;
  if (!msg_type_from_name(type_name, &m.type)) {
    throw DecodeError("unknown message type '" + type_name + "'");
  }
  switch (m.type) {
    case MsgType::kHello:
    case MsgType::kHelloAck: {
      std::uint64_t v = get_uint(doc, "version");
      if (v > std::numeric_limits<std::uint32_t>::max()) {
        throw DecodeError("field out of range 'version'");
      }
      m.version = static_cast<std::uint32_t>(v);
      break;
    }
    case MsgType::kSubmit: {
      WireRequest& r = m.submit;
      r.id = get_uint(doc, "id");
      r.name = get_string(doc, "name");
      r.demand = net::Demand{get_double(doc, "demand")};
      r.arrival = get_int(doc, "arrival");
      r.deadline = get_int(doc, "deadline");
      r.priority = get_int32(doc, "priority");
      r.init = get_names(doc, "init");
      r.fin = get_names(doc, "fin");
      break;
    }
    case MsgType::kDone:
      break;
    case MsgType::kAck:
    case MsgType::kDeferred:
      m.id = get_uint(doc, "id");
      break;
    case MsgType::kRejected:
      m.id = get_uint(doc, "id");
      m.text = get_string(doc, "text");
      break;
    case MsgType::kRecord: {
      WireRecord& r = m.record;
      r.id = get_uint(doc, "id");
      r.status = get_string(doc, "status");
      r.arrival = get_int(doc, "arrival");
      r.admitted = get_int(doc, "admitted");
      r.completed = get_int(doc, "completed");
      r.defers = get_int32(doc, "defers");
      r.joint = get_bool(doc, "joint");
      r.batch = get_uint(doc, "batch");
      r.plan_span = get_int(doc, "plan_span");
      r.exec_duration = get_int(doc, "exec_duration");
      r.retries = get_int32(doc, "retries");
      r.faults = get_uint(doc, "faults");
      r.degradation = get_string(doc, "degradation");
      r.plan_verified = get_bool(doc, "plan_verified");
      r.run_verified = get_bool(doc, "run_verified");
      r.violations = get_int32(doc, "violations");
      r.message = get_string(doc, "message");
      break;
    }
    case MsgType::kReport:
      m.report.requests = get_uint(doc, "requests");
      m.report.records = get_uint(doc, "records");
      m.report.digest = get_string(doc, "digest");
      break;
    case MsgType::kError:
      m.text = get_string(doc, "text");
      break;
  }
  return m;
}

}  // namespace

std::string encode(Codec c, const Message& m) {
  if (c == Codec::kJson) return encode_json_line(m);
  std::string body;
  encode_binary_body(body, m);
  std::string frame;
  frame.reserve(5 + body.size());
  put_u32(frame, static_cast<std::uint32_t>(1 + body.size()));
  put_u8(frame, static_cast<std::uint8_t>(m.type));
  frame.append(body);
  return frame;
}

Decoder::Decoder(Codec c, std::size_t max_frame)
    : codec_(c), max_frame_(max_frame) {}

void Decoder::feed(std::string_view bytes) {
  if (poisoned_) return;
  // Compact the consumed prefix before growing, so a long-lived session
  // does not accumulate every frame it ever saw.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes);
}

Decoder::Result Decoder::fail(std::string* error, std::string what) {
  poisoned_ = true;
  poison_ = std::move(what);
  if (error != nullptr) *error = poison_;
  return Result::kError;
}

Decoder::Result Decoder::next(Message* out, std::string* error) {
  if (poisoned_) {
    if (error != nullptr) *error = poison_;
    return Result::kError;
  }
  std::string_view avail(buf_.data() + pos_, buf_.size() - pos_);
  if (codec_ == Codec::kBinary) {
    if (avail.size() < 4) return Result::kNeedMore;
    Cursor prefix(avail.data(), 4);
    std::uint32_t len = prefix.u32();
    if (len < 1) return fail(error, "empty frame");
    if (len > max_frame_) {
      return fail(error, "frame length " + std::to_string(len) +
                             " exceeds limit " + std::to_string(max_frame_));
    }
    if (avail.size() < 4 + static_cast<std::size_t>(len)) {
      return Result::kNeedMore;
    }
    MsgType type;
    if (!msg_type_from_tag(static_cast<std::uint8_t>(avail[4]), &type)) {
      return fail(error, "unknown frame tag 0x" + [&] {
        char hex[8];
        std::snprintf(hex, sizeof(hex), "%02x",
                      static_cast<unsigned>(
                          static_cast<std::uint8_t>(avail[4])));
        return std::string(hex);
      }());
    }
    Cursor body(avail.data() + 5, len - 1);
    try {
      *out = decode_binary_body(type, body);
    } catch (const DecodeError& e) {
      return fail(error, e.what());
    }
    pos_ += 4 + static_cast<std::size_t>(len);
    return Result::kMessage;
  }
  // JSON: one message per newline-terminated line.
  std::size_t nl = avail.find('\n');
  if (nl == std::string_view::npos) {
    if (avail.size() > max_frame_) {
      return fail(error, "line length exceeds limit " +
                             std::to_string(max_frame_));
    }
    return Result::kNeedMore;
  }
  std::string_view line = avail.substr(0, nl);
  if (line.size() > max_frame_) {
    return fail(error,
                "line length exceeds limit " + std::to_string(max_frame_));
  }
  try {
    *out = decode_json_line(line);
  } catch (const DecodeError& e) {
    return fail(error, e.what());
  }
  pos_ += nl + 1;
  return Result::kMessage;
}

}  // namespace chronus::rpc
