// The rpc server: socket front-end of the update service.
//
// Two threads, one queue:
//
//   reactor thread — owns the listener, every Session, the per-request
//     owner map and all wire I/O (rpc/reactor.hpp). Submits are decoded
//     against the base graph and pushed into the shared IntakeQueue;
//     the push verdict becomes the wire reply (ack / deferred /
//     rejected).
//   planner thread — waits for a *round trigger*, drains the intake
//     queue in one batch, runs the deterministic UpdateService::run over
//     it, and posts the resulting records back to the reactor for
//     delivery to their owning sessions.
//
// Round triggers (the intake/planning split of ROADMAP item 1): a round
// starts when the queued depth reaches `round_trigger_depth`, or when
// requests are queued and no session is still streaming (everyone sent
// `done` — the whole workload is in, run it), or on drain. Each round is
// an independent UpdateService::run on the base graph, so its report —
// and its digest — is a pure function of the batch contents: any
// transport, connection count or arrival interleaving that delivers the
// same requests into one round produces the bit-identical digest
// (tests/rpc_soak_test.cpp's three-transport gate).
//
// Backpressure (DESIGN.md §14): the queue's soft limit turns submits
// into explicit `deferred` replies, and a session that just got deferred
// stops being read until the planner takes the next batch — pushing
// further arrivals into the kernel socket buffers and from there to the
// client. Because the trigger depth is clamped to the soft limit, a
// fully-deferred steady state always fires a round, so the ladder cannot
// wedge.
//
// Drain: stop accepting (listener closed, handshakes failed), let
// streaming sessions finish, flush every queued request through final
// rounds, deliver records and per-session reports, then stop both
// threads. join() returns when the last session has closed.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/graph.hpp"
#include "rpc/reactor.hpp"
#include "rpc/session.hpp"
#include "service/intake_queue.hpp"
#include "service/service.hpp"

namespace chronus::rpc {

struct ServerOptions {
  /// Loopback-only by design: this is a bench/test front-end, not a
  /// hardened daemon.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via Server::port())

  std::size_t intake_capacity = 256;
  /// Deferral watermark (IntakeQueue soft limit); 0 = capacity.
  std::size_t intake_soft_limit = 0;
  /// Queue depth that fires a planning round; clamped to the soft limit;
  /// 0 = soft limit.
  std::size_t round_trigger_depth = 0;

  std::size_t max_frame = kDefaultMaxFrame;
  int listen_backlog = 1024;

  service::ServiceOptions service;
};

struct ServerStats {
  std::uint64_t sessions = 0;         ///< connections accepted
  std::uint64_t submits = 0;          ///< kSubmit frames handled
  std::uint64_t accepted = 0;         ///< pushed into the intake queue
  std::uint64_t deferred = 0;         ///< backpressure replies
  std::uint64_t rejected = 0;         ///< malformed / duplicate / draining
  std::uint64_t protocol_errors = 0;  ///< sessions failed on bad frames
  std::uint64_t rounds = 0;           ///< planning rounds run
};

class Server {
 public:
  Server(net::Graph base, ServerOptions opts = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the reactor and planner threads. Throws
  /// std::runtime_error if the socket setup fails.
  void start();

  /// The bound port (valid after start(); resolves port 0 requests).
  std::uint16_t port() const { return port_; }

  /// Graceful shutdown: stop accepting, flush in-flight work, emit the
  /// final reports. Thread-safe, idempotent, returns immediately.
  void drain();

  /// Waits for the drain to complete (both threads joined). Implies
  /// drain().
  void join();

  ServerStats stats() const;

  /// Reports of every planning round, in round order. Call after join().
  std::vector<service::ServiceReport> round_reports() const
      CHRONUS_EXCLUDES(coord_mu_);

 private:
  /// Reactor-thread-only per-connection bookkeeping next to the Session.
  struct SessionCtx {
    std::unique_ptr<Session> session;
    std::uint64_t accepted = 0;   ///< submits pushed into the queue
    std::uint64_t delivered = 0;  ///< records sent back
    bool draining = false;        ///< client sent done
    bool counted_active = false;  ///< included in active_streams_
    bool report_sent = false;
    std::string last_digest;      ///< digest of its latest delivered round
  };

  void planner_main();
  // Reactor-thread-only helpers.
  void on_acceptable();
  Message on_submit(Session& s, const WireRequest& w);
  void on_done(Session& s);
  void on_close(Session& s, const std::string& reason);
  void deliver_round(std::size_t idx);
  void resume_all();
  void maybe_send_report(SessionCtx& ctx);
  void drop_active(SessionCtx& ctx) CHRONUS_EXCLUDES(coord_mu_);
  void begin_drain();
  void maybe_finish_shutdown();

  net::Graph base_;
  ServerOptions opts_;
  std::map<std::string, net::NodeId> index_;
  service::IntakeQueue intake_;
  Reactor reactor_;

  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::thread reactor_thread_;
  std::thread planner_thread_;
  bool started_ = false;
  std::atomic<bool> drain_posted_{false};
  std::atomic<bool> planner_done_{false};

  // Reactor-thread-only session state.
  std::uint64_t next_sid_ = 0;
  std::map<std::uint64_t, SessionCtx> sessions_;        // by sid
  std::map<std::uint64_t, std::uint64_t> owners_;       // request id -> sid
  std::set<std::uint64_t> seen_ids_;                    // duplicate guard

  // Reactor <-> planner coordination.
  mutable util::Mutex coord_mu_;
  util::CondVar coord_cv_;
  std::size_t pending_ CHRONUS_GUARDED_BY(coord_mu_) = 0;
  std::size_t active_streams_ CHRONUS_GUARDED_BY(coord_mu_) = 0;
  bool drain_ CHRONUS_GUARDED_BY(coord_mu_) = false;
  std::vector<std::unique_ptr<service::ServiceReport>> reports_
      CHRONUS_GUARDED_BY(coord_mu_);
  std::size_t trigger_ = 0;  // immutable after construction

  // Stats (atomic: bumped on the reactor/planner threads, read anywhere).
  struct AtomicStats {
    std::atomic<std::uint64_t> sessions{0};
    std::atomic<std::uint64_t> submits{0};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> deferred{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> rounds{0};
  };
  AtomicStats stats_;
};

}  // namespace chronus::rpc
