// The two wire encodings of rpc::Message, sharing one vocabulary
// (rpc/wire.hpp) so a conversation is bit-for-bit replayable across
// transports:
//
//   * kBinary — length-prefixed frames `[u32 LE length][u8 type][body]`
//     where `length` counts the type byte plus the body. Integers are
//     little-endian fixed width, strings and vectors carry a u32 count,
//     doubles travel as their IEEE-754 bit pattern (exact round-trip).
//     A binary client opens its stream with the 4-byte magic "CRB1"
//     (consumed by the session's codec sniff, not by the decoder).
//   * kJson — one JSON object per '\n'-terminated line, `"type"` naming
//     the message (rpc::to_string tags). Doubles print with %.17g, so
//     decode(encode(m)) is bit-identical here too. A JSON client's first
//     byte is '{', which is how the session tells the codecs apart.
//
// Decoding is incremental and defensive: feed() arbitrary byte slices
// (down to one byte at a time), next() yields complete messages. Any
// malformed input — oversized length prefix, unknown type tag, truncated
// or non-JSON line, field of the wrong shape — yields kError with a
// description and the decoder goes sticky: the stream is poisoned and the
// session must close. Malformed *wire* input is a session-level error,
// never a ContractViolation: remote bytes are input, not invariants.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "rpc/wire.hpp"

namespace chronus::rpc {

enum class Codec : std::uint8_t { kBinary = 0, kJson = 1 };

const char* to_string(Codec c);

/// Stream prologue a binary client sends before its first frame.
inline constexpr std::string_view kBinaryMagic = "CRB1";

/// Frames larger than this are a protocol error (guards the 4-byte length
/// prefix against hostile or corrupted input).
inline constexpr std::size_t kDefaultMaxFrame = 1u << 20;

/// Identifies the codec from the first byte a client sends: 'C' (magic)
/// -> kBinary, '{' -> kJson, anything else -> unknown (session closes).
/// Returns true and sets `out` iff the byte is recognised.
bool sniff_codec(char first_byte, Codec* out);

/// Encodes one message as a complete frame (binary) or line (JSON).
std::string encode(Codec c, const Message& m);

/// Incremental frame splitter + decoder for one direction of one stream.
class Decoder {
 public:
  enum class Result {
    kNeedMore,  ///< no complete frame buffered yet
    kMessage,   ///< one message decoded into *out
    kError,     ///< protocol error; decoder is now sticky-poisoned
  };

  explicit Decoder(Codec c, std::size_t max_frame = kDefaultMaxFrame);

  /// Appends raw stream bytes (any split, including byte-at-a-time).
  void feed(std::string_view bytes);

  /// Extracts the next complete message. On kError, `*error` describes
  /// the violation and every later call returns kError again.
  Result next(Message* out, std::string* error);

  /// Unconsumed bytes are buffered but do not form a complete frame —
  /// at stream EOF this means the peer sent a truncated message.
  bool has_partial() const { return !poisoned_ && pos_ < buf_.size(); }

  Codec codec() const { return codec_; }

 private:
  Result fail(std::string* error, std::string what);

  Codec codec_;
  std::size_t max_frame_;
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  bool poisoned_ = false;
  std::string poison_;
};

}  // namespace chronus::rpc
