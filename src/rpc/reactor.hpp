// Single-threaded poll(2) reactor: the event loop that owns every socket
// of the rpc server (and of the multi-connection load driver).
//
// Threading model (the whole point of the design): *all* I/O callbacks,
// session state machines and fd registrations run on the one thread
// inside run(). Other threads interact with the loop only through the two
// thread-safe entry points, post() — enqueue a closure for the loop
// thread, waking it through a self-pipe — and stop(). This confinement is
// what keeps the session layer lock-free: the reactor thread is the
// synchronisation domain, so sessions need no mutexes at all, and the
// lock-across-blocking gate (tools/chronus_analyzer) stays trivially
// satisfied — poll(2) is never entered with a lock held.
//
// Registration model: add_fd/set_events/remove_fd are loop-thread-only
// (callers elsewhere must post()). remove_fd during dispatch is safe: the
// entry is tombstoned and swept after the dispatch pass, so a callback
// can close its own fd — or a sibling's — without invalidating the scan.
#pragma once

#include <functional>
#include <vector>

#include "util/thread_annotations.hpp"

namespace chronus::rpc {

class Reactor {
 public:
  /// Bitmask aliases so callers don't need <poll.h> in their headers.
  static const short kReadable;   // POLLIN
  static const short kWritable;   // POLLOUT

  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Registers `fd` for `events`; `cb(revents)` fires from the loop
  /// thread. Loop-thread-only. The fd stays owned by the caller.
  void add_fd(int fd, short events, std::function<void(short)> cb);

  /// Updates the interest set of a registered fd. Loop-thread-only.
  void set_events(int fd, short events);

  /// Unregisters an fd (tombstone; swept after the current dispatch
  /// pass). Loop-thread-only; safe from inside a callback.
  void remove_fd(int fd);

  /// Enqueues `fn` to run on the loop thread and wakes it. Thread-safe.
  void post(std::function<void()> fn) CHRONUS_EXCLUDES(mu_);

  /// One poll/dispatch iteration (posted closures, then ready fds).
  /// `timeout_ms` < 0 blocks until an event. Returns false iff stop()
  /// has been requested. Loop-thread-only.
  bool poll_once(int timeout_ms);

  /// Runs poll_once until stop(). Becomes "the loop thread" for the
  /// duration of the call.
  void run();

  /// Requests run() to return after the current iteration. Thread-safe.
  void stop() CHRONUS_EXCLUDES(mu_);

  /// Registered fd count (excluding the internal wake pipe).
  std::size_t watched() const;

 private:
  struct Entry {
    int fd = -1;
    short events = 0;
    bool dead = false;
    std::function<void(short)> cb;
  };

  void drain_posted() CHRONUS_EXCLUDES(mu_);
  void sweep();

  std::vector<Entry> entries_;  // loop-thread-only
  int wake_read_ = -1;
  int wake_write_ = -1;

  mutable util::Mutex mu_;
  std::vector<std::function<void()>> posted_ CHRONUS_GUARDED_BY(mu_);
  bool stop_requested_ CHRONUS_GUARDED_BY(mu_) = false;
};

}  // namespace chronus::rpc
