// Multi-connection loopback load driver: the client half of the rpc
// subsystem, used by bench/ext_rpc, the `ctest -L net` legs and the
// soak harness.
//
// run_load() opens `connections` sockets against one Server, deals the
// request list round-robin across them, and drives every connection's
// client-side state machine from one poll reactor on the calling thread:
//
//   kConnecting -> kHello -> kStreaming -> kAwaitingReport -> kDone
//                                    \-> any error -> kFailed
//
// Submission protocol per connection: after hello_ack, every assigned
// request is submitted; a `deferred` reply re-queues that submit
// immediately (the server has stopped reading a deferred session until
// its next planning round, so the retry waits in the socket buffers —
// client-side wall-clock sleeps are never needed, and the retry count is
// bounded by the round cadence). `done` is sent once every assigned id
// has been acked or rejected, then the connection waits for its records
// and final report.
//
// The result aggregates per-connection outcomes; `records` come back
// sorted by request id so callers can compare them — and the report
// digests — across transports bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/graph.hpp"
#include "rpc/codec.hpp"
#include "service/request.hpp"

namespace chronus::rpc {

struct LoadOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  Codec codec = Codec::kBinary;
  std::size_t connections = 1;
  /// Wall-clock safety net for the whole run; <= 0 disables.
  double timeout_seconds = 120.0;
};

struct LoadResult {
  bool ok = false;
  std::string error;  ///< first failure, empty when ok

  std::uint64_t submits = 0;   ///< submit frames sent (incl. retries)
  std::uint64_t acked = 0;
  std::uint64_t deferred = 0;  ///< deferred replies seen (= retries)
  std::uint64_t rejected = 0;
  std::uint64_t reports = 0;   ///< connections that got their report

  /// Every record from every connection, sorted by request id.
  std::vector<WireRecord> records;
  /// Per-connection report digests, connection order. Connections whose
  /// requests all landed in one planning round carry that round's digest;
  /// idle connections carry "".
  std::vector<std::string> digests;
};

/// Drives `requests` through a running Server at host:port. `graph` is
/// the same topology the server was built on (node names resolve the
/// paths to wire form).
LoadResult run_load(const net::Graph& graph,
                    const std::vector<service::UpdateRequest>& requests,
                    const LoadOptions& opts);

}  // namespace chronus::rpc
