// One accepted connection of the rpc server: a state machine driven
// entirely from the reactor thread (no locks — the reactor *is* the
// synchronisation domain; see rpc/reactor.hpp).
//
//   kHandshake --hello/hello_ack--> kStreaming --done--> kDraining
//        \                              |                    |
//         \--- bad first byte ---------- \--- protocol ------+--> kClosed
//              or version skew               error (kError
//                                            frame, close)
//
// kHandshake: the first byte picks the codec ('C' -> binary magic,
// '{' -> JSON; anything else closes), then the first message must be a
// kHello with the expected protocol version, answered kHelloAck.
//
// kStreaming: every kSubmit is answered through the server's on_submit
// hook with exactly one of kAck / kDeferred / kRejected; kDone moves the
// session to kDraining.
//
// kDraining: the client has finished submitting; the session only writes
// — the server delivers kRecord frames as planning rounds complete and a
// final kReport, then calls finish(), which closes once the outbound
// buffer has flushed.
//
// Errors: any malformed frame (oversized length, unknown tag, truncated
// JSON, bad field) poisons only *this* session — a best-effort kError
// frame is written and the connection closes. The server and its other
// sessions are untouched, and no ContractViolation is ever raised for
// wire input.
//
// Backpressure: pause_reading() deregisters read interest, so a client
// that keeps sending fills the kernel socket buffers and blocks — the
// transport-level mirror of IntakeQueue::push_wait. resume_reading()
// re-arms reads and immediately re-processes bytes already buffered.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "rpc/codec.hpp"
#include "rpc/reactor.hpp"

namespace chronus::rpc {

class Session {
 public:
  enum class State { kHandshake, kStreaming, kDraining, kClosed };

  struct Hooks {
    /// Answer to one kSubmit: a kAck, kDeferred or kRejected message.
    std::function<Message(Session&, const WireRequest&)> on_submit;
    /// The client sent kDone (entering kDraining).
    std::function<void(Session&)> on_done;
    /// The session reached kClosed (exactly once; `reason` empty for a
    /// clean close). The server must not delete the Session object from
    /// inside this hook — post() the erase to the reactor instead.
    std::function<void(Session&, const std::string&)> on_close;
  };

  /// Takes ownership of `fd` (closed on destruction or close).
  Session(Reactor& reactor, int fd, std::uint64_t sid, Hooks hooks);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Registers with the reactor; call once, from the reactor thread.
  void start();

  /// Queues one server->client message and arms write interest.
  void send(const Message& m);

  /// All server->client traffic has been queued: close as soon as the
  /// outbound buffer drains (immediately if already empty).
  void finish();

  /// Protocol failure: best-effort kError frame, then close.
  void fail(const std::string& reason);

  /// Stop/resume consuming client bytes (kernel-buffer backpressure).
  void pause_reading();
  void resume_reading();
  bool paused() const { return paused_; }

  State state() const { return state_; }
  std::uint64_t sid() const { return sid_; }
  int fd() const { return fd_; }

  bool codec_known() const { return decoder_ != nullptr; }
  /// Only meaningful once codec_known().
  Codec codec() const { return codec_; }

  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t delivered() const { return delivered_; }

 private:
  void on_io(short revents);
  void handle_readable();
  void handle_writable();
  /// Sniffs the codec if still unknown, then decodes and dispatches
  /// every complete buffered message.
  void process_input(std::string_view bytes);
  void handle_message(const Message& m);
  void flush();
  void update_interest();
  void close_now(const std::string& reason);
  const char* codec_tag() const;

  Reactor& reactor_;
  int fd_;
  std::uint64_t sid_;
  Hooks hooks_;

  State state_ = State::kHandshake;
  Codec codec_ = Codec::kBinary;
  std::unique_ptr<Decoder> decoder_;  // null until the codec is sniffed
  std::string sniff_buf_;             // bytes seen before the codec is known
  std::string out_;                   // unflushed outbound bytes
  std::size_t out_pos_ = 0;
  bool paused_ = false;
  bool finishing_ = false;
  bool closed_hook_fired_ = false;
  std::uint64_t submitted_ = 0;  // kSubmit frames seen
  std::uint64_t delivered_ = 0;  // kRecord frames sent
};

}  // namespace chronus::rpc
