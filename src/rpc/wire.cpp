#include "rpc/wire.hpp"

#include <stdexcept>

namespace chronus::rpc {

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kHello:
      return "hello";
    case MsgType::kSubmit:
      return "submit";
    case MsgType::kDone:
      return "done";
    case MsgType::kHelloAck:
      return "hello_ack";
    case MsgType::kAck:
      return "ack";
    case MsgType::kDeferred:
      return "deferred";
    case MsgType::kRejected:
      return "rejected";
    case MsgType::kRecord:
      return "record";
    case MsgType::kReport:
      return "report";
    case MsgType::kError:
      return "error";
  }
  return "unknown";
}

std::map<std::string, net::NodeId> node_index(const net::Graph& g) {
  std::map<std::string, net::NodeId> index;
  for (net::NodeId v = 0; v < g.node_count(); ++v) index[g.name(v)] = v;
  return index;
}

namespace {

std::vector<std::string> path_names(const net::Graph& g, const net::Path& p) {
  std::vector<std::string> names;
  names.reserve(p.size());
  for (net::NodeId v : p) names.push_back(g.name(v));
  return names;
}

net::Path resolve_path(const std::map<std::string, net::NodeId>& index,
                       const std::vector<std::string>& names,
                       const char* field) {
  if (names.size() < 2) {
    throw std::runtime_error(std::string(field) +
                             ": path needs at least two nodes");
  }
  std::vector<net::NodeId> nodes;
  nodes.reserve(names.size());
  for (const std::string& n : names) {
    auto it = index.find(n);
    if (it == index.end()) {
      throw std::runtime_error(std::string(field) + ": unknown node '" + n +
                               "'");
    }
    nodes.push_back(it->second);
  }
  return net::Path{std::move(nodes)};
}

}  // namespace

WireRequest to_wire(const net::Graph& g, const service::UpdateRequest& r) {
  WireRequest w;
  w.id = r.id;
  w.name = r.name;
  w.demand = r.demand;
  w.arrival = r.arrival;
  w.deadline = r.deadline;
  w.priority = r.priority;
  w.init = path_names(g, r.p_init);
  w.fin = path_names(g, r.p_fin);
  return w;
}

service::UpdateRequest from_wire(
    const std::map<std::string, net::NodeId>& index, const WireRequest& w) {
  if (!(w.demand.value() > 0.0)) {
    throw std::runtime_error("demand: must be positive");
  }
  if (w.arrival < 0) throw std::runtime_error("arrival: must be >= 0");
  if (w.deadline < 0) throw std::runtime_error("deadline: must be >= 0");
  service::UpdateRequest r;
  r.id = w.id;
  r.name = w.name;
  r.demand = w.demand;
  r.arrival = w.arrival;
  r.deadline = w.deadline;
  r.priority = w.priority;
  r.p_init = resolve_path(index, w.init, "init");
  r.p_fin = resolve_path(index, w.fin, "fin");
  return r;
}

WireRecord to_wire(const service::RequestRecord& rec) {
  WireRecord w;
  w.id = rec.id;
  w.status = service::to_string(rec.status);
  w.arrival = rec.arrival;
  w.admitted = rec.admitted;
  w.completed = rec.completed;
  w.defers = rec.defers;
  w.joint = rec.joint;
  w.batch = rec.batch;
  w.plan_span = rec.plan_span;
  w.exec_duration = rec.exec_duration;
  w.retries = rec.exec_retries;
  w.faults = rec.faults;
  w.degradation = service::to_string(rec.degradation);
  w.plan_verified = rec.plan_verified;
  w.run_verified = rec.run_verified;
  w.violations = rec.violations;
  w.message = rec.message;
  return w;
}

}  // namespace chronus::rpc
