#include "rpc/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace chronus::rpc {

namespace {

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Server::Server(net::Graph base, ServerOptions opts)
    : base_(std::move(base)),
      opts_(opts),
      index_(node_index(base_)),
      intake_(opts.intake_capacity, opts.intake_soft_limit) {
  std::size_t soft = intake_.soft_limit();
  std::size_t want = opts_.round_trigger_depth == 0 ? soft
                                                    : opts_.round_trigger_depth;
  trigger_ = std::clamp<std::size_t>(want, 1, soft);
}

Server::~Server() {
  if (started_) join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw std::runtime_error("rpc: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("rpc: bad listen host '" + opts_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw std::runtime_error("rpc: bind failed: " +
                             std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, opts_.listen_backlog) != 0) {
    throw std::runtime_error("rpc: listen failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    throw std::runtime_error("rpc: getsockname failed");
  }
  port_ = ntohs(bound.sin_port);

  reactor_.add_fd(listen_fd_, Reactor::kReadable,
                  [this](short) { on_acceptable(); });

  started_ = true;
  reactor_thread_ = std::thread([this] { reactor_.run(); });
  planner_thread_ = std::thread([this] { planner_main(); });
}

void Server::on_acceptable() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error: back to poll
    }
    set_nodelay(fd);
    std::uint64_t sid = ++next_sid_;
    Session::Hooks hooks;
    hooks.on_submit = [this](Session& s, const WireRequest& w) {
      return on_submit(s, w);
    };
    hooks.on_done = [this](Session& s) { on_done(s); };
    hooks.on_close = [this](Session& s, const std::string& reason) {
      on_close(s, reason);
    };
    SessionCtx ctx;
    ctx.session = std::make_unique<Session>(reactor_, fd, sid,
                                            std::move(hooks));
    ctx.counted_active = true;
    Session* raw = ctx.session.get();
    sessions_.emplace(sid, std::move(ctx));
    {
      util::MutexLock lock(coord_mu_);
      ++active_streams_;
    }
    stats_.sessions.fetch_add(1, std::memory_order_relaxed);
    raw->start();
  }
}

Message Server::on_submit(Session& s, const WireRequest& w) {
  stats_.submits.fetch_add(1, std::memory_order_relaxed);
  Message reply;
  reply.id = w.id;

  service::UpdateRequest req;
  try {
    req = from_wire(index_, w);
  } catch (const std::runtime_error& e) {
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    obs::add("rpc.submit_rejected");
    reply.type = MsgType::kRejected;
    reply.text = e.what();
    return reply;
  }
  if (seen_ids_.count(w.id) != 0) {
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    obs::add("rpc.submit_rejected");
    reply.type = MsgType::kRejected;
    reply.text = "duplicate request id " + std::to_string(w.id);
    return reply;
  }

  switch (intake_.try_push(std::move(req))) {
    case service::IntakeQueue::Push::kAccepted: {
      seen_ids_.insert(w.id);
      owners_[w.id] = s.sid();
      sessions_.at(s.sid()).accepted += 1;
      stats_.accepted.fetch_add(1, std::memory_order_relaxed);
      bool fire;
      {
        util::MutexLock lock(coord_mu_);
        ++pending_;
        fire = pending_ >= trigger_;
      }
      if (fire) coord_cv_.notify_all();
      reply.type = MsgType::kAck;
      return reply;
    }
    case service::IntakeQueue::Push::kDeferred:
      stats_.deferred.fetch_add(1, std::memory_order_relaxed);
      obs::add("rpc.submit_deferred");
      // Explicit deferral *and* transport backpressure: the client is
      // told to retry, and this session is not read again until the
      // planner takes the next batch (resume_all).
      s.pause_reading();
      reply.type = MsgType::kDeferred;
      return reply;
    case service::IntakeQueue::Push::kClosed:
      stats_.rejected.fetch_add(1, std::memory_order_relaxed);
      obs::add("rpc.submit_rejected");
      reply.type = MsgType::kRejected;
      reply.text = "server draining";
      return reply;
  }
  reply.type = MsgType::kRejected;
  reply.text = "unreachable";
  return reply;
}

void Server::drop_active(SessionCtx& ctx) {
  if (!ctx.counted_active) return;
  ctx.counted_active = false;
  {
    util::MutexLock lock(coord_mu_);
    --active_streams_;
  }
  coord_cv_.notify_all();
}

void Server::on_done(Session& s) {
  SessionCtx& ctx = sessions_.at(s.sid());
  ctx.draining = true;
  drop_active(ctx);
  maybe_send_report(ctx);
}

void Server::on_close(Session& s, const std::string& reason) {
  if (!reason.empty()) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t sid = s.sid();
  auto it = sessions_.find(sid);
  if (it != sessions_.end()) {
    drop_active(it->second);
    // The Session object is on the stack right now (close runs from its
    // own callback); destroy it after this dispatch pass.
    reactor_.post([this, sid] {
      sessions_.erase(sid);
      maybe_finish_shutdown();
    });
  }
}

void Server::maybe_send_report(SessionCtx& ctx) {
  if (!ctx.draining || ctx.report_sent) return;
  if (ctx.delivered != ctx.accepted) return;  // records still in flight
  ctx.report_sent = true;
  Message m;
  m.type = MsgType::kReport;
  m.report.requests = ctx.session->submitted();
  m.report.records = ctx.delivered;
  m.report.digest = ctx.last_digest;
  ctx.session->send(m);
  ctx.session->finish();
}

void Server::resume_all() {
  for (auto& [sid, ctx] : sessions_) {
    if (ctx.session->paused()) ctx.session->resume_reading();
  }
}

void Server::deliver_round(std::size_t idx) {
  const service::ServiceReport* rep = nullptr;
  {
    util::MutexLock lock(coord_mu_);
    rep = reports_[idx].get();
  }
  const std::string digest = rep->digest();
  for (const service::RequestRecord& rec : rep->records) {
    auto oit = owners_.find(rec.id);
    if (oit == owners_.end()) continue;
    std::uint64_t sid = oit->second;
    owners_.erase(oit);
    auto sit = sessions_.find(sid);
    if (sit == sessions_.end()) continue;  // owner died before delivery
    SessionCtx& ctx = sit->second;
    ctx.delivered += 1;
    ctx.last_digest = digest;
    Message m;
    m.type = MsgType::kRecord;
    m.record = to_wire(rec);
    ctx.session->send(m);
  }
  for (auto& [sid, ctx] : sessions_) maybe_send_report(ctx);
  maybe_finish_shutdown();
}

void Server::planner_main() {
  service::UpdateService svc(base_, opts_.service);
  for (;;) {
    {
      util::MutexLock lock(coord_mu_);
      for (;;) {
        if (drain_) break;
        if (pending_ > 0 &&
            (pending_ >= trigger_ || active_streams_ == 0)) {
          break;
        }
        coord_cv_.wait(coord_mu_);
      }
      if (drain_ && pending_ == 0) {
        if (active_streams_ == 0) break;  // flushed; nothing can arrive
        coord_cv_.wait(coord_mu_);        // sessions still streaming
        continue;
      }
      pending_ = 0;
    }

    std::vector<service::UpdateRequest> batch = intake_.take_batch();
    reactor_.post([this] { resume_all(); });
    if (batch.empty()) continue;

    obs::add("rpc.rounds");
    obs::observe("rpc.round_batch",
                 static_cast<std::int64_t>(batch.size()));
    auto rep = std::make_unique<service::ServiceReport>(
        svc.run(std::move(batch)));
    std::size_t idx;
    {
      util::MutexLock lock(coord_mu_);
      reports_.push_back(std::move(rep));
      idx = reports_.size() - 1;
    }
    stats_.rounds.fetch_add(1, std::memory_order_relaxed);
    reactor_.post([this, idx] { deliver_round(idx); });
  }
  planner_done_.store(true, std::memory_order_release);
  reactor_.post([this] { maybe_finish_shutdown(); });
}

void Server::begin_drain() {
  // Reactor thread: stop accepting and turn away half-open handshakes.
  if (listen_fd_ >= 0) {
    reactor_.remove_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<Session*> handshaking;
  for (auto& [sid, ctx] : sessions_) {
    if (ctx.session->state() == Session::State::kHandshake) {
      handshaking.push_back(ctx.session.get());
    }
  }
  for (Session* s : handshaking) s->fail("server draining");
  {
    util::MutexLock lock(coord_mu_);
    drain_ = true;
  }
  coord_cv_.notify_all();
  maybe_finish_shutdown();
}

void Server::drain() {
  if (!started_) return;
  if (drain_posted_.exchange(true)) return;
  reactor_.post([this] { begin_drain(); });
}

void Server::maybe_finish_shutdown() {
  if (!drain_posted_.load(std::memory_order_relaxed)) return;
  if (!planner_done_.load(std::memory_order_acquire)) return;
  if (!sessions_.empty()) return;
  reactor_.stop();
}

void Server::join() {
  if (!started_) return;
  drain();
  if (planner_thread_.joinable()) planner_thread_.join();
  if (reactor_thread_.joinable()) reactor_thread_.join();
  started_ = false;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.sessions = stats_.sessions.load(std::memory_order_relaxed);
  s.submits = stats_.submits.load(std::memory_order_relaxed);
  s.accepted = stats_.accepted.load(std::memory_order_relaxed);
  s.deferred = stats_.deferred.load(std::memory_order_relaxed);
  s.rejected = stats_.rejected.load(std::memory_order_relaxed);
  s.protocol_errors = stats_.protocol_errors.load(std::memory_order_relaxed);
  s.rounds = stats_.rounds.load(std::memory_order_relaxed);
  return s;
}

std::vector<service::ServiceReport> Server::round_reports() const {
  std::vector<service::ServiceReport> out;
  util::MutexLock lock(coord_mu_);
  out.reserve(reports_.size());
  for (const auto& r : reports_) out.push_back(*r);
  return out;
}

}  // namespace chronus::rpc
