#include "rpc/load_driver.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <map>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "rpc/reactor.hpp"
#include "rpc/wire.hpp"
#include "util/stopwatch.hpp"

namespace chronus::rpc {

namespace {

struct Conn {
  enum class State {
    kConnecting,
    kHello,
    kStreaming,
    kAwaitingReport,
    kDone,
    kFailed,
  };

  int fd = -1;
  State state = State::kConnecting;
  std::unique_ptr<Decoder> decoder;
  std::string out;
  std::size_t out_pos = 0;
  bool done_sent = false;
  std::string fail_reason;

  /// Assigned submits by id, kept for deferred retransmission.
  std::map<std::uint64_t, Message> submits;
  std::map<std::uint64_t, bool> outstanding;  // id -> true (awaiting verdict)

  std::vector<WireRecord> records;
  std::string digest;
  bool got_report = false;

  bool terminal() const {
    return state == State::kDone || state == State::kFailed;
  }
};

class Driver {
 public:
  Driver(const net::Graph& graph,
         const std::vector<service::UpdateRequest>& requests,
         const LoadOptions& opts)
      : opts_(opts) {
    conns_.resize(opts.connections == 0 ? 1 : opts.connections);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      Conn& c = conns_[i % conns_.size()];
      Message m;
      m.type = MsgType::kSubmit;
      m.submit = to_wire(graph, requests[i]);
      c.submits.emplace(m.submit.id, std::move(m));
    }
  }

  LoadResult run() {
    LoadResult result;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts_.port);
    if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
      result.error = "bad host '" + opts_.host + "'";
      return result;
    }

    for (Conn& c : conns_) {
      if (!open_conn(c, addr)) {
        finish(result);
        return result;
      }
    }

    util::Deadline deadline(opts_.timeout_seconds);
    while (live_ > 0) {
      reactor_.poll_once(50);
      if (deadline.expired()) {
        for (Conn& c : conns_) {
          if (!c.terminal()) fail_conn(c, "load driver timeout");
        }
        break;
      }
    }
    finish(result);
    return result;
  }

 private:
  bool open_conn(Conn& c, const sockaddr_in& addr) {
    c.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (c.fd < 0) {
      fail_conn(c, "socket() failed");
      return false;
    }
    ++live_;
    int one = 1;
    ::setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    int rc = ::connect(c.fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      fail_conn(c, "connect() failed");
      return false;
    }
    c.decoder = std::make_unique<Decoder>(opts_.codec);
    obs::add("rpc.client_connections");
    reactor_.add_fd(c.fd, Reactor::kWritable,
                    [this, &c](short revents) { on_io(c, revents); });
    return true;
  }

  void on_io(Conn& c, short revents) {
    if (c.terminal()) return;
    const short err_bits =
        static_cast<short>(POLLERR | POLLHUP | POLLNVAL);
    if (c.state == Conn::State::kConnecting &&
        (revents & (Reactor::kWritable | err_bits)) != 0) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        fail_conn(c, "connect failed");
        return;
      }
      c.state = Conn::State::kHello;
      if (opts_.codec == Codec::kBinary) c.out.append(kBinaryMagic);
      Message hello;
      hello.type = MsgType::kHello;
      hello.version = kProtocolVersion;
      c.out.append(encode(opts_.codec, hello));
    }
    if ((revents & Reactor::kWritable) != 0) flush(c);
    if (c.terminal()) return;
    if ((revents & (Reactor::kReadable | err_bits)) != 0) read_some(c);
    if (!c.terminal()) update_interest(c);
  }

  void read_some(Conn& c) {
    char chunk[4096];
    for (;;) {
      ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        c.decoder->feed(std::string_view(chunk, static_cast<std::size_t>(n)));
        if (!drain_messages(c)) return;
        continue;
      }
      if (n == 0) {
        if (!c.terminal()) fail_conn(c, "server closed connection early");
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      fail_conn(c, "read error");
      return;
    }
  }

  bool drain_messages(Conn& c) {
    Message m;
    std::string error;
    for (;;) {
      Decoder::Result r = c.decoder->next(&m, &error);
      if (r == Decoder::Result::kNeedMore) return true;
      if (r == Decoder::Result::kError) {
        fail_conn(c, "decode error: " + error);
        return false;
      }
      if (!handle_message(c, m)) return false;
    }
  }

  bool handle_message(Conn& c, const Message& m) {
    switch (m.type) {
      case MsgType::kHelloAck:
        if (c.state != Conn::State::kHello) {
          fail_conn(c, "unexpected hello_ack");
          return false;
        }
        c.state = Conn::State::kStreaming;
        for (auto& [id, submit] : c.submits) {
          c.outstanding[id] = true;
          c.out.append(encode(opts_.codec, submit));
          ++submits_;
        }
        maybe_send_done(c);
        return true;
      case MsgType::kAck:
        ++acked_;
        c.outstanding.erase(m.id);
        maybe_send_done(c);
        return true;
      case MsgType::kDeferred: {
        ++deferred_;
        obs::add("rpc.client_deferred");
        auto it = c.submits.find(m.id);
        if (it == c.submits.end()) {
          fail_conn(c, "deferred for unknown id");
          return false;
        }
        // Immediate retransmit: the server reads it after its next round.
        c.out.append(encode(opts_.codec, it->second));
        ++submits_;
        return true;
      }
      case MsgType::kRejected:
        ++rejected_;
        c.outstanding.erase(m.id);
        maybe_send_done(c);
        return true;
      case MsgType::kRecord:
        c.records.push_back(m.record);
        return true;
      case MsgType::kReport:
        c.digest = m.report.digest;
        c.got_report = true;
        close_conn(c, Conn::State::kDone);
        return false;
      case MsgType::kError:
        fail_conn(c, "server error: " + m.text);
        return false;
      default:
        fail_conn(c, "unexpected server message");
        return false;
    }
  }

  void maybe_send_done(Conn& c) {
    if (c.state != Conn::State::kStreaming) return;
    if (c.done_sent || !c.outstanding.empty()) return;
    c.done_sent = true;
    Message done;
    done.type = MsgType::kDone;
    c.out.append(encode(opts_.codec, done));
    c.state = Conn::State::kAwaitingReport;
  }

  void flush(Conn& c) {
    while (c.out_pos < c.out.size()) {
      ssize_t n = ::send(c.fd, c.out.data() + c.out_pos,
                         c.out.size() - c.out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_pos += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      fail_conn(c, "write error");
      return;
    }
    if (c.out_pos == c.out.size()) {
      c.out.clear();
      c.out_pos = 0;
    }
  }

  void update_interest(Conn& c) {
    short events = Reactor::kReadable;
    if (c.state == Conn::State::kConnecting ||
        c.out_pos < c.out.size()) {
      events = static_cast<short>(events | Reactor::kWritable);
    }
    reactor_.set_events(c.fd, events);
  }

  void close_conn(Conn& c, Conn::State final_state) {
    if (c.fd >= 0) {
      reactor_.remove_fd(c.fd);
      ::close(c.fd);
      c.fd = -1;
    }
    if (!c.terminal()) {
      c.state = final_state;
      --live_;
    }
  }

  void fail_conn(Conn& c, const std::string& reason) {
    if (c.terminal()) return;
    c.fail_reason = reason;
    if (c.fd >= 0) {
      reactor_.remove_fd(c.fd);
      ::close(c.fd);
      c.fd = -1;
      close_conn(c, Conn::State::kFailed);
    } else {
      c.state = Conn::State::kFailed;
    }
  }

  void finish(LoadResult& result) {
    for (Conn& c : conns_) {
      if (c.fd >= 0) {
        reactor_.remove_fd(c.fd);
        ::close(c.fd);
        c.fd = -1;
      }
    }
    result.submits = submits_;
    result.acked = acked_;
    result.deferred = deferred_;
    result.rejected = rejected_;
    result.ok = true;
    for (Conn& c : conns_) {
      if (c.state != Conn::State::kDone || !c.got_report) {
        if (result.ok) {
          result.ok = false;
          result.error = c.fail_reason.empty() ? "connection incomplete"
                                               : c.fail_reason;
        }
      }
      if (c.got_report) ++result.reports;
      result.digests.push_back(c.digest);
      for (WireRecord& r : c.records) result.records.push_back(std::move(r));
    }
    std::sort(result.records.begin(), result.records.end(),
              [](const WireRecord& a, const WireRecord& b) {
                return a.id < b.id;
              });
  }

  LoadOptions opts_;
  Reactor reactor_;
  std::vector<Conn> conns_;
  std::size_t live_ = 0;
  std::uint64_t submits_ = 0;
  std::uint64_t acked_ = 0;
  std::uint64_t deferred_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace

LoadResult run_load(const net::Graph& graph,
                    const std::vector<service::UpdateRequest>& requests,
                    const LoadOptions& opts) {
  Driver driver(graph, requests, opts);
  return driver.run();
}

}  // namespace chronus::rpc
