#include "rpc/session.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "obs/metrics.hpp"

namespace chronus::rpc {

Session::Session(Reactor& reactor, int fd, std::uint64_t sid, Hooks hooks)
    : reactor_(reactor), fd_(fd), sid_(sid), hooks_(std::move(hooks)) {}

Session::~Session() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Session::start() {
  obs::add("rpc.sessions_opened");
  obs::gauge_add("rpc.open_sessions", 1);
  reactor_.add_fd(fd_, Reactor::kReadable,
                  [this](short revents) { on_io(revents); });
}

const char* Session::codec_tag() const {
  if (decoder_ == nullptr) return "unknown";
  return to_string(codec_);
}

void Session::on_io(short revents) {
  if (state_ == State::kClosed) return;
  if ((revents & Reactor::kWritable) != 0) handle_writable();
  if (state_ == State::kClosed) return;
  // POLLERR/POLLHUP route through the read path, where recv() reports
  // the EOF or error authoritatively.
  const short err_bits = static_cast<short>(POLLERR | POLLHUP | POLLNVAL);
  if (paused_ && (revents & err_bits) != 0) {
    // A paused session has no read interest, so only error events can
    // arrive; without this close they would re-fire every poll cycle.
    close_now("peer closed while paused");
    return;
  }
  const short readish = static_cast<short>(Reactor::kReadable | err_bits);
  if ((revents & readish) != 0) handle_readable();
}

void Session::handle_readable() {
  char chunk[4096];
  for (;;) {
    if (paused_ || state_ == State::kClosed) return;
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      process_input(std::string_view(chunk, static_cast<std::size_t>(n)));
      continue;
    }
    if (n == 0) {
      // Peer EOF. Mid-frame bytes mean the peer died mid-message.
      if (decoder_ != nullptr && decoder_->has_partial()) {
        obs::add("rpc.protocol_errors");
        close_now("truncated frame at connection EOF");
      } else if (state_ == State::kDraining && finishing_) {
        close_now("");
      } else if (state_ == State::kDraining || state_ == State::kStreaming) {
        // Client hung up before its report was delivered; nothing left
        // to deliver it to.
        close_now("peer closed before report delivery");
      } else {
        close_now("peer closed during handshake");
      }
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_now("read error");
    return;
  }
}

void Session::process_input(std::string_view bytes) {
  if (decoder_ == nullptr) {
    sniff_buf_.append(bytes);
    if (sniff_buf_.empty()) return;
    Codec sniffed;
    if (!sniff_codec(sniff_buf_[0], &sniffed)) {
      obs::add("rpc.protocol_errors");
      fail("unrecognised protocol (expected binary magic or JSON)");
      return;
    }
    if (sniffed == Codec::kBinary) {
      if (sniff_buf_.size() < kBinaryMagic.size()) return;  // need more
      if (std::string_view(sniff_buf_).substr(0, kBinaryMagic.size()) !=
          kBinaryMagic) {
        obs::add("rpc.protocol_errors");
        fail("bad binary magic");
        return;
      }
      codec_ = Codec::kBinary;
      decoder_ = std::make_unique<Decoder>(codec_);
      obs::add("rpc.binary.bytes_in", sniff_buf_.size());
      decoder_->feed(std::string_view(sniff_buf_).substr(kBinaryMagic.size()));
    } else {
      codec_ = Codec::kJson;
      decoder_ = std::make_unique<Decoder>(codec_);
      obs::add("rpc.json.bytes_in", sniff_buf_.size());
      decoder_->feed(sniff_buf_);
    }
    sniff_buf_.clear();
    sniff_buf_.shrink_to_fit();
  } else {
    if (codec_ == Codec::kBinary) {
      obs::add("rpc.binary.bytes_in", bytes.size());
    } else {
      obs::add("rpc.json.bytes_in", bytes.size());
    }
    decoder_->feed(bytes);
  }

  Message m;
  std::string error;
  for (;;) {
    if (paused_ || state_ == State::kClosed) return;
    Decoder::Result r = decoder_->next(&m, &error);
    if (r == Decoder::Result::kNeedMore) return;
    if (r == Decoder::Result::kError) {
      obs::add("rpc.protocol_errors");
      fail(error);
      return;
    }
    if (codec_ == Codec::kBinary) {
      obs::add("rpc.binary.frames_in");
    } else {
      obs::add("rpc.json.frames_in");
    }
    handle_message(m);
  }
}

void Session::handle_message(const Message& m) {
  switch (state_) {
    case State::kHandshake:
      if (m.type != MsgType::kHello) {
        obs::add("rpc.protocol_errors");
        fail("expected hello, got " + std::string(to_string(m.type)));
        return;
      }
      if (m.version != kProtocolVersion) {
        obs::add("rpc.protocol_errors");
        fail("protocol version " + std::to_string(m.version) +
             " unsupported (want " + std::to_string(kProtocolVersion) + ")");
        return;
      }
      state_ = State::kStreaming;
      {
        Message ack;
        ack.type = MsgType::kHelloAck;
        ack.version = kProtocolVersion;
        send(ack);
      }
      return;
    case State::kStreaming:
      if (m.type == MsgType::kSubmit) {
        ++submitted_;
        if (codec_ == Codec::kBinary) {
          obs::add("rpc.binary.submits");
        } else {
          obs::add("rpc.json.submits");
        }
        Message reply = hooks_.on_submit(*this, m.submit);
        send(reply);
        return;
      }
      if (m.type == MsgType::kDone) {
        state_ = State::kDraining;
        if (hooks_.on_done) hooks_.on_done(*this);
        return;
      }
      obs::add("rpc.protocol_errors");
      fail("unexpected " + std::string(to_string(m.type)) +
           " in request stream");
      return;
    case State::kDraining:
      obs::add("rpc.protocol_errors");
      fail("client frame after done");
      return;
    case State::kClosed:
      return;
  }
}

void Session::send(const Message& m) {
  if (state_ == State::kClosed) return;
  if (m.type == MsgType::kRecord) ++delivered_;
  std::string frame = encode(codec_, m);
  if (codec_ == Codec::kBinary) {
    obs::add("rpc.binary.frames_out");
    obs::add("rpc.binary.bytes_out", frame.size());
  } else {
    obs::add("rpc.json.frames_out");
    obs::add("rpc.json.bytes_out", frame.size());
  }
  if (out_pos_ == out_.size()) {
    out_.clear();
    out_pos_ = 0;
  }
  out_.append(frame);
  flush();
  if (state_ != State::kClosed) update_interest();
}

void Session::finish() {
  if (state_ == State::kClosed) return;
  finishing_ = true;
  flush();
  if (state_ == State::kClosed) return;
  if (out_pos_ == out_.size()) {
    close_now("");
  } else {
    update_interest();
  }
}

void Session::fail(const std::string& reason) {
  if (state_ == State::kClosed) return;
  // Best-effort courtesy frame; the close does not wait for it.
  Message err;
  err.type = MsgType::kError;
  err.text = reason;
  if (decoder_ != nullptr) {
    std::string frame = encode(codec_, err);
    out_.append(frame);
    flush();
  }
  close_now(reason);
}

void Session::flush() {
  while (out_pos_ < out_.size()) {
    ssize_t n = ::send(fd_, out_.data() + out_pos_, out_.size() - out_pos_,
                       MSG_NOSIGNAL);
    if (n > 0) {
      out_pos_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    close_now("write error");
    return;
  }
  if (finishing_ && out_pos_ == out_.size()) close_now("");
}

void Session::handle_writable() {
  flush();
  if (state_ != State::kClosed) update_interest();
}

void Session::pause_reading() {
  if (paused_ || state_ == State::kClosed) return;
  paused_ = true;
  obs::gauge_add("rpc.paused_sessions", 1);
  update_interest();
}

void Session::resume_reading() {
  if (!paused_ || state_ == State::kClosed) return;
  paused_ = false;
  obs::gauge_add("rpc.paused_sessions", -1);
  update_interest();
  // Bytes already buffered in the decoder were parked by the pause;
  // process them now rather than waiting for new socket traffic.
  process_input(std::string_view());
}

void Session::update_interest() {
  short events = 0;
  if (!paused_) events = static_cast<short>(events | Reactor::kReadable);
  if (out_pos_ < out_.size()) {
    events = static_cast<short>(events | Reactor::kWritable);
  }
  reactor_.set_events(fd_, events);
}

void Session::close_now(const std::string& reason) {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  if (paused_) {
    paused_ = false;
    obs::gauge_add("rpc.paused_sessions", -1);
  }
  reactor_.remove_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  obs::add("rpc.sessions_closed");
  obs::gauge_add("rpc.open_sessions", -1);
  if (!closed_hook_fired_ && hooks_.on_close) {
    closed_hook_fired_ = true;
    hooks_.on_close(*this, reason);
  }
}

}  // namespace chronus::rpc
