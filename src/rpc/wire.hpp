// The wire vocabulary of the rpc front-end: every message either codec
// (rpc/codec.hpp) can carry, expressed in transport-neutral terms.
//
// Paths cross the wire as *node names*, not NodeIds: ids are an artifact
// of the order the server loaded its topology, while names are the
// stable contract shared with the trace format (io/trace_io). The server
// resolves names against its base graph at submit time; an unknown name
// is a per-request rejection (`kRejected`), never a session error.
//
// Client -> server: kHello (handshake, carries the protocol version),
// kSubmit (one update request), kDone (end of this connection's request
// stream — the client still reads until its kReport arrives).
//
// Server -> client: kHelloAck, then per submit exactly one of kAck
// (accepted into the intake queue), kDeferred (backpressure — resubmit
// later) or kRejected (malformed request: duplicate id, unknown node,
// non-positive demand); after planning, one kRecord per accepted request
// and a final per-session kReport; kError announces a session-fatal
// protocol violation just before the server closes the connection.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/graph.hpp"
#include "service/request.hpp"
#include "sim/sim_time.hpp"

namespace chronus::rpc {

inline constexpr std::uint32_t kProtocolVersion = 1;

enum class MsgType : std::uint8_t {
  kHello = 0x01,
  kSubmit = 0x02,
  kDone = 0x03,
  kHelloAck = 0x81,
  kAck = 0x82,
  kDeferred = 0x83,
  kRejected = 0x84,
  kRecord = 0x85,
  kReport = 0x86,
  kError = 0x87,
};

/// Human-readable tag ("submit", "record", ...); also the JSON "type"
/// field, so the two codecs share one name table.
const char* to_string(MsgType t);

/// One update request in wire form (paths as node-name sequences).
struct WireRequest {
  std::uint64_t id = 0;
  std::string name;
  net::Demand demand{1.0};
  sim::SimTime arrival = 0;
  sim::SimTime deadline = 0;
  int priority = 0;
  std::vector<std::string> init;
  std::vector<std::string> fin;

  bool operator==(const WireRequest&) const = default;
};

/// Everything the service learned about one request, in wire form.
/// Status and degradation travel as their canonical strings
/// (service::to_string), so the two codecs cannot drift from the enum.
struct WireRecord {
  std::uint64_t id = 0;
  std::string status;
  sim::SimTime arrival = 0;
  sim::SimTime admitted = 0;
  sim::SimTime completed = 0;
  int defers = 0;
  bool joint = false;
  std::uint64_t batch = 0;
  std::int64_t plan_span = 0;
  sim::SimTime exec_duration = 0;
  int retries = 0;
  std::uint64_t faults = 0;
  std::string degradation;
  bool plan_verified = false;
  bool run_verified = false;
  int violations = 0;
  std::string message;

  bool operator==(const WireRecord&) const = default;
};

/// The per-session summary closing a connection: how many requests the
/// session submitted, how many records came back, and the digest of the
/// last planning round the session participated in (equal across every
/// session of a single-round run, and equal to the trace-fed digest —
/// the end-to-end equivalence gate of tests/rpc_soak_test.cpp).
struct WireReport {
  std::uint64_t requests = 0;
  std::uint64_t records = 0;
  std::string digest;

  bool operator==(const WireReport&) const = default;
};

/// One decoded message. `type` says which of the payload members is
/// meaningful; the rest stay default-constructed.
struct Message {
  MsgType type = MsgType::kHello;
  std::uint32_t version = kProtocolVersion;  // kHello / kHelloAck
  std::uint64_t id = 0;                      // kAck / kDeferred / kRejected
  std::string text;                          // kRejected / kError message
  WireRequest submit;                        // kSubmit
  WireRecord record;                         // kRecord
  WireReport report;                         // kReport

  bool operator==(const Message&) const = default;
};

/// Name -> id index of a graph, built once per server/client.
std::map<std::string, net::NodeId> node_index(const net::Graph& g);

/// Service request -> wire form (ids become names via `g`).
WireRequest to_wire(const net::Graph& g, const service::UpdateRequest& r);

/// Wire form -> service request against the server's base graph. Throws
/// std::runtime_error naming the offending field on unknown nodes, paths
/// shorter than two hops, or non-positive demand.
service::UpdateRequest from_wire(
    const std::map<std::string, net::NodeId>& index, const WireRequest& w);

/// Service record -> wire form.
WireRecord to_wire(const service::RequestRecord& rec);

}  // namespace chronus::rpc
