#include "rpc/reactor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cstddef>
#include <utility>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace chronus::rpc {

const short Reactor::kReadable = POLLIN;
const short Reactor::kWritable = POLLOUT;

Reactor::Reactor() {
  int fds[2] = {-1, -1};
  int rc = ::pipe2(fds, O_NONBLOCK | O_CLOEXEC);
  CHRONUS_EXPECTS(rc == 0, "reactor wake pipe creation failed");
  wake_read_ = fds[0];
  wake_write_ = fds[1];
}

Reactor::~Reactor() {
  ::close(wake_read_);
  ::close(wake_write_);
}

void Reactor::add_fd(int fd, short events, std::function<void(short)> cb) {
  CHRONUS_EXPECTS(fd >= 0, "reactor fd must be valid");
  for (Entry& e : entries_) {
    if (e.fd == fd && !e.dead) {
      CHRONUS_EXPECTS(false, "fd already registered with the reactor");
    }
  }
  entries_.push_back(Entry{fd, events, false, std::move(cb)});
}

void Reactor::set_events(int fd, short events) {
  for (Entry& e : entries_) {
    if (e.fd == fd && !e.dead) {
      e.events = events;
      return;
    }
  }
  CHRONUS_EXPECTS(false, "set_events on unregistered fd");
}

void Reactor::remove_fd(int fd) {
  for (Entry& e : entries_) {
    if (e.fd == fd && !e.dead) {
      e.dead = true;
      e.cb = nullptr;
      return;
    }
  }
}

void Reactor::post(std::function<void()> fn) {
  {
    util::MutexLock lock(mu_);
    posted_.push_back(std::move(fn));
  }
  // A full pipe already guarantees a pending wake; EAGAIN is fine.
  char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_write_, &byte, 1);
}

void Reactor::stop() {
  {
    util::MutexLock lock(mu_);
    stop_requested_ = true;
  }
  char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_write_, &byte, 1);
}

void Reactor::drain_posted() {
  std::vector<std::function<void()>> run_now;
  {
    util::MutexLock lock(mu_);
    run_now.swap(posted_);
  }
  for (auto& fn : run_now) fn();
}

void Reactor::sweep() {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].dead) {
      if (kept != i) entries_[kept] = std::move(entries_[i]);
      ++kept;
    }
  }
  entries_.resize(kept);
}

bool Reactor::poll_once(int timeout_ms) {
  {
    util::MutexLock lock(mu_);
    if (stop_requested_) return false;
  }
  drain_posted();

  std::vector<pollfd> fds;
  fds.reserve(entries_.size() + 1);
  fds.push_back(pollfd{wake_read_, POLLIN, 0});
  for (const Entry& e : entries_) {
    if (!e.dead) fds.push_back(pollfd{e.fd, e.events, 0});
  }

  int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) return true;  // EINTR and friends: just iterate again
  // Iteration count is wall-timing-dependent, so it lives in a gauge —
  // gauges are dropped from the logical() replay slice (obs/metrics.hpp).
  obs::gauge_add("rpc.reactor_polls", 1);

  if ((fds[0].revents & POLLIN) != 0) {
    char scratch[256];
    while (::read(wake_read_, scratch, sizeof(scratch)) > 0) {
    }
  }

  // Dispatch against the snapshot: entries_ may grow (accept adds
  // sessions) or get tombstoned (sessions close) under our feet, so
  // re-find each fd and skip anything already dead.
  for (std::size_t i = 1; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    for (Entry& e : entries_) {
      if (e.fd == fds[i].fd && !e.dead) {
        e.cb(fds[i].revents);
        break;
      }
    }
  }
  sweep();
  drain_posted();

  {
    util::MutexLock lock(mu_);
    return !stop_requested_;
  }
}

void Reactor::run() {
  while (poll_once(-1)) {
  }
  // One final drain so closures posted just before stop() still run.
  drain_posted();
}

std::size_t Reactor::watched() const {
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (!e.dead) ++n;
  }
  return n;
}

}  // namespace chronus::rpc
