#include "core/multi_flow.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/dependency.hpp"
#include "timenet/transition_state.hpp"
#include "timenet/verifier.hpp"

namespace chronus::core {

namespace {

/// Subtracts the static load of flow `other` (on its old or new stable
/// path) from the capacities of `g`, clamping at a tiny positive value so
/// the link stays present but unusable for additional flow.
void subtract_static_load(net::Graph& g, const net::UpdateInstance& other,
                          bool transitioned) {
  const net::Path& p = transitioned ? other.p_fin() : other.p_init();
  for (const net::LinkId id : net::path_links(g, p)) {
    net::Link& l = g.mutable_link(id);
    l.capacity = std::max(l.capacity - other.demand(), net::Capacity{1e-6});
  }
}

}  // namespace

MultiFlowResult schedule_flows_jointly(
    const std::vector<net::UpdateInstance>& flows) {
  MultiFlowResult res;
  res.schedules.resize(flows.size());
  if (flows.empty()) {
    res.status = ScheduleStatus::kFeasible;
    return res;
  }

  std::vector<const net::UpdateInstance*> ptrs;
  ptrs.reserve(flows.size());
  for (const auto& f : flows) ptrs.push_back(&f);
  timenet::TransitionState state(ptrs);  // throws on graph-layout mismatch
  if (!state.initial_state_valid()) {
    res.status = ScheduleStatus::kInfeasible;
    res.message = "initial configuration already exceeds a link capacity";
    return res;
  }

  const net::Graph& g = flows.front().graph();
  const std::int64_t stall_limit =
      static_cast<std::int64_t>(g.node_count() + 2) * g.max_delay() + 2;

  std::vector<std::set<net::NodeId>> pending(flows.size());
  std::vector<std::set<net::NodeId>> updated(flows.size());
  std::size_t remaining = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    for (const net::NodeId v : flows[f].switches_to_update()) {
      pending[f].insert(v);
    }
    remaining += pending[f].size();
  }

  timenet::TimePoint t{};
  std::int64_t stall = 0;
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (pending[f].empty()) continue;
      DependencySet deps = find_dependencies(flows[f], updated[f], pending[f]);
      if (deps.has_cycle) {
        res.status = ScheduleStatus::kInfeasible;
        res.message = "flow " + std::to_string(f) + ": dependency cycle";
        return res;
      }
      std::vector<net::NodeId> heads = deps.heads();
      std::sort(heads.begin(), heads.end());
      for (const net::NodeId head : heads) {
        if (!state.try_update(f, head, t)) continue;
        updated[f].insert(head);
        pending[f].erase(head);
        --remaining;
        progressed = true;
      }
    }
    ++t;
    stall = progressed ? 0 : stall + 1;
    if (stall > stall_limit && remaining > 0) {
      res.status = ScheduleStatus::kInfeasible;
      res.message = "no progress for " + std::to_string(stall) +
                    " steps (drain bound exceeded)";
      return res;
    }
  }

  timenet::TimePoint lo{};
  timenet::TimePoint hi{};
  bool any = false;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    res.schedules[f] = state.schedule(f);
    if (res.schedules[f].empty()) continue;
    if (!any || res.schedules[f].first_time() < lo) {
      lo = res.schedules[f].first_time();
    }
    if (!any || res.schedules[f].last_time() > hi) {
      hi = res.schedules[f].last_time();
    }
    any = true;
  }
  res.total_span = any ? (hi - lo + 1) : 0;
  res.status = ScheduleStatus::kFeasible;
  return res;
}

MultiFlowResult schedule_flows_sequentially(
    const std::vector<net::UpdateInstance>& flows, const GreedyOptions& opts) {
  MultiFlowResult res;
  res.schedules.resize(flows.size());
  if (flows.empty()) {
    res.status = ScheduleStatus::kFeasible;
    return res;
  }
  const net::Graph& base = flows.front().graph();
  for (const auto& f : flows) {
    if (f.graph().node_count() != base.node_count() ||
        f.graph().link_count() != base.link_count()) {
      throw std::invalid_argument("flows must share one graph layout");
    }
  }

  const std::int64_t drain =
      static_cast<std::int64_t>(base.node_count() + 2) * base.max_delay() + 2;

  timenet::TimePoint offset{};
  for (std::size_t k = 0; k < flows.size(); ++k) {
    net::Graph reduced = flows[k].graph();
    for (std::size_t j = 0; j < flows.size(); ++j) {
      if (j == k) continue;
      subtract_static_load(reduced, flows[j], /*transitioned=*/j < k);
    }
    const net::UpdateInstance inst_k = flows[k].with_graph(std::move(reduced));
    const ScheduleResult r = greedy_schedule(inst_k, opts);
    if (r.status != ScheduleStatus::kFeasible) {
      res.status = ScheduleStatus::kInfeasible;
      res.message = "flow " + std::to_string(k) + ": " +
                    (r.message.empty() ? "unschedulable" : r.message);
      return res;
    }
    if (!r.schedule.empty()) {
      const timenet::TimePoint base_t = r.schedule.first_time();
      for (const auto& [v, t] : r.schedule.entries()) {
        res.schedules[k].set(v, offset + (t - base_t));
      }
      offset += (r.schedule.last_time() - base_t) + 1 + drain;
    }
  }

  // Re-verify the combined plan against the original capacities.
  std::vector<timenet::FlowTransition> transitions;
  transitions.reserve(flows.size());
  for (std::size_t k = 0; k < flows.size(); ++k) {
    timenet::FlowTransition ft;
    ft.instance = &flows[k];
    ft.schedule = &res.schedules[k];
    transitions.push_back(ft);
  }
  timenet::VerifyOptions vo;
  vo.first_violation_only = true;
  if (!verify_transitions(transitions, vo).ok()) {
    res.status = ScheduleStatus::kInfeasible;
    res.message = "combined plan failed re-verification";
    return res;
  }

  timenet::TimePoint lo{};
  timenet::TimePoint hi{};
  bool any = false;
  for (const auto& s : res.schedules) {
    if (s.empty()) continue;
    if (!any || s.first_time() < lo) lo = s.first_time();
    if (!any || s.last_time() > hi) hi = s.last_time();
    any = true;
  }
  res.total_span = any ? (hi - lo + 1) : 0;
  res.status = ScheduleStatus::kFeasible;
  return res;
}

}  // namespace chronus::core
