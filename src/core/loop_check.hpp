// Forwarding-loop checks (Algorithm 4).
//
// Two implementations are provided:
//
// * exact_loop_check: the ground-truth variant used by the scheduler. It
//   tentatively applies the candidate update and traces every injection
//   class that can still be in flight (plus one representative future
//   class); any revisited switch is a Definition-2 violation. This is the
//   time-extended search the paper describes, made exhaustive.
// * structural_loop_check: the paper's upstream walk in literal form —
//   updating v at t loops iff v's new next hop lies upstream of v on the
//   forwarding path the in-flight flow has taken. Kept for exposition and
//   as the cheap filter in the pure (unguarded) greedy ablation.
#pragma once

#include <set>
#include <unordered_map>
#include <vector>

#include "net/instance.hpp"
#include "obs/metrics.hpp"
#include "timenet/schedule.hpp"

namespace chronus::core {

/// True iff updating `v` at time `t`, on top of `scheduled`, makes some
/// in-flight or future injection class revisit a switch.
bool exact_loop_check(const net::UpdateInstance& inst,
                      const timenet::UpdateSchedule& scheduled, net::NodeId v,
                      timenet::TimePoint t);

/// The purely structural upstream walk (a naive reading of Algorithm 4):
/// true iff v's new next hop lies upstream of v on the current forwarding
/// path (or the old path, when v carries no live flow). Ignores timing, so
/// it both over- and under-rejects relative to the time-aware checks; kept
/// for exposition and comparison tests only.
bool structural_loop_check(const net::UpdateInstance& inst,
                           const std::set<net::NodeId>& updated,
                           net::NodeId v);

/// The paper's Algorithm 4 with its time-extended bookkeeping: checks both
/// the continuously arriving flow (does v sit on the current forwarding
/// path with its new next hop upstream?) and the in-flight old-path
/// classes that can still reach v at or after t given the update times
/// already scheduled upstream. O(|p_init|); used by the pure (unguarded)
/// greedy mode, where exact tracing would be too costly at Fig. 10 scale.
bool algorithm4_loop_check(const net::UpdateInstance& inst,
                           const timenet::UpdateSchedule& scheduled,
                           const std::set<net::NodeId>& updated, net::NodeId v,
                           timenet::TimePoint t);

/// Batched Algorithm 4: precomputes the p_init position/delay tables once
/// and the current forwarding path once per time step, so checking each
/// candidate head costs O(|old-path prefix|) instead of O(n) path walks.
/// The pure greedy uses this at Fig. 10 scale (thousands of switches).
class Algorithm4Context {
 public:
  explicit Algorithm4Context(const net::UpdateInstance& inst);

  /// Call at the start of each time step with the switches already updated
  /// and the schedule assigned so far. Heads accepted *within* the step
  /// are not folded in; they can only shrink the in-flight window, so the
  /// stale value errs towards rejecting a head (it is retried next step).
  void begin_step(const std::set<net::NodeId>& updated,
                  const timenet::UpdateSchedule& scheduled);

  /// Same verdict as algorithm4_loop_check under the state of begin_step.
  bool loops(net::NodeId v, timenet::TimePoint t) const;

 private:
  const net::UpdateInstance* inst_;
  // loopcheck.invocations slot, resolved once at construction (null when
  // metrics are dark). The context must not outlive the registry that
  // issued the handle — contexts are per-call locals in practice.
  obs::Counter* invocations_ = nullptr;
  std::vector<net::Delay> init_prefix_delay_;  // D(i) per position
  std::unordered_map<net::NodeId, std::size_t> init_pos_;
  std::unordered_map<net::NodeId, std::size_t> cur_pos_;  // current path
  // tau_max_prefix_[i] = min over scheduled ancestors k < i of
  // (T(u_k) - D(k) - 1): the newest class that can still reach position i
  // over the old path.
  std::vector<timenet::TimePoint> tau_max_prefix_;
};

}  // namespace chronus::core
