#include "core/greedy_scheduler.hpp"

#include <algorithm>

#include "core/loop_check.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "timenet/transition_state.hpp"
#include "timenet/verifier.hpp"
#include "util/contracts.hpp"

namespace chronus::core {

namespace {

/// Per-invocation tallies, flushed once on every exit path (greedy.* in
/// DESIGN.md §11). Aggregating locally keeps the scheduler's hot loop free
/// of atomic traffic even when metrics are enabled.
struct GreedyTally {
  std::uint64_t rounds = 0;
  std::uint64_t dep_rebuilds = 0;
  std::uint64_t heads_expanded = 0;
  std::uint64_t updates = 0;
  bool infeasible = false;

  ~GreedyTally() {
    if (obs::registry() == nullptr) return;
    obs::add("greedy.calls");
    obs::add("greedy.rounds", rounds);
    obs::add("greedy.dep_rebuilds", dep_rebuilds);
    obs::add("greedy.heads_expanded", heads_expanded);
    obs::add("greedy.updates", updates);
    if (infeasible) obs::add("greedy.infeasible");
  }
};

/// Completes a schedule that has no safe continuation: remaining switches
/// are updated one per step, preferring loop-free candidates. Used when the
/// evaluation requires the transition to finish regardless (Figs. 7/8 count
/// the congestion such forced updates produce).
void complete_best_effort(const net::UpdateInstance& inst,
                          std::set<net::NodeId>& pending,
                          timenet::UpdateSchedule& schedule,
                          timenet::TimePoint t) {
  Algorithm4Context alg4(inst);
  std::set<net::NodeId> updated;
  for (const net::NodeId v : inst.switches_to_update()) {
    if (!pending.count(v)) updated.insert(v);
  }
  while (!pending.empty()) {
    alg4.begin_step(updated, schedule);
    net::NodeId chosen = *pending.begin();
    for (const net::NodeId v : pending) {
      if (!alg4.loops(v, t)) {
        chosen = v;
        break;
      }
    }
    schedule.set(chosen, t);
    pending.erase(chosen);
    updated.insert(chosen);
    ++t;
  }
}

}  // namespace

ScheduleResult greedy_schedule(const net::UpdateInstance& inst,
                               const GreedyOptions& opts) {
  CHRONUS_SPAN("greedy.schedule");
  GreedyTally tally;
  ScheduleResult res;
  std::set<net::NodeId> pending;
  for (const net::NodeId v : inst.switches_to_update()) pending.insert(v);
  if (pending.empty()) {
    res.status = ScheduleStatus::kFeasible;
    res.message = "nothing to update";
    return res;
  }

  const net::Graph& g = inst.graph();
  const std::int64_t stall_limit =
      opts.stall_limit > 0
          ? opts.stall_limit
          : static_cast<std::int64_t>(g.node_count() + 2) * g.max_delay() + 2;

  std::set<net::NodeId> updated;
  timenet::TimePoint t{};
  std::int64_t stall = 0;
  Algorithm4Context alg4(inst);          // batched checks for the pure mode
  timenet::TransitionState state(inst);  // incremental checks, guarded mode

  auto fail = [&](const std::string& why) {
    tally.infeasible = true;
    res.message = why;
    if (opts.force_complete) {
      complete_best_effort(inst, pending, res.schedule, t + 1);
      res.status = ScheduleStatus::kBestEffort;
    } else {
      res.status = ScheduleStatus::kInfeasible;
    }
    return res;
  };

  while (!pending.empty()) {
    ++tally.rounds;
    DependencySet deps = find_dependencies(inst, updated, pending);
    ++tally.dep_rebuilds;
    StepLog log;
    log.time = t;
    if (opts.record_steps) log.dependencies = deps;

    if (deps.has_cycle) {
      if (opts.record_steps) res.steps.push_back(std::move(log));
      return fail("dependency cycle at t=" + std::to_string(t.count()));
    }

    std::vector<net::NodeId> heads = deps.heads();
    std::sort(heads.begin(), heads.end());
    alg4.begin_step(updated, res.schedule);

    bool progressed = false;
    for (const net::NodeId head : heads) {
      ++tally.heads_expanded;
      // The O(1) Algorithm 4 verdict first: a positive proves a concrete
      // in-flight class would revisit a switch, sparing the probe.
      if (alg4.loops(head, t)) continue;
      if (opts.guard_with_verifier) {
        // One incremental probe covers both the loop-free and the
        // congestion-free condition (and applies the update on success).
        if (!state.try_update(head, t)) continue;
      }
      res.schedule.set(head, t);
      updated.insert(head);
      pending.erase(head);
      log.updated.push_back(head);
      ++tally.updates;
      progressed = true;
    }

    if (opts.record_steps) res.steps.push_back(std::move(log));
    if (pending.empty()) break;

    ++t;
    stall = progressed ? 0 : stall + 1;
    if (stall > stall_limit) {
      return fail("no progress for " + std::to_string(stall) +
                  " steps (drain bound exceeded)");
    }
  }

  res.status = ScheduleStatus::kFeasible;
  CHRONUS_ENSURES(res.schedule.size() == inst.switches_to_update().size(),
                  "a feasible plan schedules every switch exactly once");
  CHRONUS_ENSURES(res.schedule.first_time() >= timenet::TimePoint{0} &&
                      res.schedule.last_time() <= t,
                  "greedy schedule stays within the steps it walked");
  // Guarded mode proved every step clean incrementally; under audit builds
  // re-verify the whole transition from scratch. The re-verify runs with
  // metrics muted: contract checks must not perturb the logical metric
  // stream, or replay/golden comparisons would depend on the build preset.
  CHRONUS_AUDIT_ENSURES(
      !opts.guard_with_verifier || [&] {
        const obs::MetricsMute mute;
        return timenet::verify_transition(inst, res.schedule).ok();
      }(),
      "guarded greedy emitted a schedule the verifier rejects");
  return res;
}

}  // namespace chronus::core
