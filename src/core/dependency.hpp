// Dependency relation sets (Algorithm 3).
//
// At each time step the greedy scheduler asks: which pending switches can be
// updated now without violating a link capacity? For a pending switch v_i
// with new next hop v, the paper inspects the *solid-line* (initial-path)
// structure around v in the time-extended network: v_bar is v's predecessor
// and v_tilde its successor on p_init. While v_bar has not been updated it
// keeps feeding the flow through <v, v_tilde>; if that link cannot hold both
// the existing flow and the flow v_i would redirect onto it (C < 2d), the
// relation (v_bar -> v_i) is recorded: v_bar must move away first. Once
// v_bar is updated its solid link is no longer drawn and the relation
// disappears.
//
// Relations sharing a common element are merged into chains; only the first
// element of each chain may be updated in a step (Algorithm 2 line 10). As
// in the paper, a switch already part of a relation is skipped when its own
// dependency would be computed (the include flag of Algorithm 3), which
// also rules out two-cycles.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "net/instance.hpp"

namespace chronus::core {

struct DependencySet {
  /// Each chain lists switches in required update order (head first). A
  /// pending switch with no constraints forms a singleton chain.
  std::vector<std::vector<net::NodeId>> chains;

  /// True iff the relations contain a cycle. The include-flag mechanism
  /// makes this structurally impossible, but the check is kept defensive
  /// (Algorithm 2 line 7-8 aborts on it).
  bool has_cycle = false;

  /// The heads of all chains: the switches eligible for update this step.
  std::vector<net::NodeId> heads() const;

  std::string to_string(const net::Graph& g) const;
};

/// Computes the dependency relation set O_t for the pending switches.
/// `updated` is the set of switches whose update is already scheduled
/// (their solid links are no longer drawn).
DependencySet find_dependencies(const net::UpdateInstance& inst,
                                const std::set<net::NodeId>& updated,
                                const std::set<net::NodeId>& pending);

}  // namespace chronus::core
