// Multi-flow scheduling extension.
//
// The paper's formulation (program (3)) ranges over a set of flows F, while
// its algorithms and evaluation focus on a single dynamic flow. This module
// extends Chronus to several concurrent flows sharing one network: flows
// are transitioned one after the other; while flow k transitions, every
// other flow contributes its static load (old path if not yet transitioned,
// new path if already done), which is subtracted from the link capacities
// flow k's scheduler sees. Successive transitions are separated by the
// drain bound so their transients cannot overlap, and the combined result
// is re-verified against the *original* capacities with all flows loaded.
//
// All flow instances must be built over the same graph value (identical
// node and link ids); see net::UpdateInstance.
#pragma once

#include <string>
#include <vector>

#include "core/greedy_scheduler.hpp"
#include "net/instance.hpp"
#include "timenet/schedule.hpp"

namespace chronus::core {

struct MultiFlowResult {
  ScheduleStatus status = ScheduleStatus::kInfeasible;
  /// One schedule per input flow, in input order, on a common time axis.
  std::vector<timenet::UpdateSchedule> schedules;
  /// Total number of time steps spanned by all transitions.
  std::int64_t total_span = 0;
  std::string message;

  bool feasible() const { return status == ScheduleStatus::kFeasible; }
};

/// Schedules the given flows sequentially. Permutes nothing: flows are
/// processed in input order (callers wanting a better order can permute and
/// retry). Returns kInfeasible as soon as one flow cannot be scheduled.
MultiFlowResult schedule_flows_sequentially(
    const std::vector<net::UpdateInstance>& flows,
    const GreedyOptions& opts = {});

/// Schedules all flows jointly: every flow's dependency heads compete in
/// one greedy loop over a shared incremental verifier, so transitions
/// interleave and overlap in time. Strictly more powerful than the
/// sequential composition — it can move flow B out of the way before flow
/// A needs B's old capacity regardless of input order — and yields much
/// shorter total spans (no inter-flow drain separation).
MultiFlowResult schedule_flows_jointly(
    const std::vector<net::UpdateInstance>& flows);

}  // namespace chronus::core
