#include "core/config.hpp"

#include <unordered_set>
#include <vector>

namespace chronus::core {

std::optional<net::NodeId> current_next(const net::UpdateInstance& inst,
                                        const std::set<net::NodeId>& updated,
                                        net::NodeId v) {
  return updated.count(v) ? inst.new_next(v) : inst.old_next(v);
}

std::optional<net::Path> current_forwarding_path(
    const net::UpdateInstance& inst, const std::set<net::NodeId>& updated) {
  std::vector<net::NodeId> nodes;
  std::unordered_set<net::NodeId> seen;
  net::NodeId at = inst.source();
  const net::NodeId dst = inst.destination();
  while (true) {
    if (!seen.insert(at).second) return std::nullopt;  // loop
    nodes.push_back(at);
    if (at == dst) return net::Path(std::move(nodes));
    const auto next = current_next(inst, updated, at);
    if (!next || !inst.graph().has_link(at, *next)) return std::nullopt;
    at = *next;
  }
}

}  // namespace chronus::core
