#include "core/heuristics.hpp"

#include <algorithm>
#include <functional>
#include <map>

#include "core/dependency.hpp"
#include "core/loop_check.hpp"
#include "timenet/transition_state.hpp"
#include "timenet/verifier.hpp"

#include <stdexcept>

namespace chronus::core {

namespace {

/// One guarded greedy run with a caller-chosen per-step head order.
/// `order` receives the dependency set and fills the head list to try.
ScheduleResult greedy_with_order(
    const net::UpdateInstance& inst,
    const std::function<std::vector<net::NodeId>(const DependencySet&)>&
        order) {
  ScheduleResult res;
  std::set<net::NodeId> pending;
  for (const net::NodeId v : inst.switches_to_update()) pending.insert(v);
  if (pending.empty()) {
    res.status = ScheduleStatus::kFeasible;
    return res;
  }

  const net::Graph& g = inst.graph();
  const std::int64_t stall_limit =
      static_cast<std::int64_t>(g.node_count() + 2) * g.max_delay() + 2;

  std::set<net::NodeId> updated;
  timenet::TransitionState state(inst);
  Algorithm4Context alg4(inst);
  timenet::TimePoint t{};
  std::int64_t stall = 0;

  while (!pending.empty()) {
    const DependencySet deps = find_dependencies(inst, updated, pending);
    if (deps.has_cycle) {
      res.status = ScheduleStatus::kInfeasible;
      res.message = "dependency cycle";
      return res;
    }
    alg4.begin_step(updated, res.schedule);
    bool progressed = false;
    for (const net::NodeId head : order(deps)) {
      if (alg4.loops(head, t)) continue;
      if (!state.try_update(head, t)) continue;
      res.schedule.set(head, t);
      updated.insert(head);
      pending.erase(head);
      progressed = true;
    }
    if (pending.empty()) break;
    ++t;
    stall = progressed ? 0 : stall + 1;
    if (stall > stall_limit) {
      res.status = ScheduleStatus::kInfeasible;
      res.message = "no progress within the drain bound";
      return res;
    }
  }
  res.status = ScheduleStatus::kFeasible;
  return res;
}

}  // namespace

ScheduleResult chain_priority_schedule(const net::UpdateInstance& inst) {
  return greedy_with_order(inst, [](const DependencySet& deps) {
    // Heads of longer chains hold back more downstream switches: move
    // them first (critical-path order); break ties by id.
    std::vector<std::pair<std::size_t, net::NodeId>> ranked;
    for (const auto& chain : deps.chains) {
      if (!chain.empty()) ranked.emplace_back(chain.size(), chain.front());
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    std::vector<net::NodeId> heads;
    heads.reserve(ranked.size());
    for (const auto& [_, v] : ranked) heads.push_back(v);
    return heads;
  });
}

ScheduleResult randomized_restart_schedule(const net::UpdateInstance& inst,
                                           util::Rng& rng,
                                           const RestartOptions& opts) {
  ScheduleResult best;
  best.status = ScheduleStatus::kInfeasible;
  best.message = "no feasible schedule in any restart";
  for (int r = 0; r < opts.restarts; ++r) {
    util::Rng run_rng = rng.fork(static_cast<std::uint64_t>(r));
    // Restart 0 replays the deterministic id order, so the result is never
    // worse than the plain greedy; later restarts shuffle the heads.
    ScheduleResult candidate =
        greedy_with_order(inst, [&run_rng, r](const DependencySet& deps) {
          std::vector<net::NodeId> heads = deps.heads();
          if (r == 0) {
            std::sort(heads.begin(), heads.end());
          } else {
            run_rng.shuffle(heads);
          }
          return heads;
        });
    if (!candidate.feasible()) continue;
    if (!best.feasible() ||
        candidate.schedule.step_span() < best.schedule.step_span()) {
      best = std::move(candidate);
    }
  }
  return best;
}

timenet::UpdateSchedule tighten_schedule(const net::UpdateInstance& inst,
                                         const timenet::UpdateSchedule& sched) {
  const auto clean = [&](const timenet::UpdateSchedule& s) {
    timenet::VerifyOptions vo;
    vo.first_violation_only = true;
    return verify_transition(inst, s, vo).ok();
  };
  if (!clean(sched)) {
    throw std::invalid_argument("tighten_schedule: input schedule is unsafe");
  }
  // Normalize to start at 0 (the model is shift-invariant).
  timenet::UpdateSchedule current;
  if (sched.empty()) return current;
  const timenet::TimePoint base = sched.first_time();
  for (const auto& [v, t] : sched.entries()) {
    current.set(v, timenet::TimePoint{t - base});
  }

  // Pull each switch to its earliest safe slot, ascending by current time;
  // moving one switch earlier can unlock another, so iterate to fixpoint.
  // Feasibility is not monotone in the probed time (entry collisions occur
  // at specific alignments), hence the linear scan from 0.
  // Each iteration performs one move and strictly decreases the sum of
  // update times, so n * span bounds the total number of moves.
  bool changed = true;
  std::size_t moves = 0;
  const std::size_t move_cap =
      current.size() * static_cast<std::size_t>(current.step_span() + 1);
  while (changed && moves++ <= move_cap) {
    changed = false;
    for (const auto& [t, switches] : current.by_time()) {
      for (const net::NodeId v : switches) {
        for (timenet::TimePoint earlier{}; earlier < t; ++earlier) {
          timenet::UpdateSchedule candidate = current;
          candidate.set(v, earlier);
          if (clean(candidate)) {
            current = std::move(candidate);
            changed = true;
            break;
          }
        }
      }
      if (changed) break;  // by_time() is stale after a move
    }
  }
  return current;
}

}  // namespace chronus::core
