// Heuristic schedulers beyond the paper's greedy — the paper closes with
// "we plan to continue our study by investigating approximation
// algorithms"; these are two practical steps in that direction. Both emit
// verified (congestion- and loop-free) schedules only.
//
//  * chain_priority_schedule — critical-path greedy: per time step the
//    dependency-chain heads are tried longest-chain-first (the switches
//    holding back the most downstream work move first), instead of the
//    paper's id order.
//  * randomized_restart_schedule — the same greedy loop with randomized
//    head order, restarted R times; returns the best (shortest-makespan)
//    feasible schedule found. Randomized tie-breaking escapes the
//    commit-traps a deterministic order falls into, so it both shortens
//    makespans and recovers some instances the deterministic greedy
//    declares infeasible.
#pragma once

#include "core/greedy_scheduler.hpp"
#include "net/instance.hpp"
#include "util/rng.hpp"

namespace chronus::core {

/// Longest-dependency-chain-first greedy (deterministic).
ScheduleResult chain_priority_schedule(const net::UpdateInstance& inst);

struct RestartOptions {
  int restarts = 16;
};

/// Best feasible schedule across `restarts` randomized greedy runs.
ScheduleResult randomized_restart_schedule(const net::UpdateInstance& inst,
                                           util::Rng& rng,
                                           const RestartOptions& opts = {});

/// Post-optimization: pulls every update as early as the exact semantics
/// allow, switch by switch in ascending scheduled order, until a fixpoint.
/// The result is clean whenever the input is, never has a larger makespan,
/// and is normalized to start at time 0. Throws std::invalid_argument when
/// the input schedule is not congestion- and loop-free.
timenet::UpdateSchedule tighten_schedule(const net::UpdateInstance& inst,
                                         const timenet::UpdateSchedule& sched);

}  // namespace chronus::core
