// Helpers over the *current configuration* of a transition: the mix of
// switches already updated (forwarding with their new rule) and pending
// switches (still forwarding with their old rule). Algorithms 2-4 reason
// about the forwarding path induced by this mix.
#pragma once

#include <optional>
#include <set>

#include "net/instance.hpp"
#include "net/path.hpp"

namespace chronus::core {

/// Next hop of v in the current configuration.
std::optional<net::NodeId> current_next(const net::UpdateInstance& inst,
                                        const std::set<net::NodeId>& updated,
                                        net::NodeId v);

/// The forwarding path newly injected packets take from the source under
/// the current configuration. nullopt if the configuration loops or
/// blackholes (then there is no steady path).
std::optional<net::Path> current_forwarding_path(
    const net::UpdateInstance& inst, const std::set<net::NodeId>& updated);

}  // namespace chronus::core
