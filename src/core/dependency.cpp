#include "core/dependency.hpp"

#include <map>
#include <sstream>
#include <unordered_map>

namespace chronus::core {

std::vector<net::NodeId> DependencySet::heads() const {
  std::vector<net::NodeId> out;
  for (const auto& chain : chains) {
    if (!chain.empty()) out.push_back(chain.front());
  }
  return out;
}

std::string DependencySet::to_string(const net::Graph& g) const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < chains.size(); ++i) {
    if (i) os << ", ";
    os << "(";
    for (std::size_t j = 0; j < chains[i].size(); ++j) {
      if (j) os << " -> ";
      os << g.name(chains[i][j]);
    }
    os << ")";
  }
  os << "}";
  if (has_cycle) os << " CYCLE";
  return os.str();
}

DependencySet find_dependencies(const net::UpdateInstance& inst,
                                const std::set<net::NodeId>& updated,
                                const std::set<net::NodeId>& pending) {
  DependencySet out;
  const net::Path& p_init = inst.p_init();
  const net::Demand need = 2.0 * inst.demand();

  // Position index over p_init: O(1) solid-line neighbour lookups keep the
  // whole pass O(|pending|) (Fig. 10 runs this at 6000 switches).
  std::unordered_map<net::NodeId, std::size_t> init_pos;
  init_pos.reserve(p_init.size());
  for (std::size_t i = 0; i < p_init.size(); ++i) init_pos[p_init[i]] = i;

  // precedes[b] = a  <=>  relation (a -> b): a must update before b.
  std::map<net::NodeId, net::NodeId> precedes;
  std::set<net::NodeId> included;  // the include flags of Algorithm 3

  for (const net::NodeId vi : pending) {  // ascending id, like the paper
    if (included.count(vi)) continue;
    const auto v_opt = inst.new_next(vi);
    if (!v_opt) continue;
    const net::NodeId v = *v_opt;
    if (v == inst.destination()) continue;  // no capacity beyond the sink
    // Solid-line structure around v.
    const auto pos_it = init_pos.find(v);
    const std::size_t pos =
        pos_it == init_pos.end() ? net::Path::npos : pos_it->second;
    const net::NodeId v_bar =
        (pos != net::Path::npos && pos > 0) ? p_init[pos - 1] : net::kInvalidNode;
    const net::NodeId v_tilde =
        (pos != net::Path::npos && pos + 1 < p_init.size()) ? p_init[pos + 1]
                                                            : net::kInvalidNode;
    if (v_bar == net::kInvalidNode || v_tilde == net::kInvalidNode) continue;
    if (v_bar == vi) continue;
    // Once v_bar is updated its solid link into v is no longer drawn.
    if (updated.count(v_bar) || !pending.count(v_bar)) continue;
    if (inst.graph().capacity(v, v_tilde) + net::Demand{1e-9} >= need) {
      continue;
    }
    precedes[vi] = v_bar;
    included.insert(vi);
    included.insert(v_bar);
  }

  // Build chains: each pending switch has at most one predecessor, so the
  // relation graph is a forest of out-trees rooted at relation-free
  // switches. Merging relations on common elements (Algorithm 3 line 12)
  // corresponds to emitting each tree as one chain.
  std::map<net::NodeId, std::vector<net::NodeId>> successors;
  for (const auto& [b, a] : precedes) successors[a].push_back(b);

  std::set<net::NodeId> emitted;
  for (const net::NodeId v : pending) {
    if (precedes.count(v) || emitted.count(v)) continue;
    std::vector<net::NodeId> chain;
    std::vector<net::NodeId> stack{v};
    while (!stack.empty()) {
      const net::NodeId x = stack.back();
      stack.pop_back();
      if (!emitted.insert(x).second) continue;
      chain.push_back(x);
      const auto it = successors.find(x);
      if (it != successors.end()) {
        for (auto r = it->second.rbegin(); r != it->second.rend(); ++r) {
          stack.push_back(*r);
        }
      }
    }
    out.chains.push_back(std::move(chain));
  }

  // A pending switch never emitted sits on a cycle (defensive; the include
  // flags make this unreachable).
  for (const net::NodeId v : pending) {
    if (!emitted.count(v)) {
      out.has_cycle = true;
      break;
    }
  }
  return out;
}

}  // namespace chronus::core
