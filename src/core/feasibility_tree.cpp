#include "core/feasibility_tree.hpp"

#include <algorithm>
#include <vector>

#include "core/greedy_scheduler.hpp"
#include "timenet/transition_state.hpp"

namespace chronus::core {

namespace {

/// A candidate move of Algorithm 1: a contiguous run of pending p_fin
/// switches (or a single redirect switch) updated simultaneously, whose
/// last dashed edge points into the stable region — "the outgoing dashed
/// line points from one branch to the other" (§III). Updating interior
/// nodes of the segment together is the paper's line 25-26 ("for each node
/// z in p: update z at t").
using Segment = std::vector<net::NodeId>;

/// Applies the whole segment at t if every switch stays clean; otherwise
/// rolls the partial placement back.
bool place_segment(timenet::TransitionState& state, const Segment& seg,
                   timenet::TimePoint t) {
  std::size_t placed = 0;
  for (; placed < seg.size(); ++placed) {
    if (!state.try_update(seg[placed], t)) break;
  }
  if (placed == seg.size()) return true;
  while (placed-- > 0) state.undo();
  return false;
}

}  // namespace

FeasibilityResult tree_feasibility_check(const net::UpdateInstance& inst) {
  FeasibilityResult res;
  const net::Graph& g = inst.graph();
  const std::int64_t drain_bound =
      static_cast<std::int64_t>(g.node_count() + 2) * g.max_delay() + 2;

  std::set<net::NodeId> pending;
  std::set<net::NodeId> updated;
  for (const net::NodeId v : inst.switches_to_update()) pending.insert(v);

  // A crossing move may only point into "the other branch": a switch whose
  // current forwarding chain (new rules where scheduled, old rules
  // otherwise) already reaches the destination.
  const auto reaches_destination = [&](net::NodeId from) {
    std::set<net::NodeId> seen;
    net::NodeId at = from;
    while (seen.insert(at).second) {
      if (at == inst.destination()) return true;
      const auto next = updated.count(at) ? inst.new_next(at) : inst.old_next(at);
      if (!next) return false;
      at = *next;
    }
    return false;  // cycle
  };

  const net::Path& fin = inst.p_fin();
  const net::Path& init = inst.p_init();

  // Candidate moves at the current configuration, in Algorithm 1's order:
  // crossings nearest the destination first, minimal segments first.
  const auto candidates = [&] {
    std::vector<Segment> moves;
    for (std::size_t e = fin.size() - 1; e-- > 0;) {
      if (!pending.count(fin[e])) continue;
      const auto target = inst.new_next(fin[e]);
      if (!target || !reaches_destination(*target)) continue;
      // Segments [s..e] of consecutive pending p_fin switches.
      for (std::size_t s = e + 1; s-- > 0;) {
        if (!pending.count(fin[s])) break;
        Segment seg;
        for (std::size_t k = s; k <= e; ++k) seg.push_back(fin[k]);
        moves.push_back(std::move(seg));
      }
    }
    // Redirect switches on the old branch only, destination-first.
    for (std::size_t k = init.size() - 1; k-- > 0;) {
      const net::NodeId v = init[k];
      if (!pending.count(v) || fin.contains(v)) continue;
      const auto target = inst.new_next(v);
      if (target && reaches_destination(*target)) moves.push_back(Segment{v});
    }
    return moves;
  };

  timenet::TransitionState state(inst);
  timenet::TimePoint t{};
  std::int64_t stall = 0;
  while (!pending.empty()) {
    bool placed = false;
    for (const Segment& seg : candidates()) {
      if (!place_segment(state, seg, t)) continue;
      for (const net::NodeId v : seg) {
        res.witness.set(v, t);
        pending.erase(v);
        updated.insert(v);
      }
      placed = true;
      break;
    }
    ++t;
    stall = placed ? 0 : stall + 1;
    if (stall > drain_bound) {
      // The sweep committed to a crossing that forecloses the rest (it is
      // greedy and does not backtrack). Fall back to the Algorithm 2
      // dependency mechanism, which orders crossings by the capacity
      // relations instead of by branch position; feasibility holds if
      // either procedure completes (both only emit verified witnesses).
      GreedyOptions gopts;
      gopts.record_steps = false;
      const ScheduleResult greedy = greedy_schedule(inst, gopts);
      if (greedy.feasible()) {
        res.feasible = true;
        res.witness = greedy.schedule;
        res.message = "via dependency-ordered fallback";
        return res;
      }
      // Theorem 2: under identical delays, a move that cannot be placed
      // once all in-flight traffic drained cannot be placed later either.
      res.feasible = false;
      res.failed_switch = *pending.begin();
      res.message = "no safe crossing move for any of " +
                    std::to_string(pending.size()) + " pending switches";
      return res;
    }
  }
  res.feasible = true;
  return res;
}

}  // namespace chronus::core
