// The Chronus greedy scheduler (Algorithm 2).
//
// At each time step t the scheduler computes the dependency relation set
// among the pending switches (Algorithm 3), takes the head of every chain,
// rejects heads whose update would create a forwarding loop (Algorithm 4),
// and updates the surviving heads simultaneously at t — maximizing per-step
// parallelism and hence minimizing the total update time. One time step is
// appended per round until all switches are updated or the update is
// declared infeasible (dependency cycle, or no progress for longer than any
// in-flight traffic can take to drain).
//
// With `guard_with_verifier` (the default) every accepted update is also
// checked against the exact time-extended verifier, which upholds
// Theorem 3 (the emitted sequence is congestion- and loop-free) for
// arbitrary link delays; switching the guard off gives the paper's pure
// dependency + structural-loop-check behaviour (the ablation in
// bench/ablation_greedy_variants).
#pragma once

#include <string>
#include <vector>

#include "core/dependency.hpp"
#include "net/instance.hpp"
#include "timenet/schedule.hpp"

namespace chronus::core {

enum class ScheduleStatus {
  kFeasible,    ///< complete schedule, verified congestion- and loop-free
  kInfeasible,  ///< no congestion- and loop-free sequence found
  kBestEffort,  ///< infeasible, but a completing schedule was forced
};

/// Per-step diagnostics: the Fig. 5 view of one time step.
struct StepLog {
  timenet::TimePoint time{};
  DependencySet dependencies;
  std::vector<net::NodeId> updated;  ///< switches updated at this step
};

struct ScheduleResult {
  ScheduleStatus status = ScheduleStatus::kInfeasible;
  timenet::UpdateSchedule schedule;
  std::vector<StepLog> steps;
  std::string message;

  bool feasible() const { return status == ScheduleStatus::kFeasible; }
};

struct GreedyOptions {
  /// Check each accepted update with the exact verifier (Theorem 3 guard).
  bool guard_with_verifier = true;

  /// When no safe sequence exists, still emit a schedule that completes the
  /// update (used by the Fig. 7/8 evaluation, where infeasible instances
  /// are executed anyway and their congestion is measured).
  bool force_complete = false;

  /// Consecutive no-progress steps tolerated before declaring infeasibility;
  /// 0 = automatic (the drain bound: longest possible trajectory duration).
  std::int64_t stall_limit = 0;

  /// Record per-step dependency sets in the result (costs memory; on by
  /// default for explainability, off for the large Fig. 10 runs).
  bool record_steps = true;
};

ScheduleResult greedy_schedule(const net::UpdateInstance& inst,
                               const GreedyOptions& opts = {});

}  // namespace chronus::core
