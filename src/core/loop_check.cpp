#include "core/loop_check.hpp"

#include <algorithm>
#include <limits>

#include "core/config.hpp"
#include "obs/metrics.hpp"
#include "timenet/trajectory.hpp"

namespace chronus::core {

bool exact_loop_check(const net::UpdateInstance& inst,
                      const timenet::UpdateSchedule& scheduled, net::NodeId v,
                      timenet::TimePoint t) {
  obs::add("loopcheck.exact_invocations");
  timenet::UpdateSchedule tentative = scheduled;
  tentative.set(v, t);

  const net::Graph& g = inst.graph();
  const std::int64_t span =
      static_cast<std::int64_t>(g.node_count() + 2) * g.max_delay();
  // Classes injected before t - span pass every switch before t and are
  // unaffected by this update; classes injected at >= t all see the same
  // (final, static) configuration, so tracing one representative suffices.
  for (timenet::TimePoint tau = t - span; tau <= t + 1; ++tau) {
    const timenet::Trace trace = trace_class(inst, tentative, tau);
    if (trace.looped()) return true;
  }
  return false;
}

bool algorithm4_loop_check(const net::UpdateInstance& inst,
                           const timenet::UpdateSchedule& scheduled,
                           const std::set<net::NodeId>& updated, net::NodeId v,
                           timenet::TimePoint t) {
  Algorithm4Context ctx(inst);
  ctx.begin_step(updated, scheduled);
  return ctx.loops(v, t);
}

Algorithm4Context::Algorithm4Context(const net::UpdateInstance& inst)
    : inst_(&inst), invocations_(obs::counter_ptr("loopcheck.invocations")) {
  const net::Path& p_init = inst.p_init();
  const net::Graph& g = inst.graph();
  init_prefix_delay_.resize(p_init.size(), 0);
  init_pos_.reserve(p_init.size());
  for (std::size_t i = 0; i < p_init.size(); ++i) {
    init_pos_[p_init[i]] = i;
    if (i + 1 < p_init.size()) {
      init_prefix_delay_[i + 1] =
          init_prefix_delay_[i] + g.delay(p_init[i], p_init[i + 1]);
    }
  }
}

void Algorithm4Context::begin_step(const std::set<net::NodeId>& updated,
                                   const timenet::UpdateSchedule& scheduled) {
  cur_pos_.clear();
  const auto path = current_forwarding_path(*inst_, updated);
  if (path) {
    for (std::size_t i = 0; i < path->size(); ++i) cur_pos_[(*path)[i]] = i;
  }
  const net::Path& p_init = inst_->p_init();
  tau_max_prefix_.assign(p_init.size(),
                         std::numeric_limits<timenet::TimePoint>::max());
  for (std::size_t i = 1; i < p_init.size(); ++i) {
    timenet::TimePoint bound = tau_max_prefix_[i - 1];
    const auto upd = scheduled.at(p_init[i - 1]);
    if (upd) {
      bound = std::min(bound, *upd - init_prefix_delay_[i - 1] - 1);
    }
    tau_max_prefix_[i] = bound;
  }
}

bool Algorithm4Context::loops(net::NodeId v, timenet::TimePoint t) const {
  // Hot path: the slot handle was resolved once in the constructor, so an
  // enabled check costs one relaxed increment and a disabled one a branch.
  if (invocations_ != nullptr) invocations_->add(1);
  const auto new_next = inst_->new_next(v);
  if (!new_next) return false;

  // (a) Continuously arriving flow: if v carries flow in the current
  // configuration and its new next hop lies upstream on that path, every
  // redirected class revisits the next hop.
  const auto cv = cur_pos_.find(v);
  const auto cn = cur_pos_.find(*new_next);
  if (cv != cur_pos_.end() && cn != cur_pos_.end() &&
      cn->second < cv->second) {
    return true;
  }

  // (b) In-flight old-path classes: a class injected at tau reaches the
  // i-th switch of p_init at tau + D(i) provided no upstream switch had
  // been updated by the time the class passed it. If such a class can
  // still reach v at or after t, and v's new next hop is one of the
  // switches the class already visited, updating v at t loops it.
  const auto iv = init_pos_.find(v);
  if (iv == init_pos_.end()) return false;
  const auto jn = init_pos_.find(*new_next);
  if (jn == init_pos_.end() || jn->second >= iv->second) return false;

  const std::size_t i = iv->second;
  const timenet::TimePoint tau_low = t - init_prefix_delay_[i];
  return tau_low <= tau_max_prefix_[i];
}

bool structural_loop_check(const net::UpdateInstance& inst,
                           const std::set<net::NodeId>& updated,
                           net::NodeId v) {
  const auto new_next = inst.new_next(v);
  if (!new_next) return false;
  const auto path = current_forwarding_path(inst, updated);
  if (!path) return true;  // configuration already loops; be conservative
  const auto pos_v = path->index_of(v);
  if (pos_v == net::Path::npos) {
    // No flow is routed through v in the current configuration, but
    // in-flight classes may still traverse the old path through v. Walk the
    // old path upstream of v instead.
    const auto old_pos = inst.p_init().index_of(v);
    if (old_pos == net::Path::npos) return false;
    for (std::size_t i = 0; i < old_pos; ++i) {
      if (inst.p_init()[i] == *new_next) return true;
    }
    return false;
  }
  // v carries flow: loop iff the new next hop lies upstream on the path the
  // flow took to reach v.
  const auto pos_next = path->index_of(*new_next);
  return pos_next != net::Path::npos && pos_next < pos_v;
}

}  // namespace chronus::core
