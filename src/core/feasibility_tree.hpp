// The tree feasibility check (Algorithm 1, Theorem 2).
//
// The paper arranges the two routing paths as two branches of a tree rooted
// at the destination and performs update moves whose dashed (new) edge
// crosses from one branch to the other, starting at the destination end and
// working towards the source; each move may wait for in-flight traffic to
// drain, and fails permanently when neither the capacity condition
// (cons >= 2d) nor the delay condition (phi(new segment) >= phi(old
// segment)) holds — the proof of Theorem 2 shows such a failure cannot be
// repaired at any later time when all link delays are identical.
//
// This module implements that procedure as a destination-backwards sweep of
// p_fin (the order in which dashed edges cross between the branches),
// followed by the redirect switches that lie only on the old branch, with
// bounded waiting between moves. Every move is validated with the exact
// time-extended checks, so a `true` answer always comes with a witness
// schedule. Theorem 2's completeness claim (identical delays => this order
// finds a sequence whenever one exists) is exercised against the exact OPT
// solver in tests/feasibility_tree_test.cpp.
#pragma once

#include <string>

#include "net/instance.hpp"
#include "timenet/schedule.hpp"

namespace chronus::core {

struct FeasibilityResult {
  bool feasible = false;
  /// A witness congestion- and loop-free schedule when feasible.
  timenet::UpdateSchedule witness;
  /// The switch whose update could not be placed, when infeasible.
  net::NodeId failed_switch = net::kInvalidNode;
  std::string message;
};

/// Checks whether a congestion- and loop-free timed update sequence exists.
/// Polynomial time; complete under the identical-link-delay precondition of
/// Theorem 2 (with heterogeneous delays it may report false negatives,
/// like the paper's algorithm).
FeasibilityResult tree_feasibility_check(const net::UpdateInstance& inst);

}  // namespace chronus::core
