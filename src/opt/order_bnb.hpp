// OR: the order-replacement baseline planner (Ludwig et al., PODC'15, as
// used in the paper's §V): partition the to-be-updated switches into a
// minimum number of rounds such that — no matter in which order the rule
// replacements inside a round take effect — no transient forwarding loop
// can occur. Capacities and link delays are deliberately ignored, exactly
// like the baseline the paper compares against.
//
// Round safety uses the union-graph characterization: given the already
// updated set U and a candidate round S, build the graph where switches in
// U forward with their new rule, switches in S contribute BOTH rules and
// everyone else forwards with the old rule. Any cycle in that graph selects
// a consistent intermediate configuration (take exactly the S-switches whose
// new edge lies on the cycle as "already flipped") and vice versa, so S is
// safe iff the union graph is acyclic. This makes the per-round check
// polynomial; round minimization itself is NP-hard and solved by branch and
// bound (with a greedy-maximal fallback beyond `exact_limit`), matching the
// paper's "branch and bound method" for OR.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "net/instance.hpp"

namespace chronus::opt {

/// True iff updating all of `round` asynchronously, after `updated` already
/// took effect, cannot create a transient forwarding loop.
bool round_is_loop_safe(const net::UpdateInstance& inst,
                        const std::set<net::NodeId>& updated,
                        const std::set<net::NodeId>& round);

struct OrderOptions {
  double timeout_sec = 10.0;     ///< <= 0 disables the deadline
  std::size_t exact_limit = 18;  ///< above this many switches: greedy only
};

struct OrderResult {
  bool feasible = false;
  std::vector<std::vector<net::NodeId>> rounds;
  bool proved_optimal = false;
  bool timed_out = false;
  std::uint64_t nodes_explored = 0;
  std::string message;

  std::size_t round_count() const { return rounds.size(); }
};

OrderResult solve_order_replacement(const net::UpdateInstance& inst,
                                    const OrderOptions& opts = {});

}  // namespace chronus::opt
