// Arena-backed search-state vocabulary shared by the two branch-and-bound
// solvers (mutp_bnb.cpp, order_bnb.cpp).
//
// Both searches are written once as templates over a traits bundle; the
// heap traits keep the original std::set / std::map / ostringstream state
// (the CHRONUS_ARENA=off escape hatch) while the arena traits swap in the
// flat structures below. The differential harness
// (tests/planner_differential_test.cpp) holds the two instantiations to
// bit-identical schedules and logical metrics.
//
// Encoding note: the arena memo keys are fixed-width little-endian binary
// (append_u32/append_u64) where the heap memo keys are decimal text. Both
// encodings are injective on the same underlying tuples, so two states
// collide under one encoding iff they collide under the other — the memo
// hit sequence, and with it every search counter, is identical.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <utility>

#include "net/graph.hpp"
#include "util/arena.hpp"
#include "util/contracts.hpp"

namespace chronus::opt::arena_search {

/// A sorted flat node set: ascending iteration like std::set, but erase
/// and (re)insert are memmoves inside one bump-allocated buffer. The
/// search only ever re-inserts previously erased elements, so capacity is
/// reserved once and never grows mid-search.
class SortedNodeVec {
 public:
  explicit SortedNodeVec(util::Arena* arena)
      : v_(util::ArenaAllocator<net::NodeId>(arena)) {}

  template <typename It>
  void assign_sorted(It first, It last) {
    v_.assign(first, last);
    CHRONUS_EXPECTS(std::is_sorted(v_.begin(), v_.end()),
                    "SortedNodeVec::assign_sorted needs ascending input");
  }

  void insert(net::NodeId x) {
    v_.insert(std::lower_bound(v_.begin(), v_.end(), x), x);
  }
  void erase(net::NodeId x) {
    const auto it = std::lower_bound(v_.begin(), v_.end(), x);
    if (it != v_.end() && *it == x) v_.erase(it);
  }

  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  auto begin() const { return v_.begin(); }
  auto end() const { return v_.end(); }

 private:
  util::ArenaVector<net::NodeId> v_;
};

/// Flat membership mask over dense node ids.
class NodeMask {
 public:
  NodeMask(util::Arena* arena, std::size_t node_count)
      : m_(node_count, 0, util::ArenaAllocator<unsigned char>(arena)) {}

  void insert(net::NodeId v) { m_[v] = 1; }
  void erase(net::NodeId v) { m_[v] = 0; }
  bool contains(net::NodeId v) const { return m_[v] != 0; }

 private:
  util::ArenaVector<unsigned char> m_;
};

/// Fixed-width binary key fragments (see encoding note above).
inline void append_u32(util::ArenaString& s, std::uint32_t v) {
  char b[sizeof(v)];
  std::memcpy(b, &v, sizeof(v));
  s.append(b, sizeof(v));
}
inline void append_u64(util::ArenaString& s, std::uint64_t v) {
  char b[sizeof(v)];
  std::memcpy(b, &v, sizeof(v));
  s.append(b, sizeof(v));
}

/// Section separator inside binary keys: never a valid node id.
inline constexpr std::uint32_t kKeySeparator =
    static_cast<std::uint32_t>(net::kInvalidNode);

/// Placement-construct a T inside the arena and return its (stable)
/// address. The object's destructor never runs — its memory is released
/// wholesale when the arena dies — so T must only own arena-backed
/// resources. Used for pool slots whose addresses must survive pool
/// growth (a plain vector-of-T pool would invalidate references held by
/// shallower recursion frames on reallocation).
template <typename T, typename... Args>
T* arena_new(util::Arena* arena, Args&&... args) {
  util::ArenaAllocator<T> alloc(arena);
  T* p = alloc.allocate(1);
  return ::new (static_cast<void*>(p)) T(std::forward<Args>(args)...);
}

}  // namespace chronus::opt::arena_search
