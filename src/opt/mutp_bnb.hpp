// OPT: branch-and-bound solver for the Minimum Update Time Problem
// (program (3)) — the paper's "OPT" baseline.
//
// The search walks time steps t = 0, 1, ...; at each step it branches over
// the subsets of pending switches whose updates keep the transition clean
// (checked with the exact time-extended verifier), including the empty
// subset (waiting for in-flight traffic to drain). Pruning:
//   * incumbent bound: a partial schedule already as long as the best known
//     complete schedule is cut;
//   * dominance memo: two partial schedules with the same pending set and
//     the same recent-update pattern (updates older than the drain bound
//     cannot influence the future) reach identical subtrees, so only the
//     earliest visit is expanded;
//   * deadline: like the paper's 600 s timeout in Fig. 10, the solver
//     returns its incumbent with timed_out set when the budget expires.
//
// MUTP is NP-complete (Theorem 1); exactness is therefore bounded: when a
// step offers more individually-safe candidates than
// `max_candidates_exact`, branching is truncated to the greedy-preferred
// subsets and `proved_optimal` is cleared.
#pragma once

#include <cstdint>
#include <string>

#include "core/greedy_scheduler.hpp"
#include "net/instance.hpp"
#include "timenet/schedule.hpp"

namespace chronus::opt {

struct MutpOptions {
  double timeout_sec = 10.0;      ///< <= 0 disables the deadline
  int max_candidates_exact = 16;  ///< subset-branching width limit
  bool force_complete = false;    ///< emit a best-effort schedule if infeasible
};

struct MutpResult {
  core::ScheduleStatus status = core::ScheduleStatus::kInfeasible;
  timenet::UpdateSchedule schedule;
  std::int64_t makespan = 0;  ///< |T|: number of time steps, 0 if none
  bool proved_optimal = false;
  bool timed_out = false;
  std::uint64_t nodes_explored = 0;
  std::string message;

  bool feasible() const { return status == core::ScheduleStatus::kFeasible; }
};

MutpResult solve_mutp(const net::UpdateInstance& inst,
                      const MutpOptions& opts = {});

}  // namespace chronus::opt
