#include "opt/order_bnb.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/stopwatch.hpp"

namespace chronus::opt {

namespace {

/// Cycle check on the union graph (see header). Each switch contributes at
/// most two outgoing edges, so this is O(V).
bool union_graph_acyclic(const net::UpdateInstance& inst,
                         const std::set<net::NodeId>& updated,
                         const std::set<net::NodeId>& round) {
  const auto nodes = inst.touched_nodes();
  std::map<net::NodeId, std::vector<net::NodeId>> adj;
  for (const net::NodeId v : nodes) {
    const auto on = inst.old_next(v);
    const auto nn = inst.new_next(v);
    auto& out = adj[v];
    if (updated.count(v)) {
      if (nn) out.push_back(*nn);
    } else if (round.count(v)) {
      if (on) out.push_back(*on);
      if (nn && (!on || *nn != *on)) out.push_back(*nn);
    } else {
      if (on) out.push_back(*on);
    }
  }
  // Iterative three-color DFS.
  std::map<net::NodeId, int> color;  // 0 white, 1 grey, 2 black
  for (const net::NodeId start : nodes) {
    if (color[start] != 0) continue;
    std::vector<std::pair<net::NodeId, std::size_t>> stack{{start, 0}};
    color[start] = 1;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      const auto it = adj.find(v);
      if (it == adj.end() || i >= it->second.size()) {
        color[v] = 2;
        stack.pop_back();
        continue;
      }
      const net::NodeId w = it->second[i++];
      if (!adj.count(w)) continue;  // sink (destination): no out edges
      const int c = color[w];
      if (c == 1) return false;
      if (c == 0) {
        color[w] = 1;
        stack.emplace_back(w, 0);
      }
    }
  }
  return true;
}

struct Search {
  const net::UpdateInstance* inst = nullptr;
  util::Deadline deadline{0};

  std::size_t incumbent = std::numeric_limits<std::size_t>::max();
  std::vector<std::vector<net::NodeId>> best;
  std::vector<std::vector<net::NodeId>> current;
  bool found = false;
  bool timed_out = false;
  std::uint64_t nodes = 0;
  std::uint64_t prunes = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t incumbent_updates = 0;  // dfs-internal only (see mutp_bnb)
  std::map<std::string, std::size_t> memo;  // pending-set -> fewest rounds used

  void dfs(std::set<net::NodeId>& pending, std::set<net::NodeId>& updated);
  void branch(std::set<net::NodeId>& pending, std::set<net::NodeId>& updated,
              const std::vector<net::NodeId>& cand, std::size_t idx,
              std::set<net::NodeId>& round);
};

std::string pending_key(const std::set<net::NodeId>& pending) {
  std::ostringstream os;
  for (const net::NodeId v : pending) os << v << ',';
  return os.str();
}

void Search::dfs(std::set<net::NodeId>& pending,
                 std::set<net::NodeId>& updated) {
  if (timed_out || deadline.expired()) {
    timed_out = true;
    return;
  }
  ++nodes;
  if (pending.empty()) {
    if (current.size() < incumbent) {
      incumbent = current.size();
      best = current;
      found = true;
      ++incumbent_updates;
    }
    return;
  }
  if (current.size() + 1 >= incumbent) {
    ++prunes;
    return;
  }

  const std::string key = pending_key(pending);
  const auto it = memo.find(key);
  if (it != memo.end() && it->second <= current.size()) {
    ++memo_hits;
    return;
  }
  memo[key] = current.size();

  std::vector<net::NodeId> cand;
  for (const net::NodeId v : pending) {
    if (round_is_loop_safe(*inst, updated, {v})) cand.push_back(v);
  }
  if (cand.empty()) return;  // stuck: no single switch is safe

  std::set<net::NodeId> round;
  branch(pending, updated, cand, 0, round);
}

void Search::branch(std::set<net::NodeId>& pending,
                    std::set<net::NodeId>& updated,
                    const std::vector<net::NodeId>& cand, std::size_t idx,
                    std::set<net::NodeId>& round) {
  if (timed_out || deadline.expired()) {
    timed_out = true;
    return;
  }
  if (idx == cand.size()) {
    if (round.empty()) return;
    for (const net::NodeId v : round) {
      pending.erase(v);
      updated.insert(v);
    }
    current.emplace_back(round.begin(), round.end());
    dfs(pending, updated);
    current.pop_back();
    for (const net::NodeId v : round) {
      updated.erase(v);
      pending.insert(v);
    }
    return;
  }
  const net::NodeId v = cand[idx];
  round.insert(v);
  if (round_is_loop_safe(*inst, updated, round)) {
    branch(pending, updated, cand, idx + 1, round);
  }
  round.erase(v);
  branch(pending, updated, cand, idx + 1, round);
}

std::vector<std::vector<net::NodeId>> greedy_maximal(
    const net::UpdateInstance& inst, std::set<net::NodeId> pending,
    std::set<net::NodeId> updated, const util::Deadline& deadline) {
  std::vector<std::vector<net::NodeId>> rounds;
  while (!pending.empty()) {
    std::set<net::NodeId> round;
    for (const net::NodeId v : pending) {
      if (deadline.expired()) return {};
      round.insert(v);
      if (!round_is_loop_safe(inst, updated, round)) round.erase(v);
    }
    if (round.empty()) return {};  // stuck
    for (const net::NodeId v : round) {
      pending.erase(v);
      updated.insert(v);
    }
    rounds.emplace_back(round.begin(), round.end());
  }
  return rounds;
}

}  // namespace

bool round_is_loop_safe(const net::UpdateInstance& inst,
                        const std::set<net::NodeId>& updated,
                        const std::set<net::NodeId>& round) {
  return union_graph_acyclic(inst, updated, round);
}

OrderResult solve_order_replacement(const net::UpdateInstance& inst,
                                    const OrderOptions& opts) {
  CHRONUS_SPAN("order.solve");
  OrderResult res;
  const auto to_update = inst.switches_to_update();
  if (to_update.empty()) {
    res.feasible = true;
    res.proved_optimal = true;
    res.message = "nothing to update";
    return res;
  }
  std::set<net::NodeId> pending(to_update.begin(), to_update.end());

  // Switches with no old rule carry no traffic; installing their rules
  // first is always safe and avoids transient blackholes once upstream
  // switches flip. They form a preliminary round outside the optimization.
  std::vector<net::NodeId> fresh;
  for (auto it = pending.begin(); it != pending.end();) {
    if (!inst.old_next(*it)) {
      fresh.push_back(*it);
      it = pending.erase(it);
    } else {
      ++it;
    }
  }
  if (pending.empty()) {
    res.feasible = true;
    res.proved_optimal = true;
    res.rounds.push_back(fresh);
    return res;
  }
  const std::set<net::NodeId> pre_installed(fresh.begin(), fresh.end());

  const util::Deadline deadline(opts.timeout_sec);
  const auto greedy = greedy_maximal(inst, pending, pre_installed, deadline);
  const auto with_fresh_round = [&](std::vector<std::vector<net::NodeId>> rounds) {
    if (!fresh.empty()) rounds.insert(rounds.begin(), fresh);
    return rounds;
  };

  if (pending.size() > opts.exact_limit) {
    res.feasible = !greedy.empty();
    res.timed_out = deadline.expired();
    res.rounds = with_fresh_round(greedy);
    res.message = res.timed_out ? "deadline hit during greedy-maximal"
                                : "greedy-maximal (instance above exact_limit)";
    return res;
  }

  Search s;
  s.inst = &inst;
  s.deadline = deadline;
  if (!greedy.empty()) {
    s.found = true;
    s.best = greedy;
    s.incumbent = greedy.size();
  }
  std::set<net::NodeId> updated = pre_installed;
  s.dfs(pending, updated);

  obs::add("order.calls");
  obs::add("order.nodes_visited", s.nodes);
  obs::add("order.prunes", s.prunes);
  obs::add("order.memo_hits", s.memo_hits);
  obs::add("order.incumbent_updates", s.incumbent_updates);
  if (s.timed_out) obs::add("order.timeouts");

  res.timed_out = s.timed_out;
  res.nodes_explored = s.nodes;
  res.feasible = s.found;
  res.rounds = with_fresh_round(s.best);
  res.proved_optimal = s.found && !s.timed_out;
  if (s.timed_out) res.message = "deadline hit; incumbent returned";
  if (!s.found) res.message = "no loop-free round sequence found";
  return res;
}

}  // namespace chronus::opt
